"""Trace tier: hot-cycle superblocks with side-exit guards.

Block chaining removes the dispatch loop from hot edges but still executes
one compiled body per block: every block pays its prologue loads, its exit
writebacks, a trampoline step per fused run, and a per-block bookkeeping
update in the engine loop.  This module adds the classic trace-JIT tier on
top (QEMU avoids it, HotSpot/Dynamo/LuaJIT live on it): once edge profiling
in :class:`~repro.dbt.engine.DBTEngine` finds a hot cycle head, the
dominant chained successors are stitched into one **superblock** — a single
generated Python function covering the whole cycle — and re-optimized
across the block boundaries:

* **cross-block register sync** — a block prologue load ``g_X <- env[X]``
  is elided when an earlier position in the trace already left ``g_X``
  coherent with its environment slot (loaded it, or stored it back);
* **cross-block flag-liveness windows** — an NZCV spill (``st<f>f``) whose
  environment slot is provably re-stored before the next side exit or
  environment observation is dead and elided, *across* block boundaries
  (the translator's delegation analysis stops at block edges);
* **guards with side exits** — at each conditional junction the trace
  keeps only the hot direction; the guard evaluates the same predicate the
  block terminator would and, on a mispredict, executes the *original*
  cold-direction exit stub (writebacks + PC store) and returns to the
  block-level tier.  Indirect (``bx``) junctions guard on the register
  value, so traces run through call/return cycles too.

Correctness discipline (the same oracle contract the jit backend honours):
byte-identical architectural snapshots *and* byte-identical
:class:`~repro.dbt.metrics.RunMetrics` versus the interp backend.  Metrics
parity survives the elisions because accounting is decoupled from
execution: every position's weighted per-category host-instruction counts
are pre-aggregated at trace-compile time from the *original* unoptimized
block (entry loads + body + terminator + exactly one exit stub — both
stubs of a conditional block aggregate identically, so the totals are
path-independent) and flushed once at trace exit, as the full-iteration
aggregate times the completed iteration count plus the prefix through the
exit position.  An elided instruction is still counted; it is just not
executed.

Elision soundness does not assume guest programs stay out of the emulated
CPU environment: any host instruction that could *read* memory through a
computed address (a guest load) pins preceding flag spills, and any that
could *write* one (a guest store) resets the register/flag sync state, so
a guest that aliases the environment region degrades to block-tier code
instead of diverging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dbt.compiler import _PRED_EXPR, _emit_insn, _uninit
from repro.dbt.executor import WEIGHTS
from repro.dbt.runtime import (
    DISPATCH_LABEL,
    env_flag_addr,
    env_reg_addr,
)
from repro.dbt.translator import _EXIT_TAKEN, TranslatedBlock
from repro.errors import ExecutionError
from repro.isa.instruction import Instruction, InstructionDef
from repro.isa.operands import Imm, Label, Mem, Reg

_MASK = 0xFFFFFFFF

#: Bump when the generated trace shape changes incompatibly; part of the
#: disk-cache content key, so stale cross-process entries become misses.
TRACE_CODEGEN_VERSION = "trace-v2"

_FLAG_NAMES = ("N", "Z", "C", "V")
_FLAG_SLOT_ADDR = {env_flag_addr(f): f for f in _FLAG_NAMES}
_REG_NAMES = tuple(f"r{i}" for i in range(13)) + ("sp", "lr", "pc")
_REG_SLOT_ADDR = {env_reg_addr(name): f"g_{name}" for name in _REG_NAMES}
_ENV_PC_ADDR = env_reg_addr("pc")
_ENV_LO = min(_REG_SLOT_ADDR)
_ENV_HI = max(_FLAG_SLOT_ADDR) + 4

#: Mnemonics whose generated template writes the full NZCV flag file
#: (mirrors the emitters in :mod:`repro.dbt.compiler`).
_NZCV_WRITERS = frozenset(
    {
        "addl", "subl", "adcl", "sbbl", "cmpl", "testl", "negl",
        "andl", "orl", "xorl", "shll", "shrl", "sarl",
    }
)


@dataclass(frozen=True)
class TraceConfig:
    """Tuning knobs for trace selection, guarding, and retirement."""

    #: back-edge traversal count that triggers trace formation at its head.
    hot_threshold: int = 8
    #: maximum number of blocks stitched into one trace.
    max_length: int = 32
    #: an edge must have been taken this often to be followed at all.
    min_edge_count: int = 2
    #: the dominant successor must carry this share of outgoing traversals.
    dominance: float = 0.5
    #: entries per retirement-accounting window.
    probation_entries: int = 8
    #: a window averaging fewer *executed blocks* per entry than this
    #: retires the trace.  Blocks, not completed iterations: a guard exit
    #: after a long covered prefix is still a profitable entry (the prefix
    #: ran as straight-line trace code), so only traces whose entries keep
    #: bailing out near the top — paying the entry overhead for almost no
    #: covered work — are pathological.
    min_mean_blocks: float = 4.0
    #: per-engine cap on live traces.
    max_traces: int = 64
    #: block transitions without a new trace forming before edge profiling
    #: switches off for good.  Profiling costs two dict operations plus a
    #: formation-trigger check on *every* dispatch; once the working set's
    #: hot cycles have all been promoted (or blacklisted) that tax buys
    #: nothing, so the dispatch tail drops to the jit tier's cost.  Heads
    #: that only become hot later are left to the block tier — the same
    #: bounded-profiling bargain production trace JITs make.
    profile_window: int = 8192

    @classmethod
    def aggressive(cls) -> "TraceConfig":
        """Test/difftest settings: form traces on tiny fuzzed programs."""
        return cls(
            hot_threshold=3,
            max_length=8,
            min_edge_count=1,
            dominance=0.5,
            probation_entries=4,
            min_mean_blocks=1.05,
            max_traces=32,
            profile_window=2048,
        )


class TraceStats:
    """Process-wide trace-tier counters (thread-safe).

    Surfaced through :func:`repro.cache.stats_payload`, which is what both
    ``repro cache stats`` and the service ``stats`` endpoint serialize.
    """

    _FIELDS = (
        "formed",
        "form_failed",
        "retired",
        "entries",
        "iterations",
        "guard_exits",
        "source_cache_hits",
        "source_cache_stores",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock"):
            for name in self._FIELDS:
                setattr(self, name, 0)

    def incr(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


#: The process-wide counter instance.
TRACE_STATS = TraceStats()


# -- portable trace source -----------------------------------------------------


@dataclass(frozen=True)
class TraceSource:
    """The portable product of trace codegen (mirrors ``BlockSource``).

    Plain data only: one process generates, any process re-instantiates
    with :func:`compile_trace_source` against the same parsed blocks.  The
    constituent block start indices are carried for key validation.
    """

    text: str
    block_starts: Tuple[int, ...]
    version: str = TRACE_CODEGEN_VERSION

    def to_payload(self) -> Dict[str, Any]:
        return {
            "text": self.text,
            "block_starts": list(self.block_starts),
            "version": self.version,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TraceSource":
        text = payload["text"]
        starts = payload["block_starts"]
        version = payload["version"]
        if (
            not isinstance(text, str)
            or not isinstance(starts, list)
            or not all(isinstance(s, int) for s in starts)
            or version != TRACE_CODEGEN_VERSION
        ):
            raise ValueError("malformed TraceSource payload")
        return cls(text=text, block_starts=tuple(starts), version=version)


# -- block-structure parsing ---------------------------------------------------


@dataclass(frozen=True)
class _Stub:
    """One exit stub: ``host[start:jmp]`` writebacks + PC store (+ jmp)."""

    start: int
    jmp: int  # index of the dispatch jmp (exclusive end of emitted range)
    target_index: Optional[int]  # Imm PC store, in guest-block-index units
    via_reg: Optional[str]  # bare guest register name for indirect exits


@dataclass(frozen=True)
class _ParsedBlock:
    """A translated block decomposed into the shapes trace codegen needs."""

    tb: TranslatedBlock
    defs: Tuple[InstructionDef, ...]
    prologue: Tuple[Tuple[int, str], ...]  # (host index, 'g_<reg>')
    linear_end: int  # body ends here: jcc index, or first stub start
    cond: Optional[str]
    fall: _Stub
    taken: Optional[_Stub]
    count_agg: Dict[str, int]  # category -> weighted count, one full pass


def _is_env_word(op) -> Optional[int]:
    """The env-slot address of a constant aligned Mem operand, else None."""
    if not isinstance(op, Mem) or op.base is not None or op.index is not None:
        return None
    addr = op.disp & _MASK
    if addr % 4 or not (_ENV_LO <= addr < _ENV_HI):
        return None
    return addr


def _parse_stub(tb: TranslatedBlock, jmp: int) -> Optional[_Stub]:
    host = tb.host
    pcs = host[jmp - 1] if jmp >= 1 else None
    if pcs is None or pcs.mnemonic != "movl_s":
        return None
    src, dst = pcs.operands
    if _is_env_word(dst) != _ENV_PC_ADDR:
        return None
    target_index: Optional[int] = None
    via_reg: Optional[str] = None
    if isinstance(src, Imm):
        value = src.value & _MASK
        if value % 4:
            return None
        target_index = value // 4
    elif isinstance(src, Reg) and src.name.startswith("g_"):
        via_reg = src.name[2:]
    else:
        return None
    start = jmp - 1
    while start - 1 >= 0:
        insn = host[start - 1]
        if insn.mnemonic != "movl_s":
            break
        wsrc, wdst = insn.operands
        addr = _is_env_word(wdst)
        if addr is None or addr == _ENV_PC_ADDR or addr in _FLAG_SLOT_ADDR:
            break
        if not isinstance(wsrc, Reg):
            break
        start -= 1
    return _Stub(start=start, jmp=jmp, target_index=target_index, via_reg=via_reg)


def _stub_agg(tb: TranslatedBlock, stub: _Stub) -> Dict[str, int]:
    agg: Dict[str, int] = {}
    for k in range(stub.start, stub.jmp + 1):
        cat = tb.categories[k]
        agg[cat] = agg.get(cat, 0) + WEIGHTS.get(tb.host[k].mnemonic, 1)
    return agg


def parse_block(
    tb: TranslatedBlock, defs: Sequence[InstructionDef]
) -> Optional[_ParsedBlock]:
    """Decompose *tb* for trace stitching; None if its shape is unusual.

    Rejection is always safe — the block simply stays on the block tier.
    Expected shape (what the translator emits): prologue loads, a
    straight-line body, at most one conditional jcc to ``__exit_taken``,
    and one or two dispatch exit stubs.
    """
    host = tb.host
    n = len(host)
    if not n:
        return None
    jmps = [
        i
        for i in range(n)
        if host[i].mnemonic == "jmp"
        and host[i].operands
        and isinstance(host[i].operands[0], Label)
        and host[i].operands[0].name == DISPATCH_LABEL
    ]
    if len(jmps) not in (1, 2) or jmps[-1] != n - 1:
        return None

    cond: Optional[str] = None
    taken: Optional[_Stub] = None
    if len(jmps) == 2:
        fall = _parse_stub(tb, jmps[0])
        taken = _parse_stub(tb, jmps[1])
        if fall is None or taken is None:
            return None
        if taken.start != jmps[0] + 1:
            return None
        if tb.labels.get(_EXIT_TAKEN) != taken.start:
            return None
        jcc = fall.start - 1
        if jcc < 0:
            return None
        jdef = defs[jcc]
        if not jdef.is_branch or jdef.cond is None or jdef.cond not in _PRED_EXPR:
            return None
        ops = host[jcc].operands
        if not (
            ops and isinstance(ops[0], Label) and ops[0].name == _EXIT_TAKEN
        ):
            return None
        cond = jdef.cond
        linear_end = jcc
        branch_ok = {jcc, jmps[0], jmps[1]}
        # Both stubs must account identically: that is what makes the
        # per-position count aggregate path-independent.
        if _stub_agg(tb, fall) != _stub_agg(tb, taken):
            return None
    else:
        if _EXIT_TAKEN in tb.labels:
            return None
        fall = _parse_stub(tb, jmps[0])
        if fall is None:
            return None
        linear_end = fall.start
        branch_ok = {jmps[0]}

    for i, defn in enumerate(defs):
        if defn.is_branch and i not in branch_ok:
            return None  # host-internal control flow: stay on the block tier

    prologue: List[Tuple[int, str]] = []
    for i in range(linear_end):
        insn = host[i]
        if insn.mnemonic != "movl":
            break
        src, dst = insn.operands
        addr = _is_env_word(src)
        if (
            addr is None
            or addr in _FLAG_SLOT_ADDR
            or not isinstance(dst, Reg)
            or _REG_SLOT_ADDR.get(addr) != dst.name
        ):
            break
        prologue.append((i, dst.name))

    agg: Dict[str, int] = {}
    for k in range(fall.start if len(jmps) == 2 else n):
        cat = tb.categories[k]
        agg[cat] = agg.get(cat, 0) + WEIGHTS.get(host[k].mnemonic, 1)
    if len(jmps) == 2:
        for cat, weight in _stub_agg(tb, fall).items():
            agg[cat] = agg.get(cat, 0) + weight

    return _ParsedBlock(
        tb=tb,
        defs=tuple(defs),
        prologue=tuple(prologue),
        linear_end=linear_end,
        cond=cond,
        fall=fall,
        taken=taken,
        count_agg=agg,
    )


# -- cycle selection -----------------------------------------------------------


def select_cycle(
    head: int, edge_counts: Dict[Tuple[int, int], int], cfg: TraceConfig
) -> Optional[List[int]]:
    """Follow dominant successors from *head* until the cycle closes.

    Returns the block-index path (head first) or None when the walk hits a
    cold or ambiguous edge, an inner cycle, or the length bound — the
    superblock shape the paper's tiered follow-on relies on is exactly
    "one hot cyclic path".
    """
    path = [head]
    seen = {head}
    current = head
    while len(path) <= cfg.max_length:
        total = 0
        best_count = 0
        best_dst = None
        for (src, dst), count in edge_counts.items():
            if src != current:
                continue
            total += count
            if count > best_count:
                best_count, best_dst = count, dst
        if best_dst is None or best_count < cfg.min_edge_count:
            return None
        if best_count < cfg.dominance * total:
            return None  # ambiguous junction: no dominant direction
        if best_dst == head:
            return path
        if best_dst in seen:
            return None  # inner cycle not through the head
        path.append(best_dst)
        seen.add(best_dst)
        current = best_dst
    return None


# -- junction planning ---------------------------------------------------------


@dataclass(frozen=True)
class _Junction:
    """How one position transfers to the next on the trace path."""

    guarded: bool
    fail_expr: Optional[str]  # python expr: True -> take the side exit
    side_stub: Optional[_Stub]  # executed on guard failure
    main_stub: _Stub  # executed on the on-trace path


def plan_junctions(parsed: Sequence[_ParsedBlock]) -> Optional[List[_Junction]]:
    n = len(parsed)
    plans: List[_Junction] = []
    for p, pb in enumerate(parsed):
        expected = parsed[(p + 1) % n].tb.start
        if pb.fall.via_reg is not None:
            reg = f"g_{pb.fall.via_reg}"
            plans.append(
                _Junction(
                    guarded=True,
                    fail_expr=f"regs[{reg!r}] != {expected * 4}",
                    side_stub=pb.fall,
                    main_stub=pb.fall,
                )
            )
        elif pb.taken is not None:
            pred = _PRED_EXPR[pb.cond]
            if pb.taken.target_index == pb.fall.target_index:
                if expected != pb.fall.target_index:
                    return None
                plans.append(_Junction(False, None, None, pb.fall))
            elif expected == pb.taken.target_index:
                plans.append(
                    _Junction(True, f"not ({pred})", pb.fall, pb.taken)
                )
            elif expected == pb.fall.target_index:
                plans.append(_Junction(True, f"({pred})", pb.taken, pb.fall))
            else:
                return None
        else:
            if pb.fall.target_index != expected:
                return None
            plans.append(_Junction(False, None, None, pb.fall))
    return plans


# -- effect classification (elision soundness) ---------------------------------

_ALU2 = frozenset(
    {
        "addl", "subl", "adcl", "sbbl", "andl", "orl", "xorl",
        "shll", "shrl", "sarl", "imull",
    }
)
_TEMPLATED = (
    _ALU2
    | _NZCV_WRITERS
    | frozenset(
        {
            "movl", "movl_s", "leal", "notl", "negl",
            "helper_umlal", "helper_clz",
            "setz", "sets", "setc", "seto",
        }
    )
)


def _flag_of(insn: Instruction, prefix: str) -> Optional[str]:
    m = insn.mnemonic
    if len(m) == 4 and m[:2] == prefix and m[3] == "f" and m[2] in "nzcv":
        return m[2].upper()
    return None


def _is_templated(insn: Instruction) -> bool:
    m = insn.mnemonic
    if m in _TEMPLATED:
        return True
    if _flag_of(insn, "st") or _flag_of(insn, "ld"):
        return True
    if m in ("movzbl", "movzwl") and isinstance(insn.operands[0], Mem):
        return True
    if m in ("movb", "movw") and isinstance(insn.operands[1], Mem):
        return True
    return False


def _mem_accesses(insn: Instruction) -> Tuple[List[Mem], List[Mem]]:
    """(memory reads, memory writes) of one host instruction's template.

    Untemplated instructions are handled by the callers as full barriers,
    so this only needs to be exact for the templated set.
    """
    m = insn.mnemonic
    ops = insn.operands
    mems = [op for op in ops if isinstance(op, Mem)]
    if m in ("movl", "movl_s", "movzbl", "movzwl"):
        return (
            [ops[0]] if isinstance(ops[0], Mem) else [],
            [ops[1]] if isinstance(ops[1], Mem) else [],
        )
    if m in ("movb", "movw"):
        return (
            [ops[0]] if isinstance(ops[0], Mem) else [],
            [ops[1]] if isinstance(ops[1], Mem) else [],
        )
    if m in _ALU2 or m in ("notl", "negl"):
        return mems, [ops[-1]] if isinstance(ops[-1], Mem) else []
    if m in ("cmpl", "testl"):
        return mems, []
    if m == "leal":
        return [], []  # address computation only
    if _flag_of(insn, "st"):
        return [], [ops[0]] if isinstance(ops[0], Mem) else []
    if _flag_of(insn, "ld"):
        return [ops[0]] if isinstance(ops[0], Mem) else [], []
    if m in ("setz", "sets", "setc", "seto"):
        return [], [ops[0]] if isinstance(ops[0], Mem) else []
    return mems, mems  # conservative for helpers and anything else


def _is_dynamic(mem: Mem) -> bool:
    return mem.base is not None or mem.index is not None


def _static_range(mem: Mem) -> Tuple[int, int]:
    addr = mem.disp & _MASK
    return addr, addr + 4  # conservative word-sized footprint


def _may_read_slot(insn: Instruction, slot_addr: int) -> bool:
    """Could this instruction's template read env word *slot_addr*?"""
    if not _is_templated(insn):
        return True
    reads, _writes = _mem_accesses(insn)
    for mem in reads:
        if _is_dynamic(mem):
            return True
        lo, hi = _static_range(mem)
        if lo < slot_addr + 4 and slot_addr < hi:
            return True
    return False


# -- codegen -------------------------------------------------------------------


def _elided_flag_stores(
    parsed: Sequence[_ParsedBlock], plans: Sequence[_Junction]
) -> Set[Tuple[int, int]]:
    """(position, host index) of NZCV spills dead along the trace path.

    A spill is dead when, walking the stitched straight-line stream, the
    same environment flag slot is re-stored before any observation point:
    a guarded junction (side exits must see current flags), a reload of
    the slot, any instruction that could read it through memory, or the
    end of the loop body (the bail path returns to the dispatcher).
    """
    events: List[Tuple[Optional[int], Optional[int], Optional[Instruction]]] = []
    for p, pb in enumerate(parsed):
        for i in range(pb.linear_end):
            events.append((p, i, pb.tb.host[i]))
        if plans[p].guarded:
            events.append((None, None, None))  # observation marker
    def _spills_slot(insn: Instruction, flag: str, slot: int) -> bool:
        return (
            _flag_of(insn, "st") == flag
            and _is_env_word(insn.operands[0]) == slot
        )

    elided: Set[Tuple[int, int]] = set()
    for idx, (p, i, insn) in enumerate(events):
        if insn is None:
            continue
        flag = _flag_of(insn, "st")
        if flag is None:
            continue
        slot = env_flag_addr(flag)
        if _is_env_word(insn.operands[0]) != slot:
            continue  # not the canonical spill shape: never elide
        for _lp, _li, later in events[idx + 1 :]:
            if later is None:
                break  # guard: side exit observes the environment
            if _spills_slot(later, flag, slot):
                elided.add((p, i))
                break
            if _may_read_slot(later, slot):
                break
        # falling off the end of the loop body is an observation: keep.
    return elided


def _ns_bases(parsed: Sequence[_ParsedBlock]) -> List[int]:
    bases: List[int] = []
    total = 0
    for pb in parsed:
        bases.append(total)
        total += len(pb.tb.host)
    return bases


class _SyncState:
    """Which guest registers / env flag slots are coherent right now."""

    def __init__(self) -> None:
        self.regs: Set[str] = set()
        self.flags: Set[str] = set()

    def clobber_all(self) -> None:
        self.regs.clear()
        self.flags.clear()

    def apply(self, insn: Instruction, defn: InstructionDef) -> None:
        """Conservative post-state after executing one emitted instruction."""
        if not _is_templated(insn):
            self.clobber_all()
            return
        if insn.mnemonic in _NZCV_WRITERS:
            self.flags.difference_update(_FLAG_NAMES)
        else:
            self.flags.difference_update(defn.flags_set)
        for op in insn.operands:
            if isinstance(op, Reg):
                self.regs.discard(op.name)
        _reads, writes = _mem_accesses(insn)
        for mem in writes:
            if _is_dynamic(mem):
                self.clobber_all()
                return
            lo, hi = _static_range(mem)
            for addr in range(lo & ~3, hi, 4):
                reg = _REG_SLOT_ADDR.get(addr)
                if reg is not None:
                    self.regs.discard(reg)
                flag = _FLAG_SLOT_ADDR.get(addr)
                if flag is not None:
                    self.flags.discard(flag)


def generate_trace_source(
    parsed: Sequence[_ParsedBlock], plans: Sequence[_Junction]
) -> TraceSource:
    """Lower one planned cycle into generated Python source.

    Deterministic for a given (parsed, plans) input — the property the
    cross-process disk cache relies on.  The function contract::

        _trace(st, max_iters) -> (completed_iterations, exit_pos)

    ``exit_pos >= 0``: a guard at that position failed after executing its
    original cold exit stub (environment fully current, PC stored).
    ``exit_pos == -1``: the iteration budget was exhausted at the loop
    bottom (PC stored back at the head).  Never executes more than
    ``max_iters * len(parsed)`` blocks' worth of state updates.

    The generated code carries **no accounting at all**: host-instruction
    counts, guest/covered totals, and rule hits are all pure arithmetic
    over translate-time aggregates and the returned ``(iterations,
    exit_pos)`` pair, so the engine reconstructs them outside the hot loop
    (see :class:`CompiledTrace`'s total/prefix tables).
    """
    bases = _ns_bases(parsed)
    elided = _elided_flag_stores(parsed, plans)
    ns_probe: Dict = {}

    lines: List[str] = [
        "def _trace(st, max_iters):",
        "    regs = st.regs; mem = st.memory; flags = st.flags",
        "    _iters = 0",
        "    try:",
        "        while True:",
    ]

    def emit(line: str, extra: int = 0) -> None:
        lines.append(" " * (12 + extra) + line)

    def emit_insn(p: int, i: int, extra: int = 0) -> None:
        buf: List[str] = []
        _emit_insn(bases[p] + i, parsed[p].tb.host[i], parsed[p].defs[i], buf, ns_probe)
        for line in buf:
            emit(line, extra)

    def emit_stub(p: int, stub: _Stub, sync: Optional[_SyncState], extra: int = 0) -> None:
        pb = parsed[p]
        for i in range(stub.start, stub.jmp):
            emit_insn(p, i, extra)
            if sync is not None:
                insn = pb.tb.host[i]
                src, dst = insn.operands
                addr = _is_env_word(dst)
                if (
                    addr is not None
                    and isinstance(src, Reg)
                    and _REG_SLOT_ADDR.get(addr) == src.name
                ):
                    sync.regs.add(src.name)

    sync = _SyncState()  # loop-top state: nothing known (entry + back edge)
    for p, pb in enumerate(parsed):
        host = pb.tb.host
        emit(f"# -- position {p}: block @{pb.tb.start * 4:#x}")
        loaded = {i for i, _name in pb.prologue}
        for i, name in pb.prologue:
            if name in sync.regs:
                continue  # coherent from an earlier position: elide the load
            emit_insn(p, i)
            sync.regs.add(name)
        for i in range(len(pb.prologue), pb.linear_end):
            if i in loaded:
                continue
            insn = host[i]
            st_flag = _flag_of(insn, "st")
            ld_flag = _flag_of(insn, "ld")
            if st_flag is not None and _is_env_word(insn.operands[0]) is not None:
                if (p, i) in elided:
                    sync.flags.discard(st_flag)  # env slot left stale
                    continue
                emit_insn(p, i)
                sync.flags.add(st_flag)
                continue
            if ld_flag is not None and _is_env_word(insn.operands[0]) is not None:
                if ld_flag in sync.flags:
                    continue  # flags[F] already equals the env slot
                emit_insn(p, i)
                sync.flags.add(ld_flag)
                continue
            emit_insn(p, i)
            sync.apply(insn, pb.defs[i])

        plan = plans[p]
        if plan.guarded:
            emit(f"if {plan.fail_expr}:")
            emit_stub(p, plan.side_stub, None, extra=4)
            emit(f"return (_iters, {p})", extra=4)
        emit_stub(p, plan.main_stub, sync)

    emit("_iters += 1")
    emit("if _iters >= max_iters:")
    emit("    return (_iters, -1)")
    lines.append("    except KeyError as _exc:")
    lines.append("        _uninit(_exc)")
    return TraceSource(
        text="\n".join(lines),
        block_starts=tuple(pb.tb.start for pb in parsed),
    )


def _trace_namespace(parsed: Sequence[_ParsedBlock]) -> Dict:
    """Execution namespace: a superset of what any trace source references."""
    ns: Dict = {"ExecutionError": ExecutionError, "_uninit": _uninit}
    bases = _ns_bases(parsed)
    for p, pb in enumerate(parsed):
        base = bases[p]
        for i, (insn, defn) in enumerate(zip(pb.tb.host, pb.defs)):
            ns[f"_sem{base + i}"] = defn.semantics
            ns[f"_i{base + i}"] = insn
    return ns


class CompiledTrace:
    """One compiled superblock plus its per-position accounting tables.

    ``guest_prefix[j]`` etc. hold the totals for positions ``0..j`` of one
    iteration, so the engine can reconstruct exact interp-equivalent
    metrics from the ``(iterations, exit_pos)`` pair the generated
    function returns.
    """

    __slots__ = (
        "head",
        "fn",
        "length",
        "block_indices",
        "guest_total",
        "covered_total",
        "rule_total",
        "count_total",
        "guest_prefix",
        "covered_prefix",
        "rule_prefix",
        "count_prefix",
        "source",
        "window_entries",
        "window_blocks",
        "guard_exits",
    )

    def __init__(self, parsed: Sequence[_ParsedBlock], source: TraceSource, fn) -> None:
        self.head = parsed[0].tb.start
        self.fn = fn
        self.length = len(parsed)
        self.block_indices = tuple(pb.tb.start for pb in parsed)
        self.source = source
        guest_prefix: List[int] = []
        covered_prefix: List[int] = []
        rule_prefix: List[Tuple] = []
        count_prefix: List[Dict[str, int]] = []
        guest = covered = 0
        rules: Dict = {}
        counts: Dict[str, int] = {}
        for pb in parsed:
            guest += pb.tb.guest_count
            covered += pb.tb.covered_count
            for rule, length in pb.tb.rule_agg:
                rules[rule] = rules.get(rule, 0) + length
            for cat, weight in pb.count_agg.items():
                counts[cat] = counts.get(cat, 0) + weight
            guest_prefix.append(guest)
            covered_prefix.append(covered)
            rule_prefix.append(tuple(rules.items()))
            count_prefix.append(dict(counts))
        self.guest_total = guest
        self.covered_total = covered
        self.rule_total = rule_prefix[-1]
        self.count_total = count_prefix[-1]
        self.guest_prefix = tuple(guest_prefix)
        self.covered_prefix = tuple(covered_prefix)
        self.rule_prefix = tuple(rule_prefix)
        self.count_prefix = tuple(count_prefix)
        self.window_entries = 0
        self.window_blocks = 0
        self.guard_exits = 0


def compile_trace_source(
    parsed: Sequence[_ParsedBlock], source: TraceSource
) -> CompiledTrace:
    """Instantiate trace source (fresh or disk-loaded) into a callable."""
    if source.block_starts != tuple(pb.tb.start for pb in parsed):
        raise ExecutionError("trace source does not match its blocks")
    ns = _trace_namespace(parsed)
    code = compile(
        source.text,
        f"<dbt-trace@{parsed[0].tb.start * 4:#x}+{len(parsed)}>",
        "exec",
    )
    exec(code, ns)  # noqa: S102 - source generated from our own IR
    return CompiledTrace(parsed, source, ns["_trace"])


# -- formation (the engine's entry point) --------------------------------------


def form_trace(
    head: int,
    edge_counts: Dict[Tuple[int, int], int],
    entry_of: Callable[[int], Optional[object]],
    cfg: TraceConfig,
    source_cache=None,
) -> Tuple[Optional[CompiledTrace], bool]:
    """Try to grow and compile a trace at *head*.

    ``entry_of`` maps a guest block index to its ``CodeCacheEntry`` (or
    None).  ``source_cache`` — when given — is any object with
    ``get(block_starts) -> Optional[TraceSource]`` and
    ``put(block_starts, TraceSource)`` (the diskcode adapter).

    Returns ``(trace, permanent_failure)``: a permanent failure means the
    head should be blacklisted (its blocks cannot be stitched), a
    transient one that selection may succeed later with warmer edges.
    """
    path = select_cycle(head, edge_counts, cfg)
    if path is None:
        TRACE_STATS.incr("form_failed")
        return None, False
    parsed: List[_ParsedBlock] = []
    for index in path:
        entry = entry_of(index)
        if entry is None:
            TRACE_STATS.incr("form_failed")
            return None, False
        pb = parse_block(entry.tb, entry.kernel.defs)
        if pb is None:
            TRACE_STATS.incr("form_failed")
            return None, True
        parsed.append(pb)
    plans = plan_junctions(parsed)
    if plans is None:
        TRACE_STATS.incr("form_failed")
        return None, True
    starts = tuple(pb.tb.start for pb in parsed)
    source: Optional[TraceSource] = None
    if source_cache is not None:
        source = source_cache.get(starts)
        if source is not None:
            TRACE_STATS.incr("source_cache_hits")
    if source is None:
        source = generate_trace_source(parsed, plans)
        if source_cache is not None:
            source_cache.put(starts, source)
            TRACE_STATS.incr("source_cache_stores")
    try:
        trace = compile_trace_source(parsed, source)
    except ExecutionError:
        TRACE_STATS.incr("form_failed")
        return None, True
    TRACE_STATS.incr("formed")
    return trace, False
