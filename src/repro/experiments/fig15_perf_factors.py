"""Figure 15: performance contribution of each parameterization factor.

Cumulative speedups over QEMU.  Paper geomeans: 1.04 -> 1.13 -> 1.22 ->
1.29.
"""

from __future__ import annotations

from repro.dbt.metrics import speedup
from repro.experiments.common import geomean, run_benchmark
from repro.experiments.report import ExperimentResult
from repro.workloads import BENCHMARK_NAMES

STAGE_COLUMNS = ("wopara", "opcode", "addrmode", "condition")


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="fig15",
        title="Fig. 15 — speedup over QEMU by parameterization factor",
        headers=("benchmark", "w/o para.", "opcode", "addr mode", "condition"),
    )
    columns = {stage: [] for stage in STAGE_COLUMNS}
    for name in BENCHMARK_NAMES:
        qemu = run_benchmark(name, "qemu")
        values = []
        for stage in STAGE_COLUMNS:
            gain = speedup(qemu, run_benchmark(name, stage))
            columns[stage].append(gain)
            values.append(gain)
        result.add(name, *values)
    result.add("geomean", *(geomean(columns[stage]) for stage in STAGE_COLUMNS))
    result.note("paper geomeans: 1.04 / 1.13 / 1.22 / 1.29")
    return result
