"""Instruction definitions for the ARM-like guest ISA.

Classification follows paper §IV-A: integer instructions fall into five
subgroups — (1) arithmetic and logic, (2) data transfer memory→register
(``mov``/``mvn``/``ldr``...), (3) data transfer register→memory (``str``...),
(4) compare, (5) everything else (branches, stack, ISA-special).
"""

from __future__ import annotations

from typing import List

from repro.isa.arm import semantics as sem
from repro.isa.arm.registers import ALL_REGISTERS, ALLOCATABLE, PC, SP
from repro.isa.flags import CONDITION_FLAG_USES, NZ, NZCV
from repro.isa.instruction import InstructionDef, Subgroup
from repro.isa.isa import ISA
from repro.isa.operands import OperandKind as K

_R3 = ((K.REG, K.REG, K.REG), (K.REG, K.REG, K.IMM))
_R3_REG_ONLY = ((K.REG, K.REG, K.REG),)
_R2 = ((K.REG, K.REG), (K.REG, K.IMM))
_LOAD_SIG = ((K.REG, K.REG), (K.REG, K.IMM), (K.REG, K.MEM))
_STORE_SIG = ((K.REG, K.MEM),)
_CMP_SIG = ((K.REG, K.REG), (K.REG, K.IMM))


def _alu3(mnemonic, fn, *, flags=frozenset(), reads=frozenset(), commutative=False, sigs=_R3):
    return InstructionDef(
        mnemonic=mnemonic,
        signatures=sigs,
        subgroup=Subgroup.ALU,
        semantics=fn,
        flags_set=flags,
        flags_read=reads,
        dest_index=0,
        source_indices=(1, 2),
        commutative=commutative,
    )


def _move(mnemonic, fn, *, flags=frozenset(), sigs=_R2):
    return InstructionDef(
        mnemonic=mnemonic,
        signatures=sigs,
        subgroup=Subgroup.LOAD,
        semantics=fn,
        flags_set=flags,
        dest_index=0,
        source_indices=(1,),
    )


def build_defs() -> List[InstructionDef]:
    defs: List[InstructionDef] = []
    carry = frozenset({"C"})

    # (1) Arithmetic and logic.
    for name, kind in (("add", "add"), ("sub", "sub"), ("rsb", "rsb")):
        commutative = kind == "add"
        defs.append(_alu3(name, sem.make_arith(kind, False, False), commutative=commutative))
        defs.append(
            _alu3(
                name + "s",
                sem.make_arith(kind, True, False),
                flags=NZCV,
                commutative=commutative,
            )
        )
    for name, kind in (("adc", "add"), ("sbc", "sub"), ("rsc", "rsb")):
        commutative = kind == "add"
        defs.append(
            _alu3(name, sem.make_arith(kind, False, True), reads=carry, commutative=commutative)
        )
        defs.append(
            _alu3(
                name + "s",
                sem.make_arith(kind, True, True),
                flags=NZCV,
                reads=carry,
                commutative=commutative,
            )
        )
    for name in ("and", "orr", "eor", "bic"):
        commutative = name != "bic"
        defs.append(_alu3(name, sem.make_logical(name, False), commutative=commutative))
        defs.append(
            _alu3(name + "s", sem.make_logical(name, True), flags=NZ, commutative=commutative)
        )
    for name in ("lsl", "lsr", "asr"):
        defs.append(_alu3(name, sem.make_shift(name, False)))
        defs.append(_alu3(name + "s", sem.make_shift(name, True), flags=NZ))
    defs.append(_alu3("mul", sem.make_mul(False), commutative=True, sigs=_R3_REG_ONLY))
    defs.append(
        _alu3("muls", sem.make_mul(True), flags=NZ, commutative=True, sigs=_R3_REG_ONLY)
    )

    # (2) Data transfer, memory/register/immediate -> register.
    defs.append(_move("mov", sem.make_move(False, False)))
    defs.append(_move("movs", sem.make_move(False, True), flags=NZ))
    defs.append(_move("mvn", sem.make_move(True, False)))
    defs.append(_move("mvns", sem.make_move(True, True), flags=NZ))
    for name, size in (("ldr", 4), ("ldrb", 1), ("ldrh", 2)):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=((K.REG, K.MEM),),
                subgroup=Subgroup.LOAD,
                semantics=sem.make_load(size),
                dest_index=0,
                source_indices=(1,),
            )
        )

    # (3) Data transfer, register -> memory.
    for name, size in (("str", 4), ("strb", 1), ("strh", 2)):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=_STORE_SIG,
                subgroup=Subgroup.STORE,
                semantics=sem.make_store(size),
                dest_index=1,
                source_indices=(0,),
            )
        )

    # (4) Compare.
    for name, fn, flags, commutative in (
        ("cmp", sem.sem_cmp, NZCV, False),
        ("cmn", sem.sem_cmn, NZCV, True),
        ("tst", sem.sem_tst, NZ, True),
        ("teq", sem.sem_teq, NZ, True),
    ):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=_CMP_SIG,
                subgroup=Subgroup.COMPARE,
                semantics=fn,
                flags_set=flags,
                source_indices=(0, 1),
                commutative=commutative,
            )
        )

    # (5) Remaining: branches, calls, stack, ISA-special.
    defs.append(
        InstructionDef(
            mnemonic="b",
            signatures=((K.LABEL,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.make_branch(None),
            is_branch=True,
        )
    )
    for cond, reads in CONDITION_FLAG_USES.items():
        defs.append(
            InstructionDef(
                mnemonic=f"b{cond}",
                signatures=((K.LABEL,),),
                subgroup=Subgroup.OTHER,
                semantics=sem.make_branch(cond),
                flags_read=reads,
                is_branch=True,
                cond=cond,
            )
        )
    defs.append(
        InstructionDef(
            mnemonic="bl",
            signatures=((K.LABEL,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_bl,
            is_branch=True,
            is_call=True,
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="bx",
            signatures=((K.REG,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_bx,
            is_branch=True,
            is_return=True,
            source_indices=(0,),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="push",
            signatures=((K.REGLIST,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_push,
            source_indices=(0,),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="pop",
            signatures=((K.REGLIST,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_pop,
            dest_index=0,
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="mla",
            signatures=((K.REG, K.REG, K.REG, K.REG),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_mla,
            dest_index=0,
            source_indices=(1, 2, 3),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="umlal",
            signatures=((K.REG, K.REG, K.REG, K.REG),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_umlal,
            dest_index=0,
            source_indices=(0, 1, 2, 3),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="clz",
            signatures=((K.REG, K.REG),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_clz,
            dest_index=0,
            source_indices=(1,),
        )
    )
    return defs


def build_isa() -> ISA:
    isa = ISA(
        name="arm",
        registers=ALL_REGISTERS,
        pc_register=PC,
        sp_register=SP,
        allocatable=ALLOCATABLE,
    )
    isa.add_all(build_defs())
    return isa


ARM = build_isa()
