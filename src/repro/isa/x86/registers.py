"""x86-like register file (32-bit general-purpose registers)."""

from __future__ import annotations

from typing import Tuple

from repro.isa.operands import Reg

GPR_NAMES: Tuple[str, ...] = ("eax", "ecx", "edx", "ebx", "esi", "edi", "ebp")
SP = "esp"

ALL_REGISTERS: Tuple[str, ...] = GPR_NAMES + (SP,)

#: Registers the compiler's allocator may use (ebp is allocatable here: the
#: mini-compiler does not maintain frame pointers, matching -fomit-frame-pointer).
ALLOCATABLE: Tuple[str, ...] = GPR_NAMES


def reg(name: str) -> Reg:
    if name not in ALL_REGISTERS:
        raise ValueError(f"unknown x86 register {name!r}")
    return Reg(name)


R = {name: Reg(name) for name in ALL_REGISTERS}
