"""Versioned ruleset bodies and their reconstruction into serving configs.

The publish stage ships a *ruleset body*: a schema-versioned JSON document
holding the learned, derived, and sequence-derived rules (in index order)
plus provenance — a generalization of the ``repro-tier0-v1`` artifact from
:mod:`repro.learning.distill` to the full rule universe.  The body is what
gets content-addressed and versioned by :class:`repro.pipeline.store
.RulesetStore`; this module owns its schema and the two directions of the
mapping:

* :func:`body_from_setup` — snapshot a derived :class:`~repro.param.engine
  .SystemSetup` into a body (pipeline publish path).
* :func:`serving_ruleset_from_body` — rebuild the full per-stage
  :class:`~repro.dbt.translator.TranslationConfig` map from a body
  **without re-running derivation**, by mirroring the assembly recipe of
  :func:`repro.param.engine._build_setup_uncached` over the stored rules.
  Rules are stored in index order and :meth:`RuleSet.add` slot tie-breaks
  are deterministic, so the rebuilt index resolves every lookup to the same
  canonical rule — the parity test byte-compares translations to prove it.

:class:`ServingRuleset` is the serve-time handle: configs plus identity
(version, body digest, training label, source), the unit the hot-reload
machinery in :mod:`repro.service.server` swaps atomically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.learning.ruleset import RuleSet
from repro.learning.store import rule_from_dict, rule_to_dict, ruleset_fingerprint

#: Ruleset body format tag; bump on any incompatible schema change.
RULESET_FORMAT = "repro-ruleset-v1"


def body_digest(body: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON of a ruleset body (its content address)."""
    text = json.dumps(body, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_body(
    learned: Sequence,
    derived: Sequence,
    sequence: Sequence,
    *,
    training: str,
    benchmarks: Sequence[str] = (),
    counts: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Assemble a ruleset body from rule collections (index order preserved)."""
    return {
        "format": RULESET_FORMAT,
        "training": training,
        "benchmarks": list(benchmarks),
        "counts": dict(counts or {}),
        "learned": [rule_to_dict(rule) for rule in learned],
        "derived": [rule_to_dict(rule) for rule in derived],
        "sequence": [rule_to_dict(rule) for rule in sequence],
    }


def body_from_setup(
    setup, *, training: str, benchmarks: Sequence[str] = ()
) -> Dict[str, Any]:
    """Snapshot a derived :class:`SystemSetup` into a publishable body.

    The sequence-derived rules are recovered as the ``seqparam`` config's
    suffix beyond the ``condition`` (learned + derived) set, so nothing is
    re-derived here.
    """
    from dataclasses import asdict

    all_rules = setup.configs["condition"].rules
    seq_rules = setup.configs["seqparam"].rules
    sequence = seq_rules.rules[len(all_rules.rules):]
    return build_body(
        setup.learned.rules,
        setup.param.derived.rules,
        sequence,
        training=training,
        benchmarks=benchmarks,
        counts=asdict(setup.param.counts),
    )


def validate_body(body: Dict[str, Any]) -> Dict[str, Any]:
    if not isinstance(body, dict) or body.get("format") != RULESET_FORMAT:
        raise ReproError(
            f"unsupported ruleset body format {body.get('format')!r} "
            f"(expected {RULESET_FORMAT})"
            if isinstance(body, dict)
            else "ruleset body is not an object"
        )
    return body


@dataclass(frozen=True)
class ServingRuleset:
    """One immutable, identified ruleset as served by the translation service.

    ``configs`` maps every stage name to a frozen
    :class:`TranslationConfig`; ``version``/``digest`` identify it in
    ``stats`` payloads and bench meta.  ``source`` is ``"store"`` for
    store-published versions and ``"builtin"`` for the legacy
    train-at-boot path.
    """

    version: str
    digest: str
    training: str
    source: str
    configs: Dict[str, Any] = field(repr=False)
    benchmarks: Tuple[str, ...] = ()
    rule_counts: Dict[str, int] = field(default_factory=dict, repr=False)

    def config_for(self, stage: str):
        config = self.configs.get(stage)
        if config is None:
            raise ReproError(f"ruleset {self.version} has no stage {stage!r}")
        return config

    def identity(self) -> Dict[str, Any]:
        """JSON-ready identity block for stats payloads and bench meta."""
        return {
            "version": self.version,
            "digest": self.digest,
            "training": self.training,
            "source": self.source,
            "rules": dict(self.rule_counts),
        }


def _ruleset_from_dicts(entries: Sequence[Dict[str, Any]]) -> RuleSet:
    rules = RuleSet()
    for entry in entries:
        rules.add(rule_from_dict(entry))
    return rules


def serving_ruleset_from_body(
    body: Dict[str, Any],
    *,
    version: str,
    digest: Optional[str] = None,
    source: str = "store",
) -> ServingRuleset:
    """Rebuild the full per-stage config map from a stored body.

    Mirrors :func:`repro.param.engine._build_setup_uncached` exactly, with
    the stored ``derived``/``sequence`` rules standing in for the derivation
    engine's output — reconstruction is pure assembly, no learning, no
    derivation, no verifier.
    """
    from repro.dbt.translator import TranslationConfig

    validate_body(body)
    learned = _ruleset_from_dicts(body.get("learned", ()))
    derived = _ruleset_from_dicts(body.get("derived", ()))

    opcode_rules = learned.copy()
    opcode_rules.extend(derived.by_origin("opcode-param"))

    all_rules = learned.copy()
    all_rules.extend(derived.rules)

    seq_rules = all_rules.copy()
    for entry in body.get("sequence", ()):
        seq_rules.add(rule_from_dict(entry))

    configs = {
        "qemu": TranslationConfig("qemu", rules=None),
        "wopara": TranslationConfig("w/o para.", rules=learned),
        "opcode": TranslationConfig("opcode", rules=opcode_rules),
        "addrmode": TranslationConfig(
            "addr mode", rules=all_rules, pc_constraint=True
        ),
        "condition": TranslationConfig(
            "condition", rules=all_rules, condition=True, pc_constraint=True
        ),
        "seqparam": TranslationConfig(
            "seq param", rules=seq_rules, condition=True, pc_constraint=True
        ),
        "manual": TranslationConfig(
            "manual",
            rules=all_rules,
            condition=True,
            pc_constraint=True,
            manual_other=True,
        ),
    }
    for ruleset in (learned, derived, opcode_rules, all_rules, seq_rules):
        ruleset.freeze()
    return ServingRuleset(
        version=version,
        digest=digest if digest is not None else body_digest(body),
        training=str(body.get("training", "quick")),
        source=source,
        configs=configs,
        benchmarks=tuple(body.get("benchmarks", ())),
        rule_counts={
            "learned": len(learned),
            "derived": len(derived),
            "sequence": len(body.get("sequence", ())),
            "serving": len(all_rules),
        },
    )


def serving_ruleset_from_setup(setup, *, training: str) -> ServingRuleset:
    """Wrap a train-at-boot :class:`SystemSetup` (the legacy serve path).

    The digest is the fingerprint of the default serving rule set, so two
    processes trained on the same corpus report the same identity even
    though no store version exists.
    """
    all_rules = setup.configs["condition"].rules
    seq_len = len(setup.configs["seqparam"].rules.rules) - len(all_rules.rules)
    return ServingRuleset(
        version=f"builtin:{training}",
        digest=ruleset_fingerprint(all_rules),
        training=training,
        source="builtin",
        configs=dict(setup.configs),
        benchmarks=(),
        rule_counts={
            "learned": len(setup.learned),
            "derived": len(setup.param.derived),
            "sequence": seq_len,
            "serving": len(all_rules),
        },
    )
