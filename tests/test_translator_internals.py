"""White-box tests for the block translator's analyses."""

import pytest

from repro.dbt import BlockMap, BlockTranslator, TranslationConfig, unit_from_assembly
from repro.dbt.translator import _block_reg_usage, _Segment
from repro.isa.arm import assemble as arm
from repro.isa.arm.opcodes import ARM


def make_translator(source: str, config=None, rules=None):
    unit = unit_from_assembly(source)
    blockmap = BlockMap(unit)
    config = config or TranslationConfig("t", rules=rules)
    return unit, blockmap, BlockTranslator(unit, blockmap, config)


def strip(insns):
    return tuple(i for i in insns if i.mnemonic != ".label")


class TestRegUsage:
    def usage(self, text):
        insns = strip(arm(text))
        defs = [ARM.defn(i) for i in insns]
        return _block_reg_usage(insns, defs)

    def test_read_before_write_loaded(self):
        reads, writes = self.usage("add r0, r1, r2")
        assert reads == {"r1", "r2"}
        assert writes == {"r0"}

    def test_written_then_read_not_loaded(self):
        reads, writes = self.usage("mov r0, #1\nadd r1, r0, r0")
        assert "r0" not in reads
        assert writes == {"r0", "r1"}

    def test_memory_operand_registers_read(self):
        reads, writes = self.usage("str r0, [r1, r2]")
        assert reads == {"r0", "r1", "r2"}
        assert writes == set()

    def test_push_reads_list_and_sp(self):
        reads, writes = self.usage("push {r4, r5}")
        assert {"r4", "r5", "sp"} <= reads
        assert "sp" in writes

    def test_pop_writes_list(self):
        reads, writes = self.usage("pop {r4, r5}")
        assert {"r4", "r5", "sp"} <= writes

    def test_call_writes_lr(self):
        _, writes = self.usage("bl target")
        assert "lr" in writes

    def test_return_reads_target(self):
        reads, _ = self.usage("bx lr")
        assert "lr" in reads

    def test_umlal_writes_both_halves(self):
        reads, writes = self.usage("umlal r0, r1, r2, r3")
        assert {"r0", "r1"} <= writes
        assert {"r0", "r1", "r2", "r3"} <= reads

    def test_pc_never_loaded_or_stored(self):
        reads, writes = self.usage("add r0, pc, #4")
        assert "pc" not in reads and "pc" not in writes


class TestPlanning:
    def test_no_rules_single_segments(self):
        unit, blockmap, translator = make_translator(
            "fn_main:\n    add r0, r1, r2\n    sub r3, r0, r1\n    bx lr"
        )
        segments = translator._plan(
            blockmap.instructions(blockmap.blocks[0]), blockmap.blocks[0]
        )
        assert all(s.rule is None and s.length == 1 for s in segments)

    def test_longest_window_preferred(self, demo_rules):
        # demo rules include a [cmp, b<cond>] pair — it must match as one
        # window, not two singles.
        unit, blockmap, translator = make_translator(
            "fn_main:\n    cmp r4, #64\n    blt fn_main\n    bx lr",
            rules=demo_rules,
        )
        block = blockmap.blocks[0]
        segments = translator._plan(blockmap.instructions(block), block)
        if segments[0].rule is not None and segments[0].length == 2:
            assert segments[0].rule.guest_length == 2
        else:  # the demo rule set may only carry the singles
            assert all(s.length == 1 for s in segments)

    def test_windows_never_span_branches(self, demo_rules):
        unit, blockmap, translator = make_translator(
            "fn_main:\n    cmp r4, #64\n    blt fn_main\n    add r0, r0, r1\n    bx lr",
            rules=demo_rules,
        )
        for block in blockmap.blocks:
            segments = translator._plan(blockmap.instructions(block), block)
            total = sum(s.length for s in segments)
            assert total == block.size


class TestFlagAnalyses:
    def analyses(self, text):
        insns = strip(arm(text))
        defs = [ARM.defn(i) for i in insns]
        unit, blockmap, translator = make_translator("fn_main:\n    bx lr")
        return translator, insns, defs

    def test_window_set_flags(self):
        translator, insns, defs = self.analyses("mov r0, #1\nadds r1, r0, r0")
        segment = _Segment(0, 2)
        assert translator._window_set_flags(segment, defs) == frozenset("NZCV")

    def test_entry_read_flags(self):
        translator, insns, defs = self.analyses("bne .L")
        segment = _Segment(0, 1)
        assert translator._entry_read_flags(segment, defs) == frozenset({"Z"})

    def test_entry_reads_exclude_internally_set(self):
        translator, insns, defs = self.analyses("cmp r0, r1\nbne .L")
        segment = _Segment(0, 2)
        assert translator._entry_read_flags(segment, defs) == frozenset()

    def test_carry_user_entry_read(self):
        translator, insns, defs = self.analyses("adc r0, r1, r2")
        segment = _Segment(0, 1)
        assert translator._entry_read_flags(segment, defs) == frozenset({"C"})


class TestPcRewrite:
    def test_rewrite_when_capable(self):
        unit, blockmap, translator = make_translator(
            "fn_main:\n    bx lr", TranslationConfig("t", pc_constraint=True)
        )
        window = strip(arm("add r0, pc, #8"))
        lookup, pc_value = translator._pc_rewrite(window, abs_index=5)
        assert pc_value == 5 * 4 + 8
        assert all(
            getattr(op, "name", "") != "pc" for op in lookup[0].operands
        )

    def test_no_rewrite_without_capability(self):
        unit, blockmap, translator = make_translator("fn_main:\n    bx lr")
        window = strip(arm("add r0, pc, #8"))
        lookup, _ = translator._pc_rewrite(window, abs_index=5)
        assert lookup is None

    def test_plain_window_passes_through(self):
        unit, blockmap, translator = make_translator("fn_main:\n    bx lr")
        window = strip(arm("add r0, r1, #8"))
        lookup, pc_value = translator._pc_rewrite(window, abs_index=5)
        assert lookup == window and pc_value is None
