"""ASCII bar/series rendering for the figure experiments.

The paper's figures are bar charts (per-benchmark series) and one line
chart (fig. 16).  ``render_chart`` draws an :class:`ExperimentResult` as
horizontal grouped bars in plain text, so ``repro run fig12 --chart`` gives
an at-a-glance visual without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.report import ExperimentResult

_FULL = "█"
_TICKS = (" ", "▏", "▎", "▍", "▌", "▋", "▊", "▉")
_SERIES_MARKS = "▌▒░█▚▞"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    cells = max(0.0, value) / scale * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    bar = _FULL * whole
    if frac and whole < width:
        bar += _TICKS[frac]
    return bar


def render_chart(result: ExperimentResult, width: int = 48) -> str:
    """Render a result as horizontal grouped bars (one group per row)."""
    numeric_columns = [
        i
        for i in range(1, len(result.headers))
        if all(isinstance(row[i], (int, float)) for row in result.rows)
    ]
    if not numeric_columns:
        return result.format()

    peak = max(
        float(row[i]) for row in result.rows for i in numeric_columns
    )
    label_width = max(len(str(row[0])) for row in result.rows)
    series_width = max(len(result.headers[i]) for i in numeric_columns)

    lines: List[str] = [result.title, "-" * len(result.title)]
    for row in result.rows:
        lines.append(str(row[0]))
        for slot, i in enumerate(numeric_columns):
            value = float(row[i])
            mark = _SERIES_MARKS[slot % len(_SERIES_MARKS)]
            bar = _bar(value, peak, width).replace(_FULL, mark)
            lines.append(
                f"  {result.headers[i]:>{series_width}s} |{bar:<{width}s}| "
                f"{value:.2f}"
            )
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[float],
    series: dict,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render named y-series over shared x values as a dot plot (fig. 16)."""
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for index, (name, values) in enumerate(series.items()):
        mark = str(index + 1)
        marks[name] = mark
        for x_index, value in enumerate(values):
            col = int(x_index / max(1, len(xs) - 1) * (width - 1))
            row = height - 1 - int((value - lo) / span * (height - 1))
            grid[row][col] = mark
    lines = [title, "-" * len(title)]
    for row_index, row in enumerate(grid):
        level = hi - span * row_index / (height - 1)
        lines.append(f"{level:7.1f} |" + "".join(row))
    lines.append(" " * 9 + "".join("^" if i in
                 {int(k / max(1, len(xs) - 1) * (width - 1)) for k in range(len(xs))}
                 else " " for i in range(width)))
    lines.append(" " * 9 + f"x: {', '.join(str(x) for x in xs)}")
    for name, mark in marks.items():
        lines.append(f"  [{mark}] {name}")
    return "\n".join(lines)
