"""The asyncio translation server (``repro serve``).

One process loads a frozen :class:`~repro.param.engine.SystemSetup` (rules
learned + derived once) and serves ``translate`` / ``run`` / ``coverage`` /
``stats`` requests from many concurrent TCP clients over the
newline-delimited JSON protocol of :mod:`repro.service.protocol`.

Structure::

    client conns --> per-connection reader --> bounded queue --> N workers
                      (malformed-request         |                 |
                       isolation,                backpressure      asyncio
                       drain refusal)            rejection         handlers

* **Robustness** — a malformed line gets an error response and the
  connection lives on; an oversized line closes only that connection; a
  full queue answers ``backpressure`` immediately instead of buffering
  without bound; every request runs under a timeout; SIGTERM/SIGINT drain
  queued requests before exiting 0.
* **CPU isolation** — translation, compilation, and guest execution run in
  the default thread executor, so the event loop keeps accepting and
  answering while blocks compile.
* **Sharing** — all requests share one single-flight code cache
  (:mod:`repro.service.codecache`) and per-stage sharded rule indices
  (:mod:`repro.service.shards`): a hot program is translated and compiled
  once, ever, per (program, stage).
* **Hot reload** — the serving ruleset lives in an immutable
  :class:`_Generation` (identity + per-stage configs/indices + unit memo).
  Every request reads ``self._generation`` exactly once and carries that
  object through translate/compile/execute, so the ``reload`` admin op (or
  the ``--watch-interval`` store watcher) can build a new generation's
  index in the background and swap the attribute atomically: in-flight
  requests finish on the generation they started with (natural drain — the
  old generation is garbage-collected when its last request completes),
  new requests see the new version, and no request ever mixes rules from
  two versions.  Code-cache keys include the ruleset digest, so a swapped
  version can never be served stale compiled blocks.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cache import BoundedMemo, stats_payload
from repro.dbt.compiler import (
    compile_block,
    compile_block_source,
    generate_block_source,
)
from repro.dbt.engine import CodeCacheEntry, DBTEngine
from repro.dbt.executor import BlockKernel
from repro.dbt.translator import BlockTranslator, TranslationConfig
from repro.errors import ExecutionError, ReproError
from repro.param.engine import STAGES, SystemSetup
from repro.service import protocol
from repro.service.codecache import SingleFlightCodeCache
from repro.service.diskcode import CLAIMED, DiskCodeCache
from repro.service.protocol import ProtocolError
from repro.service.shards import DEFAULT_SHARDS, ShardedRuleIndex, Tier0Front
from repro.service.stats import EndpointStats


@dataclass
class ServiceConfig:
    """Tunables for one server process (one pool worker, or a solo server)."""

    host: str = "127.0.0.1"
    port: int = 9477
    #: default translation stage for requests that don't name one.
    stage: str = "condition"
    #: "quick" trains on the two-benchmark difftest training set (seconds of
    #: warm-up); "full" uses the full-suite rule set (minutes, best rules).
    training: str = "quick"
    shards: int = DEFAULT_SHARDS
    cache_blocks: int = 4096
    #: queued (admitted, not yet running) requests before backpressure.
    max_queue: int = 64
    #: concurrent asyncio request handlers per process (``--handlers``; the
    #: OS-process fan-out is :class:`repro.service.pool.PoolConfig.workers`).
    handlers: int = 8
    request_timeout: float = 30.0
    #: per-run guest block execution bound (runaway protection).
    max_blocks: int = 500_000
    chaining: bool = True
    #: execution backend for ``run``/``coverage`` requests ("jit" or
    #: "trace").  The trace tier forms superblocks within one request's
    #: run; with a disk code cache their generated source is shared
    #: cross-process, content-addressed like blocks.
    backend: str = "jit"
    #: cross-process shared code cache directory; None disables the disk
    #: layer (generated source stays in-process only).  The pre-fork pool
    #: always sets this so sibling workers share compiled blocks.
    disk_code_dir: Optional[str] = None
    #: path to a distilled tier-0 artifact (``repro distill``); None serves
    #: every lookup from the sharded full index.  The artifact fronts only
    #: the stage it was distilled for and is resolved onto the serving rule
    #: set at load — a stale artifact degrades to the full index instead of
    #: changing any response bytes.
    tier0_path: Optional[str] = None
    #: enable the test-only ``_sleep`` op (deterministic backpressure /
    #: timeout exercises); never enable on a real deployment.
    debug_ops: bool = False
    #: root of a :class:`repro.pipeline.store.RulesetStore`; when set and
    #: non-empty the server boots from its ``latest`` version instead of
    #: training at startup, and the ``reload`` op / watcher can hot-swap to
    #: newly published versions.  None keeps the legacy train-at-boot path.
    ruleset_store: Optional[str] = None
    #: seconds between ``latest``-pointer polls; 0 disables the watcher
    #: (reloads then happen only through the ``reload`` admin op).
    watch_interval: float = 0.0


@dataclass
class PoolContext:
    """A pool worker's identity, injected by :mod:`repro.service.pool`."""

    directory: str
    worker_index: int
    workers: int


def resolve_setup(config: ServiceConfig) -> SystemSetup:
    """The frozen SystemSetup for *config*'s training corpus.

    Factored out of :class:`TranslationService` so the pre-fork pool parent
    can build it once, before forking — workers then share it copy-on-write
    instead of re-learning rules N times.
    """
    if config.training == "full":
        from repro.experiments.common import full_suite_setup

        return full_suite_setup()
    from repro.difftest.oracle import training_setup

    return training_setup()


def resolve_ruleset(config: ServiceConfig, setup: Optional[SystemSetup] = None):
    """The :class:`ServingRuleset` this server should boot with.

    A configured store with a published version wins (no training at boot —
    the configs are reconstructed from the stored body); an empty or absent
    store falls back to the legacy train-at-boot setup, wrapped with a
    ``builtin:`` identity so stats/bench meta always carry a version.  Like
    :func:`resolve_setup`, this runs in the pool parent pre-fork so workers
    share the result copy-on-write.
    """
    if config.ruleset_store:
        from repro.pipeline.manifest import serving_ruleset_from_body
        from repro.pipeline.store import RulesetStore

        store = RulesetStore(config.ruleset_store)
        latest = store.latest_version()
        if latest is not None:
            loaded = store.load_version(latest)
            return serving_ruleset_from_body(
                loaded["body"], version=latest, digest=loaded["body_sha256"]
            )
    from repro.pipeline.manifest import serving_ruleset_from_setup

    if setup is None:
        setup = resolve_setup(config)
    return serving_ruleset_from_setup(setup, training=config.training)


class _Generation:
    """One immutable serving generation: ruleset identity + lazy indices.

    All per-ruleset state lives here — stage configs wrapped in sharded
    indices, and the unit-context memo (contexts cache per-stage
    translators, which bind configs, so they must never outlive their
    generation).  Requests capture one generation at dispatch and use only
    it; the service swaps the current-generation attribute atomically.
    """

    __slots__ = ("ruleset", "shards", "tier0_payload", "units", "_configs", "_indices", "_lock")

    def __init__(self, ruleset, shards: int, tier0_payload: Optional[Dict[str, Any]]) -> None:
        self.ruleset = ruleset
        self.shards = shards
        self.tier0_payload = tier0_payload
        self.units = BoundedMemo(maxsize=256, register=False)
        self._configs: Dict[str, TranslationConfig] = {}
        self._indices: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def config_for(self, stage: str) -> TranslationConfig:
        """The stage's TranslationConfig, rules wrapped in a sharded index."""
        with self._lock:
            cfg = self._configs.get(stage)
            if cfg is None:
                base = self.ruleset.config_for(stage)
                if base.rules is None:  # the rule-less qemu baseline stage
                    cfg = base
                else:
                    index = self._build_index(stage, base.rules)
                    self._indices[stage] = index
                    cfg = dataclasses.replace(base, rules=index)
                self._configs[stage] = cfg
            return cfg

    def _build_index(self, stage: str, rules):
        """Sharded index for a stage, fronted by tier-0 when it applies.

        The tier-0 artifact names the stage it was distilled for; other
        stages keep the plain sharded index.  After a hot swap the artifact
        re-resolves onto the new rules — rules it no longer matches are
        dropped (``stale`` flagged), so a stale artifact degrades to the
        full index instead of changing any response bytes.
        """
        payload = self.tier0_payload
        if payload is None or payload.get("stage") != stage:
            return ShardedRuleIndex(rules, self.shards)
        from repro.learning.distill import resolve_artifact

        resolved = resolve_artifact(payload, rules)
        return Tier0Front(
            resolved.rules,
            rules,
            self.shards,
            coverage=resolved.coverage,
            digest=resolved.digest,
            dropped=resolved.dropped,
            stale=resolved.stale,
        )

    def indices(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._indices)


class _UnitContext:
    """Per-program serving context: unit + block map + per-stage translators."""

    __slots__ = ("unit", "digest", "blockmap", "_translators", "_lock")

    def __init__(self, unit, digest: str) -> None:
        from repro.dbt.block import BlockMap

        self.unit = unit
        self.digest = digest
        self.blockmap = BlockMap(unit)
        self._translators: Dict[str, BlockTranslator] = {}
        self._lock = threading.Lock()

    def translator_for(self, stage: str, config: TranslationConfig) -> BlockTranslator:
        with self._lock:
            translator = self._translators.get(stage)
            if translator is None:
                translator = BlockTranslator(self.unit, self.blockmap, config)
                self._translators[stage] = translator
            return translator


class TranslationService:
    """Request handlers over one serving ruleset generation (transport-agnostic).

    ``setup`` keeps the legacy embedding path (tests pass a pre-built
    SystemSetup); ``ruleset`` injects a pre-resolved
    :class:`ServingRuleset` (the pool parent resolves once pre-fork).
    """

    def __init__(
        self,
        config: ServiceConfig,
        setup: Optional[SystemSetup] = None,
        ruleset=None,
    ) -> None:
        if config.stage not in STAGES:
            raise ValueError(f"unknown stage {config.stage!r}")
        if config.backend not in ("jit", "trace"):
            raise ValueError(
                f"unknown service backend {config.backend!r}; "
                "expected 'jit' or 'trace'"
            )
        self.config = config
        if ruleset is None:
            ruleset = resolve_ruleset(config, setup=setup)
        self._tier0_payload: Optional[Dict[str, Any]] = None
        if config.tier0_path:
            from repro.learning.distill import load_artifact

            self._tier0_payload = load_artifact(config.tier0_path)
        self._generation = _Generation(
            ruleset, config.shards, self._tier0_payload
        )
        self.ruleset_store = None
        if config.ruleset_store:
            from repro.pipeline.store import RulesetStore

            self.ruleset_store = RulesetStore(config.ruleset_store)
        self._reload_lock = threading.Lock()
        self.ruleset_swaps = 0
        self._swap_history: list = [ruleset.version]
        self.disk_code: Optional[DiskCodeCache] = (
            DiskCodeCache(config.disk_code_dir)
            if config.disk_code_dir
            else None
        )
        self.code_cache = SingleFlightCodeCache(
            config.cache_blocks, disk=self.disk_code
        )
        self.endpoints = EndpointStats()
        #: set by :mod:`repro.service.pool` on workers; solo servers keep None.
        self.pool_context: Optional[PoolContext] = None
        self._counter_lock = threading.Lock()
        self.requests_total = 0
        self.error_counts: Dict[str, int] = {}
        self.started_monotonic = time.monotonic()
        #: transport-level stats provider, installed by :class:`ServiceServer`.
        self.server_stats: Optional[Callable[[], Dict[str, Any]]] = None
        self._handlers = {
            "ping": self._op_ping,
            "translate": self._op_translate,
            "run": self._op_run,
            "coverage": self._op_coverage,
            "stats": self._op_stats,
            "reload": self._op_reload,
            "_sleep": self._op_sleep,
        }

    # -- configuration and program resolution --------------------------------

    def uptime(self) -> float:
        return time.monotonic() - self.started_monotonic

    @property
    def ruleset(self):
        """The currently served :class:`ServingRuleset`."""
        return self._generation.ruleset

    def ruleset_version(self) -> str:
        return self._generation.ruleset.version

    def config_for(self, stage: str) -> TranslationConfig:
        """Current generation's config for *stage* (embedders, tests)."""
        return self._generation.config_for(stage)

    # -- hot reload ------------------------------------------------------------

    def reload_ruleset(self, version: Optional[str] = None) -> Dict[str, Any]:
        """Swap to a store version (default: ``latest``) without a restart.

        Blocking (call from an executor thread).  Builds the new
        generation's default-stage sharded index + tier-0 front *before*
        the swap, so the first request on the new version pays no index
        build; the attribute assignment is atomic and in-flight requests
        drain on the generation they captured.  Raises
        :class:`~repro.errors.ReproError` on a missing/corrupt version —
        the serving generation is untouched on any failure.
        """
        if self.ruleset_store is None:
            raise ReproError("no ruleset store configured (--ruleset-store)")
        with self._reload_lock:
            target = version or self.ruleset_store.latest_version()
            if target is None:
                raise ReproError("ruleset store has no published versions")
            current = self._generation.ruleset
            if target == current.version:
                return {
                    "swapped": False,
                    "version": current.version,
                    "previous": current.version,
                    "digest": current.digest,
                    "swaps": self.ruleset_swaps,
                }
            from repro.pipeline.manifest import serving_ruleset_from_body

            loaded = self.ruleset_store.load_version(target)
            ruleset = serving_ruleset_from_body(
                loaded["body"], version=target, digest=loaded["body_sha256"]
            )
            generation = _Generation(ruleset, self.config.shards, self._tier0_payload)
            generation.config_for(self.config.stage)  # pre-build the hot index
            self._generation = generation  # atomic swap; old gen drains out
            self.ruleset_swaps += 1
            self._swap_history.append(target)
            return {
                "swapped": True,
                "version": target,
                "previous": current.version,
                "digest": ruleset.digest,
                "swaps": self.ruleset_swaps,
            }

    def _stage_of(self, obj: Dict[str, Any]) -> str:
        stage = obj.get("stage", self.config.stage)
        if not isinstance(stage, str) or stage not in STAGES:
            raise ProtocolError(
                "bad-request", f"unknown stage {stage!r}; expected one of {STAGES}"
            )
        return stage

    def _build_context(self, kind: str, value) -> _UnitContext:
        """Executor-side unit resolution (assembly / benchmark compile)."""
        if kind == "benchmark":
            from repro.workloads import compiled_benchmark

            unit = compiled_benchmark(value).guest
            digest = f"bench:{value}"
        else:
            from repro.difftest.oracle import InvalidProgram, assemble_program

            try:
                unit = assemble_program(list(value))
            except InvalidProgram as exc:
                raise ProtocolError("bad-program", str(exc)) from exc
            digest = "prog:" + hashlib.sha256(
                "\n".join(value).encode("utf-8")
            ).hexdigest()
        return _UnitContext(unit, digest)

    async def _context(self, gen: _Generation, obj: Dict[str, Any]) -> _UnitContext:
        benchmark = obj.get("benchmark")
        program = obj.get("program")
        if (benchmark is None) == (program is None):
            raise ProtocolError(
                "bad-request", "exactly one of 'benchmark' or 'program' required"
            )
        if benchmark is not None:
            from repro.workloads import BENCHMARK_NAMES

            if benchmark not in BENCHMARK_NAMES:
                raise ProtocolError("bad-program", f"unknown benchmark {benchmark!r}")
            key: Tuple = ("benchmark", benchmark)
            kind, value = "benchmark", benchmark
        else:
            if not (
                isinstance(program, list)
                and program
                and all(isinstance(line, str) for line in program)
            ):
                raise ProtocolError(
                    "bad-request", "'program' must be a non-empty list of strings"
                )
            key = ("program", "\n".join(program))
            kind, value = "program", tuple(program)
        cached = gen.units.get(key, None)
        if cached is not None:
            return cached
        # Concurrent first requests may build the same context twice; the
        # memo is last-wins and contexts are interchangeable, so that is
        # only duplicated work — block compilation stays single-flight.
        loop = asyncio.get_running_loop()
        ctx = await loop.run_in_executor(None, self._build_context, kind, value)
        gen.units.put(key, ctx)
        return ctx

    # -- block compilation ----------------------------------------------------

    def _training_key(self, gen: _Generation) -> str:
        """Disk-code key component identifying corpus *and* ruleset version.

        The ruleset digest is mixed in so blocks compiled under one version
        can never be served after a hot swap to another — across processes
        too (two pool workers momentarily on different versions during a
        rolling reload must not share entries).
        """
        return f"{self.config.training}@{gen.ruleset.digest[:16]}"

    def _compile_entry(
        self, gen: _Generation, ctx: _UnitContext, stage: str, start: int
    ) -> CodeCacheEntry:
        config = gen.config_for(stage)
        translator = ctx.translator_for(stage, config)
        tb = translator.translate(ctx.blockmap.block_at(start))
        kernel = BlockKernel(tb)
        if self.disk_code is None:
            compiled = compile_block(tb, kernel.defs)
        else:
            compiled = self._compile_via_disk(gen, ctx, stage, start, tb, kernel)
        return CodeCacheEntry(tb=tb, kernel=kernel, compiled=compiled)

    def _compile_via_disk(self, gen, ctx, stage: str, start: int, tb, kernel):
        """Compile through the cross-process disk code cache.

        Warm path: hash-verified cached source from any pool worker is
        re-instantiated with a local ``compile()`` — no codegen, no
        compile-listener fire.  Cold path: claim-or-wait ensures exactly
        one worker generates and publishes; a wait timeout degrades to
        duplicated local codegen (never a stall, never an error).  Runs in
        an executor thread, so the blocking file IO here is fine.
        """
        disk = self.disk_code
        digest = disk.key(ctx.digest, stage, start, self._training_key(gen))
        source = disk.load(digest)
        if source is None:
            outcome, cached = disk.claim_or_wait(digest)
            if cached is not None:
                source = cached
            else:
                try:
                    source = generate_block_source(tb, kernel.defs)
                    disk._incr("generations")
                    if outcome == CLAIMED:
                        disk.store(digest, source)
                finally:
                    if outcome == CLAIMED:
                        disk.release(digest)
        return compile_block_source(tb, source, kernel.defs)

    async def _ensure_blocks(
        self, gen: _Generation, ctx: _UnitContext, stage: str
    ) -> Dict[int, CodeCacheEntry]:
        """All of the program's blocks translated+compiled (single-flight).

        The in-memory key carries the ruleset digest too: after a swap the
        new generation's blocks are distinct entries, and the old entries
        age out of the LRU instead of ever answering a new-version request.
        """
        entries: Dict[int, CodeCacheEntry] = {}
        for block in ctx.blockmap.blocks:
            key = (gen.ruleset.digest, ctx.digest, stage, block.start)
            entries[block.start] = await self.code_cache.get_or_compile(
                key, partial(self._compile_entry, gen, ctx, stage, block.start)
            )
        return entries

    def _execute(
        self,
        gen: _Generation,
        ctx: _UnitContext,
        stage: str,
        entries: Dict[int, CodeCacheEntry],
    ):
        """Executor-side guest run over pre-seeded shared code-cache entries."""
        backend = self.config.backend
        engine_kwargs = {}
        if backend == "trace" and self.disk_code is not None:
            from repro.service.diskcode import TraceSourceDiskAdapter

            engine_kwargs["trace_source_cache"] = TraceSourceDiskAdapter(
                self.disk_code, ctx.digest, stage, self._training_key(gen)
            )
        engine = DBTEngine(
            ctx.unit,
            gen.config_for(stage),
            chaining=self.config.chaining,
            backend=backend,
            code_cache=dict(entries),
            **engine_kwargs,
        )
        try:
            return engine.run(max_blocks=self.config.max_blocks)
        except ExecutionError as exc:
            raise ProtocolError("bad-program", f"execution failed: {exc}") from exc
        except ReproError as exc:
            raise ProtocolError("bad-program", f"translation failed: {exc}") from exc

    async def _run(self, obj: Dict[str, Any]):
        gen = self._generation  # one read: the whole request stays on it
        stage = self._stage_of(obj)
        ctx = await self._context(gen, obj)
        entries = await self._ensure_blocks(gen, ctx, stage)
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, self._execute, gen, ctx, stage, entries
        )
        return ctx, stage, result

    # -- operations -----------------------------------------------------------

    async def _op_ping(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "pong": True,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_seconds": round(self.uptime(), 3),
        }

    async def _op_translate(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        gen = self._generation
        stage = self._stage_of(obj)
        ctx = await self._context(gen, obj)
        entries = await self._ensure_blocks(gen, ctx, stage)
        guest = sum(entry.tb.guest_count for entry in entries.values())
        covered = sum(entry.tb.covered_count for entry in entries.values())
        return {
            "unit": ctx.digest,
            "stage": stage,
            "blocks": len(entries),
            "guest_instructions": guest,
            "host_instructions": sum(
                len(entry.tb.host) for entry in entries.values()
            ),
            "static_coverage": round(covered / guest, 4) if guest else 0.0,
        }

    async def _op_run(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        ctx, stage, result = await self._run(obj)
        metrics = result.metrics
        return {
            "unit": ctx.digest,
            "stage": stage,
            "snapshot": result.architectural_snapshot(),
            "metrics": {
                "guest_dynamic": metrics.guest_dynamic,
                "coverage": round(metrics.coverage, 6),
                "total_ratio": round(metrics.total_ratio, 4),
                "block_executions": metrics.block_executions,
                "chained_executions": metrics.chained_executions,
                "chain_rate": round(metrics.chain_rate, 4),
                "blocks_translated": metrics.blocks_translated,
                "cost": round(metrics.cost(), 1),
            },
        }

    async def _op_coverage(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        ctx, stage, result = await self._run(obj)
        metrics = result.metrics
        return {
            "unit": ctx.digest,
            "stage": stage,
            "coverage": round(metrics.coverage, 6),
            "total_ratio": round(metrics.total_ratio, 4),
            "ratios": {
                category: round(metrics.ratio(category), 4)
                for category in ("rule", "tcg", "data", "control")
            },
            "rules_hit": len(metrics.rule_hits),
            "rule_origins": {
                origin: count
                for origin, count in sorted(metrics.rule_origin_counts().items())
            },
        }

    async def _op_stats(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        with self._counter_lock:
            errors = dict(self.error_counts)
            total = self.requests_total
        gen = self._generation
        indices = gen.indices()
        payload: Dict[str, Any] = {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": round(self.uptime(), 3),
            "stage_default": self.config.stage,
            "training": self.config.training,
            "backend": self.config.backend,
            "ruleset_version": gen.ruleset.version,
            "ruleset": {
                **gen.ruleset.identity(),
                "swaps": self.ruleset_swaps,
                "history": list(self._swap_history[-5:]),
            },
            "requests": {"total": total, "errors_by_code": errors},
            "endpoints": self.endpoints.summary(),
            "code_cache": self.code_cache.stats(),
            "rule_index": {
                stage: index.stats() for stage, index in indices.items()
            },
            "units_cached": len(gen.units),
            "caches": stats_payload(include_disk=False),
        }
        if self.server_stats is not None:
            payload["server"] = self.server_stats()
        if self.pool_context is not None:
            from repro.service.pool import aggregate_pool_stats, publish_worker_stats

            loop = asyncio.get_running_loop()

            def pool_section() -> Dict[str, Any]:
                # Flush our own snapshot first so the aggregate the client
                # reads always includes the worker answering it.
                publish_worker_stats(self, self.pool_context)
                return aggregate_pool_stats(self.pool_context.directory)

            payload["worker"] = {
                "index": self.pool_context.worker_index,
                "pid": os.getpid(),
            }
            payload["pool"] = await loop.run_in_executor(None, pool_section)
        return payload

    async def _op_reload(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Admin op: hot-swap to a store version (default ``latest``).

        The index build runs in the executor, so serving (and the event
        loop) never blocks on it; failures leave the current generation in
        place and report ``bad-request``.
        """
        version = obj.get("version")
        if version is not None and not isinstance(version, str):
            raise ProtocolError("bad-request", "'version' must be a string")
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, self.reload_ruleset, version)
        except ReproError as exc:
            raise ProtocolError("bad-request", f"reload failed: {exc}") from exc

    async def _op_sleep(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        seconds = float(obj.get("seconds", 0.1))
        await asyncio.sleep(seconds)
        return {"slept": seconds}

    # -- dispatch -------------------------------------------------------------

    async def handle_request(
        self, obj: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """One request object in, one response object out — never raises.

        Applies the per-request timeout, converts every failure mode into a
        protocol error response (one bad request can never kill the serving
        loop), and records per-endpoint latency.
        """
        started = time.perf_counter()
        ident: Optional[Any] = protocol.request_id(obj)
        op = "<malformed>"
        try:
            ident, op = protocol.parse_request(obj)
            handler = self._handlers.get(op)
            if handler is None or (op == "_sleep" and not self.config.debug_ops):
                raise ProtocolError(
                    "unknown-op", f"unknown op {op!r}; expected one of {protocol.OPS}"
                )
            if timeout is not None:
                result = await asyncio.wait_for(handler(obj), timeout)
            else:
                result = await handler(obj)
            response = protocol.ok_response(ident, result)
        except ProtocolError as exc:
            response = protocol.error_response(ident, exc.code, exc.message)
        except asyncio.TimeoutError:
            response = protocol.error_response(
                ident, "timeout", f"request exceeded {timeout}s"
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # isolation: no request kills the loop
            response = protocol.error_response(
                ident, "internal", f"{type(exc).__name__}: {exc}"
            )
        ok = bool(response.get("ok"))
        with self._counter_lock:
            self.requests_total += 1
            if not ok:
                code = response["error"]["code"]
                self.error_counts[code] = self.error_counts.get(code, 0) + 1
        self.endpoints.observe(op, time.perf_counter() - started, ok)
        return response


class ServiceServer:
    """TCP transport: bounded queue, handler tasks, graceful drain."""

    def __init__(self, service: TranslationService, config: ServiceConfig) -> None:
        self.service = service
        self.config = config
        self._queue: "asyncio.Queue" = asyncio.Queue(maxsize=config.max_queue)
        self._handlers: list = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._client_tasks: set = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._active = 0
        self.backpressure_rejections = 0
        self.port: Optional[int] = None
        self._watcher: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self, sock=None) -> None:
        """Start listening — on host:port, or on an inherited *sock*.

        Pool workers pass the listener the parent bound before forking, so
        every worker ``accept()``s on the same socket and the kernel
        balances connections across the pool.
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_client, sock=sock, limit=protocol.MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._on_client,
                self.config.host,
                self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._handlers = [
            asyncio.create_task(self._handler())
            for _ in range(self.config.handlers)
        ]
        self.service.server_stats = self.stats
        if self.service.ruleset_store is not None and self.config.watch_interval > 0:
            self._watcher = asyncio.create_task(self._watch_ruleset())

    async def _watch_ruleset(self) -> None:
        """Poll the store's ``latest`` pointer and hot-swap when it moves.

        Store reads and the swap's index build both run in the executor; a
        broken store read (mid-GC, partial copy, NFS hiccup) is retried
        next tick — the watcher must never take serving down.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.watch_interval)
            try:
                latest = await loop.run_in_executor(
                    None, self.service.ruleset_store.latest_version
                )
                if latest is None or latest == self.service.ruleset_version():
                    continue
                result = await loop.run_in_executor(
                    None, self.service.reload_ruleset, latest
                )
                if result.get("swapped"):
                    print(
                        f"repro serve: ruleset reloaded "
                        f"{result['previous']} -> {result['version']} "
                        f"(pid={os.getpid()})",
                        flush=True,
                    )
            except asyncio.CancelledError:
                raise
            except Exception:
                continue

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT, on every platform.

        ``loop.add_signal_handler`` is the right tool where it exists, but
        it raises ``NotImplementedError`` on some platforms/loops — and the
        old code suppressed that and silently installed *nothing*, so
        SIGTERM hard-killed the process instead of draining (exit 143, no
        "drained cleanly").  The fallback installs a plain ``signal.signal``
        handler that trampolines onto the loop thread-safely, so the pool
        parent's SIGTERM fan-out gets the same graceful drain everywhere.
        """
        loop = asyncio.get_running_loop()

        def begin_drain() -> None:
            asyncio.ensure_future(self.drain())

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, begin_drain)
            except (NotImplementedError, ValueError):
                try:
                    signal.signal(
                        signum,
                        lambda *_: loop.call_soon_threadsafe(begin_drain),
                    )
                except (ValueError, OSError):
                    pass  # non-main thread or unsupported signal

    async def drain(self) -> None:
        """Stop accepting, answer everything queued, then shut down."""
        if self._draining:
            return
        self._draining = True
        if self._watcher is not None:
            self._watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watcher
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.join()
        for handler in self._handlers:
            handler.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        # Let connection handlers observe the close and exit on their own
        # (cancelling a handler mid-readline trips asyncio's stream-callback
        # exception retrieval and logs spurious errors on some versions).
        if self._client_tasks:
            await asyncio.gather(*list(self._client_tasks), return_exceptions=True)
        self._drained.set()

    async def wait_closed(self) -> None:
        await self._drained.wait()

    async def aclose(self) -> None:
        await self.drain()

    # -- connection handling --------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: no way to resync mid-line, so answer
                    # and close this connection only.
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None,
                            "bad-request",
                            f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not raw:
                    break  # client closed
                if not raw.strip():
                    continue
                try:
                    obj = protocol.decode(raw)
                except ProtocolError as exc:
                    # Malformed-request isolation: respond, keep serving
                    # this connection and everyone else.
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(None, exc.code, exc.message),
                    )
                    continue
                ident = protocol.request_id(obj)
                if self._draining:
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            ident, "shutting-down", "server is draining"
                        ),
                    )
                    continue
                try:
                    self._queue.put_nowait((obj, writer, write_lock))
                except asyncio.QueueFull:
                    self.backpressure_rejections += 1
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            ident,
                            "backpressure",
                            f"request queue full ({self.config.max_queue}); retry",
                        ),
                    )
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._client_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handler(self) -> None:
        while True:
            obj, writer, write_lock = await self._queue.get()
            self._active += 1
            try:
                response = await self.service.handle_request(
                    obj, timeout=self.config.request_timeout
                )
                await self._send(writer, write_lock, response)
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # connection torn down mid-response; nothing to tell
            finally:
                self._active -= 1
                self._queue.task_done()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: Dict[str, Any],
    ) -> None:
        data = protocol.encode(message)
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; their loss

    # -- observability --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "queue_depth": self._queue.qsize(),
            "queue_max": self.config.max_queue,
            "handlers": self.config.handlers,
            "active": self._active,
            "connections": len(self._connections),
            "backpressure_rejections": self.backpressure_rejections,
            "draining": self._draining,
        }


async def start_server(
    config: ServiceConfig,
    setup: Optional[SystemSetup] = None,
    sock=None,
    pool_context: Optional[PoolContext] = None,
    ruleset=None,
) -> ServiceServer:
    """Build a service + transport and start listening (tests, embedders)."""
    service = TranslationService(config, setup=setup, ruleset=ruleset)
    service.pool_context = pool_context
    server = ServiceServer(service, config)
    await server.start(sock=sock)
    return server


async def _amain(config: ServiceConfig) -> int:
    server = await start_server(config)
    server.install_signal_handlers()
    print(
        f"repro serve: listening on {config.host}:{server.port} "
        f"(stage={config.stage}, training={config.training}, "
        f"ruleset={server.service.ruleset_version()}, "
        f"handlers={config.handlers}, pid={os.getpid()})",
        flush=True,
    )
    await server.wait_closed()
    print("repro serve: drained cleanly", flush=True)
    return 0


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:
        return 0
