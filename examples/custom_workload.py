#!/usr/bin/env python
"""Bring your own workload: write a guest program, translate it, inspect it.

Shows the downstream-user workflow: author a program in the mini language
(or hand-written guest assembly), reuse the rule set learned from the whole
synthetic SPEC suite, run the DBT, and disassemble one translated block to
see rules, flag delegation, data-transfer and stub code side by side.

Run:  python examples/custom_workload.py
"""

from repro.dbt import BlockMap, BlockTranslator, DBTEngine, check_against_reference
from repro.experiments.common import rules_full_suite
from repro.isa.x86.assembler import format_instruction
from repro.lang import compile_pair
from repro.param import build_setup

SOURCE = """
global histogram[1024];
global out[16];

func bucketize(seed, rounds) {
  var i, v, b, count;
  i = 0;
  v = seed;
loop:
  v = v * 1103515245;
  v = v + 12345;
  b = v >>> 24;
  b = b & 252;
  count = histogram[b];
  count = count + 1;
  histogram[b] = count;
  i = i + 1;
  if (i < rounds) goto loop;
  return v;
}

func main() {
  var r, peak, i, c;
  r = call bucketize(42, 300);
  peak = 0;
  i = 0;
scan:
  c = histogram[i];
  if (c <= peak) goto next;
  peak = c;
next:
  i = i + 4;
  if (i <u 1024) goto scan;
  out[0] = peak;
  return peak;
}
"""


def main() -> None:
    pair = compile_pair("histogram", SOURCE)

    # Reuse rules learned from the full synthetic SPEC suite.
    print("loading the full-suite rule set (learns on first use)...")
    setup = build_setup(rules_full_suite())
    config = setup.configs["condition"]
    print(f"  {len(config.rules)} rules available\n")

    engine = DBTEngine(pair.guest, config)
    result = engine.run()
    ok, message = check_against_reference(pair.guest, result)
    assert ok, message

    metrics = result.metrics
    out_addr = pair.guest.globals_layout["out"]
    print(f"peak bucket count : {result.state.load(out_addr)}")
    print(f"dynamic coverage  : {100 * metrics.coverage:.1f}%")
    print(f"host/guest ratio  : {metrics.total_ratio:.2f}")
    print(f"blocks translated : {metrics.blocks_translated}\n")

    # Disassemble the hot loop's translated block.
    blockmap = BlockMap(pair.guest)
    translator = BlockTranslator(pair.guest, blockmap, config)
    loop_index = pair.guest.labels["bucketize__loop"]
    block = blockmap.block_at(loop_index)
    translated = translator.translate(block)

    print("hot-loop block, guest side:")
    for offset, insn in enumerate(blockmap.instructions(block)):
        mark = "rule" if translated.covered[offset] else "emul"
        print(f"  [{mark}] {insn}")
    print("\ntranslated host code (category on the left):")
    for insn, category in zip(translated.host, translated.categories):
        print(f"  [{category:7s}] {format_instruction(insn)}")


if __name__ == "__main__":
    main()
