"""Worker fan-out: serial/parallel equivalence and the jobs plumbing."""

from __future__ import annotations

import os

import pytest

from repro import cache as cache_mod
from repro.cache import clear_all_caches
from repro.parallel import get_jobs, parallel_map, resolve_jobs, set_jobs


def _square(x: int) -> int:
    return x * x


@pytest.fixture(autouse=True)
def _serial_default():
    """Restore the process-wide job count after every test."""
    yield
    set_jobs(1)


class TestJobsPlumbing:
    def test_set_get(self):
        assert set_jobs(3) == 3
        assert get_jobs() == 3

    def test_zero_means_all_cpus(self):
        assert set_jobs(0) == (os.cpu_count() or 1)
        assert set_jobs(None) == (os.cpu_count() or 1)

    def test_negative_clamps_to_one(self):
        assert set_jobs(-5) == 1

    def test_resolve_override(self):
        set_jobs(1)
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestParallelMap:
    def test_serial_path(self):
        set_jobs(1)
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, list(range(20)), jobs=4) == [
            x * x for x in range(20)
        ]

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]


class TestCliJobsFlag:
    def test_every_experiment_subcommand_accepts_jobs(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["run", "table3", "--jobs", "2"],
            ["translate", "gcc", "-j", "2"],
            ["analyze", "gcc", "--jobs", "0"],
            ["rules", "--jobs", "4"],
            ["losses", "--jobs", "4"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "jobs")


class TestParallelSerialEquivalence:
    def test_derive_rules_identical(self, tmp_path):
        """Parallel and serial derivation produce identical rule sets."""
        from repro.experiments.common import benchmark_learning
        from repro.param.derive import derive_rules

        learned = benchmark_learning("gcc").rules
        previous_root = cache_mod.disk_cache().root
        try:
            cache_mod.reset_disk_cache(tmp_path / "serial")
            clear_all_caches()
            serial = derive_rules(learned, jobs=1)
            # Fresh caches for the parallel run so it really derives.
            cache_mod.reset_disk_cache(tmp_path / "parallel")
            clear_all_caches()
            parallel = derive_rules(learned, jobs=2)
        finally:
            cache_mod.reset_disk_cache(previous_root)
            clear_all_caches()
        assert [str(r) for r in parallel.derived] == [str(r) for r in serial.derived]
        assert parallel.counts == serial.counts
        assert parallel.target_stage == serial.target_stage
