"""Tests for the symbolic machine state and executor internals."""

import pytest

from repro.errors import VerificationError
from repro.isa.arm import ARM, assemble as arm
from repro.symir import BinOp, Const, Sym
from repro.verify.symstate import SymbolicState, run_symbolic


class TestSymbolGeneration:
    def test_lazy_register_symbols(self):
        state = SymbolicState("g")
        value = state.get_reg("r3")
        assert isinstance(value, Sym)
        assert "r3" in state.lazy_reads
        assert state.get_reg("r3") is value  # memoized

    def test_bound_registers_not_lazy(self):
        state = SymbolicState("g")
        state.bind_reg("r0", Sym("v0"))
        state.get_reg("r0")
        assert "r0" not in state.lazy_reads

    def test_written_registers_tracked(self):
        state = SymbolicState("g")
        state.set_reg("r1", Const(5))
        assert "r1" in state.written_regs

    def test_lazy_flag_symbols(self):
        state = SymbolicState("g")
        assert isinstance(state.get_flag("C"), Sym)


class TestStoreBuffer:
    def test_store_then_load_forwards(self):
        state = SymbolicState("g")
        addr = Sym("a")
        state.store(addr, Const(7))
        assert state.load(addr) == Const(7)

    def test_latest_store_wins(self):
        state = SymbolicState("g")
        addr = Sym("a")
        state.store(addr, Const(1))
        state.store(addr, Const(2))
        assert state.load(addr) == Const(2)

    def test_canonicalized_addresses_match(self):
        state = SymbolicState("g")
        a, b = Sym("a"), Sym("b")
        state.store(BinOp("add", a, b), Const(9))
        # Commuted address must forward (canonical ordering).
        assert state.load(BinOp("add", b, a)) == Const(9)

    def test_unresolvable_alias_rejected(self):
        state = SymbolicState("g")
        state.store(Sym("a"), Const(1))
        with pytest.raises(VerificationError):
            state.load(Sym("b"))  # may or may not alias the store

    def test_size_mismatch_rejected(self):
        state = SymbolicState("g")
        state.store(Sym("a"), Const(1), size=4)
        with pytest.raises(VerificationError):
            state.load(Sym("a"), size=1)


class TestLoadOracle:
    def test_shared_oracle_across_states(self):
        oracle = {}
        guest = SymbolicState("g", load_oracle=oracle)
        host = SymbolicState("h", load_oracle=oracle)
        shared_base = Sym("v0")
        guest.bind_reg("r1", shared_base)
        host.bind_reg("ecx", shared_base)
        assert guest.load(guest.get_reg("r1")) == host.load(host.get_reg("ecx"))

    def test_distinct_addresses_distinct_values(self):
        state = SymbolicState("g")
        assert state.load(Sym("a")) != state.load(Sym("b"))


class TestRunSymbolic:
    def test_straight_line(self):
        state = SymbolicState("g")
        state.bind_reg("r0", Sym("x"))
        state.bind_reg("r1", Sym("y"))
        run_symbolic(ARM, arm("add r2, r0, r1\nsub r2, r2, r0"), state)
        from repro.verify import exprs_equal

        assert exprs_equal(state.regs["r2"], Sym("y"))

    def test_branch_must_be_last(self):
        state = SymbolicState("g")
        with pytest.raises(VerificationError):
            run_symbolic(ARM, arm("bne .L\nmov r0, #1"), state)

    def test_abi_instructions_refuse(self):
        for text in ("push {r4}", "bl .L", "bx lr", "umlal r0, r1, r2, r3"):
            state = SymbolicState("g")
            with pytest.raises(VerificationError):
                run_symbolic(ARM, arm(text), state)

    def test_labels_skipped(self):
        state = SymbolicState("g")
        state.bind_reg("r0", Sym("x"))
        run_symbolic(ARM, arm(".L:\nmov r1, r0"), state)
        assert state.regs["r1"] == Sym("x")
