"""Bottom-up re-normalization of expression trees.

Expressions built through :mod:`repro.symir.build` are already mostly
canonical; :func:`simplify` re-runs a whole tree through the smart
constructors so that trees assembled from raw node constructors (e.g. loaded
from a rule store) reach the same form.
"""

from __future__ import annotations

from typing import Dict

from repro.symir import build
from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt


def simplify(expr: Expr, _cache: Dict[int, Expr] | None = None) -> Expr:
    """Return a canonically simplified version of *expr*."""
    if _cache is None:
        _cache = {}
    cached = _cache.get(id(expr))
    if cached is not None:
        return cached

    if isinstance(expr, (Const, Sym)):
        result: Expr = expr
    elif isinstance(expr, BinOp):
        result = build.binop(expr.op, simplify(expr.lhs, _cache), simplify(expr.rhs, _cache))
    elif isinstance(expr, UnOp):
        result = build.unop(expr.op, simplify(expr.operand, _cache))
    elif isinstance(expr, Ite):
        result = build.ite(
            simplify(expr.cond, _cache),
            simplify(expr.then, _cache),
            simplify(expr.orelse, _cache),
        )
    elif isinstance(expr, Extract):
        result = build.extract(simplify(expr.operand, _cache), expr.lo, expr.width)
    elif isinstance(expr, ZeroExt):
        result = build.zero_ext(simplify(expr.operand, _cache), expr.width)
    else:
        raise TypeError(f"unknown expression node: {expr!r}")

    _cache[id(expr)] = result
    return result
