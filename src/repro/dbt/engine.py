"""The DBT engine: code cache + dispatch loop + correctness checking.

``DBTEngine`` emulates a compiled guest program the way user-mode QEMU
does: discover the basic block at the current guest PC, translate it (once —
translations are cached), execute the translated host code, read the next
guest PC from the environment, repeat until control reaches the halt
address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dbt.block import BlockMap
from repro.dbt.executor import HostExecutor
from repro.dbt.guest_interp import GuestInterpreter
from repro.dbt.metrics import RunMetrics
from repro.dbt.runtime import (
    ENV_BASE,
    HALT_ADDRESS,
    env_flag_addr,
    env_reg_addr,
    is_env_address,
)
from repro.dbt.translator import BlockTranslator, TranslatedBlock, TranslationConfig
from repro.errors import ExecutionError
from repro.lang.program import STACK_BASE, CompiledUnit
from repro.semantics.state import ConcreteState

DEFAULT_MAX_BLOCKS = 2_000_000


@dataclass
class DBTRunResult:
    metrics: RunMetrics
    state: ConcreteState

    def guest_reg(self, name: str) -> int:
        return self.state.load(env_reg_addr(name))

    def guest_flag(self, name: str) -> int:
        return self.state.load(env_flag_addr(name))

    def guest_memory(self) -> Dict[int, int]:
        """Guest-visible memory (environment slots excluded)."""
        return {
            word_addr: value
            for word_addr, value in self.state.memory.items()
            if not is_env_address(word_addr * 4) and value
        }

    def architectural_snapshot(self) -> Dict[str, Dict]:
        """Final guest architectural state read out of the CPU environment.

        Normalized to the same shape as
        :meth:`repro.dbt.guest_interp.RunResult.architectural_snapshot` so a
        differential-testing oracle can diff the two directly.  Flags are
        included for diagnostics but may legitimately differ from the
        reference when they are dead at program exit (the translator never
        materializes dead guest flags).
        """
        regs = {f"r{i}": self.guest_reg(f"r{i}") for i in range(13)}
        regs["sp"] = self.guest_reg("sp")
        regs["lr"] = self.guest_reg("lr")
        return {
            "regs": regs,
            "flags": {f: self.guest_flag(f) for f in ("N", "Z", "C", "V")},
            "memory": self.guest_memory(),
        }


def _initial_state() -> ConcreteState:
    state = ConcreteState()
    state.reset_flags()
    for i in range(13):
        state.store(env_reg_addr(f"r{i}"), 0)
    state.store(env_reg_addr("sp"), STACK_BASE)
    state.store(env_reg_addr("lr"), HALT_ADDRESS)
    state.store(env_reg_addr("pc"), 0)
    for flag in ("N", "Z", "C", "V"):
        state.store(env_flag_addr(flag), 0)
    return state


class DBTEngine:
    """Dynamic binary translator for one guest binary + one configuration.

    ``chaining=True`` enables QEMU-style block chaining: once a control-flow
    edge between two translated blocks has been taken, its exit stub is
    patched to jump directly to the successor, skipping the dispatch loop.
    The paper treats chaining as a complementary optimization outside its
    scope (§V-B1); it is modelled here as an engine option so its effect can
    be measured (see ``benchmarks/test_bench_rules.py``).
    """

    def __init__(
        self,
        unit: CompiledUnit,
        config: TranslationConfig,
        chaining: bool = False,
    ) -> None:
        self.unit = unit
        self.config = config
        self.chaining = chaining
        self.blockmap = BlockMap(unit)
        self.translator = BlockTranslator(unit, self.blockmap, config)
        self.code_cache: Dict[int, TranslatedBlock] = {}
        self._chained_edges: set = set()

    def _translated(self, index: int, metrics: RunMetrics) -> TranslatedBlock:
        tb = self.code_cache.get(index)
        if tb is None:
            tb = self.translator.translate(self.blockmap.block_at(index))
            self.code_cache[index] = tb
            metrics.blocks_translated += 1
        return tb

    def run(
        self,
        entry: str = "fn_main",
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        state: Optional[ConcreteState] = None,
        on_block=None,
    ) -> DBTRunResult:
        """Run to completion.

        ``on_block(tb, state)`` — if given — is invoked after every block
        execution with the translated block and the live machine state: an
        execution-trace hook for debugging and tooling.
        """
        state = state or _initial_state()
        metrics = RunMetrics(name=self.config.name)
        executor = HostExecutor(state)
        entry_label = self.unit.func_labels.get(entry, entry)
        pc_index = self.unit.labels[entry_label]
        pc_addr_word = env_reg_addr("pc") // 4

        while True:
            if metrics.block_executions >= max_blocks:
                raise ExecutionError(f"exceeded {max_blocks} block executions")
            tb = self._translated(pc_index, metrics)
            executor.run_block(tb, metrics.host_counts)
            metrics.block_executions += 1
            metrics.guest_dynamic += tb.guest_count
            metrics.covered_dynamic += sum(tb.covered)
            for rule, length in tb.applied:
                metrics.rule_hits[rule] = metrics.rule_hits.get(rule, 0) + length
            if on_block is not None:
                on_block(tb, state)
            next_addr = state.memory.get(pc_addr_word, 0)
            if next_addr == HALT_ADDRESS:
                break
            if next_addr % 4:
                raise ExecutionError(f"misaligned guest PC {next_addr:#x}")
            next_index = next_addr // 4
            if self.chaining:
                edge = (pc_index, next_index)
                if edge in self._chained_edges:
                    metrics.chained_executions += 1
                else:
                    self._chained_edges.add(edge)
            pc_index = next_index
        return DBTRunResult(metrics=metrics, state=state)


def check_against_reference(
    unit: CompiledUnit, result: DBTRunResult, entry: str = "fn_main"
) -> Tuple[bool, str]:
    """Compare a DBT run's final state with the reference interpreter.

    Compares general-purpose registers and guest-visible memory.  Condition
    flags are excluded: the translated code may legitimately leave dead
    guest flags unmaterialized.
    """
    reference = GuestInterpreter(unit).run(entry=entry)
    for i in range(13):
        name = f"r{i}"
        if reference.state.regs[name] != result.guest_reg(name):
            return False, (
                f"register {name}: reference {reference.state.regs[name]:#x} "
                f"!= DBT {result.guest_reg(name):#x}"
            )
    ref_memory = {
        addr: value for addr, value in reference.state.memory.items() if value
    }
    dbt_memory = result.guest_memory()
    if ref_memory != dbt_memory:
        delta = set(ref_memory.items()) ^ set(dbt_memory.items())
        return False, f"memory mismatch ({len(delta)} differing entries)"
    return True, "ok"
