"""Instruction classification for parameterization (paper §IV-A).

Instructions are grouped first by data type, then into the five subgroups
(arithmetic/logic, load-side data transfer, store-side data transfer,
compare, other) — that classification already lives on each
:class:`~repro.isa.instruction.InstructionDef`.  This module adds what the
parameterization engine needs on top:

* the guest→host opcode correspondence *within* corresponding subgroups
  (``guestpara_opi`` → ``hostpara_opi``), including the fixup transforms for
  "complex sibling" instructions (§IV-C1, fig. 7) whose host realization
  needs auxiliary instructions;
* enumeration of the parameterizable guest opcodes and their legal operand
  shapes (the ISA signatures implement the addressing-mode guidelines of
  §IV-B: destinations are never immediates, RISC ALU operands are never
  memory, load sources / store targets are always memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Subgroup
from repro.isa.operands import OperandKind as K


@dataclass(frozen=True)
class HostOp:
    """How a guest opcode is realized on the host.

    ``transform`` names a template surgery applied during derivation:

    ============== ======================================================
    ``None``        direct mnemonic substitution
    ``swap``        exchange the two guest source operands (rsb/rsc)
    ``invert_src``  invert the second source through a scratch (bic)
    ``not_dest``    append ``notl dst`` (mvn)
    ``via_scratch`` compute flags in a scratch register (cmn)
    ============== ======================================================
    """

    mnemonic: str
    transform: Optional[str] = None


#: Guest mnemonic -> host realization, for every parameterizable opcode.
OPCODE_MAP: Dict[str, HostOp] = {
    # ALU: arithmetic.
    "add": HostOp("addl"),
    "adds": HostOp("addl"),
    "adc": HostOp("adcl"),
    "adcs": HostOp("adcl"),
    "sub": HostOp("subl"),
    "subs": HostOp("subl"),
    "sbc": HostOp("sbbl"),
    "sbcs": HostOp("sbbl"),
    "rsb": HostOp("subl", "swap"),
    "rsbs": HostOp("subl", "swap"),
    "rsc": HostOp("sbbl", "swap"),
    "rscs": HostOp("sbbl", "swap"),
    # ALU: logic.
    "and": HostOp("andl"),
    "ands": HostOp("andl"),
    "orr": HostOp("orl"),
    "orrs": HostOp("orl"),
    "eor": HostOp("xorl"),
    "eors": HostOp("xorl"),
    "bic": HostOp("andl", "invert_src"),
    "bics": HostOp("andl", "invert_src"),
    # ALU: shifts and multiply.
    "lsl": HostOp("shll"),
    "lsls": HostOp("shll"),
    "lsr": HostOp("shrl"),
    "lsrs": HostOp("shrl"),
    "asr": HostOp("sarl"),
    "asrs": HostOp("sarl"),
    "mul": HostOp("imull"),
    "muls": HostOp("imull"),
    # LOAD subgroup (data transfer into a register).
    "mov": HostOp("movl"),
    "movs": HostOp("movl"),
    "mvn": HostOp("movl", "not_dest"),
    "mvns": HostOp("movl", "not_dest"),
    "ldr": HostOp("movl"),
    "ldrb": HostOp("movzbl"),
    "ldrh": HostOp("movzwl"),
    # STORE subgroup.
    "str": HostOp("movl_s"),
    "strb": HostOp("movb"),
    "strh": HostOp("movw"),
    # COMPARE subgroup.
    "cmp": HostOp("cmpl"),
    "cmn": HostOp("addl", "via_scratch"),
    "tst": HostOp("testl"),
    "teq": HostOp("cmpl"),
}

#: Host ALU/compare mnemonics that can appear as the parameterized position
#: of a rule (everything else in a host template is auxiliary).
HOST_PARAM_MNEMONICS = frozenset(
    {
        "addl",
        "adcl",
        "subl",
        "sbbl",
        "andl",
        "orl",
        "xorl",
        "imull",
        "shll",
        "shrl",
        "sarl",
        "movl",
        "movzbl",
        "movzwl",
        "movl_s",
        "movb",
        "movw",
        "cmpl",
        "testl",
    }
)

#: Guest mnemonics excluded from parameterization entirely (subgroup OTHER —
#: branches keep their learned rules; the paper's seven unlearnable
#: instructions live here too).
UNPARAMETERIZABLE = frozenset(
    name for name, d in ARM.defs.items() if d.subgroup is Subgroup.OTHER
)


def parameterizable_opcodes(subgroup: Subgroup) -> Tuple[str, ...]:
    """Guest opcodes of a subgroup that participate in parameterization."""
    return tuple(
        name
        for name, d in ARM.defs.items()
        if d.subgroup is subgroup and name in OPCODE_MAP
    )


def subgroup_of(mnemonic: str) -> Subgroup:
    return ARM.lookup(mnemonic).subgroup


def legal_kind_shapes(mnemonic: str) -> Tuple[Tuple[K, ...], ...]:
    """Operand-kind shapes the guest ISA accepts for *mnemonic*.

    ISA signatures already encode the §IV-B guidelines: no immediate
    destinations, no memory operands on RISC ALU instructions, memory-only
    load sources and store targets.
    """
    return ARM.lookup(mnemonic).signatures


#: Memory-operand sub-shapes enumerated by addressing-mode parameterization.
MEM_SHAPES = ("base", "base+disp", "base+index")
