"""Recursive-descent parser for the mini source language.

See :mod:`repro.lang.ast` for the grammar.  Comments start with ``//``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang.ast import (
    Assign,
    BinE,
    BINARY_OPS,
    Call,
    Cond,
    ConstE,
    Function,
    Goto,
    IfGoto,
    IfTestGoto,
    Index,
    LabelStmt,
    LoadE,
    MlaE,
    Program,
    RELOPS,
    Return,
    FusedAluGoto,
    Store,
    UmlalStmt,
    UnE,
    VarE,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<int>-?(?:0x[0-9a-fA-F]+|\d+))
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><=u|>=u|<u|>u|>>>|<<|>>|<=|>=|==|!=|&~|[-+*&|^~=<>(){}\[\],;:])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, match.group()))
    tokens.append(("eof", ""))
    return tokens


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Tuple[str, str]:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, text: str) -> str:
        kind, value = self.next()
        if value != text:
            raise ParseError(f"expected {text!r}, got {value!r}")
        return value

    def expect_kind(self, kind: str) -> str:
        got_kind, value = self.next()
        if got_kind != kind:
            raise ParseError(f"expected {kind}, got {value!r}")
        return value

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text and self.peek()[0] != "eof":
            self.pos += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek()[0] != "eof":
            kind, value = self.peek()
            if value == "global":
                self.next()
                name = self.expect_kind("name")
                self.expect("[")
                size = int(self.expect_kind("int"), 0)
                self.expect("]")
                self.expect(";")
                program.globals[name] = size
            elif value == "func":
                program.add_function(self.parse_function())
            else:
                raise ParseError(f"expected 'global' or 'func', got {value!r}")
        return program

    def parse_function(self) -> Function:
        self.expect("func")
        name = self.expect_kind("name")
        self.expect("(")
        params: List[str] = []
        if not self.accept(")"):
            params.append(self.expect_kind("name"))
            while self.accept(","):
                params.append(self.expect_kind("name"))
            self.expect(")")
        self.expect("{")
        body: List[object] = []
        while not self.accept("}"):
            stmt = self.parse_statement()
            if stmt is not None:
                body.append(stmt)
        return Function(name, tuple(params), body)

    def parse_statement(self):
        kind, value = self.peek()
        if value == "var":
            # Declarations are informational; locals are inferred.
            self.next()
            self.expect_kind("name")
            while self.accept(","):
                self.expect_kind("name")
            self.expect(";")
            return None
        if value == "goto":
            self.next()
            target = self.expect_kind("name")
            self.expect(";")
            return Goto(target)
        if value == "if":
            return self.parse_ifgoto()
        if value == "fuse":
            self.next()
            self.expect("(")
            dest = self.expect_kind("name")
            op = self.next()[1]
            if op not in BINARY_OPS:
                raise ParseError(f"unknown fused operator {op!r}")
            rhs = self.parse_atom()
            self.expect(")")
            cond = self.expect_kind("name")
            if cond not in ("ne", "eq", "mi", "pl"):
                raise ParseError(f"unsupported fused condition {cond!r}")
            self.expect("goto")
            target = self.expect_kind("name")
            self.expect(";")
            return FusedAluGoto(dest, op, rhs, cond, target)
        if value == "iftest":
            self.next()
            self.expect("(")
            dest = self.expect_kind("name")
            self.expect("=")
            source = self.parse_atom()
            self.expect(")")
            self.expect("goto")
            target = self.expect_kind("name")
            self.expect(";")
            return IfTestGoto(dest, source, target)
        if value == "return":
            self.next()
            if self.accept(";"):
                return Return()
            atom = self.parse_atom()
            self.expect(";")
            return Return(atom)
        if value == "call":
            self.next()
            call = self.parse_call(dest=None)
            self.expect(";")
            return call
        if value == "umlal":
            self.next()
            self.expect("(")
            lo = self.expect_kind("name")
            self.expect(",")
            hi = self.expect_kind("name")
            self.expect(",")
            lhs = self.parse_atom()
            self.expect(",")
            rhs = self.parse_atom()
            self.expect(")")
            self.expect(";")
            return UmlalStmt(lo, hi, lhs, rhs)
        if value in ("storeb", "storeh"):
            self.next()
            size = 1 if value == "storeb" else 2
            self.expect("(")
            array = self.expect_kind("name")
            self.expect(",")
            index = self.parse_index()
            self.expect(",")
            atom = self.parse_atom()
            self.expect(")")
            self.expect(";")
            return Store(array, index, atom, size)
        if kind == "name":
            if self.peek(1)[1] == ":":
                label = self.expect_kind("name")
                self.expect(":")
                return LabelStmt(label)
            if self.peek(1)[1] == "[":
                # Word store: name[index] = atom ;
                array = self.expect_kind("name")
                self.expect("[")
                index = self.parse_index()
                self.expect("]")
                self.expect("=")
                atom = self.parse_atom()
                self.expect(";")
                return Store(array, index, atom, 4)
            dest = self.expect_kind("name")
            self.expect("=")
            if self.peek()[1] == "call":
                self.next()
                call = self.parse_call(dest=dest)
                self.expect(";")
                return call
            expr = self.parse_expr()
            self.expect(";")
            return Assign(dest, expr)
        raise ParseError(f"cannot parse statement starting with {value!r}")

    def parse_call(self, dest: Optional[str]) -> Call:
        func = self.expect_kind("name")
        self.expect("(")
        args: List[object] = []
        if not self.accept(")"):
            args.append(self.parse_atom())
            while self.accept(","):
                args.append(self.parse_atom())
            self.expect(")")
        return Call(func, tuple(args), dest)

    def parse_ifgoto(self) -> IfGoto:
        self.expect("if")
        self.expect("(")
        if self.accept("("):
            # "(a & b) != 0"  or  "(a ^ b) == 0" forms
            lhs = self.parse_atom()
            op = self.next()[1]
            if op not in ("&", "^"):
                raise ParseError(f"expected & or ^ in test condition, got {op!r}")
            rhs = self.parse_atom()
            self.expect(")")
            relop = self.next()[1]
            zero = self.expect_kind("int")
            if zero != "0" or relop not in ("!=", "=="):
                raise ParseError("test conditions must compare against 0")
            cond = Cond("tst" if op == "&" else "teq", relop + "0", lhs, rhs)
        else:
            lhs = self.parse_atom()
            relop = self.next()[1]
            if relop not in RELOPS:
                raise ParseError(f"unknown relational operator {relop!r}")
            rhs = self.parse_atom()
            cond = Cond("rel", relop, lhs, rhs)
        self.expect(")")
        self.expect("goto")
        target = self.expect_kind("name")
        self.expect(";")
        return IfGoto(cond, target)

    def parse_atom(self):
        kind, value = self.next()
        if kind == "int":
            return ConstE(int(value, 0))
        if kind == "name":
            return VarE(value)
        raise ParseError(f"expected atom, got {value!r}")

    def parse_index(self) -> Index:
        base = self.parse_atom()
        if self.accept("+"):
            disp = int(self.expect_kind("int"), 0)
            return Index(base, disp=disp)
        if self.accept(":"):
            scale = int(self.expect_kind("int"), 0)
            return Index(base, scale=scale)
        return Index(base)

    def parse_expr(self):
        kind, value = self.peek()
        if value == "~":
            self.next()
            return UnE("~", self.parse_atom())
        if value == "-" and self.peek(1)[0] == "name":
            self.next()
            return UnE("-", self.parse_atom())
        if value == "clz":
            self.next()
            self.expect("(")
            atom = self.parse_atom()
            self.expect(")")
            return UnE("clz", atom)
        if value in ("loadb", "loadh"):
            self.next()
            size = 1 if value == "loadb" else 2
            self.expect("(")
            array = self.expect_kind("name")
            self.expect(",")
            index = self.parse_index()
            self.expect(")")
            return LoadE(array, index, size)
        if kind == "name" and self.peek(1)[1] == "[":
            array = self.expect_kind("name")
            self.expect("[")
            index = self.parse_index()
            self.expect("]")
            return LoadE(array, index, 4)

        lhs = self.parse_atom()
        op = self.peek()[1]
        if op not in BINARY_OPS:
            return lhs
        self.next()
        rhs = self.parse_atom()
        # mla pattern: a + b * c
        if op == "+" and self.peek()[1] == "*":
            self.next()
            third = self.parse_atom()
            return MlaE(lhs, rhs, third)
        return BinE(op, lhs, rhs)


def parse(source: str) -> Program:
    """Parse mini-language source text into a :class:`Program`."""
    return Parser(source).parse_program()
