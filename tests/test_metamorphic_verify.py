"""Metamorphic properties of the rule verifier.

Transformations that must not change a verdict:

* consistently renaming registers on either side;
* appending a host instruction that writes only a fresh scratch register
  (rejected in learning mode, accepted with ``allow_temps``);
* swapping the sources of a commutative guest instruction.

And transformations that must flip it:

* perturbing an immediate on one side only;
* redirecting the host result to a different register.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.arm import ARM, assemble as arm
from repro.isa.instruction import Instruction
from repro.isa.operands import Reg
from repro.isa.x86 import X86, assemble as x86
from repro.verify import check_equivalence

#: (guest, host) fully-equivalent fixture pairs.
PAIRS = (
    ("add r0, r1, r2", "movl %ecx, %eax\naddl %edx, %eax"),
    ("adds r0, r0, r1", "addl %ecx, %eax"),
    ("sub r0, r0, r1", "subl %ecx, %eax"),
    ("and r0, r0, #240", "andl $240, %eax"),
    ("ldr r0, [r1, #12]", "movl 12(%ecx), %eax"),
    ("str r0, [r1, r2]", "movl %eax, (%ecx,%edx)"),
    ("cmp r0, #7\nbge .L", "cmpl $7, %eax\njge .L"),
)

ARM_POOL = tuple(f"r{i}" for i in range(11))
X86_POOL = ("eax", "ecx", "edx", "ebx", "esi", "edi")


def _rename(instructions, mapping, reg_type=Reg):
    from repro.isa.operands import Mem

    def rn(op):
        if isinstance(op, Reg):
            return Reg(mapping.get(op.name, op.name))
        if isinstance(op, Mem):
            base = rn(op.base) if op.base else None
            index = rn(op.index) if op.index else None
            return Mem(base=base, index=index, disp=op.disp, scale=op.scale)
        return op

    return tuple(
        Instruction(i.mnemonic, tuple(rn(o) for o in i.operands))
        for i in instructions
    )


class TestInvariance:
    @settings(max_examples=40, deadline=None)
    @given(pair=st.sampled_from(PAIRS), data=st.data())
    def test_renaming_invariance(self, pair, data):
        guest, host = arm(pair[0]), x86(pair[1])
        from repro.verify.checker import collect_regs

        g_map = {}
        pool = list(ARM_POOL)
        for name in collect_regs(guest):
            g_map[name] = data.draw(st.sampled_from(pool), label=f"g:{name}")
            pool.remove(g_map[name])
        h_map = {}
        pool = list(X86_POOL)
        for name in collect_regs(host):
            h_map[name] = data.draw(st.sampled_from(pool), label=f"h:{name}")
            pool.remove(h_map[name])

        renamed_g = _rename(guest, g_map)
        renamed_h = _rename(host, h_map)
        assert check_equivalence(ARM, X86, renamed_g, renamed_h).equivalent

    @settings(max_examples=20, deadline=None)
    @given(pair=st.sampled_from(PAIRS[:4]))
    def test_commutative_guest_swap(self, pair):
        guest, host = arm(pair[0]), x86(pair[1])
        insn = guest[0]
        defn = ARM.defn(insn)
        if not defn.commutative or len(insn.operands) != 3:
            return
        swapped = (
            Instruction(insn.mnemonic, (insn.operands[0], insn.operands[2], insn.operands[1])),
        ) + guest[1:]
        assert check_equivalence(ARM, X86, swapped, host).equivalent


class TestScratchAppendix:
    @settings(max_examples=20, deadline=None)
    @given(pair=st.sampled_from(PAIRS[:6]))  # appending after a branch is illegal
    def test_fresh_scratch_write_needs_allowance(self, pair):
        guest, host = arm(pair[0]), x86(pair[1])
        from repro.verify.checker import collect_regs

        regs = collect_regs(host)
        used = set(regs)
        fresh = next(r for r in X86_POOL if r not in used)
        # Copy an existing register into a fresh scratch (no stray
        # immediates — those are rejected by the one-to-one immediate rule).
        extended = host + (Instruction("movl", (Reg(regs[0]), Reg(fresh))),)
        strict = check_equivalence(ARM, X86, guest, extended)
        assert not strict.dataflow_ok
        relaxed = check_equivalence(ARM, X86, guest, extended, allow_temps=1)
        assert relaxed.equivalent or relaxed.dataflow_ok


class TestPerturbation:
    @settings(max_examples=30, deadline=None)
    @given(pair=st.sampled_from(PAIRS), delta=st.integers(min_value=1, max_value=64))
    def test_immediate_perturbation_detected(self, pair, delta):
        guest, host = arm(pair[0]), x86(pair[1])
        from repro.learning.learn import rewrite_imms
        from repro.learning.rule import window_bindings

        _, imms = window_bindings(guest)
        if not imms:
            return
        perturbed = rewrite_imms(guest, {imms[0]: imms[0] + delta})
        assert not check_equivalence(ARM, X86, perturbed, host).dataflow_ok

    @settings(max_examples=20, deadline=None)
    @given(pair=st.sampled_from(PAIRS[:3]))
    def test_wrong_host_opcode_detected(self, pair):
        guest, host = arm(pair[0]), x86(pair[1])
        mutated = []
        flipped = False
        swap = {"addl": "subl", "subl": "addl", "andl": "orl"}
        for insn in host:
            if not flipped and insn.mnemonic in swap:
                mutated.append(Instruction(swap[insn.mnemonic], insn.operands))
                flipped = True
            else:
                mutated.append(insn)
        if not flipped:
            return
        assert not check_equivalence(ARM, X86, guest, tuple(mutated)).dataflow_ok
