"""Symbolic bitvector IR used by the rule verifier.

Public surface:

* :class:`~repro.symir.expr.Expr` node types (:class:`Const`, :class:`Sym`,
  :class:`BinOp`, :class:`UnOp`, :class:`Ite`, :class:`Extract`,
  :class:`ZeroExt`)
* :mod:`repro.symir.build` — simplifying smart constructors
* :func:`~repro.symir.evaluate.evaluate` — concrete evaluation
* :func:`~repro.symir.simplify.simplify` — canonical re-normalization
"""

from repro.symir.build import (
    add,
    and_,
    binop,
    const,
    eq,
    extract,
    is_zero,
    ite,
    mul,
    neg,
    not_,
    or_,
    sub,
    sym,
    unop,
    xor,
    zero_ext,
)
from repro.symir.evaluate import evaluate
from repro.symir.expr import (
    BinOp,
    Const,
    Expr,
    Extract,
    Ite,
    Sym,
    UnOp,
    ZeroExt,
    expr_size,
    free_symbols,
)
from repro.symir.simplify import simplify

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "BinOp",
    "UnOp",
    "Ite",
    "Extract",
    "ZeroExt",
    "free_symbols",
    "expr_size",
    "evaluate",
    "simplify",
    "const",
    "sym",
    "binop",
    "unop",
    "ite",
    "extract",
    "zero_ext",
    "add",
    "sub",
    "mul",
    "and_",
    "or_",
    "xor",
    "not_",
    "neg",
    "eq",
    "is_zero",
]
