"""ARM backend of the mini compiler (the *guest* side).

Shapes worth noting (they drive what rule learning can see):

* three-operand ALU form, immediates allowed as the second source;
* ``a = a + b*c`` fuses to ``mla`` (one of the paper's seven unlearnable
  instructions — its x86 counterpart needs a scratch register);
* compare+branch and the ``movs``+``bne`` move-and-test idiom keep flag
  setters adjacent to their readers (flags never live across basic blocks);
* global-array bases are hoisted into a register per function; under
  ``pic=True`` the materialization is PC-relative (``add rB, pc, #off``),
  the pattern behind the paper's fig. 9 constraint.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.isa.operands import Imm, Label, Mem, Operand, Reg, RegList
from repro.lang import ast
from repro.lang.codegen_base import CodegenBase

_OP_MNEMONIC = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&": "and",
    "|": "orr",
    "^": "eor",
    "<<": "lsl",
    ">>": "asr",
    ">>>": "lsr",
    "&~": "bic",
}

_LOAD_MNEMONIC = {4: "ldr", 2: "ldrh", 1: "ldrb"}
_STORE_MNEMONIC = {4: "str", 2: "strh", 1: "strb"}

#: Immediates are encodable in the second-source slot for these ops.
_IMM_OK = {"add", "sub", "and", "orr", "eor", "bic", "lsl", "asr", "lsr"}

ARG_REGS = ("r0", "r1", "r2", "r3")
RETURN_REG = "r0"


class ArmCodegen(CodegenBase):
    ISA_NAME = "arm"
    LOCAL_POOL = ("r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11")
    TEMP_POOL = ("r12", "r3", "r2", "r1", "r0")
    DEBUG_LOSS_RATE = 0.15

    # -- value access -----------------------------------------------------------

    def use(self, atom, allow_imm: bool = False) -> Operand:
        if isinstance(atom, ast.ConstE):
            if allow_imm:
                return Imm(atom.value)
            reg = self.temp()
            self.out.emit("mov", reg, Imm(atom.value))
            return reg
        if isinstance(atom, ast.VarE):
            name = atom.name
            if name in self.frame.reg_of:
                return Reg(self.frame.reg_of[name])
            reg = self.temp()
            self.out.emit("ldr", reg, Mem(base=Reg("sp"), disp=self.frame.spill_of[name]))
            return reg
        raise CodegenError(f"cannot use atom {atom!r}")

    def dest(self, var: str) -> Reg:
        if var in self.frame.reg_of:
            return Reg(self.frame.reg_of[var])
        return self.temp()

    def finish_dest(self, var: str, reg: Reg) -> None:
        if var not in self.frame.reg_of:
            self.out.emit("str", reg, Mem(base=Reg("sp"), disp=self.frame.spill_of[var]))

    def global_base(self, array: str) -> Reg:
        allocated = self.frame.reg_of.get(f"@{array}")
        if allocated is not None:
            return Reg(allocated)
        # No register left for this base: materialize per use.
        reg = self.temp()
        index = self.out.emit("mov", reg, Imm(self.globals_layout[array]))
        if self.pic:
            self.out.pic_sites.append(index)
        return reg

    def emit_global_bases(self, func: ast.Function) -> None:
        for array in ast.arrays_used(func):
            allocated = self.frame.reg_of.get(f"@{array}")
            if allocated is None:
                continue
            index = self.out.emit(
                "mov", Reg(allocated), Imm(self.globals_layout[array]), glue=True
            )
            if self.pic:
                self.out.pic_sites.append(index)

    def addr_operand(self, array: str, index: ast.Index) -> Mem:
        base = self.global_base(array)
        if isinstance(index.base, ast.ConstE):
            return Mem(base=base, disp=index.base.value * index.scale + index.disp)
        ireg = self.use(index.base)
        if index.scale not in (1, 2, 4, 8):
            raise CodegenError(f"unsupported scale {index.scale}")
        if index.scale != 1:
            shifted = self.temp()
            self.out.emit("lsl", shifted, ireg, Imm(index.scale.bit_length() - 1))
            ireg = shifted
        if index.disp:
            # base + index + disp exceeds the two-component address grammar:
            # fold base+index into a temporary and keep the displacement in
            # the load/store itself (a [reg, #imm] addressing mode).
            combined = self.temp()
            self.out.emit("add", combined, base, ireg)
            return Mem(base=combined, disp=index.disp)
        return Mem(base=base, index=ireg)

    # -- prologue / epilogue ------------------------------------------------------

    def emit_prologue(self, func: ast.Function) -> None:
        saved = tuple(Reg(r) for r in self.frame.saved_regs) + (Reg("lr"),)
        self.out.emit("push", RegList(saved), glue=True)
        if self.frame.frame_size:
            self.out.emit("sub", Reg("sp"), Reg("sp"), Imm(self.frame.frame_size), glue=True)
        for i, param in enumerate(func.params):
            if i >= len(ARG_REGS):
                raise CodegenError("more than 4 parameters are not supported")
            src = Reg(ARG_REGS[i])
            if param in self.frame.reg_of:
                self.out.emit("mov", Reg(self.frame.reg_of[param]), src, glue=True)
            else:
                self.out.emit(
                    "str", src, Mem(base=Reg("sp"), disp=self.frame.spill_of[param]), glue=True
                )

    def emit_epilogue(self, func: ast.Function) -> None:
        if self.frame.frame_size:
            self.out.emit("add", Reg("sp"), Reg("sp"), Imm(self.frame.frame_size), glue=True)
        saved = tuple(Reg(r) for r in self.frame.saved_regs) + (Reg("lr"),)
        self.out.emit("pop", RegList(saved), glue=True)
        self.out.emit("bx", Reg("lr"), glue=True)

    # -- statements ------------------------------------------------------------------

    def stmt_assign(self, stmt: ast.Assign) -> None:
        expr = stmt.expr
        if isinstance(expr, (ast.ConstE, ast.VarE)):
            dest = self.dest(stmt.dest)
            self.out.emit("mov", dest, self.use(expr, allow_imm=True))
            self.finish_dest(stmt.dest, dest)
            return
        if isinstance(expr, ast.BinE):
            self._assign_binop(stmt.dest, expr)
            return
        if isinstance(expr, ast.UnE):
            dest = self.dest(stmt.dest)
            if expr.op == "~":
                self.out.emit("mvn", dest, self.use(expr.operand, allow_imm=True))
            elif expr.op == "-":
                self.out.emit("rsb", dest, self.use(expr.operand), Imm(0))
            elif expr.op == "clz":
                self.out.emit("clz", dest, self.use(expr.operand))
            else:
                raise CodegenError(f"unknown unary op {expr.op!r}")
            self.finish_dest(stmt.dest, dest)
            return
        if isinstance(expr, ast.MlaE):
            self._assign_mla(stmt.dest, expr)
            return
        if isinstance(expr, ast.LoadE):
            dest = self.dest(stmt.dest)
            mem = self.addr_operand(expr.array, expr.index)
            self.out.emit(_LOAD_MNEMONIC[expr.size], dest, mem)
            self.finish_dest(stmt.dest, dest)
            return
        raise CodegenError(f"cannot compile expression {expr!r}")

    def _assign_binop(self, dest_var: str, expr: ast.BinE) -> None:
        op = _OP_MNEMONIC[expr.op]
        lhs, rhs = expr.lhs, expr.rhs
        dest = self.dest(dest_var)
        if isinstance(lhs, ast.ConstE):
            if expr.op == "-":
                # c - b  ->  rsb rd, rb, #c
                self.out.emit("rsb", dest, self.use(rhs), Imm(lhs.value))
                self.finish_dest(dest_var, dest)
                return
            if expr.op in ("+", "&", "|", "^", "*"):
                lhs, rhs = rhs, lhs  # commutative: put the constant second
            else:
                lhs = lhs  # materialized below
        lhs_op = self.use(lhs)
        imm_ok = op in _IMM_OK and op != "mul"
        rhs_op = self.use(rhs, allow_imm=imm_ok)
        self.out.emit(op, dest, lhs_op, rhs_op)
        self.finish_dest(dest_var, dest)

    def _assign_mla(self, dest_var: str, expr: ast.MlaE) -> None:
        accumulating = isinstance(expr.addend, ast.VarE) and expr.addend.name == dest_var
        if accumulating:
            dest = self.dest(dest_var)
            self.out.emit("mla", dest, self.use(expr.lhs), self.use(expr.rhs), dest)
            self.finish_dest(dest_var, dest)
            return
        product = self.temp()
        self.out.emit("mul", product, self.use(expr.lhs), self.use(expr.rhs))
        dest = self.dest(dest_var)
        self.out.emit("add", dest, product, self.use(expr.addend, allow_imm=True))
        self.finish_dest(dest_var, dest)

    def stmt_store(self, stmt: ast.Store) -> None:
        value = self.use(stmt.value)
        mem = self.addr_operand(stmt.array, stmt.index)
        self.out.emit(_STORE_MNEMONIC[stmt.size], value, mem)

    def stmt_ifgoto(self, stmt: ast.IfGoto) -> None:
        cond = stmt.cond
        target = Label(self.local_label(stmt.target))
        lhs = self.use(cond.lhs)
        rhs = self.use(cond.rhs, allow_imm=True)
        if cond.kind == "rel":
            self.out.emit("cmp", lhs, rhs)
            self.out.emit(f"b{ast.RELOP_TO_COND[cond.op]}", target)
        elif cond.kind == "tst":
            self.out.emit("tst", lhs, rhs)
            self.out.emit("bne" if cond.op == "!=0" else "beq", target)
        elif cond.kind == "teq":
            self.out.emit("teq", lhs, rhs)
            self.out.emit("beq" if cond.op == "==0" else "bne", target)
        else:
            raise CodegenError(f"unknown condition kind {cond.kind!r}")

    def stmt_iftest(self, stmt: ast.IfTestGoto) -> None:
        dest = self.dest(stmt.dest)
        self.out.emit("movs", dest, self.use(stmt.source, allow_imm=True))
        self.finish_dest(stmt.dest, dest)
        self.out.emit("bne", Label(self.local_label(stmt.target)))

    _FUSED_MNEMONIC = {
        "+": "adds", "-": "subs", "&": "ands", "|": "orrs", "^": "eors",
        "&~": "bics", "<<": "lsls", ">>": "asrs", ">>>": "lsrs", "*": "muls",
    }

    def stmt_fused(self, stmt) -> None:
        # The destination is an accumulator (read-modify-write): load it if
        # it lives in a spill slot.
        dest = self.use(ast.VarE(stmt.dest))
        mnemonic = self._FUSED_MNEMONIC[stmt.op]
        imm_ok = mnemonic[:-1] in _IMM_OK
        self.out.emit(mnemonic, dest, dest, self.use(stmt.rhs, allow_imm=imm_ok))
        self.finish_dest(stmt.dest, dest)
        self.out.emit(f"b{stmt.cond}", Label(self.local_label(stmt.target)))

    def stmt_goto(self, stmt: ast.Goto) -> None:
        self.out.emit("b", Label(self.local_label(stmt.target)))

    def stmt_call(self, stmt: ast.Call) -> None:
        if len(stmt.args) > len(ARG_REGS):
            raise CodegenError("more than 4 arguments are not supported")
        for i, arg in enumerate(stmt.args):
            self.out.emit("mov", Reg(ARG_REGS[i]), self.use(arg, allow_imm=True))
        self.out.emit("bl", Label(f"fn_{stmt.func}"))
        if stmt.dest is not None:
            dest = self.dest(stmt.dest)
            if dest.name != RETURN_REG:
                self.out.emit("mov", dest, Reg(RETURN_REG))
            self.finish_dest(stmt.dest, dest)

    def stmt_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self.use(stmt.value, allow_imm=True)
            if not (isinstance(value, Reg) and value.name == RETURN_REG):
                self.out.emit("mov", Reg(RETURN_REG), value)
        self.emit_epilogue(None)

    def stmt_umlal(self, stmt) -> None:
        # lo/hi are accumulators: read-modify-write, so load them if spilled.
        lo = self.use(ast.VarE(stmt.lo))
        hi = self.use(ast.VarE(stmt.hi))
        self.out.emit("umlal", lo, hi, self.use(stmt.lhs), self.use(stmt.rhs))
        self.finish_dest(stmt.lo, lo)
        self.finish_dest(stmt.hi, hi)

    # -- PIC rewrite -----------------------------------------------------------------

    def finalize(self) -> None:
        """Rewrite ``mov rB, #addr`` global-base sites into PC-relative form.

        ARM reads the PC as ``index*4 + 8`` (pipeline offset); the rewrite
        keeps the materialized address identical:
        ``add rB, pc, #(addr - (index*4 + 8))``.
        """
        if not self.out.pic_sites:
            return
        real_index = {}
        counter = 0
        for i, insn in enumerate(self.out.instructions):
            if insn.mnemonic != ".label":
                real_index[i] = counter
                counter += 1
        from repro.isa.instruction import Instruction

        for site in self.out.pic_sites:
            insn = self.out.instructions[site]
            dest, imm = insn.operands
            pc_value = real_index[site] * 4 + 8
            offset = (imm.value - pc_value) & 0xFFFFFFFF
            self.out.instructions[site] = Instruction(
                "add", (dest, Reg("pc"), Imm(offset))
            )
