"""Tests for the ARM-like guest ISA: assembler, definitions, semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblyError, UnknownInstructionError
from repro.isa.arm import ARM, assemble, disassemble, parse_line
from repro.isa.instruction import Subgroup
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.semantics.state import ConcreteState

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run_one(text: str, **regs):
    """Assemble one instruction and execute it on a fresh state."""
    insn = parse_line(text)
    state = ConcreteState()
    state.reset_flags()
    for name, value in regs.items():
        state.regs[name] = value
    ARM.defn(insn).semantics(state, insn)
    return state


class TestAssembler:
    def test_three_operand(self):
        insn = parse_line("add r0, r1, r2")
        assert insn.mnemonic == "add"
        assert insn.operands == (Reg("r0"), Reg("r1"), Reg("r2"))

    def test_immediate(self):
        insn = parse_line("sub r0, r1, #10")
        assert insn.operands[2] == Imm(10)

    def test_hex_and_negative_immediates(self):
        assert parse_line("mov r0, #0xff").operands[1] == Imm(0xFF)
        assert parse_line("mov r0, #-4").operands[1] == Imm(-4)

    def test_memory_forms(self):
        assert parse_line("ldr r0, [r1]").operands[1] == Mem(base=Reg("r1"))
        assert parse_line("ldr r0, [r1, #8]").operands[1] == Mem(base=Reg("r1"), disp=8)
        assert parse_line("ldr r0, [r1, r2]").operands[1] == Mem(
            base=Reg("r1"), index=Reg("r2")
        )

    def test_register_list(self):
        insn = parse_line("push {r4, r5, lr}")
        assert insn.operands[0] == RegList((Reg("r4"), Reg("r5"), Reg("lr")))

    def test_label(self):
        assert parse_line("b .L1").operands[0] == Label(".L1")

    def test_label_definition(self):
        assert parse_line(".L1:").mnemonic == ".label"

    def test_comment_only_line(self):
        assert parse_line("  @ nothing here") is None

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(UnknownInstructionError):
            parse_line("frobnicate r0")

    def test_bad_operand_shape_rejected(self):
        with pytest.raises(UnknownInstructionError):
            parse_line("add r0, r1")  # add is three-operand

    def test_bad_register_rejected(self):
        with pytest.raises((AssemblyError, UnknownInstructionError)):
            parse_line("mov r99, #1")

    def test_assemble_reports_line_numbers(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("mov r0, #1\nbogus!!!")

    def test_roundtrip(self):
        source = """fn:
    adds r0, r1, #5
    ldr r2, [r0, r1]
    str r2, [r0, #4]
    cmp r0, r2
    bne fn"""
        insns = assemble(source)
        assert assemble(disassemble(insns)) == insns


class TestClassification:
    @pytest.mark.parametrize(
        "mnemonic,subgroup",
        [
            ("add", Subgroup.ALU),
            ("eors", Subgroup.ALU),
            ("mov", Subgroup.LOAD),
            ("mvn", Subgroup.LOAD),
            ("ldrb", Subgroup.LOAD),
            ("str", Subgroup.STORE),
            ("cmp", Subgroup.COMPARE),
            ("tst", Subgroup.COMPARE),
            ("b", Subgroup.OTHER),
            ("push", Subgroup.OTHER),
            ("mla", Subgroup.OTHER),
            ("clz", Subgroup.OTHER),
        ],
    )
    def test_subgroups(self, mnemonic, subgroup):
        assert ARM.lookup(mnemonic).subgroup is subgroup

    def test_s_variants_set_flags(self):
        assert ARM.lookup("adds").flags_set == frozenset("NZCV")
        assert ARM.lookup("ands").flags_set == frozenset("NZ")
        assert not ARM.lookup("add").flags_set

    def test_commutativity(self):
        assert ARM.lookup("add").commutative
        assert ARM.lookup("eor").commutative
        assert not ARM.lookup("sub").commutative
        assert not ARM.lookup("bic").commutative

    def test_carry_readers(self):
        assert "C" in ARM.lookup("adc").flags_read
        assert "C" in ARM.lookup("rsc").flags_read


class TestSemantics:
    def test_add(self):
        assert run_one("add r0, r1, r2", r1=2, r2=3).get_reg("r0") == 5

    def test_rsb_reverses(self):
        assert run_one("rsb r0, r1, #10", r1=3).get_reg("r0") == 7

    def test_rsb_zero_is_negate(self):
        assert run_one("rsb r0, r1, #0", r1=5).get_reg("r0") == (-5) & 0xFFFFFFFF

    def test_bic(self):
        assert run_one("bic r0, r1, r2", r1=0b1111, r2=0b0101).get_reg("r0") == 0b1010

    def test_mvn(self):
        assert run_one("mvn r0, r1", r1=0).get_reg("r0") == 0xFFFFFFFF

    def test_mla(self):
        state = run_one("mla r0, r1, r2, r3", r1=3, r2=4, r3=5)
        assert state.get_reg("r0") == 17

    def test_umlal(self):
        state = run_one(
            "umlal r0, r1, r2, r3", r0=0xFFFFFFFF, r1=1, r2=0x10000, r3=0x10000
        )
        # 0x1_FFFF_FFFF + 0x1_0000_0000 = 0x2_FFFF_FFFF
        assert state.get_reg("r0") == 0xFFFFFFFF
        assert state.get_reg("r1") == 2

    def test_clz(self):
        assert run_one("clz r0, r1", r1=0x00800000).get_reg("r0") == 8

    def test_adds_sets_carry(self):
        state = run_one("adds r0, r1, r2", r1=0xFFFFFFFF, r2=1)
        assert state.get_reg("r0") == 0
        assert state.get_flag("Z") == 1
        assert state.get_flag("C") == 1

    def test_subs_no_borrow_carry(self):
        assert run_one("subs r0, r1, #3", r1=5).get_flag("C") == 1
        assert run_one("subs r0, r1, #7", r1=5).get_flag("C") == 0

    def test_adc_uses_carry(self):
        state = ConcreteState()
        state.reset_flags()
        state.set_flag("C", 1)
        state.regs.update(r1=1, r2=2)
        insn = parse_line("adc r0, r1, r2")
        ARM.defn(insn).semantics(state, insn)
        assert state.get_reg("r0") == 4

    def test_logical_s_preserves_cv(self):
        state = ConcreteState()
        state.reset_flags()
        state.set_flag("C", 1)
        state.set_flag("V", 1)
        state.regs.update(r1=1, r2=1)
        insn = parse_line("eors r0, r1, r2")
        ARM.defn(insn).semantics(state, insn)
        assert state.get_flag("Z") == 1
        assert state.get_flag("C") == 1  # preserved
        assert state.get_flag("V") == 1  # preserved

    def test_cmp_flags(self):
        state = run_one("cmp r0, r1", r0=5, r1=5)
        assert state.get_flag("Z") == 1

    def test_tst(self):
        assert run_one("tst r0, r1", r0=0b100, r1=0b011).get_flag("Z") == 1

    def test_branch_records_outcome(self):
        state = run_one("beq .L", **{})
        state2 = ConcreteState()
        state2.reset_flags()
        state2.set_flag("Z", 1)
        insn = parse_line("beq .L")
        ARM.defn(insn).semantics(state2, insn)
        assert state.branch_taken == 0
        assert state2.branch_taken == 1
        assert state2.branch_target == ".L"

    def test_push_pop_roundtrip(self):
        state = ConcreteState()
        state.reset_flags()
        state.regs.update(sp=0x8000, r4=11, r5=22)
        push = parse_line("push {r4, r5}")
        ARM.defn(push).semantics(state, push)
        assert state.get_reg("sp") == 0x8000 - 8
        state.regs.update(r4=0, r5=0)
        pop = parse_line("pop {r4, r5}")
        ARM.defn(pop).semantics(state, pop)
        assert (state.get_reg("r4"), state.get_reg("r5")) == (11, 22)
        assert state.get_reg("sp") == 0x8000

    @given(a=U32, b=U32)
    def test_add_matches_python(self, a, b):
        state = run_one("add r0, r1, r2", r1=a, r2=b)
        assert state.get_reg("r0") == (a + b) & 0xFFFFFFFF

    @given(a=U32, b=U32)
    def test_subs_flags_match_arithmetic(self, a, b):
        state = run_one("subs r0, r1, r2", r1=a, r2=b)
        diff = (a - b) & 0xFFFFFFFF
        assert state.get_reg("r0") == diff
        assert state.get_flag("Z") == int(diff == 0)
        assert state.get_flag("N") == diff >> 31
        assert state.get_flag("C") == int(a >= b)
