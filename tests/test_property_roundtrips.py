"""Property tests: assembler round-trips, rule canonicalization, stores.

These are the invariants the rule store and the experiment pipeline lean
on: text round-trips must be lossless, canonicalization must be invariant
under register renaming, and serialization must preserve rule identity.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.arm import assembler as arm_asm
from repro.isa.x86 import assembler as x86_asm
from repro.learning.rule import guest_key
from tests.strategies import arm_instructions, x86_instructions


class TestAssemblerRoundtrips:
    @settings(max_examples=300, deadline=None)
    @given(insn=arm_instructions())
    def test_arm_text_roundtrip(self, insn):
        assert arm_asm.parse_line(str(insn)) == insn

    @settings(max_examples=300, deadline=None)
    @given(insn=x86_instructions())
    def test_x86_text_roundtrip(self, insn):
        text = x86_asm.format_instruction(insn)
        assert x86_asm.parse_line(text) == insn

    @settings(max_examples=100, deadline=None)
    @given(insns=st.lists(arm_instructions(), min_size=1, max_size=6))
    def test_arm_listing_roundtrip(self, insns):
        listing = arm_asm.disassemble(tuple(insns))
        assert arm_asm.assemble(listing) == tuple(insns)

    @settings(max_examples=100, deadline=None)
    @given(insns=st.lists(x86_instructions(), min_size=1, max_size=6))
    def test_x86_listing_roundtrip(self, insns):
        listing = x86_asm.disassemble(tuple(insns))
        assert x86_asm.assemble(listing) == tuple(insns)


class TestCanonicalization:
    @settings(max_examples=200, deadline=None)
    @given(insn=arm_instructions(exclude=("push", "pop")), data=st.data())
    def test_guest_key_invariant_under_renaming(self, insn, data):
        """Renaming registers consistently never changes the rule key."""
        from repro.isa.operands import Mem, Reg
        from repro.verify.checker import collect_regs

        regs = collect_regs([insn])
        pool = [f"r{i}" for i in range(12, -1, -1) if f"r{i}" not in regs]
        renaming = {}
        for name in regs:
            renaming[name] = data.draw(st.sampled_from(pool), label=f"new:{name}")
            pool.remove(renaming[name])

        def rename(op):
            if isinstance(op, Reg) and op.name in renaming:
                return Reg(renaming[op.name])
            if isinstance(op, Mem):
                base = rename(op.base) if op.base else None
                index = rename(op.index) if op.index else None
                return Mem(base=base, index=index, disp=op.disp, scale=op.scale)
            return op

        from repro.isa.instruction import Instruction

        renamed = Instruction(insn.mnemonic, tuple(rename(o) for o in insn.operands))
        assert guest_key([insn], True) == guest_key([renamed], True)
        assert guest_key([insn], False) == guest_key([renamed], False)

    @settings(max_examples=100, deadline=None)
    @given(insn=arm_instructions(exclude=("push", "pop")))
    def test_specific_key_refines_general_key(self, insn):
        """Two windows with equal value-keys always share the general key."""
        general = guest_key([insn], False)
        specific = guest_key([insn], True)
        # Structural parts must agree (the general key is a projection).
        assert len(general) == len(specific)
        for (g_mnem, g_ops), (s_mnem, s_ops) in zip(general, specific):
            assert g_mnem == s_mnem
            assert len(g_ops) == len(s_ops)


class TestStoreRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(insn=arm_instructions(exclude=("push", "pop", "b", "bl", "bx")))
    def test_rule_survives_json(self, insn):
        """Any well-formed single-insn rule round-trips through the store."""
        import json

        from repro.isa.instruction import Instruction
        from repro.isa.operands import Imm, Reg
        from repro.learning.rule import TranslationRule
        from repro.learning.store import rule_from_dict, rule_to_dict
        from repro.verify.checker import collect_regs

        regs = collect_regs([insn])
        x86_pool = ["eax", "ecx", "edx", "ebx", "esi", "edi", "ebp"]
        mapping = {g: x86_pool[i] for i, g in enumerate(regs)}
        host = Instruction("movl", (Imm(0), Reg("eax")))
        rule = TranslationRule(
            guest=(insn,),
            host=(host,),
            reg_mapping=tuple(sorted(mapping.items())),
        )
        data = json.loads(json.dumps(rule_to_dict(rule)))
        loaded = rule_from_dict(data)
        assert loaded.guest == rule.guest
        assert loaded.reg_mapping == rule.reg_mapping
