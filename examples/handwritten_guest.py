#!/usr/bin/env python
"""Translate handwritten guest assembly — no compiler involved.

Builds a guest binary directly from ARM-like assembly text (the
Duff's-device-free way), runs it under the DBT with rules learned from the
synthetic SPEC suite, traces block execution, and prints the rule-usage
attribution report.

Run:  python examples/handwritten_guest.py
"""

from repro.analysis import origin_attribution, top_rules
from repro.dbt import DBTEngine, check_against_reference, unit_from_assembly
from repro.experiments.common import rules_full_suite
from repro.param import build_setup

GUEST = """
@ Compute a Fletcher-style checksum over a small table, then scan for the
@ maximum byte.  Handwritten: the compiler never emits code like this.
fn_main:
    mov r4, #8192          @ table base
    mov r5, #0             @ index (bytes)
    mov r6, #1             @ value seed
fill:
    str r6, [r4, r5]
    add r6, r6, r6         @ value doubles: the fig. 8 'dup' dependency
    eor r6, r6, r5
    add r5, r5, #4
    cmp r5, #128
    bcc fill

    mov r0, #0             @ sum1
    mov r1, #0             @ sum2
    mov r5, #0
sum:
    ldr r7, [r4, r5]
    add r0, r0, r7
    add r1, r1, r0
    add r5, r5, #4
    cmp r5, #128
    bcc sum

    mov r2, #0             @ max byte
    mov r5, #0
scan:
    ldrb r7, [r4, r5]
    cmp r7, r2
    bls skip
    mov r2, r7
skip:
    add r5, r5, #1
    cmp r5, #128
    bcc scan

    eor r0, r0, r1
    add r0, r0, r2
    bx lr
"""


def main() -> None:
    unit = unit_from_assembly(GUEST)

    print("loading the full-suite rule set (learns on first use)...")
    setup = build_setup(rules_full_suite())
    engine = DBTEngine(unit, setup.configs["condition"], chaining=True)

    trace = []
    result = engine.run(on_block=lambda tb, _state: trace.append(tb.start))

    ok, message = check_against_reference(unit, result)
    assert ok, message
    metrics = result.metrics
    print(f"\nresult r0          : {result.guest_reg('r0'):#010x}")
    print(f"dynamic coverage   : {100 * metrics.coverage:.1f}%")
    print(f"block executions   : {metrics.block_executions} "
          f"({100 * metrics.chain_rate:.0f}% chained)")
    print(f"distinct blocks    : {len(set(trace))}, "
          f"first five executed: {trace[:5]}\n")

    print(origin_attribution(metrics).format())
    print()
    print(top_rules(metrics, count=8).format())


if __name__ == "__main__":
    main()
