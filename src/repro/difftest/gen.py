"""Coverage-guided guest-program generation.

Programs are generated directly at the guest-assembly level (the substrate
shrinking operates on) and are *safe by construction*:

* every register is initialized by the machine's initial state, so no read
  can trap;
* all memory addresses stay inside a low arena far below the emulated CPU
  environment (:data:`repro.dbt.runtime.ENV_BASE`), so translated loads and
  stores can never alias guest architectural state;
* loops are bounded countdown idioms and branches are forward, so every
  program terminates.

Generation is *coverage-guided* over the rule-bucket space derived from
:mod:`repro.param.classify`: one bucket is a ``(pseudo-opcode, operand
shape, flag-liveness)`` triple, where the shape is the (operand-kind,
register-dependency-pattern) combination of :mod:`repro.param.shapes` and
flag liveness says whether a flag reader consumes the instruction's flags
within the translator's delegation window.  The campaign feeds the set of
not-yet-exercised buckets back into the generator, which materializes
instructions for them — so the fuzzer preferentially drives *derived*
(never-learned) rules and both sides of every flag-delegation decision.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Mem, OperandKind as K, Reg
from repro.param.classify import OPCODE_MAP
from repro.param.shapes import TargetShape, enumerate_shapes, shape_of_instruction

#: How far (in instructions) a flag reader may trail a flag setter and still
#: count as "live" — the translator's delegation window (windows are at most
#: 4 guest instructions; a reader more than 3 behind is a separate cluster).
LIVENESS_WINDOW = 3

#: (mnemonic, shape, liveness) — liveness is "live"/"dead" for flag-setting
#: opcodes and "-" for everything else.
Bucket = Tuple[str, TargetShape, str]

#: General-purpose registers the generator allocates from.  r8-r12 are kept
#: out of the pool so idiom scaffolding (loop counters, arena bases seeded in
#: the prologue) cannot be silently clobbered by target materialization.
_POOL = tuple(f"r{i}" for i in range(8))

#: Memory arena: [0x4000, 0x8000).  Doubling the base (base+index with
#: base == index) stays below 0x10000, far from both the stack top
#: (0x7FF000) and the CPU environment (0xF00000).
_ARENA_LO = 0x4000
_ARENA_HI = 0x8000

_COND_FOR = {
    frozenset({"N", "Z"}): ("eq", "ne", "mi", "pl"),
    frozenset({"N", "Z", "C", "V"}): (
        "eq", "ne", "mi", "pl", "cs", "cc", "vs", "vc",
        "ge", "lt", "gt", "le", "hi", "ls",
    ),
}


def shape_signature(shape: TargetShape) -> str:
    """Deterministic compact rendering of a target shape."""
    parts = []
    for op in shape.operands:
        if op.kind is K.MEM:
            parts.append(f"mem:{op.mem_shape}")
        else:
            parts.append(op.kind.value)
    pattern = ",".join(str(slot) for slot in shape.pattern)
    return "+".join(parts) + "|" + pattern


def bucket_id(bucket: Bucket) -> str:
    mnemonic, shape, liveness = bucket
    return f"{mnemonic}[{shape_signature(shape)}]{liveness}"


def bucket_universe() -> FrozenSet[Bucket]:
    """Every generatable (opcode, shape, liveness) combination."""
    buckets: Set[Bucket] = set()
    for mnemonic in OPCODE_MAP:
        if mnemonic not in ARM.defs:
            continue
        tags = ("live", "dead") if ARM.defs[mnemonic].flags_set else ("-",)
        for shape in enumerate_shapes(mnemonic):
            for tag in tags:
                buckets.add((mnemonic, shape, tag))
    return frozenset(buckets)


def program_buckets(instructions: Sequence[Instruction]) -> Set[Bucket]:
    """Buckets a concrete guest instruction sequence exercises."""
    real = [insn for insn in instructions if insn.mnemonic != ".label"]
    defs = [ARM.defn(insn) for insn in real]
    buckets: Set[Bucket] = set()
    for i, (insn, defn) in enumerate(zip(real, defs)):
        if insn.mnemonic not in OPCODE_MAP:
            continue
        try:
            shape = shape_of_instruction(insn)
        except (ValueError, AttributeError):
            continue
        if not defn.flags_set:
            buckets.add((insn.mnemonic, shape, "-"))
            continue
        live = False
        remaining = set(defn.flags_set)
        for j in range(i + 1, min(i + 1 + LIVENESS_WINDOW, len(real))):
            if defs[j].flags_read & remaining:
                live = True
                break
            remaining -= defs[j].flags_set
            if not remaining:
                break
        buckets.add((insn.mnemonic, shape, "live" if live else "dead"))
    return buckets


class BucketCoverage:
    """Tracks which buckets of the universe have been exercised."""

    def __init__(self, universe: Optional[Iterable[Bucket]] = None) -> None:
        self.universe: FrozenSet[Bucket] = (
            frozenset(universe) if universe is not None else bucket_universe()
        )
        self.exercised: Set[Bucket] = set()

    def note(self, buckets: Iterable[Bucket]) -> None:
        self.exercised |= set(buckets) & self.universe

    def unexercised(self) -> List[Bucket]:
        """Deterministically ordered not-yet-hit buckets."""
        return sorted(self.universe - self.exercised, key=bucket_id)

    @property
    def hit_count(self) -> int:
        return len(self.exercised)

    @property
    def total(self) -> int:
        return len(self.universe)

    def summary(self) -> str:
        return f"{self.hit_count}/{self.total} buckets"


@dataclass
class GeneratedProgram:
    """One generated guest program plus its generation metadata."""

    index: int
    lines: Tuple[str, ...]
    targeted: Tuple[Bucket, ...] = ()

    @property
    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class ProgramGenerator:
    """Seeded generator; each program index yields a reproducible program."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def rng_for(self, index: int) -> random.Random:
        # Independent, reproducible stream per program.
        return random.Random((self.seed + 1) * 0x9E3779B1 + index)

    def generate(
        self, index: int, targets: Sequence[Bucket] = ()
    ) -> GeneratedProgram:
        rng = self.rng_for(index)
        builder = _ProgramBuilder(rng, index)
        builder.prologue()
        events: List = [("target", t) for t in targets]
        for _ in range(rng.randint(6, 12)):
            events.append(("filler", None))
        rng.shuffle(events)
        for kind, payload in events:
            if kind == "target":
                builder.emit_target(payload)
            else:
                builder.emit_filler_event()
        builder.epilogue()
        return GeneratedProgram(
            index=index, lines=tuple(builder.lines), targeted=tuple(targets)
        )


class _ProgramBuilder:
    def __init__(self, rng: random.Random, index: int) -> None:
        self.rng = rng
        self.index = index
        self.lines: List[str] = []
        self.label_counter = 0

    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def fresh_label(self) -> str:
        self.label_counter += 1
        return f"L{self.index}_{self.label_counter}"

    def reg(self) -> str:
        return self.rng.choice(_POOL)

    def imm(self) -> int:
        r = self.rng.random()
        if r < 0.3:
            return self.rng.randint(0, 15)
        if r < 0.6:
            return self.rng.randint(16, 4095)
        if r < 0.8:
            return self.rng.randint(-2048, -1)
        return self.rng.choice((0xFF, 0xFFFF, 0x7FFFFFFF, 0xFFFFFFFF, 0x80000000))

    def arena_addr(self) -> int:
        return self.rng.randrange(_ARENA_LO, _ARENA_HI, 4)

    # -- program skeleton ---------------------------------------------------

    def prologue(self) -> None:
        for name in _POOL:
            self.emit(f"mov {name}, #{self.imm() & 0xFFFFFFFF}")
        # Seed a few arena words so loads observe nonzero data.
        self.emit(f"mov r8, #{_ARENA_LO}")
        for k in range(4):
            src = self.rng.choice(_POOL)
            self.emit(f"str {src}, [r8, #{4 * k}]")

    def epilogue(self) -> None:
        self.emit("bx lr")

    # -- filler -------------------------------------------------------------

    def filler_insn(self) -> str:
        """One flag-neutral data instruction (sets and reads no flags)."""
        op = self.rng.choice(
            ("add", "sub", "and", "orr", "eor", "mov", "mvn", "lsl", "lsr", "asr")
        )
        dest = self.reg()
        if op in ("mov", "mvn"):
            if self.rng.random() < 0.5:
                return f"{op} {dest}, {self.reg()}"
            return f"{op} {dest}, #{self.imm()}"
        if op in ("lsl", "lsr", "asr"):
            return f"{op} {dest}, {self.reg()}, #{self.rng.randint(1, 31)}"
        if self.rng.random() < 0.4:
            return f"{op} {dest}, {self.reg()}, #{self.imm()}"
        return f"{op} {dest}, {self.reg()}, {self.reg()}"

    def emit_filler_event(self) -> None:
        roll = self.rng.random()
        if roll < 0.55:
            self.emit(self.filler_insn())
        elif roll < 0.7:
            self._emit_branch_idiom()
        elif roll < 0.8:
            self._emit_loop_idiom()
        elif roll < 0.9:
            self._emit_pc_read()
        else:
            self._emit_special()

    def _emit_branch_idiom(self) -> None:
        label = self.fresh_label()
        cond = self.rng.choice(
            ("eq", "ne", "mi", "pl", "cs", "cc", "ge", "lt", "hi", "ls")
        )
        self.emit(f"b{cond} {label}")
        for _ in range(self.rng.randint(1, 2)):
            self.emit(self.filler_insn())
        self.lines.append(f"{label}:")

    def _emit_loop_idiom(self) -> None:
        label = self.fresh_label()
        counter = "r9"
        self.emit(f"mov {counter}, #{self.rng.randint(2, 4)}")
        self.lines.append(f"{label}:")
        for _ in range(self.rng.randint(1, 2)):
            self.emit(self.filler_insn())
        self.emit(f"subs {counter}, {counter}, #1")
        self.emit(f"bne {label}")

    def _emit_pc_read(self) -> None:
        dest = self.reg()
        choice = self.rng.random()
        if choice < 0.4:
            self.emit(f"add {dest}, pc, #{self.rng.randrange(0, 64, 4)}")
        elif choice < 0.7:
            self.emit(f"sub {dest}, pc, #{self.rng.randrange(0, 64, 4)}")
        else:
            self.emit(f"mov {dest}, pc")

    def _emit_special(self) -> None:
        roll = self.rng.random()
        if roll < 0.35:
            dest = self.reg()
            self.emit(f"clz {dest}, {self.reg()}")
        elif roll < 0.6:
            a, b = self.rng.sample(_POOL, 2)
            self.emit(f"mla {a}, {b}, {self.reg()}, {self.reg()}")
        elif roll < 0.8:
            lo, hi, m, s = self.rng.sample(_POOL, 4)
            self.emit(f"umlal {lo}, {hi}, {m}, {s}")
        else:
            a, b = sorted(self.rng.sample(_POOL, 2), key=lambda r: int(r[1:]))
            self.emit(f"push {{{a}, {b}}}")
            self.emit(self.filler_insn())
            self.emit(f"pop {{{a}, {b}}}")

    # -- target materialization ---------------------------------------------

    def emit_target(self, bucket: Bucket) -> None:
        mnemonic, shape, liveness = bucket
        defn = ARM.defs[mnemonic]
        slots = self._slot_registers(shape)
        text = self._materialize(mnemonic, shape, slots)
        if text is None:
            return
        self.emit(text)
        if liveness == "live":
            self._emit_flag_reader(defn.flags_set)
        elif liveness == "dead":
            # Clobber all four flags before anything can read the target's:
            # a flag-neutral filler would leave them observable downstream.
            self.emit(f"cmp {self.reg()}, #{self.rng.randint(0, 15)}")

    def _slot_registers(self, shape: TargetShape) -> List[str]:
        count = shape.distinct_regs
        return self.rng.sample(_POOL, count) if count else []

    def _materialize(
        self, mnemonic: str, shape: TargetShape, slots: List[str]
    ) -> Optional[str]:
        """Emit safety setup and return the target instruction's text."""
        is_shift = mnemonic.rstrip("s") in ("lsl", "lsr", "asr") and mnemonic in (
            "lsl", "lsls", "lsr", "lsrs", "asr", "asrs",
        )
        byte_sized = mnemonic in ("ldrb", "strb", "ldrh", "strh")
        slot_iter = iter(shape.pattern)
        operands: List[str] = []
        mem_base: Optional[str] = None
        mem_index: Optional[str] = None
        for op_shape in shape.operands:
            if op_shape.kind is K.REG:
                operands.append(slots[next(slot_iter)])
            elif op_shape.kind is K.IMM:
                if is_shift:
                    operands.append(f"#{self.rng.randint(1, 31)}")
                else:
                    operands.append(f"#{self.imm()}")
            elif op_shape.kind is K.MEM:
                base = slots[next(slot_iter)]
                mem_base = base
                if op_shape.mem_shape == "base":
                    operands.append(f"[{base}]")
                elif op_shape.mem_shape == "base+disp":
                    if byte_sized:
                        disp = self.rng.randint(1, 255)
                    else:
                        disp = self.rng.randrange(4, 1024, 4)
                    operands.append(f"[{base}, #{disp}]")
                else:  # base+index
                    idx = slots[next(slot_iter)]
                    mem_index = idx
                    operands.append(f"[{base}, {idx}]")
            else:
                return None
        # Safety setup: the base register must point into the arena and the
        # index must be a small offset, *at the moment of the access*.
        if mem_base is not None:
            self.emit(f"mov {mem_base}, #{self.arena_addr()}")
            if mem_index is not None and mem_index != mem_base:
                self.emit(f"mov {mem_index}, #{self.rng.randrange(0, 1024, 4)}")
            if ARM.defs[mnemonic].subgroup.value == "load" and self.rng.random() < 0.6:
                # Store a known value first so the load reads nonzero data.
                self.emit(f"str {self.reg()}, [{mem_base}]" if mem_index is None
                          else f"str {self.reg()}, [{mem_base}, {mem_index}]")
        return f"{mnemonic} " + ", ".join(operands)

    def _emit_flag_reader(self, flags_set: FrozenSet[str]) -> None:
        """Consume just-set flags within the delegation window."""
        for _ in range(self.rng.randint(0, 2)):
            self.emit(self.filler_insn())
        conds = _COND_FOR.get(frozenset(flags_set))
        use_carry_alu = "C" in flags_set and self.rng.random() < 0.3
        if use_carry_alu:
            op = self.rng.choice(("adc", "sbc", "rsc"))
            self.emit(f"{op} {self.reg()}, {self.reg()}, {self.reg()}")
            return
        if conds is None:
            # Flag sets other than NZ / NZCV do not occur in the guest ISA,
            # but fall back to a Z-reader rather than crash.
            conds = ("eq", "ne")
        label = self.fresh_label()
        self.emit(f"b{self.rng.choice(conds)} {label}")
        self.emit(self.filler_insn())
        self.lines.append(f"{label}:")
