"""Tests for the closure-compiled row evaluators.

The load-bearing property: the generated straight-line code agrees with the
reference interpreter (:func:`repro.symir.evaluate.evaluate`) on every
operator, width quirk (shift overflow, signed compares, narrow symbols),
and sharing structure.
"""

from hypothesis import given, settings, strategies as st

from repro.symir import BinOp, Const, Sym, UnOp, evaluate
from repro.symir.expr import (
    BINARY_OPS,
    COMPARISON_OPS,
    UNARY_OPS,
    Ite,
    ZeroExt,
)
from repro.symir.rowcompile import pair_evaluator, row_evaluator

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

_NAMES = ("a", "b", "c")
_ARITH_OPS = sorted(BINARY_OPS - COMPARISON_OPS)
_CMP_OPS = sorted(COMPARISON_OPS)


def exprs():
    """Random well-formed 32-bit expressions (comparisons re-widened).

    Leaves are constructed at draw time, not strategy-build time: a Sym
    captured across a ``clear_all_caches()`` belongs to a dead interning
    epoch, and composites interned over it would break the ``is``-identity
    guarantee for later same-epoch nodes.
    """
    leaf = st.one_of(
        st.sampled_from(_NAMES).map(Sym),
        U32.map(lambda v: Const(v)),
    )

    def extend(children):
        binary = st.builds(
            BinOp, st.sampled_from(_ARITH_OPS), children, children
        )
        unary = st.builds(UnOp, st.sampled_from(sorted(UNARY_OPS)), children)
        compare = st.builds(
            BinOp, st.sampled_from(_CMP_OPS), children, children
        )
        widened = compare.map(lambda cmp: ZeroExt(cmp, 32))
        selected = st.builds(Ite, compare, children, children)
        return st.one_of(binary, unary, widened, selected)

    return st.recursive(leaf, extend, max_leaves=8)


rows_strategy = st.lists(
    st.tuples(U32, U32, U32), min_size=1, max_size=8
)


class TestRowEvaluator:
    @settings(max_examples=200, deadline=None)
    @given(expr=exprs(), rows=rows_strategy)
    def test_matches_interpreter(self, expr, rows):
        fn = row_evaluator(expr, _NAMES)
        expected = [evaluate(expr, dict(zip(_NAMES, row))) for row in rows]
        assert fn(rows) == expected

    def test_constant_expression_no_symbols(self):
        fn = row_evaluator(Const(7), ())
        assert fn([()]) == [7]

    def test_narrow_symbol_masks_on_read(self):
        narrow = Sym("a", 8)
        fn = row_evaluator(narrow, ("a",))
        assert fn([(0x1FF,)]) == [0xFF]


class TestPairEvaluator:
    @settings(max_examples=200, deadline=None)
    @given(lhs=exprs(), rhs=exprs(), rows=rows_strategy)
    def test_first_difference_matches_interpreter(self, lhs, rhs, rows):
        fn = pair_evaluator(lhs, rhs, _NAMES)
        expected = -1
        for i, row in enumerate(rows):
            env = dict(zip(_NAMES, row))
            if evaluate(lhs, env) != evaluate(rhs, env):
                expected = i
                break
        assert fn(rows) == expected

    @settings(max_examples=50, deadline=None)
    @given(expr=exprs(), rows=rows_strategy)
    def test_identical_sides_never_differ(self, expr, rows):
        fn = pair_evaluator(expr, expr, _NAMES)
        assert fn(rows) == -1

    def test_consumes_rows_lazily(self):
        lhs, rhs = Sym("a"), Const(0)
        fn = pair_evaluator(lhs, rhs, ("a",))
        consumed = []

        def rows():
            for value in (0, 0, 5, 0, 0):
                consumed.append(value)
                yield (value,)

        assert fn(rows()) == 2
        assert consumed == [0, 0, 5], "scan must stop at the first difference"
