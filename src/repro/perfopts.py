"""Runtime toggle for the offline-pipeline performance optimizations.

The verification fast paths (hoisted guest runs, probe-based mapping
pruning, process-wide equivalence/simplification memos — see
:mod:`repro.verify.checker`) are result-identical to the straightforward
per-mapping algorithm, so they are always on in normal operation.  The
toggle exists so the offline benchmark (``repro bench --offline``) can
measure the legacy algorithm in the same process, and so a divergence
suspected to involve the fast paths can be bisected from the environment
(``REPRO_PERF_LEGACY=1``) without a code change.

Expression interning (:mod:`repro.symir.expr`) is structural and cannot be
toggled; legacy-mode timings are therefore *conservative* — the measured
speedup understates the distance to the pre-interning baseline.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_OPTIMIZED = True

#: Snapshot of ``REPRO_PERF_LEGACY`` taken at import — :func:`optimized` is
#: called on hot paths, so it cannot afford an environ lookup per call.
_ENV_LEGACY = bool(os.environ.get("REPRO_PERF_LEGACY"))


def optimized() -> bool:
    """Whether the verification fast paths are active."""
    return _OPTIMIZED and not _ENV_LEGACY


def set_optimized(flag: bool) -> None:
    global _OPTIMIZED
    _OPTIMIZED = bool(flag)


@contextmanager
def legacy_mode() -> Iterator[None]:
    """Temporarily run the legacy verification algorithm (bench baseline)."""
    previous = _OPTIMIZED
    set_optimized(False)
    try:
        yield
    finally:
        set_optimized(previous)
