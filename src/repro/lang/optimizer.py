"""Source-level optimizer (shared by both backends).

Runs before code generation so both ISAs compile the *same* optimized AST —
mirroring how a production compiler's middle-end optimizations affect both
targets.  The passes also reproduce the debug-info degradation the paper
leans on (§II-B): statements the optimizer deletes produce no binary code
and therefore never become rule candidates.

Passes:

* constant folding (``x = 3 + 4`` -> ``x = 7``);
* algebraic identities (``x + 0``, ``x * 1``, ``x ^ 0`` ...);
* dead-assignment elimination (function-level: a variable never read).
"""

from __future__ import annotations

from typing import List, Set

from repro.lang import ast
from repro.semantics.domain import WORD_MASK


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def fold_binop(op: str, a: int, b: int) -> int:
    a &= WORD_MASK
    b &= WORD_MASK
    if op == "+":
        return (a + b) & WORD_MASK
    if op == "-":
        return (a - b) & WORD_MASK
    if op == "*":
        return (a * b) & WORD_MASK
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "&~":
        return a & ~b & WORD_MASK
    if op == "<<":
        return (a << b) & WORD_MASK if b < 32 else 0
    if op == ">>>":
        return a >> b if b < 32 else 0
    if op == ">>":
        return (_to_signed(a) >> min(b, 31)) & WORD_MASK
    raise ValueError(f"unknown op {op!r}")


def fold_expr(expr):
    """Constant folding + algebraic identities on one expression."""
    if isinstance(expr, ast.BinE):
        lhs, rhs = expr.lhs, expr.rhs
        if isinstance(lhs, ast.ConstE) and isinstance(rhs, ast.ConstE):
            return ast.ConstE(fold_binop(expr.op, lhs.value, rhs.value))
        if isinstance(rhs, ast.ConstE):
            if rhs.value == 0 and expr.op in ("+", "-", "|", "^", "<<", ">>", ">>>"):
                return lhs
            if rhs.value == 1 and expr.op == "*":
                return lhs
            if rhs.value == 0 and expr.op in ("&", "*"):
                return ast.ConstE(0)
        if isinstance(lhs, ast.ConstE):
            if lhs.value == 0 and expr.op in ("+", "|", "^"):
                return rhs
            if lhs.value == 0 and expr.op in ("&", "*"):
                return ast.ConstE(0)
            if lhs.value == 1 and expr.op == "*":
                return rhs
        return expr
    if isinstance(expr, ast.UnE) and isinstance(expr.operand, ast.ConstE):
        value = expr.operand.value & WORD_MASK
        if expr.op == "~":
            return ast.ConstE(~value & WORD_MASK)
        if expr.op == "-":
            return ast.ConstE(-value & WORD_MASK)
        if expr.op == "clz":
            for i in range(31, -1, -1):
                if value & (1 << i):
                    return ast.ConstE(31 - i)
            return ast.ConstE(32)
    if isinstance(expr, ast.MlaE):
        if isinstance(expr.lhs, ast.ConstE) and isinstance(expr.rhs, ast.ConstE):
            product = ast.ConstE(fold_binop("*", expr.lhs.value, expr.rhs.value))
            return fold_expr(ast.BinE("+", expr.addend, product))
    return expr


def _read_vars(func: ast.Function) -> Set[str]:
    """Variables whose value is observed somewhere in the function."""
    reads: Set[str] = set()

    def note(atom) -> None:
        if isinstance(atom, ast.VarE):
            reads.add(atom.name)

    for stmt in func.body:
        if isinstance(stmt, ast.Assign):
            ast.visit_expr(stmt.expr, note)
        elif isinstance(stmt, ast.Store):
            note(stmt.index.base)
            note(stmt.value)
        elif isinstance(stmt, ast.IfGoto):
            note(stmt.cond.lhs)
            note(stmt.cond.rhs)
        elif isinstance(stmt, ast.IfTestGoto):
            note(stmt.source)
        elif isinstance(stmt, ast.FusedAluGoto):
            reads.add(stmt.dest)
            note(stmt.rhs)
        elif isinstance(stmt, ast.Call):
            for arg in stmt.args:
                note(arg)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            note(stmt.value)
        elif isinstance(stmt, ast.UmlalStmt):
            reads.add(stmt.lo)
            reads.add(stmt.hi)
            note(stmt.lhs)
            note(stmt.rhs)
    return reads


def optimize_function(func: ast.Function) -> ast.Function:
    body: List[object] = []
    for stmt in func.body:
        if isinstance(stmt, ast.Assign):
            stmt = ast.Assign(stmt.dest, fold_expr(stmt.expr))
        body.append(stmt)
    func = ast.Function(func.name, func.params, body)

    # Dead-assignment elimination to a fixpoint.
    while True:
        reads = _read_vars(func)
        kept: List[object] = []
        removed = 0
        for stmt in func.body:
            if isinstance(stmt, ast.Assign) and stmt.dest not in reads:
                removed += 1
                continue
            kept.append(stmt)
        func = ast.Function(func.name, func.params, kept)
        if not removed:
            break
    return func


def optimize(program: ast.Program) -> ast.Program:
    optimized = ast.Program(globals=dict(program.globals))
    for func in program.functions.values():
        optimized.add_function(optimize_function(func))
    return optimized
