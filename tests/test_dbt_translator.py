"""Tests for block translation: categories, coverage, flag policies."""

import pytest

from repro.dbt import BlockMap, BlockTranslator, TranslationConfig
from repro.dbt.runtime import DISPATCH_LABEL
from repro.isa.x86.opcodes import X86
from repro.lang import compile_pair

LOOP_SOURCE = """global data[64]; global out[8];
func main() {
  var i, s, x;
  i = 0; s = 0;
loop:
  x = data[i];
  s = s + x;
  i = i + 4;
  if (i <u 32) goto loop;
  out[0] = s;
  return s;
}"""


def translate_all(source, config):
    pair = compile_pair("t", source)
    blockmap = BlockMap(pair.guest)
    translator = BlockTranslator(pair.guest, blockmap, config)
    return pair, [translator.translate(b) for b in blockmap.blocks]


class TestQemuConfig:
    def test_nothing_covered(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        assert all(not any(tb.covered) for tb in blocks)

    def test_categories_well_formed(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        for tb in blocks:
            assert set(tb.categories) <= {"rule", "tcg", "data", "control"}
            assert "rule" not in set(tb.categories)

    def test_blocks_end_with_dispatch(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        for tb in blocks:
            last = tb.host[-1]
            assert last.mnemonic == "jmp"
            assert last.operands[0].name == DISPATCH_LABEL

    def test_exit_stubs_counted_as_control(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        for tb in blocks:
            assert tb.categories[-1] == "control"

    def test_conditional_blocks_have_two_exits(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        conditional = [tb for tb in blocks if "__exit_taken" in tb.labels]
        assert conditional
        for tb in conditional:
            assert sum(1 for i in tb.host if i.mnemonic == "jmp") == 2

    def test_data_transfer_loads_before_body(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        for tb in blocks:
            cats = list(tb.categories)
            if "data" in cats and "tcg" in cats:
                assert cats.index("data") < cats.index("tcg")

    def test_all_host_instructions_are_defined(self):
        _, blocks = translate_all(LOOP_SOURCE, TranslationConfig("qemu"))
        for tb in blocks:
            for insn in tb.host:
                X86.defn(insn)


class TestRuleConfigs:
    def test_learned_rules_increase_coverage(self, demo_pair, demo_setup):
        blockmap = BlockMap(demo_pair.guest)
        baseline = BlockTranslator(
            demo_pair.guest, blockmap, demo_setup.configs["wopara"]
        )
        covered = sum(
            sum(baseline.translate(b).covered) for b in blockmap.blocks
        )
        assert covered > 0

    def test_stage_coverage_monotone(self, demo_pair, demo_setup):
        blockmap = BlockMap(demo_pair.guest)
        totals = []
        for stage in ("qemu", "wopara", "opcode", "addrmode", "condition"):
            translator = BlockTranslator(
                demo_pair.guest, blockmap, demo_setup.configs[stage]
            )
            totals.append(
                sum(sum(translator.translate(b).covered) for b in blockmap.blocks)
            )
        assert totals == sorted(totals)

    def test_eager_flag_policy_spills(self, demo_pair, demo_setup):
        """Non-condition configs spill rule-set flags to the environment."""
        blockmap = BlockMap(demo_pair.guest)
        translator = BlockTranslator(
            demo_pair.guest, blockmap, demo_setup.configs["wopara"]
        )
        stf_count = 0
        for block in blockmap.blocks:
            tb = translator.translate(block)
            for insn, cat in zip(tb.host, tb.categories):
                if cat == "rule" and insn.mnemonic.startswith("st") and insn.mnemonic.endswith("f"):
                    stf_count += 1
        assert stf_count > 0

    def test_condition_config_elides_flag_memory(self, demo_pair, demo_setup):
        """Delegation removes most flag spills (the paper's optimization)."""
        blockmap = BlockMap(demo_pair.guest)

        def flag_glue(stage):
            translator = BlockTranslator(
                demo_pair.guest, blockmap, demo_setup.configs[stage]
            )
            count = 0
            for block in blockmap.blocks:
                tb = translator.translate(block)
                count += sum(
                    1
                    for insn in tb.host
                    if insn.mnemonic.endswith("f")
                    and insn.mnemonic[:2] in ("st", "ld")
                )
            return count

        assert flag_glue("condition") < flag_glue("wopara")

    def test_covered_instruction_count_matches_blocks(self, demo_pair, demo_setup):
        blockmap = BlockMap(demo_pair.guest)
        translator = BlockTranslator(
            demo_pair.guest, blockmap, demo_setup.configs["condition"]
        )
        for block in blockmap.blocks:
            tb = translator.translate(block)
            assert len(tb.covered) == block.size == tb.guest_count


class TestPcConstraint:
    SOURCE = """global g[64]; global out[8];
    func main() { var i, x; i = 4; g[i] = 9; x = g[i]; out[0] = x; return x; }"""

    def test_pc_operand_needs_capability(self, demo_rules):
        from repro.param import build_setup

        pair = compile_pair("t", self.SOURCE, pic=True)
        setup = build_setup(demo_rules)
        blockmap = BlockMap(pair.guest)

        def pic_covered(stage):
            translator = BlockTranslator(pair.guest, blockmap, setup.configs[stage])
            total = 0
            for block in blockmap.blocks:
                tb = translator.translate(block)
                for k, insn in enumerate(blockmap.instructions(block)):
                    uses_pc = any(getattr(op, "name", "") == "pc" for op in insn.operands)
                    if uses_pc and tb.covered[k]:
                        total += 1
            return total

        assert pic_covered("opcode") == 0
        assert pic_covered("condition") > 0
