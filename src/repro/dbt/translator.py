"""Block translation: rules where possible, TCG fallback elsewhere.

One :class:`BlockTranslator` embodies one system configuration:

* ``qemu``      — no rules: everything through the TCG path;
* ``w/o para``  — learned rules only (the enhanced learning baseline [16]);
* ``+opcode`` / ``+addrmode`` — learned + derived rules, but derived rules
  apply only to instructions that set no flags (parameterized rules carry no
  verified flag behaviour until the condition stage, §IV-B);
* ``+condition`` — full system: condition-flag delegation, flag
  recomputation auxiliaries, and memory-backed flag emulation (§IV-D).

Flag machinery.  Within a block, flag *clusters* (a flag-setting instruction
plus the readers of those flags before the next setter) are resolved
jointly:

* if the setter's rule produces the needed flags equivalently, no reader
  rule is missing, and no intervening host code clobbers them, the host
  flags carry the guest flags (delegation via host flags);
* otherwise, with the condition stage enabled, the translator recomputes
  recomputable flags (``testl dst`` for N/Z), spills to the flag slots of
  the CPU environment (``st<f>f``), and lets readers reload (``ld<f>f``) —
  the paper's memory-location fallback;
* without the condition stage the whole cluster falls back to the TCG path,
  which keeps flags in the environment unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dbt import tcg
from repro.dbt.block import Block, BlockMap
from repro.dbt.runtime import (
    DISPATCH_LABEL,
    env_flag_mem,
    env_pc_mem,
    env_reg_mem,
    guest_reg,
    scratch_reg,
)
from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.errors import RuleError
from repro.isa.x86.opcodes import X86
from repro.learning.rule import window_key_prefixes, window_keys
from repro.learning.ruleset import RuleSet

CAT_RULE = "rule"
CAT_TCG = "tcg"
CAT_DATA = "data"
CAT_CONTROL = "control"

_EXIT_TAKEN = "__exit_taken"
_PC_PLACEHOLDER = "r_pc"

#: Memo sentinel: ``None`` is a valid (negative) lookup resolution.
_UNRESOLVED = object()


@dataclass
class TranslationConfig:
    """Capabilities of one DBT configuration."""

    name: str
    rules: Optional[RuleSet] = None
    #: condition-flag delegation + memory emulation (the "condition" stage).
    condition: bool = False
    #: materialize PC reads so parameterized rules apply (fig. 9 constraint).
    pc_constraint: bool = False
    #: hand-written rules for the paper's seven unlearnable instructions
    #: (§V-B2: "they can be added manually into the translation rules with
    #: very minimal engineering effort ... 100% coverage can be achieved").
    #: The manual translations are the hand-written lowerings the TCG path
    #: uses, applied as rules (covered, rule-categorized).
    manual_other: bool = False


@dataclass
class TranslatedBlock:
    start: int
    guest_count: int
    host: Tuple[Instruction, ...]
    categories: Tuple[str, ...]
    labels: Dict[str, int]
    covered: Tuple[bool, ...]
    #: (rule, guest-instruction count) per applied rule window, in block
    #: order — the raw material for runtime rule-usage accounting.
    applied: Tuple[Tuple[object, int], ...] = ()
    #: translate-time aggregates so the engine's per-execution accounting is
    #: O(1) per block instead of re-summing ``covered``/``applied``.
    covered_count: int = field(init=False, default=0)
    rule_agg: Tuple[Tuple[object, int], ...] = field(init=False, default=())

    def __post_init__(self) -> None:
        self.covered_count = sum(self.covered)
        agg: Dict[object, int] = {}
        for rule, length in self.applied:
            agg[rule] = agg.get(rule, 0) + length
        self.rule_agg = tuple(agg.items())

    @property
    def host_count(self) -> int:
        return len(self.host)


@dataclass
class _Segment:
    pos: int
    length: int
    rule: Optional[object] = None  # TranslationRule
    window: Optional[Tuple[Instruction, ...]] = None  # lookup window (pc-rewritten)
    pc_value: Optional[int] = None
    #: flag handling annotations filled by cluster resolution.
    reader_ldf: Set[str] = field(default_factory=set)
    post_testl: bool = False
    post_stf: Set[str] = field(default_factory=set)

    @property
    def end(self) -> int:
        return self.pos + self.length


class BlockTranslator:
    def __init__(
        self,
        unit,
        blockmap: BlockMap,
        config: TranslationConfig,
        legacy_lookup: bool = False,
    ) -> None:
        self.unit = unit
        self.blockmap = blockmap
        self.config = config
        self.live_in_global = blockmap.live_in_flags()
        #: pre-fast-path lookup (two canonicalization passes per window, no
        #: memo); kept as the honest baseline for ``repro bench --distill``.
        self.legacy_lookup = legacy_lookup
        self._window_rules: Dict[Tuple[Instruction, ...], object] = {}
        self._lookup_canonical = getattr(config.rules, "lookup_canonical", None)
        #: window-length cap, computed once per translator — the legacy
        #: baseline recomputes it per block (``max()`` over every rule),
        #: which on real rule sets is a measurable share of translate time.
        self._max_window = (
            min(config.rules.max_guest_length(), 4)
            if config.rules is not None
            else 0
        )

    # -- planning ---------------------------------------------------------------

    def _lookup_rule(self, lookup: Tuple[Instruction, ...]):
        """Rule for a (pc-rewritten) window: fingerprint once, memo forever.

        The canonical key pair is computed in a single pass
        (:func:`window_keys`) and the resolution — rule or ``None`` — is
        memoized on the window tuple.  Lookup is purely content-based, so a
        resolution is valid for every block of this translator's run; PC
        windows are safe too because the memo key is the *rewritten* window
        (placeholder register, no concrete address).
        """
        lookup_canonical = self._lookup_canonical
        if self.legacy_lookup:
            rules = self.config.rules
            legacy = getattr(rules, "lookup_legacy", None)
            return legacy(lookup) if legacy is not None else rules.lookup(lookup)
        if lookup_canonical is None:
            return self.config.rules.lookup(lookup)
        memo = self._window_rules
        rule = memo.get(lookup, _UNRESOLVED)
        if rule is _UNRESOLVED:
            try:
                general, specific = window_keys(lookup)
            except RuleError:
                rule = None
            else:
                rule = lookup_canonical(general, specific)
            memo[lookup] = rule
        return rule

    def _pc_rewrite(
        self, window: Tuple[Instruction, ...], abs_index: int
    ) -> Tuple[Optional[Tuple[Instruction, ...]], Optional[int]]:
        """Rewrite PC operands for rule lookup (fig. 9 constraint)."""
        uses_pc = any(
            isinstance(op, Reg) and op.name == "pc"
            for insn in window
            for op in insn.operands
        )
        if not uses_pc:
            return window, None
        if not self.config.pc_constraint or len(window) != 1:
            return None, None
        insn = window[0]
        operands = tuple(
            Reg(_PC_PLACEHOLDER) if isinstance(op, Reg) and op.name == "pc" else op
            for op in insn.operands
        )
        return (Instruction(insn.mnemonic, operands),), abs_index * 4 + 8

    def _match_fast(
        self,
        insns: Sequence[Instruction],
        defs,
        pc_flags,
        block: Block,
        i: int,
        limit: int,
    ) -> Optional[_Segment]:
        """Longest-match probe at position ``i`` on the fast path.

        All candidate lengths share one :func:`window_key_prefixes` walk
        (computed lazily, only when the memo has no answer), so a position
        is fingerprinted once no matter how many window lengths get probed.
        PC-using windows keep the rewrite-then-memo route — their lookup
        window differs from the raw slice.
        """
        lookup_canonical = self._lookup_canonical
        memo = self._window_rules
        prefixes = None
        for length in range(limit, 0, -1):
            if any(defs[i + k].is_branch for k in range(length - 1)):
                continue
            last = defs[i + length - 1]
            if last.is_branch and last.cond is None:
                continue  # unconditional transfers go through exits
            window = tuple(insns[i : i + length])
            if any(pc_flags[i + k] for k in range(length)):
                lookup, pc_value = self._pc_rewrite(window, block.start + i)
                if lookup is None:
                    continue
                rule = self._lookup_rule(lookup)
                if rule is not None:
                    return _Segment(i, length, rule, lookup, pc_value)
                continue
            rule = memo.get(window, _UNRESOLVED)
            if rule is _UNRESOLVED:
                if prefixes is None:
                    prefixes = window_key_prefixes(window)
                if length <= len(prefixes):
                    general, specific = prefixes[length - 1]
                    rule = lookup_canonical(general, specific)
                else:
                    rule = None
                memo[window] = rule
            if rule is not None:
                return _Segment(i, length, rule, window, None)
        return None

    def _plan(self, insns: Sequence[Instruction], block: Block) -> List[_Segment]:
        rules = self.config.rules
        defs = [ARM.defn(i) for i in insns]
        segments: List[_Segment] = []
        i = 0
        n = len(insns)
        fast = not self.legacy_lookup and self._lookup_canonical is not None
        if fast or rules is None:
            max_len = self._max_window
        else:
            # Seed pipeline, kept verbatim as the ``bench --distill``
            # legacy baseline: window cap recomputed per block.
            max_len = min(rules.max_guest_length(), 4)
        pc_flags = None
        if fast and rules is not None:
            pc_flags = [
                any(
                    isinstance(op, Reg) and op.name == "pc"
                    for op in insn.operands
                )
                for insn in insns
            ]
        while i < n:
            segment = None
            if rules is not None:
                limit = min(max_len, n - i)
                if fast:
                    segment = self._match_fast(
                        insns, defs, pc_flags, block, i, limit
                    )
                else:
                    for length in range(limit, 0, -1):
                        if any(defs[i + k].is_branch for k in range(length - 1)):
                            continue
                        last = defs[i + length - 1]
                        if last.is_branch and last.cond is None:
                            continue  # unconditional transfers exit instead
                        window = tuple(insns[i : i + length])
                        lookup, pc_value = self._pc_rewrite(
                            window, block.start + i
                        )
                        if lookup is None:
                            continue
                        rule = self._lookup_rule(lookup)
                        if rule is not None:
                            segment = _Segment(i, length, rule, lookup, pc_value)
                            break
            segments.append(segment or _Segment(i, 1))
            i += segments[-1].length
        return segments

    # -- flag clusters -------------------------------------------------------------

    def _window_set_flags(self, segment: _Segment, defs) -> frozenset:
        flags = frozenset()
        for k in range(segment.pos, segment.end):
            flags |= defs[k].flags_set
        return flags

    def _entry_read_flags(self, segment: _Segment, defs) -> frozenset:
        """Flags a window reads before setting them (its flag inputs)."""
        reads = set()
        written = set()
        for k in range(segment.pos, segment.end):
            reads |= defs[k].flags_read - written
            written |= defs[k].flags_set
        return frozenset(reads)

    def _resolve_eager(
        self, insns: Sequence[Instruction], segments: List[_Segment]
    ) -> None:
        """Flag policy for configurations WITHOUT condition-flag delegation.

        Guest flags are kept architecturally current in the environment at
        every instruction boundary: rule windows that set flags spill them
        eagerly (``st<f>f``), flag readers reload (``ld<f>f``), and the TCG
        path maintains the same invariant natively.  Delegation (§IV-D) is
        precisely the analysis that makes these memory operations elidable,
        so the baseline stages pay for them — the paper's "a lot of memory
        overhead" (§IV-B).

        Rules whose host code cannot reproduce a set flag (mismatch) are
        unusable here, as are derived rules on flag-setting instructions
        (parameterized rules carry no flag behaviour before the condition
        stage).
        """
        defs = [ARM.defn(i) for i in insns]
        index = 0
        while index < len(segments):
            segment = segments[index]
            if segment.rule is None:
                index += 1
                continue
            set_flags = self._window_set_flags(segment, defs)
            status = segment.rule.flags
            usable = True
            if set_flags:
                if segment.rule.origin != "learned":
                    usable = False
                elif any(status.get(f) != "equiv" for f in set_flags):
                    usable = False
            if not usable:
                segments[index : index + 1] = [
                    _Segment(p, 1) for p in range(segment.pos, segment.end)
                ]
                index += segment.length
                continue
            segment.post_stf |= set_flags
            segment.reader_ldf |= self._entry_read_flags(segment, defs)
            index += 1

    def _resolve_clusters(
        self, insns: Sequence[Instruction], segments: List[_Segment]
    ) -> None:
        defs = [ARM.defn(i) for i in insns]
        n = len(insns)
        seg_of: Dict[int, _Segment] = {}
        for segment in segments:
            for k in range(segment.pos, segment.end):
                seg_of[k] = segment

        def demote(segment: _Segment) -> None:
            """Fall back to TCG, splitting multi-instruction windows."""
            index = segments.index(segment)
            replacement = [
                _Segment(p, 1) for p in range(segment.pos, segment.end)
            ]
            segments[index : index + 1] = replacement
            for seg in replacement:
                for k in range(seg.pos, seg.end):
                    seg_of[k] = seg

        for s in range(n):
            flags_set = defs[s].flags_set
            if not flags_set:
                continue
            # Readers of this setter: positions reading any produced flag
            # before the next instruction that sets it.
            readers: List[int] = []
            remaining = set(flags_set)
            for j in range(s + 1, n):
                if defs[j].flags_read & remaining:
                    readers.append(j)
                remaining -= defs[j].flags_set
                if not remaining:
                    break
            seg_s = seg_of[s]
            internal = [j for j in readers if seg_of[j] is seg_s]
            external = [j for j in readers if seg_of[j] is not seg_s]
            needed = frozenset().union(
                *(defs[j].flags_read & flags_set for j in external)
            ) if external else frozenset()

            if seg_s.rule is None:
                # TCG setter keeps flags in the environment.  Rule readers
                # need ld<f>f (condition stage) or must demote.
                for j in external:
                    seg_r = seg_of[j]
                    if seg_r.rule is None:
                        continue
                    if self.config.condition:
                        seg_r.reader_ldf |= defs[j].flags_read & flags_set
                    else:
                        demote(seg_r)
                continue

            status = seg_s.rule.flags
            derived_setter = seg_s.rule.origin != "learned"
            if derived_setter and not self.config.condition:
                # Parameterized rules carry no flag behaviour before the
                # condition stage (§IV-B): never applied to flag setters.
                demote(seg_s)
                for j in external:
                    seg_r = seg_of[j]
                    if seg_r.rule is not None and not self.config.condition:
                        demote(seg_r)
                continue

            if not external:
                # Flags are dead (or consumed inside the window).  A learned
                # rule with mismatched-but-dead flags is applicable ([16]'s
                # constrained equivalence); live-out handled by safety net.
                continue

            equiv_ok = all(status.get(f) == "equiv" for f in needed)
            readers_ok = all(seg_of[j].rule is not None for j in external)
            clobber_free = self._clobber_free(seg_s, external, seg_of, needed)

            if equiv_ok and readers_ok and clobber_free:
                continue  # host flags carry guest flags end to end

            if not self.config.condition:
                demote(seg_s)
                for j in external:
                    if seg_of[j].rule is not None:
                        demote(seg_of[j])
                continue

            # Condition stage: recompute / spill / reload.
            mismatched = {f for f in needed if status.get(f) != "equiv"}
            dest = _rule_dest_reg(seg_s)
            if mismatched - {"N", "Z"} or (mismatched and dest is None):
                # C/V cannot be recomputed from the result: fall back.
                demote(seg_s)
                for j in external:
                    if seg_of[j].rule is not None:
                        seg_of[j].reader_ldf |= defs[j].flags_read & flags_set
                continue
            if mismatched:
                seg_s.post_testl = True
            if not clobber_free or not readers_ok:
                seg_s.post_stf |= needed
                for j in external:
                    seg_r = seg_of[j]
                    if seg_r.rule is not None:
                        seg_r.reader_ldf |= defs[j].flags_read & flags_set

        # Live-out spills: a flag that survives to the block exit and is read
        # at the entry of some block must be architecturally current in the
        # environment.  The spill has to happen *at the setter* — later host
        # code clobbers the host flags, so an end-of-block spill would store
        # garbage — and mismatched flags need recomputation first.
        for s in range(n):
            flags_set = defs[s].flags_set
            if not flags_set:
                continue
            survive = set(flags_set)
            readers_after: List[int] = []
            for j in range(s + 1, n):
                if defs[j].flags_read & survive:
                    readers_after.append(j)
                survive -= defs[j].flags_set
                if not survive:
                    break
            liveout = survive & self.live_in_global
            seg_s = seg_of[s]
            if not liveout or seg_s.rule is None:
                continue  # dead at exit, or TCG keeps the environment current
            if liveout <= seg_s.post_stf:
                continue  # already spilled for an in-block reader
            status = seg_s.rule.flags
            mismatched = {f for f in liveout if status.get(f) != "equiv"}
            external = [j for j in readers_after if seg_of[j] is not seg_s]
            if not mismatched:
                seg_s.post_stf |= liveout
                continue
            dest = _rule_dest_reg(seg_s)

            def reroute_readers() -> None:
                for j in external:
                    seg_r = seg_of[j]
                    if seg_r.rule is not None:
                        seg_r.reader_ldf |= defs[j].flags_read & flags_set

            if mismatched - {"N", "Z"} or dest is None:
                # C/V cannot be recomputed from the result: fall back to
                # TCG, which keeps the environment current.
                demote(seg_s)
                reroute_readers()
                continue
            if external and not seg_s.post_testl:
                # In-block readers rely on host-flag delegation, and the new
                # testl clobbers host C/O.  Reroute them through the
                # environment instead: spill what they read (equiv C/V flags
                # are stored before the testl) and make rule readers reload.
                needed = set().union(
                    *(defs[j].flags_read & flags_set for j in external)
                )
                if any(status.get(f) != "equiv" for f in needed - {"N", "Z"}):
                    demote(seg_s)
                    reroute_readers()
                    continue
                seg_s.post_stf |= needed
                reroute_readers()
            seg_s.post_testl = True
            seg_s.post_stf |= liveout

    def _resolve_entry_reads(
        self, insns: Sequence[Instruction], segments: List[_Segment]
    ) -> None:
        """Rule windows reading flags no in-block instruction set must reload
        them from the environment (cross-block flag use; safety net)."""
        defs = [ARM.defn(i) for i in insns]
        set_so_far: Set[str] = set()
        for segment in segments:
            if segment.rule is not None:
                entry = self._entry_read_flags(segment, defs)
                missing = entry - set_so_far - segment.reader_ldf
                if missing and self.config.condition:
                    segment.reader_ldf |= missing
            for k in range(segment.pos, segment.end):
                set_so_far |= defs[k].flags_set

    def _clobber_free(
        self,
        seg_s: _Segment,
        readers: List[int],
        seg_of: Dict[int, _Segment],
        needed: frozenset,
    ) -> bool:
        """No intervening host code overwrites the needed host flags.

        A reader whose own host code rewrites the flags it consumed (e.g.
        ``sbc`` -> ``sbbl``, which reads *and* writes C) is only exempt when
        it is the *last* reader — anything it clobbers would reach the
        readers after it.
        """
        last = max(readers)
        seen: Set[int] = set()
        for k in range(seg_s.end, last + 1):
            segment = seg_of[k]
            if segment is seg_s or id(segment) in seen:
                continue
            seen.add(id(segment))
            if k in readers and segment.pos == k and segment.end > last:
                continue  # the final reader may clobber after consuming
            if segment.rule is None:
                return False  # TCG host code freely clobbers flags
            for host_insn in segment.rule.host:
                if X86.defn(host_insn).flags_set & needed:
                    return False
        return True

    # -- emission ------------------------------------------------------------------

    def translate(self, block: Block) -> TranslatedBlock:
        insns = self.blockmap.instructions(block)
        defs = [ARM.defn(i) for i in insns]
        n = len(insns)
        segments = self._plan(insns, block)
        if self.config.condition:
            self._resolve_clusters(insns, segments)
        else:
            self._resolve_eager(insns, segments)
        self._resolve_entry_reads(insns, segments)

        host: List[Instruction] = []
        cats: List[str] = []
        labels: Dict[str, int] = {}
        covered = [False] * n
        applied: List[Tuple[object, int]] = []

        def emit(insn: Instruction, category: str) -> None:
            host.append(insn)
            cats.append(category)

        reads, writes = _block_reg_usage(insns, defs)
        for name in sorted(reads):
            emit(Instruction("movl", (env_reg_mem(name), guest_reg(name))), CAT_DATA)

        env_stale: Set[str] = set()
        for segment in segments:
            if segment.rule is None:
                insn = insns[segment.pos]
                defn = defs[segment.pos]
                manual = (
                    self.config.manual_other
                    and defn.subgroup.value == "other"
                    and defn.cond is None
                )
                lowered = tcg.lower(insn, block.start + segment.pos, _EXIT_TAKEN)
                for item in lowered:
                    emit(item, CAT_RULE if manual else CAT_TCG)
                if manual:
                    covered[segment.pos] = True
                env_stale -= defn.flags_set  # TCG stores its flags
                continue

            for flag in sorted(segment.reader_ldf):
                emit(Instruction(f"ld{flag.lower()}f", (env_flag_mem(flag),)), CAT_RULE)
            if segment.pc_value is not None:
                emit(
                    Instruction("movl", (Imm(segment.pc_value), scratch_reg(4))),
                    CAT_RULE,
                )

            def host_reg(name: str) -> Reg:
                if name == _PC_PLACEHOLDER:
                    return scratch_reg(4)
                return guest_reg(name)

            window = segment.window
            body = list(
                segment.rule.instantiate(
                    window,
                    host_reg=host_reg,
                    scratch=lambda k: scratch_reg(5 + k),
                    label_map=lambda _lbl: _EXIT_TAKEN,
                )
            )
            # Flag glue goes before a window-terminating branch (both paths
            # must observe the spilled flags) but after everything else.
            tail: List[Instruction] = []
            if body and X86.defn(body[-1]).is_branch:
                tail = [body.pop()]
            for item in body:
                emit(item, CAT_RULE)
            applied.append((segment.rule, segment.length))
            for k in range(segment.pos, segment.end):
                covered[k] = True
                env_stale |= defs[k].flags_set

            # testl recomputes N/Z but clobbers host C/O: spill equivalent
            # C/V flags from the rule's own host flags *before* it.
            early = segment.post_stf - {"N", "Z"} if segment.post_testl else set()
            for flag in sorted(early):
                emit(Instruction(f"st{flag.lower()}f", (env_flag_mem(flag),)), CAT_RULE)
                env_stale.discard(flag)
            if segment.post_testl:
                dest = _rule_dest_reg(segment)
                emit(Instruction("testl", (guest_reg(dest), guest_reg(dest))), CAT_RULE)
            for flag in sorted(segment.post_stf - early):
                emit(Instruction(f"st{flag.lower()}f", (env_flag_mem(flag),)), CAT_RULE)
                env_stale.discard(flag)
            for item in tail:
                emit(item, CAT_RULE)

        # Cross-block flag use needs no end-of-block spill: every setter of a
        # block-entry-read flag either spilled it eagerly (post_stf above,
        # where the host flags are still the rule's own) or went through the
        # TCG path, which keeps the environment current natively.  A blind
        # spill here would store host flags already clobbered by later
        # windows' host code.

        # Exits.
        term = defs[-1] if n else None
        next_index = block.end

        def emit_exit(target_index: Optional[int], via_reg: Optional[str] = None) -> None:
            for name in sorted(writes):
                emit(Instruction("movl_s", (guest_reg(name), env_reg_mem(name))), CAT_DATA)
            if via_reg is not None:
                emit(Instruction("movl_s", (guest_reg(via_reg), env_pc_mem())), CAT_CONTROL)
            else:
                emit(Instruction("movl_s", (Imm(target_index * 4), env_pc_mem())), CAT_CONTROL)
            emit(Instruction("jmp", (Label(DISPATCH_LABEL),)), CAT_CONTROL)

        if term is not None and term.is_branch and term.cond is not None:
            target = _branch_target_index(self.unit, insns[-1])
            emit_exit(next_index)  # fallthrough
            labels[_EXIT_TAKEN] = len(host)
            emit_exit(target)  # taken
        elif term is not None and term.is_return:  # bx
            emit_exit(None, via_reg=insns[-1].operands[0].name)
        elif term is not None and term.is_branch:  # b / bl
            emit_exit(_branch_target_index(self.unit, insns[-1]))
        else:
            emit_exit(next_index)

        return TranslatedBlock(
            start=block.start,
            guest_count=n,
            host=tuple(host),
            categories=tuple(cats),
            labels=labels,
            covered=tuple(covered),
            applied=tuple(applied),
        )


def _rule_dest_reg(segment: _Segment) -> Optional[str]:
    """Destination register of the flag-setting instruction in a window."""
    for insn in reversed(segment.window or ()):
        defn = ARM.defn(insn)
        if defn.flags_set and defn.dest_index is not None:
            op = insn.operands[defn.dest_index]
            if isinstance(op, Reg):
                return op.name
        if defn.flags_set:
            return None
    return None


def _branch_target_index(unit, insn: Instruction) -> int:
    label = insn.operands[0]
    assert isinstance(label, Label)
    return unit.labels[label.name]


def _block_reg_usage(insns, defs) -> Tuple[Set[str], Set[str]]:
    """(registers to load at entry, registers to store at exit)."""
    written: Set[str] = set()
    loads: Set[str] = set()

    def note_read(name: str) -> None:
        if name != "pc" and name not in written:
            loads.add(name)

    for insn, defn in zip(insns, defs):
        mnemonic = insn.mnemonic
        sources = list(defn.source_indices)
        for idx, op in enumerate(insn.operands):
            if isinstance(op, Mem):
                if op.base is not None:
                    note_read(op.base.name)
                if op.index is not None:
                    note_read(op.index.name)
            elif isinstance(op, Reg) and idx in sources:
                note_read(op.name)
            elif isinstance(op, RegList):
                if mnemonic == "push":
                    for entry in op.regs:
                        note_read(entry.name)
                else:  # pop
                    for entry in op.regs:
                        written.add(entry.name)
        if mnemonic == "umlal":
            # umlal writes BOTH accumulator halves (operands 0 and 1).
            written.add(insn.operands[0].name)
            written.add(insn.operands[1].name)
        if mnemonic in ("push", "pop"):
            note_read("sp")
            written.add("sp")
        if defn.is_call:
            written.add("lr")
        if defn.is_return:
            note_read(insn.operands[0].name)
        if defn.dest_index is not None:
            op = insn.operands[defn.dest_index]
            if isinstance(op, Reg):
                written.add(op.name)
    written.discard("pc")
    return loads, written
