"""Shared code-generation infrastructure for the two backends.

Both backends walk the same optimized statement list, assign the same
statement ids, and tag every emitted instruction with the statement that
produced it (or ``None`` for ABI glue) — producing the statement-aligned
binaries rule learning feeds on.

Register allocation is deliberately simple and *asymmetric* in capacity:
locals are pinned to callee-saved registers in declaration order, and
functions whose locals overflow the pool spill to stack slots.  The x86 pool
is smaller than the ARM pool, so the host side spills earlier — one of the
realistic sources of candidate loss the paper observes (§II-B).
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CodegenError
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Operand, Reg
from repro.lang import ast
from repro.lang.program import GLOBALS_BASE, CompiledUnit, StatementInfo


def layout_globals(program: ast.Program) -> Dict[str, int]:
    """Assign each global array a base address (16-byte aligned)."""
    layout: Dict[str, int] = {}
    addr = GLOBALS_BASE
    for name, size in program.globals.items():
        layout[name] = addr
        addr += (size + 15) & ~15
    return layout


@dataclass
class FrameInfo:
    """Per-function allocation decisions."""

    reg_of: Dict[str, str]  # local var -> register name
    spill_of: Dict[str, int]  # local var -> frame offset
    frame_size: int
    saved_regs: Tuple[str, ...]


class Emitter:
    """Instruction buffer with statement tagging."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self.tags: List[Optional[int]] = []
        self.current_stmt: Optional[int] = None
        #: indices of instructions eligible for the PIC rewrite pass.
        self.pic_sites: List[int] = []

    def emit(self, mnemonic: str, *operands: Operand, glue: bool = False) -> int:
        self.instructions.append(Instruction(mnemonic, tuple(operands)))
        self.tags.append(None if glue else self.current_stmt)
        return len(self.instructions) - 1

    def emit_label(self, name: str) -> None:
        self.instructions.append(Instruction(".label", (Label(name),)))
        self.tags.append(None)


class CodegenBase:
    """Common backend driver: statement walking + allocation + ABI shape.

    Subclasses provide the ISA-specific pieces via the ``LOCAL_POOL``,
    ``TEMP_POOL`` class attributes and the ``stmt_*``/prologue/epilogue
    hooks.
    """

    ISA_NAME = "?"
    LOCAL_POOL: Tuple[str, ...] = ()
    TEMP_POOL: Tuple[str, ...] = ()
    #: Fraction of statements whose line mapping is lost on this backend.
    #: Models the debug-info degradation the paper attributes to compiler
    #: optimization (§II-B: "binaries ... mistakenly mapped to the wrong
    #: statements, or lose the connection") — only ~53.8% of statements
    #: yield candidates.  Deterministic per (backend, statement id).
    DEBUG_LOSS_RATE = 0.0

    def __init__(self, program: ast.Program, pic: bool = False) -> None:
        self.program = program
        self.pic = pic
        self.globals_layout = layout_globals(program)
        self.out = Emitter()
        self.statements: Dict[int, StatementInfo] = {}
        self._stmt_counter = 0
        # Per-function state (reset in compile_function).
        self.frame: FrameInfo = FrameInfo({}, {}, 0, ())
        self._temps_free: List[str] = []
        self._func_name = ""
        #: global array -> register caching its base (per function).
        self._global_base_reg: Dict[str, str] = {}

    # -- public API -------------------------------------------------------------

    def compile(self) -> Tuple[CompiledUnit, Dict[int, StatementInfo]]:
        func_labels = {}
        for func in self.program.functions.values():
            func_labels[func.name] = f"fn_{func.name}"
            self.compile_function(func)
        self.finalize()
        unit = CompiledUnit(
            isa_name=self.ISA_NAME,
            instructions=tuple(self.out.instructions),
            tags=tuple(self.out.tags),
            func_labels=func_labels,
            globals_layout=self.globals_layout,
        )
        return unit, self.statements

    def finalize(self) -> None:
        """Post-processing hook (PIC rewriting on the ARM side)."""

    # -- allocation ---------------------------------------------------------------

    def allocate_frame(self, func: ast.Function) -> FrameInfo:
        """Pin locals to registers by usage frequency; spill the rest.

        Frequency-ordered allocation is the static stand-in for a real
        allocator's spill heuristics: hot loop variables live in registers
        on both ISAs, cold locals spill first (and spill earlier on the
        smaller x86 pool).
        """
        names = func.local_names()
        arrays = [f"@{a}" for a in ast.arrays_used(func)]
        counts = ast.usage_counts(func)
        everything = names + arrays
        order = sorted(
            everything, key=lambda n: (-counts.get(n, 0), everything.index(n))
        )
        reg_of: Dict[str, str] = {}
        spill_of: Dict[str, int] = {}
        pool = list(self.LOCAL_POOL)
        offset = 0
        for name in order:
            if pool:
                reg_of[name] = pool.pop(0)
            elif not name.startswith("@"):
                # Array bases are never spilled; a base without a register
                # falls back to per-use materialization / absolute addressing.
                spill_of[name] = offset
                offset += 4
        saved = tuple(reg_of.values())
        return FrameInfo(reg_of, spill_of, offset, saved)

    def temp(self) -> Reg:
        if not self._temps_free:
            raise CodegenError(f"{self.ISA_NAME}: out of scratch registers")
        return Reg(self._temps_free.pop(0))

    def reset_temps(self) -> None:
        taken = set(self.frame.reg_of.values())
        self._temps_free = [t for t in self.TEMP_POOL if t not in taken]

    # -- statement walking -----------------------------------------------------------

    def compile_function(self, func: ast.Function) -> None:
        self.frame = self.allocate_frame(func)
        self._func_name = func.name
        self._global_base_reg = {}
        self.out.emit_label(f"fn_{func.name}")
        self.emit_prologue(func)
        self.emit_global_bases(func)
        for stmt in func.body:
            if isinstance(stmt, ast.LabelStmt):
                self.out.current_stmt = None
                self.out.emit_label(self.local_label(stmt.name))
                continue
            stmt_id = self.statement_id(stmt)
            self.out.current_stmt = None if self._line_info_lost(stmt_id) else stmt_id
            self.reset_temps()
            self.emit_statement(stmt)
        self.out.current_stmt = None
        # Fall off the end: implicit return.
        if not func.body or not isinstance(func.body[-1], ast.Return):
            self.emit_epilogue(func)

    def statement_id(self, stmt) -> int:
        """Stable statement ids shared across backends.

        Ids are assigned in walking order, which is identical for the two
        backends because they compile the same optimized AST.
        """
        key = (self._func_name, self._stmt_counter)
        stmt_id = self._stmt_counter
        self._stmt_counter += 1
        self.statements[stmt_id] = StatementInfo(
            stmt_id=stmt_id, func=key[0], text=describe_statement(stmt)
        )
        return stmt_id

    def _line_info_lost(self, stmt_id: int) -> bool:
        if not self.DEBUG_LOSS_RATE:
            return False
        digest = zlib.crc32(f"{self.ISA_NAME}:{stmt_id}".encode())
        return (digest % 1000) < self.DEBUG_LOSS_RATE * 1000

    def local_label(self, name: str) -> str:
        return f"{self._func_name}__{name}"

    # -- hooks ---------------------------------------------------------------------

    def emit_prologue(self, func: ast.Function) -> None:
        raise NotImplementedError

    def emit_global_bases(self, func: ast.Function) -> None:
        """Materialize register-allocated array bases (hoisted, like -O2)."""
        raise NotImplementedError

    def emit_epilogue(self, func: ast.Function) -> None:
        raise NotImplementedError

    def emit_statement(self, stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.stmt_assign(stmt)
        elif isinstance(stmt, ast.Store):
            self.stmt_store(stmt)
        elif isinstance(stmt, ast.IfGoto):
            self.stmt_ifgoto(stmt)
        elif isinstance(stmt, ast.IfTestGoto):
            self.stmt_iftest(stmt)
        elif isinstance(stmt, ast.FusedAluGoto):
            self.stmt_fused(stmt)
        elif isinstance(stmt, ast.Goto):
            self.stmt_goto(stmt)
        elif isinstance(stmt, ast.Call):
            self.stmt_call(stmt)
        elif isinstance(stmt, ast.Return):
            self.stmt_return(stmt)
        elif isinstance(stmt, ast.UmlalStmt):
            self.stmt_umlal(stmt)
        else:
            raise CodegenError(f"cannot compile statement {stmt!r}")

    def stmt_assign(self, stmt: ast.Assign) -> None:
        raise NotImplementedError

    def stmt_store(self, stmt: ast.Store) -> None:
        raise NotImplementedError

    def stmt_ifgoto(self, stmt: ast.IfGoto) -> None:
        raise NotImplementedError

    def stmt_iftest(self, stmt: ast.IfTestGoto) -> None:
        raise NotImplementedError

    def stmt_goto(self, stmt: ast.Goto) -> None:
        raise NotImplementedError

    def stmt_call(self, stmt: ast.Call) -> None:
        raise NotImplementedError

    def stmt_return(self, stmt: ast.Return) -> None:
        raise NotImplementedError

    def stmt_umlal(self, stmt: "ast.UmlalStmt") -> None:
        raise NotImplementedError

    def stmt_fused(self, stmt: "ast.FusedAluGoto") -> None:
        raise NotImplementedError


def describe_statement(stmt) -> str:
    """Human-readable one-line rendering for :class:`StatementInfo`."""
    if isinstance(stmt, ast.Assign):
        return f"{stmt.dest} = {describe_expr(stmt.expr)}"
    if isinstance(stmt, ast.Store):
        return f"{stmt.array}[{describe_expr(stmt.index.base)}] = {describe_expr(stmt.value)}"
    if isinstance(stmt, ast.IfGoto):
        return f"if ({describe_expr(stmt.cond.lhs)} {stmt.cond.op} {describe_expr(stmt.cond.rhs)}) goto {stmt.target}"
    if isinstance(stmt, ast.IfTestGoto):
        return f"iftest ({stmt.dest} = {describe_expr(stmt.source)}) goto {stmt.target}"
    if isinstance(stmt, ast.Goto):
        return f"goto {stmt.target}"
    if isinstance(stmt, ast.Call):
        prefix = f"{stmt.dest} = " if stmt.dest else ""
        return f"{prefix}call {stmt.func}(...)"
    if isinstance(stmt, ast.Return):
        return "return"
    if isinstance(stmt, ast.UmlalStmt):
        return f"umlal({stmt.lo}, {stmt.hi}, ...)"
    if isinstance(stmt, ast.FusedAluGoto):
        return (
            f"fuse ({stmt.dest} {stmt.op} {describe_expr(stmt.rhs)}) "
            f"{stmt.cond} goto {stmt.target}"
        )
    return repr(stmt)


def describe_expr(expr) -> str:
    if isinstance(expr, ast.ConstE):
        return str(expr.value)
    if isinstance(expr, ast.VarE):
        return expr.name
    if isinstance(expr, ast.BinE):
        return f"{describe_expr(expr.lhs)} {expr.op} {describe_expr(expr.rhs)}"
    if isinstance(expr, ast.UnE):
        return f"{expr.op}{describe_expr(expr.operand)}"
    if isinstance(expr, ast.MlaE):
        return (
            f"{describe_expr(expr.addend)} + "
            f"{describe_expr(expr.lhs)} * {describe_expr(expr.rhs)}"
        )
    if isinstance(expr, ast.LoadE):
        return f"{expr.array}[{describe_expr(expr.index.base)}]"
    return repr(expr)
