"""Tests for the symbolic expression node layer."""

import pytest

from repro.symir import (
    BinOp,
    Const,
    Expr,
    Extract,
    Ite,
    Sym,
    UnOp,
    ZeroExt,
    expr_size,
    free_symbols,
)


class TestConst:
    def test_masks_to_width(self):
        assert Const(0x1FF, 8).value == 0xFF

    def test_negative_values_wrap(self):
        assert Const(-1, 32).value == 0xFFFFFFFF
        assert Const(-1, 1).value == 1

    def test_equality_includes_width(self):
        assert Const(1, 32) != Const(1, 1)
        assert Const(5, 32) == Const(5, 32)

    def test_hashable(self):
        assert len({Const(1), Const(1), Const(2)}) == 2


class TestWidths:
    def test_binop_width_follows_operands(self):
        expr = BinOp("add", Sym("a"), Sym("b"))
        assert expr.width == 32

    def test_comparison_width_is_one(self):
        assert BinOp("ult", Sym("a"), Sym("b")).width == 1
        assert BinOp("eq", Sym("a"), Sym("b")).width == 1

    def test_unop_width(self):
        assert UnOp("not", Sym("a", 8)).width == 8

    def test_ite_width_follows_branches(self):
        expr = Ite(Sym("c", 1), Const(1, 16), Const(2, 16))
        assert expr.width == 16

    def test_extract_width(self):
        assert Extract(Sym("a"), 4, 8).width == 8

    def test_zext_width(self):
        assert ZeroExt(Sym("a", 8), 32).width == 32

    def test_mask(self):
        assert Const(0, 8).mask() == 0xFF
        assert Sym("a", 1).mask() == 1


class TestFreeSymbols:
    def test_const_has_none(self):
        assert free_symbols(Const(3)) == ()

    def test_order_is_first_seen(self):
        expr = BinOp("add", Sym("b"), BinOp("sub", Sym("a"), Sym("b")))
        assert [s.name for s in free_symbols(expr)] == ["b", "a"]

    def test_dedup(self):
        expr = BinOp("xor", Sym("x"), Sym("x"))
        assert len(free_symbols(expr)) == 1

    def test_ite_and_extract(self):
        expr = Ite(Sym("c", 1), Extract(Sym("v"), 0, 8), ZeroExt(Sym("w", 8), 8))
        names = {s.name for s in free_symbols(expr)}
        assert names == {"c", "v", "w"}


class TestExprSize:
    def test_leaf(self):
        assert expr_size(Const(1)) == 1
        assert expr_size(Sym("a")) == 1

    def test_composite(self):
        expr = BinOp("add", Sym("a"), UnOp("not", Sym("b")))
        assert expr_size(expr) == 4

    def test_unknown_node_raises(self):
        class Bogus(Expr):
            pass

        with pytest.raises(TypeError):
            expr_size(Bogus())
