"""Tests for sequence-rule parameterization (the paper's §V-D future work)."""

import pytest

from repro.isa.arm import ARM, assemble as arm
from repro.isa.x86 import X86, assemble as x86
from repro.learning import RuleSet, TranslationRule
from repro.param.seqderive import derive_sequence_rules
from repro.verify import check_equivalence


def seq_rule(guest: str, host: str) -> TranslationRule:
    guest_insns = arm(guest)
    host_insns = x86(host)
    result = check_equivalence(ARM, X86, guest_insns, host_insns)
    assert result.equivalent, "fixture rule must be fully equivalent"
    return TranslationRule(
        guest=guest_insns,
        host=host_insns,
        reg_mapping=tuple(sorted(result.reg_mapping.items())),
        flag_status=tuple(sorted(result.flag_status.items())),
    )


@pytest.fixture(scope="module")
def learned():
    rules = RuleSet()
    rules.add(seq_rule("cmp r0, r1\nblt .L", "cmpl %ecx, %eax\njl .L"))
    rules.add(seq_rule("ands r0, r0, r1\nbne .L", "andl %ecx, %eax\njne .L"))
    rules.add(
        seq_rule(
            "mov r0, #4096\nldr r1, [r0, r2]",
            "movl $4096, %eax\nmovl (%eax,%edx), %ecx",
        )
    )
    return rules


@pytest.fixture(scope="module")
def derived(learned):
    return derive_sequence_rules(learned)


class TestConditionVariants:
    def test_other_conditions_derived(self, learned, derived):
        for cond in ("bge", "bgt", "ble", "beq", "bne", "bcc", "bhi"):
            rule = derived.lookup(arm(f"cmp r0, r1\n{cond} .L"))
            assert rule is not None, cond
            assert rule.origin == "seq-param"

    def test_host_condition_substituted(self, derived):
        rule = derived.lookup(arm("cmp r0, r1\nbge .L"))
        assert rule.host[-1].mnemonic == "jge"

    def test_original_condition_not_duplicated(self, learned, derived):
        assert derived.lookup(arm("cmp r0, r1\nblt .L")) is None


class TestOpcodeVariants:
    def test_fused_family_derived(self, derived):
        for mnemonic in ("orrs", "eors", "adds", "subs"):
            rule = derived.lookup(arm(f"{mnemonic} r0, r0, r1\nbne .L"))
            assert rule is not None, mnemonic

    def test_fused_host_opcode_substituted(self, derived):
        rule = derived.lookup(arm("eors r0, r0, r1\nbne .L"))
        assert rule.host[0].mnemonic == "xorl"

    def test_load_size_variants(self, derived):
        rule = derived.lookup(arm("mov r0, #4096\nldrb r1, [r0, r2]"))
        assert rule is not None
        assert rule.host[-1].mnemonic == "movzbl"

    def test_invalid_variants_rejected(self, derived):
        # bics needs auxiliaries; transform-bearing opcodes are skipped in
        # sequence derivation.
        assert derived.lookup(arm("bics r0, r0, r1\nbne .L")) is None


class TestSoundness:
    def test_every_derived_sequence_reverifies(self, derived):
        for rule in derived:
            result = check_equivalence(
                ARM, X86, rule.guest, rule.host, allow_temps=len(rule.host_temps)
            )
            assert result.dataflow_ok, rule.guest

    def test_all_tagged_seq_param(self, derived):
        assert derived.rules
        assert all(rule.origin == "seq-param" for rule in derived)

    def test_singles_ignored(self):
        singles = RuleSet()
        singles.add(seq_rule("add r0, r0, r1", "addl %ecx, %eax"))
        assert len(derive_sequence_rules(singles)) == 0


class TestEndToEnd:
    def test_seqparam_stage_correct(self, demo_pair, demo_setup):
        from repro.dbt import DBTEngine, check_against_reference

        engine = DBTEngine(demo_pair.guest, demo_setup.configs["seqparam"])
        result = engine.run()
        ok, message = check_against_reference(demo_pair.guest, result)
        assert ok, message
        condition = DBTEngine(
            demo_pair.guest, demo_setup.configs["condition"]
        ).run()
        assert result.metrics.coverage >= condition.metrics.coverage
