"""Worker-process fan-out for derivation and the leave-one-out sweep.

One process-wide job count (set from every CLI subcommand's ``--jobs``)
drives :func:`parallel_map`, the single primitive the pipeline uses: map a
picklable function over items on a :class:`~concurrent.futures.\
ProcessPoolExecutor`, preserving input order so parallel runs are
byte-identical to serial ones.  ``jobs <= 1`` (the default) never spawns a
pool — the serial path stays the reference implementation.

Workers are forked (on POSIX), so anything the parent warmed — compiled
benchmarks, learned rules, derivation memos — is inherited for free; results
flow back once per item.  Worker processes share the on-disk cache of
:mod:`repro.cache` with the parent, so work one worker performs is a disk
hit for every later process.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_JOBS = 1


def set_jobs(jobs: Optional[int]) -> int:
    """Set the process-wide job count; ``0``/``None`` means all CPUs."""
    global _JOBS
    if not jobs:  # None or 0 -> auto
        _JOBS = os.cpu_count() or 1
    else:
        _JOBS = max(1, int(jobs))
    return _JOBS


def get_jobs() -> int:
    return _JOBS


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """An explicit override, or the process-wide setting."""
    if jobs is None:
        return _JOBS
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Results preserve input order.  Serial fallback when the effective job
    count is 1, when there is at most one item, or when a pool cannot be
    created (e.g. a sandbox without process spawning).  *fn* and the items
    must be picklable on the parallel path.
    """
    work: Sequence[T] = list(items)
    n = min(resolve_jobs(jobs), len(work))
    if n <= 1:
        return [fn(item) for item in work]
    try:
        executor = ProcessPoolExecutor(max_workers=n, initializer=_worker_init)
    except OSError as exc:  # no fork/semaphores available: run serially
        print(f"repro.parallel: no worker pool ({exc}); running serially",
              file=sys.stderr)
        return [fn(item) for item in work]
    with executor:
        chunksize = max(1, len(work) // (n * 4))
        return list(executor.map(fn, work, chunksize=chunksize))


def _worker_init() -> None:
    """Workers run serially — a fan-out inside a fan-out would oversubscribe."""
    global _JOBS
    _JOBS = 1
