"""Service observability: latency histograms and per-endpoint counters.

Latencies go into fixed log-scale bucket histograms (~7% relative bucket
width from 10µs to >60s), so recording is O(1), memory is constant no
matter how long the server lives, and p50/p95/p99 come out with bounded
relative error — the standard serving-system trade against unbounded
sample reservoirs.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

#: Exponential bucket upper bounds in seconds: 10µs · 1.35^i, 58 buckets,
#: topping out above 60s; one overflow bucket catches the rest.
_GROWTH = 1.35
_BUCKET_BOUNDS: List[float] = []
_bound = 1e-5
while _bound < 120.0:
    _BUCKET_BOUNDS.append(_bound)
    _bound *= _GROWTH
_BUCKET_BOUNDS.append(float("inf"))


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram with percentile readout."""

    __slots__ = ("_counts", "count", "total", "max", "_lock")

    def __init__(self) -> None:
        self._counts = [0] * len(_BUCKET_BOUNDS)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        # Bisect by hand-rolled scan would be O(buckets); binary search:
        lo, hi = 0, len(_BUCKET_BOUNDS) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= _BUCKET_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    def percentile(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (0..1), 0.0 when empty."""
        with self._lock:
            if not self.count:
                return 0.0
            rank = q * self.count
            seen = 0
            for i, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    bound = _BUCKET_BOUNDS[i]
                    return self.max if bound == float("inf") else min(bound, self.max)
            return self.max

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count, total, peak = self.count, self.total, self.max
        return {
            "count": count,
            "mean_ms": round(1e3 * total / count, 3) if count else 0.0,
            "p50_ms": round(1e3 * self.percentile(0.50), 3),
            "p95_ms": round(1e3 * self.percentile(0.95), 3),
            "p99_ms": round(1e3 * self.percentile(0.99), 3),
            "max_ms": round(1e3 * peak, 3),
        }

    # -- cross-process aggregation ------------------------------------------
    #
    # Pool workers publish raw bucket counts; the stats endpoint merges
    # sibling payloads index-wise into one histogram, so pooled p50/p95/p99
    # are computed over the union of observations — averaging per-worker
    # percentiles would be statistically meaningless.

    def raw_payload(self) -> Dict[str, object]:
        """Mergeable raw state (bucket counts, not percentiles)."""
        with self._lock:
            return {
                "buckets": list(self._counts),
                "count": self.count,
                "total": self.total,
                "max": self.max,
            }

    @classmethod
    def merged(cls, payloads: List[Dict[str, object]]) -> "LatencyHistogram":
        """One histogram holding the union of several raw payloads.

        Payloads whose bucket layout doesn't match this build's (a worker
        from another version) are skipped rather than misbinned.
        """
        hist = cls()
        for payload in payloads:
            try:
                buckets = payload["buckets"]
                if len(buckets) != len(hist._counts):
                    continue
                for i, n in enumerate(buckets):
                    hist._counts[i] += int(n)
                hist.count += int(payload["count"])
                hist.total += float(payload["total"])
                hist.max = max(hist.max, float(payload["max"]))
            except (KeyError, TypeError, ValueError):
                continue
        return hist


class EndpointStats:
    """Per-endpoint latency histograms plus ok/error counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._ok: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}

    def _histogram(self, op: str) -> LatencyHistogram:
        with self._lock:
            hist = self._latency.get(op)
            if hist is None:
                hist = self._latency[op] = LatencyHistogram()
                self._ok.setdefault(op, 0)
                self._errors.setdefault(op, 0)
            return hist

    def observe(self, op: str, seconds: float, ok: bool) -> None:
        hist = self._histogram(op)
        hist.observe(seconds)
        with self._lock:
            if ok:
                self._ok[op] = self._ok.get(op, 0) + 1
            else:
                self._errors[op] = self._errors.get(op, 0) + 1

    def latency(self, op: str) -> Optional[LatencyHistogram]:
        with self._lock:
            return self._latency.get(op)

    def summary(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            ops = list(self._latency)
        payload: Dict[str, Dict[str, float]] = {}
        for op in ops:
            entry = dict(self._latency[op].summary())
            with self._lock:
                entry["ok"] = self._ok.get(op, 0)
                entry["errors"] = self._errors.get(op, 0)
            payload[op] = entry
        return payload

    def raw_payload(self) -> Dict[str, Dict[str, object]]:
        """Per-op mergeable state (see :meth:`LatencyHistogram.raw_payload`)."""
        with self._lock:
            ops = list(self._latency)
        payload: Dict[str, Dict[str, object]] = {}
        for op in ops:
            entry = self._latency[op].raw_payload()
            with self._lock:
                entry["ok"] = self._ok.get(op, 0)
                entry["errors"] = self._errors.get(op, 0)
            payload[op] = entry
        return payload


def merge_endpoint_payloads(
    payloads: List[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, float]]:
    """Merge per-worker :meth:`EndpointStats.raw_payload` dicts into one
    per-op summary (the pool-wide view the ``stats`` endpoint serves)."""
    by_op: Dict[str, List[Dict[str, object]]] = {}
    for payload in payloads:
        if not isinstance(payload, dict):
            continue
        for op, entry in payload.items():
            if isinstance(entry, dict):
                by_op.setdefault(op, []).append(entry)
    merged: Dict[str, Dict[str, float]] = {}
    for op, entries in sorted(by_op.items()):
        summary = LatencyHistogram.merged(entries).summary()
        summary["ok"] = sum(int(e.get("ok", 0)) for e in entries)
        summary["errors"] = sum(int(e.get("errors", 0)) for e in entries)
        merged[op] = summary
    return merged
