"""Tier-0 distillation: lookup parity, artifact round-trip, counters.

The load-bearing property is **lookup parity**: a :class:`HotIndex` packed
from any slot-owner subset of a rule set, with that set as fallback, must
answer every window exactly like the flat set — including the
generalized-over-specific preference and the shorter-host slot tie-break.
The hypothesis test drives this over random instruction windows; the
handcrafted cases pin the two preference rules explicitly.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.isa.arm import assemble as arm
from repro.isa.x86 import assemble as x86
from repro.learning.hotindex import TIER0_STATS, HotIndex, slot_owner
from repro.learning.rule import (
    TranslationRule,
    guest_key,
    window_key_prefixes,
    window_keys,
)
from repro.learning.ruleset import RuleSet

from .strategies import arm_instructions


def make_rule(guest, host, mapping, imm_gen=False, origin="learned", temps=()):
    return TranslationRule(
        guest=arm(guest),
        host=x86(host),
        reg_mapping=tuple(sorted(mapping.items())),
        host_temps=tuple(temps),
        imm_generalized=imm_gen,
        origin=origin,
    )


@pytest.fixture(scope="module")
def training():
    """The two-benchmark training rule set (shared across this module)."""
    from repro.difftest.oracle import training_rules

    return training_rules()


def tier0_subset(full, limit=40):
    return [rule for rule in full.rules if slot_owner(full, rule)][:limit]


class TestWindowKeys:
    @given(window=st.lists(arm_instructions(), min_size=1, max_size=4))
    def test_window_keys_match_guest_key(self, window):
        window = tuple(window)
        general, specific = window_keys(window)
        assert general == guest_key(window, with_values=False)
        assert specific == guest_key(window, with_values=True)

    @given(window=st.lists(arm_instructions(), min_size=1, max_size=4))
    def test_prefixes_match_per_prefix_window_keys(self, window):
        window = tuple(window)
        prefixes = window_key_prefixes(window)
        assert len(prefixes) == len(window)
        for k, pair in enumerate(prefixes, start=1):
            assert pair == window_keys(window[:k])

    def test_imm_free_window_shares_key_object(self):
        general, specific = window_keys(arm("add r0, r1, r2"))
        assert specific is general
        general, specific = window_keys(arm("add r0, r1, #4"))
        assert specific is not general


class TestLookupParity:
    @settings(max_examples=60, deadline=None)
    @given(window=st.lists(arm_instructions(), min_size=1, max_size=4))
    def test_hotindex_matches_flat_lookup(self, training, window):
        window = tuple(window)
        hot = HotIndex(tier0_subset(training), training)
        assert hot.lookup(window) is training.lookup(window)

    def test_tier0_rule_guests_resolve_identically(self, training):
        subset = tier0_subset(training)
        hot = HotIndex(subset, training)
        for rule in subset:
            assert hot.lookup(rule.guest) is rule
            assert training.lookup(rule.guest) is rule

    def test_generalized_preferred_over_specific(self):
        full = RuleSet()
        specific = make_rule(
            "add r0, r0, #4", "addl $4, %eax", {"r0": "eax"}, imm_gen=False
        )
        generalized = make_rule(
            "add r0, r0, #4", "addl $4, %eax", {"r0": "eax"}, imm_gen=True
        )
        assert full.add(specific) and full.add(generalized)
        hot = HotIndex([r for r in full.rules if slot_owner(full, r)], full)
        window = arm("add r3, r3, #4")
        assert full.lookup(window) is generalized
        assert hot.lookup(window) is generalized

    def test_specific_hit_only_without_generalized_owner(self):
        full = RuleSet()
        specific = make_rule(
            "add r0, r0, #4", "addl $4, %eax", {"r0": "eax"}, imm_gen=False
        )
        assert full.add(specific)
        hot = HotIndex([specific], full)
        assert hot.lookup(arm("add r5, r5, #4")) is specific
        # A different immediate misses the specific slot in both indexes.
        assert hot.lookup(arm("add r5, r5, #8")) is None
        assert full.lookup(arm("add r5, r5, #8")) is None

    def test_shorter_host_tie_break_survives_packing(self):
        full = RuleSet()
        long_host = make_rule(
            "sub r0, r0, r1",
            "movl %eax, %ecx\nsubl %edx, %ecx\nmovl %ecx, %eax",
            {"r0": "eax", "r1": "edx"},
            origin="learned",
            temps=("ecx",),
        )
        short_host = make_rule(
            "sub r0, r0, r1", "subl %edx, %eax", {"r0": "eax", "r1": "edx"},
            origin="opcode-param",
        )
        assert full.add(long_host) and full.add(short_host)
        window = arm("sub r4, r4, r9")
        assert full.lookup(window) is short_host
        assert not slot_owner(full, long_host)
        hot = HotIndex([r for r in full.rules if slot_owner(full, r)], full)
        assert hot.lookup(window) is short_host

    def test_legacy_lookup_matches_fast_lookup(self, training):
        for rule in training.rules[:50]:
            assert training.lookup_legacy(rule.guest) is training.lookup(
                rule.guest
            )


class TestCounters:
    def test_hit_fallback_miss_counters(self, training):
        subset = tier0_subset(training, limit=5)
        hot = HotIndex(subset, training)
        before = TIER0_STATS.snapshot()
        hot.lookup(subset[0].guest)  # tier-0 hit
        fallback_rule = next(
            rule
            for rule in training.rules
            if slot_owner(training, rule) and rule not in subset
        )
        hot.lookup(fallback_rule.guest)  # fallback hit
        hot.lookup(arm("mvn r0, r1"))  # likely miss; either way accounted
        stats = hot.stats()
        assert stats["tier0_hits"] == 1
        assert stats["fallback_hits"] >= 1
        assert stats["tier0_hits"] + stats["fallback_hits"] + stats["misses"] == 3
        after = TIER0_STATS.snapshot()
        assert after["tier0_hits"] == before["tier0_hits"] + 1

    def test_stats_payload_has_tier0_section(self):
        from repro.cache import stats_payload

        payload = stats_payload(include_disk=False)
        assert "tier0" in payload
        for key in ("loads", "tier0_hits", "fallback_hits", "misses", "rules"):
            assert key in payload["tier0"]


class TestArtifact:
    @pytest.fixture(scope="class")
    def artifact_setup(self):
        from repro.learning.distill import distill, setup_for_training

        config = setup_for_training("quick").configs["condition"]
        payload = distill(
            config,
            stage="condition",
            benchmarks=["mcf"],
            training="quick",
        )
        return config, payload

    def test_round_trip_preserves_lookups(self, artifact_setup, tmp_path):
        from repro.learning.distill import (
            load_artifact,
            resolve_artifact,
            write_artifact,
        )

        config, payload = artifact_setup
        path = str(tmp_path / "tier0.json")
        write_artifact(payload, path)
        loaded = load_artifact(path)
        assert loaded == payload
        resolved = resolve_artifact(loaded, config.rules)
        assert resolved.dropped == 0
        assert not resolved.stale
        assert len(resolved.rules) == len(payload["rules"])
        hot = HotIndex(resolved.rules, config.rules)
        for rule in resolved.rules:
            assert hot.lookup(rule.guest) is rule
            assert config.rules.lookup(rule.guest) is rule

    def test_artifact_is_content_addressed(self, artifact_setup):
        from repro.learning.distill import _body_digest

        _, payload = artifact_setup
        body = {k: v for k, v in payload.items() if k != "digest"}
        assert payload["digest"] == _body_digest(body)

    def test_coverage_meets_target(self, artifact_setup):
        _, payload = artifact_setup
        assert payload["total_hits"] > 0
        assert payload["coverage"] >= payload["coverage_target"]

    def test_digest_tamper_rejected(self, artifact_setup, tmp_path):
        from repro.learning.distill import load_artifact, write_artifact

        _, payload = artifact_setup
        corrupt = dict(payload)
        corrupt["coverage"] = 1.0  # body change without digest update
        path = str(tmp_path / "tampered.json")
        write_artifact(corrupt, path)
        with pytest.raises(ReproError, match="digest mismatch"):
            load_artifact(path)

    def test_unknown_format_rejected(self, artifact_setup, tmp_path):
        from repro.learning.distill import load_artifact

        _, payload = artifact_setup
        wrong = dict(payload, format="repro-tier0-v999")
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps(wrong))
        with pytest.raises(ReproError, match="unsupported tier-0 format"):
            load_artifact(str(path))

    def test_stale_artifact_degrades_not_diverges(self, artifact_setup):
        """Resolved against a different rule set: unresolvable rules are
        dropped and the front still answers like that serving set."""
        from repro.learning.distill import resolve_artifact

        _, payload = artifact_setup
        other = RuleSet()
        other.add(
            make_rule("add r0, r1, r2", "movl %ecx, %eax\naddl %edx, %eax",
                      {"r0": "eax", "r1": "ecx", "r2": "edx"})
        )
        resolved = resolve_artifact(payload, other)
        assert resolved.stale
        assert len(resolved.rules) + resolved.dropped == len(payload["rules"])
        hot = HotIndex(resolved.rules, other)
        window = arm("add r3, r4, r5")
        assert hot.lookup(window) is other.lookup(window)
