"""Operand model shared by the guest (ARM-like) and host (x86-like) ISAs.

Operands are immutable and hashable so they can key rule-lookup tables.
The operand *kind* (register / immediate / memory / label / register list)
is the unit the parameterization framework generalizes over in the
addressing-mode dimension (paper §IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OperandKind(enum.Enum):
    """The addressing-mode category of a single operand."""

    REG = "reg"
    IMM = "imm"
    MEM = "mem"
    LABEL = "label"
    REGLIST = "reglist"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Operand:
    """Base class for operands."""

    __slots__ = ()

    kind: OperandKind


@dataclass(frozen=True)
class Reg(Operand):
    """A register operand, e.g. ``r3`` or ``eax``."""

    name: str
    kind: OperandKind = field(default=OperandKind.REG, init=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm(Operand):
    """An immediate operand.  Values are 32-bit two's-complement integers."""

    value: int
    kind: OperandKind = field(default=OperandKind.IMM, init=False)

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Mem(Operand):
    """A memory operand: ``[base]``, ``[base, #disp]`` or ``[base, index]``.

    The x86 side renders the same structure as ``disp(base)`` /
    ``disp(base,index,scale)``.  ``scale`` is only meaningful with an index.
    """

    base: Optional[Reg] = None
    index: Optional[Reg] = None
    disp: int = 0
    scale: int = 1
    kind: OperandKind = field(default=OperandKind.MEM, init=False)

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(str(self.base))
        if self.index is not None:
            entry = str(self.index)
            if self.scale != 1:
                entry += f"*{self.scale}"
            parts.append(entry)
        if self.disp or not parts:
            parts.append(f"#{self.disp}")
        return "[" + ", ".join(parts) + "]"


@dataclass(frozen=True)
class Label(Operand):
    """A branch-target label (resolved to an instruction index at link time)."""

    name: str
    kind: OperandKind = field(default=OperandKind.LABEL, init=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RegList(Operand):
    """A register list for ``push``/``pop``."""

    regs: Tuple[Reg, ...]
    kind: OperandKind = field(default=OperandKind.REGLIST, init=False)

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.regs) + "}"


def operand_kinds(operands: Tuple[Operand, ...]) -> Tuple[OperandKind, ...]:
    """The addressing-mode shape of an operand tuple."""
    return tuple(op.kind for op in operands)
