"""ARM-like register file: r0-r12 general purpose, sp, lr, pc."""

from __future__ import annotations

from typing import Tuple

from repro.isa.operands import Reg

GPR_NAMES: Tuple[str, ...] = tuple(f"r{i}" for i in range(13))
SP = "sp"
LR = "lr"
PC = "pc"

ALL_REGISTERS: Tuple[str, ...] = GPR_NAMES + (SP, LR, PC)

#: Registers the mini-compiler's allocator may use for temporaries.
ALLOCATABLE: Tuple[str, ...] = GPR_NAMES


def reg(name: str) -> Reg:
    if name not in ALL_REGISTERS:
        raise ValueError(f"unknown ARM register {name!r}")
    return Reg(name)


R = {name: Reg(name) for name in ALL_REGISTERS}
