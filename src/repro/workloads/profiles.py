"""Per-benchmark workload profiles (synthetic SPEC CINT 2006 stand-ins).

Each profile calibrates a generated program's *compositional* properties to
what the paper reports about the real benchmark, because composition is what
the coverage and rule-learning experiments measure (§II-B: "the rules that
can be learned from a training set depend on the composition of the
applications in the training set").

The key device is the **signature matrix**: each benchmark uses its ALU
operators in a fixed statement *form* —

====== ================  ==========================
form   shape             guest instruction pattern
====== ================  ==========================
acc     ``x = x op y``    ``op rd, rd, rm``
accimm  ``x = x op c``    ``op rd, rd, #c``
three   ``z = x op y``    ``op rd, rn, rm``
threeimm ``z = x op c``   ``op rd, rn, #c``
====== ================  ==========================

A (operator, form) pair owned by a *single* benchmark is exactly a rule that
leave-one-out training cannot learn but opcode/addressing-mode
parameterization derives — the mechanism behind the paper's coverage
factors.  Pairs owned by two or more benchmarks are always in training.
Memory-access styles (word/byte/half × index/disp) are distributed the same
way, separately for loads and stores.

Paper-specific calibration:

* **h264ref** uses few instruction types and only shared combinations →
  high baseline coverage, little opcode-stage gain (§V-B2);
* **libquantum** owns ``(^, acc)`` (the ``eor`` loop) and the move-and-test
  ``movs``+``bne`` idiom → big condition-flags-delegation gain (§V-B2);
* **hmmer** leans on the unlearnable ``mla``; **sjeng** owns ``umlal`` and
  most ``clz``; **omnetpp**/**xalancbmk** are compiled as PIC (fig. 9);
* **gcc**/**perlbench**/**xalancbmk** are the largest programs (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: statement kinds the generator draws from.
STMT_KINDS = (
    "alu",
    "load",
    "store",
    "branch",
    "diamond",
    "iftest",
    "fusion",
    "mla",
    "unary",
)

#: ALU statement forms.
FORMS = ("acc", "accimm", "three", "threeimm", "revacc", "dup")


@dataclass(frozen=True)
class Profile:
    name: str
    seed: int
    kernels: int
    body_statements: int
    locals_count: int
    loop_iters: int
    repeats: int
    stmt_weights: Dict[str, float]
    #: operation palette: operator -> weight.
    op_weights: Dict[str, float]
    #: operator -> fixed statement form (every palette operator needs one).
    op_form: Dict[str, str]
    #: load style -> weight ("index", "disp", "scaled", "byte", "half").
    load_weights: Dict[str, float]
    #: store style -> weight ("index", "disp", "byte", "half").
    store_weights: Dict[str, float]
    unary_weights: Dict[str, float] = field(
        default_factory=lambda: {"~": 1.0, "-": 0.0, "clz": 0.0}
    )
    #: chance a relational branch compares against an immediate.
    cond_imm_bias: float = 0.25
    #: fused flag-setting ALU + branch idiom: (operator, condition).  Each
    #: owner's fused pair is exclusive, so everywhere else the s-variant
    #: rule must be *derived* — and parameterized rules only apply to
    #: flag-setters under condition-flags delegation (§IV-B, §V-B2).
    fusion: Optional[Tuple[str, str]] = None
    pic: bool = False
    use_umlal: bool = False


def _stmts(**overrides: float) -> Dict[str, float]:
    base = {
        "alu": 1.0,
        "load": 0.45,
        "store": 0.3,
        "branch": 0.3,
        "diamond": 0.16,
        "iftest": 0.0,
        "fusion": 0.0,
        "mla": 0.0,
        "unary": 0.0,
    }
    base.update(overrides)
    return base


_WORD_LOADS = {"index": 1.0}
_WORD_STORES = {"index": 1.0}

PROFILES: Tuple[Profile, ...] = (
    Profile(
        # exclusives: (&,three), (<<,threeimm), (>>>,accimm), byte loads
        name="perlbench",
        seed=401,
        kernels=7,
        body_statements=40,
        locals_count=6,
        loop_iters=16,
        repeats=4,
        stmt_weights=_stmts(load=0.65, store=0.35, unary=0.06, fusion=0.35),
        op_weights={"+": 0.8, "-": 0.35, "&": 0.6, "|": 0.35, "<<": 0.55, ">>>": 0.5},
        op_form={"+": "acc", "-": "accimm", "&": "three", "|": "acc",
                 "<<": "threeimm", ">>>": "accimm"},
        load_weights={"index": 0.4, "byte": 0.6},
        store_weights=_WORD_STORES,
        fusion=("|", "ne"),
    ),
    Profile(
        # exclusives: (<<,accimm), (>>>,threeimm), byte stores
        name="bzip2",
        seed=402,
        kernels=4,
        body_statements=28,
        locals_count=4,
        loop_iters=26,
        repeats=5,
        stmt_weights=_stmts(load=0.55, store=0.55, fusion=0.3),
        op_weights={"+": 0.8, "-": 0.4, "&": 0.5, "<<": 0.6, ">>>": 0.65},
        op_form={"+": "acc", "-": "acc", "&": "accimm",
                 "<<": "accimm", ">>>": "threeimm"},
        load_weights=_WORD_LOADS,
        store_weights={"index": 0.45, "byte": 0.55},
        fusion=(">>>", "ne"),
    ),
    Profile(
        # exclusives: (-,three), (^,accimm), (>>,accimm), (&~,acc)
        name="gcc",
        seed=403,
        kernels=10,
        body_statements=50,
        locals_count=7,
        loop_iters=10,
        repeats=4,
        stmt_weights=_stmts(branch=0.4, diamond=0.2, load=0.5, store=0.35,
                            unary=0.1, mla=0.05, fusion=0.3),
        op_weights={"+": 0.7, "-": 0.7, "*": 0.08, "&": 0.25, "|": 0.35,
                    "^": 0.45, ">>": 0.4, "&~": 0.45},
        op_form={"+": "acc", "-": "three", "*": "acc", "&": "accimm", "|": "acc",
                 "^": "accimm", ">>": "accimm", "&~": "acc"},
        load_weights={"index": 0.8, "scaled": 0.2},
        store_weights=_WORD_STORES,
        unary_weights={"~": 0.8, "-": 0.0, "clz": 0.2},
        fusion=("&~", "ne"),
    ),
    Profile(
        # exclusives: (+,three), (-,threeimm); displacement-heavy loads
        name="mcf",
        seed=404,
        kernels=2,
        body_statements=16,
        locals_count=3,
        loop_iters=40,
        repeats=6,
        stmt_weights=_stmts(load=0.95, store=0.4, branch=0.45),
        op_weights={"+": 1.2, "-": 0.9},
        op_form={"+": "three", "-": "threeimm"},
        load_weights={"index": 0.25, "disp": 0.75},
        store_weights={"index": 0.5, "disp": 0.5},
    ),
    Profile(
        # exclusives: (&,threeimm), (|,three), (&~,three)
        name="gobmk",
        seed=405,
        kernels=7,
        body_statements=34,
        locals_count=5,
        loop_iters=14,
        repeats=4,
        stmt_weights=_stmts(branch=0.45, diamond=0.18, load=0.5, store=0.3,
                            fusion=0.4),
        op_weights={"+": 0.7, "-": 0.35, "&": 0.6, "|": 0.6, "&~": 0.45},
        op_form={"+": "acc", "-": "acc", "&": "threeimm", "|": "three",
                 "&~": "three"},
        load_weights=_WORD_LOADS,
        store_weights={"index": 0.5, "disp": 0.5},
        fusion=("&", "ne"),
    ),
    Profile(
        # exclusives: (*,three), (+,threeimm), mla-heavy (residual emulation)
        name="hmmer",
        seed=406,
        kernels=3,
        body_statements=32,
        locals_count=5,
        loop_iters=30,
        repeats=5,
        stmt_weights=_stmts(mla=0.4, load=0.6, store=0.3, branch=0.25,
                            fusion=0.35),
        op_weights={"+": 1.0, "-": 0.3, "*": 0.9},
        op_form={"+": "threeimm", "-": "accimm", "*": "three"},
        load_weights={"index": 0.75, "scaled": 0.25},
        store_weights=_WORD_STORES,
        fusion=("*", "ne"),
    ),
    Profile(
        # exclusives: (&,acc), (^,three), (<<,acc), (>>,three), (&~,accimm),
        # clz, umlal
        name="sjeng",
        seed=407,
        kernels=6,
        body_statements=30,
        locals_count=5,
        loop_iters=16,
        repeats=4,
        stmt_weights=_stmts(branch=0.4, diamond=0.16, unary=0.16, fusion=0.35),
        op_weights={"&": 0.6, "|": 0.4, "^": 0.55, "<<": 0.5, ">>": 0.6,
                    "&~": 0.4, "-": 0.35},
        op_form={"&": "acc", "|": "threeimm", "^": "three", "<<": "acc",
                 ">>": "revacc", "&~": "accimm", "-": "acc"},
        load_weights=_WORD_LOADS,
        store_weights=_WORD_STORES,
        unary_weights={"~": 0.5, "-": 0.0, "clz": 0.5},
        use_umlal=True,
        fusion=("<<", "ne"),
    ),
    Profile(
        # exclusives: (^,acc) — the eor loop — and the movs+bne iftest idiom
        name="libquantum",
        seed=408,
        kernels=2,
        body_statements=14,
        locals_count=3,
        loop_iters=48,
        repeats=7,
        stmt_weights=_stmts(iftest=0.9, fusion=1.0, load=0.5, store=0.4,
                            branch=0.15, diamond=0.06),
        op_weights={"^": 1.8, "&": 0.3, "+": 0.5, "-": 0.2},
        op_form={"^": "acc", "&": "accimm", "+": "acc", "-": "accimm"},
        load_weights=_WORD_LOADS,
        store_weights=_WORD_STORES,
        fusion=("^", "ne"),
    ),
    Profile(
        # no exclusives by design: few instruction types, all shared (§V-B2)
        name="h264ref",
        seed=409,
        kernels=4,
        body_statements=36,
        locals_count=4,
        loop_iters=24,
        repeats=5,
        stmt_weights=_stmts(load=0.75, store=0.55, branch=0.3, diamond=0.08,
                            mla=0.05),
        op_weights={"+": 1.6, "-": 0.5, "*": 0.06},
        op_form={"+": "acc", "-": "accimm", "*": "acc"},
        load_weights=_WORD_LOADS,
        store_weights=_WORD_STORES,
    ),
    Profile(
        # exclusives: (|,accimm), halfword loads+stores, PIC, call-heavy
        name="omnetpp",
        seed=410,
        kernels=9,
        body_statements=20,
        locals_count=4,
        loop_iters=9,
        repeats=6,
        stmt_weights=_stmts(load=0.6, store=0.45, branch=0.3, diamond=0.14,
                            unary=0.06, fusion=0.35),
        op_weights={"+": 0.8, "-": 0.5, "|": 1.0},
        op_form={"+": "acc", "-": "acc", "|": "accimm"},
        load_weights={"index": 0.6, "half": 0.4},
        store_weights={"index": 0.6, "half": 0.4},
        pic=True,
        fusion=("-", "eq"),
    ),
    Profile(
        # exclusives: (+,dup), the rsb idiom (unary minus), fused asrs+beq
        name="astar",
        seed=411,
        kernels=3,
        body_statements=22,
        locals_count=4,
        loop_iters=26,
        repeats=5,
        stmt_weights=_stmts(branch=0.6, diamond=0.2, load=0.55, store=0.25,
                            unary=0.18, fusion=0.3),
        op_weights={"+": 1.2, "-": 0.6},
        op_form={"+": "dup", "-": "acc"},
        load_weights=_WORD_LOADS,
        store_weights=_WORD_STORES,
        unary_weights={"~": 0.0, "-": 1.0, "clz": 0.0},
        fusion=(">>", "eq"),
    ),
    Profile(
        # exclusives: (<<,three), (>>,acc), (^,threeimm), PIC
        name="xalancbmk",
        seed=412,
        kernels=10,
        body_statements=38,
        locals_count=7,
        loop_iters=8,
        repeats=5,
        stmt_weights=_stmts(load=0.6, store=0.4, branch=0.35, diamond=0.16,
                            unary=0.06, mla=0.03, fusion=0.35),
        op_weights={"+": 0.7, "-": 0.35, "&": 0.4, "|": 0.35, "<<": 0.55,
                    ">>": 0.5, "^": 0.5},
        op_form={"+": "acc", "-": "accimm", "&": "accimm", "|": "threeimm",
                 "<<": "three", ">>": "acc", "^": "threeimm"},
        load_weights={"index": 0.8, "scaled": 0.2},
        store_weights=_WORD_STORES,
        pic=True,
        fusion=("+", "eq"),
    ),
)

PROFILE_BY_NAME: Dict[str, Profile] = {p.name: p for p in PROFILES}
BENCHMARK_NAMES: Tuple[str, ...] = tuple(p.name for p in PROFILES)
