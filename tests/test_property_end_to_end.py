"""Property-based end-to-end testing: random programs through the full stack.

Hypothesis generates small random programs in the mini language; each is
compiled, learned from, parameterized, and executed under every DBT
configuration — and every run must match the reference interpreter.  This is
the fuzzing harness for the whole system.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dbt import DBTEngine, check_against_reference
from repro.lang import compile_pair
from repro.learning import learn_pair
from repro.param import build_setup

_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "&~")
_RELOPS = ("<", "<=", ">", ">=", "==", "!=", "<u", ">u")
_VARS = ("a", "b", "c", "d")


@st.composite
def statements(draw):
    kind = draw(st.sampled_from(["alu", "aluimm", "load", "store", "unary"]))
    dest = draw(st.sampled_from(_VARS))
    x = draw(st.sampled_from(_VARS))
    y = draw(st.sampled_from(_VARS))
    if kind == "alu":
        op = draw(st.sampled_from(_OPS))
        return f"{dest} = {x} {op} {y};"
    if kind == "aluimm":
        op = draw(st.sampled_from([o for o in _OPS if o not in ("*", "&~")]))
        imm = draw(st.integers(min_value=1, max_value=31))
        return f"{dest} = {x} {op} {imm};"
    if kind == "load":
        return f"{dest} = g[i];"
    if kind == "store":
        return f"g[i] = {x};"
    op = draw(st.sampled_from(["~", "-"]))
    return f"{dest} = {op}{x};"


@st.composite
def programs(draw):
    body = draw(st.lists(statements(), min_size=3, max_size=10))
    seed_a = draw(st.integers(min_value=1, max_value=0xFFFF))
    seed_b = draw(st.integers(min_value=1, max_value=0xFFFF))
    relop = draw(st.sampled_from(_RELOPS))
    inner = "\n  ".join(body)
    return f"""global g[64]; global out[8];
func main() {{
  var a, b, c, d, i, s;
  a = {seed_a}; b = {seed_b}; c = 7; d = 11; i = 0; s = 0;
loop:
  {inner}
  s = s + a;
  if (c {relop} d) goto skip;
  s = s ^ b;
skip:
  i = i + 4;
  if (i <u 32) goto loop;
  out[0] = s;
  return s;
}}"""


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=programs())
def test_random_program_all_configs_correct(source):
    pair = compile_pair("fuzz", source)
    setup = build_setup(learn_pair(pair).rules)
    for stage in ("qemu", "wopara", "condition"):
        engine = DBTEngine(pair.guest, setup.configs[stage])
        result = engine.run()
        ok, message = check_against_reference(pair.guest, result)
        assert ok, f"{stage}: {message}\n{source}"


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=programs())
def test_random_program_coverage_monotone(source):
    pair = compile_pair("fuzz", source)
    setup = build_setup(learn_pair(pair).rules)
    coverages = []
    for stage in ("wopara", "opcode", "addrmode", "condition"):
        engine = DBTEngine(pair.guest, setup.configs[stage])
        coverages.append(engine.run().metrics.coverage)
    assert coverages == sorted(coverages)
