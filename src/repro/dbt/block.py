"""Guest basic-block discovery.

Blocks are built over the *real* (label-free) instruction index space.
Leaders are: function entries, every label target, and every instruction
following a branch or a call.  A block ends at its terminator branch or just
before the next leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.arm.opcodes import ARM
from repro.lang.program import CompiledUnit


@dataclass(frozen=True)
class Block:
    """A guest basic block: instruction indices [start, end)."""

    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


class BlockMap:
    """All blocks of a compiled unit, indexed by start address."""

    def __init__(self, unit: CompiledUnit) -> None:
        self.unit = unit
        instructions = unit.real_instructions
        n = len(instructions)
        leaders = {0} | set(unit.labels.values())
        for i, insn in enumerate(instructions):
            defn = ARM.defn(insn)
            if defn.is_branch and i + 1 < n:
                leaders.add(i + 1)
        ordered = sorted(index for index in leaders if index < n)
        self.blocks: List[Block] = []
        self._block_at: Dict[int, Block] = {}
        for i, start in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else n
            block = Block(start, end)
            self.blocks.append(block)
            self._block_at[start] = block

    def block_at(self, index: int) -> Block:
        block = self._block_at.get(index)
        if block is None:
            raise KeyError(f"no basic block starts at instruction index {index}")
        return block

    def instructions(self, block: Block) -> Tuple:
        return self.unit.real_instructions[block.start : block.end]

    def live_in_flags(self) -> frozenset:
        """Flags read before being set in any block (cross-block flag use).

        The mini compiler keeps flags block-local, so this is normally
        empty; the translator uses it as a safety net for hand-written
        guest code that carries flags across block boundaries.
        """
        live = set()
        for block in self.blocks:
            written = set()
            for insn in self.instructions(block):
                defn = ARM.defn(insn)
                live |= defn.flags_read - written
                written |= defn.flags_set
        return frozenset(live)
