"""Differential-testing subsystem: coverage-guided end-to-end fuzzing.

The oracle runs every generated guest program twice — through the reference
ARM interpreter and through the full learn→parameterize→translate→execute
DBT pipeline — and diffs the final architectural state.  Any divergence is
a bug in translation, parameterization constraints, or flag delegation.

Modules
-------
``gen``
    Seeded, coverage-guided program generation over the rule-bucket space
    of :mod:`repro.param.classify` (pseudo-opcode × operand shape ×
    flag liveness).
``oracle``
    The differential oracle, the shared training rule set, and the fault
    injector used to prove the oracle can catch translator bugs.
``shrink``
    Delta-debugging of failing programs down to a minimal reproducing
    instruction sequence.
``corpus``
    JSON reproducers: every fuzz-found failure becomes a permanent
    regression test replayed by ``tests/test_difftest_corpus.py``.
``campaign``
    The fuzzing loop wiring the above together, behind ``repro difftest``.
"""

from repro.difftest.campaign import CampaignReport, DifftestOptions, run_difftest
from repro.difftest.corpus import Reproducer, load_corpus, save_reproducer
from repro.difftest.gen import BucketCoverage, ProgramGenerator, bucket_universe
from repro.difftest.oracle import (
    Divergence,
    config_with_fault,
    run_oracle,
    training_setup,
)
from repro.difftest.shrink import shrink_program

__all__ = [
    "CampaignReport",
    "DifftestOptions",
    "run_difftest",
    "Reproducer",
    "load_corpus",
    "save_reproducer",
    "BucketCoverage",
    "ProgramGenerator",
    "bucket_universe",
    "Divergence",
    "config_with_fault",
    "run_oracle",
    "training_setup",
    "shrink_program",
]
