"""Remaining-surface tests: smart-constructor corners, rule-set preference,
stage composition, helpers."""

import pytest

from repro.symir import (
    Const,
    Extract,
    Sym,
    ZeroExt,
    binop,
    extract,
    ite,
    zero_ext,
)


class TestBuildCorners:
    def test_extract_of_constant_folds(self):
        assert extract(Const(0xABCD), 8, 8) == Const(0xAB, 8)

    def test_extract_identity(self):
        a = Sym("a")
        assert extract(a, 0, 32) is a

    def test_extract_through_zext_low_bits(self):
        inner = Sym("a", 8)
        assert extract(zero_ext(inner, 32), 0, 8) is inner

    def test_extract_through_zext_high_bits_zero(self):
        inner = Sym("a", 8)
        assert extract(zero_ext(inner, 32), 8, 8) == Const(0, 8)

    def test_zext_identity(self):
        a = Sym("a")
        assert zero_ext(a, 32) is a

    def test_zext_constant(self):
        assert zero_ext(Const(5, 8), 32) == Const(5, 32)

    def test_nested_structure_preserved_when_unknown(self):
        expr = extract(Sym("a"), 4, 8)
        assert isinstance(expr, Extract)
        expr = zero_ext(Sym("a", 8), 16)
        assert isinstance(expr, ZeroExt)

    def test_shift_by_huge_ashr_not_folded_to_zero(self):
        # Arithmetic right shift saturates to the sign, not to zero.
        result = binop("ashr", Sym("a"), Const(99))
        from repro.symir import evaluate

        assert evaluate(result, {"a": 0x80000000}) == 0xFFFFFFFF


class TestEquivalenceAssignments:
    def test_many_symbols_random_fallback(self):
        """With >3 symbols the boundary cross product is capped, but the
        checker must still distinguish unequal expressions."""
        from repro.symir import Sym, binop
        from repro.verify.equivalence import exprs_equal

        syms = [Sym(f"s{i}") for i in range(5)]
        lhs = syms[0]
        for s in syms[1:]:
            lhs = binop("add", lhs, s)
        rhs = binop("add", lhs, Const(1))
        assert not exprs_equal(lhs, rhs)
        assert exprs_equal(lhs, lhs)

    def test_no_symbols(self):
        from repro.verify.equivalence import exprs_equal

        assert exprs_equal(Const(5), Const(5))
        assert not exprs_equal(Const(5), Const(6))


class TestRuleSetPreference:
    def test_shorter_host_wins_lookup(self):
        from repro.isa.arm import assemble as arm
        from repro.isa.x86 import assemble as x86
        from repro.learning import RuleSet, TranslationRule

        long_rule = TranslationRule(
            guest=arm("add r0, r0, r1"),
            host=x86("movl %eax, %edx\naddl %ecx, %edx\nmovl %edx, %eax"),
            reg_mapping=(("r0", "eax"), ("r1", "ecx")),
            host_temps=("edx",),
        )
        short_rule = TranslationRule(
            guest=arm("add r0, r0, r1"),
            host=x86("addl %ecx, %eax"),
            reg_mapping=(("r0", "eax"), ("r1", "ecx")),
        )
        rules = RuleSet()
        assert rules.add(long_rule)
        assert rules.add(short_rule)  # distinct identity: both kept
        assert len(rules) == 2
        found = rules.lookup(arm("add r4, r4, r5"))
        assert found is short_rule

    def test_malformed_rule_rejected(self):
        from repro.isa.arm import assemble as arm
        from repro.isa.x86 import assemble as x86
        from repro.learning import RuleSet, TranslationRule

        # Host references a register outside the mapping and not declared
        # as a temp: canonicalization fails, add() returns False.
        bad = TranslationRule(
            guest=arm("mov r0, r1"),
            host=x86("movl %edx, %eax"),
            reg_mapping=(("r0", "eax"), ("r1", "ecx")),
        )
        rules = RuleSet()
        assert not rules.add(bad)


class TestStageComposition:
    def test_stage_order(self):
        from repro.param import STAGES

        assert STAGES == (
            "qemu",
            "wopara",
            "opcode",
            "addrmode",
            "condition",
            "seqparam",
            "manual",
        )

    def test_seqparam_superset_of_condition(self, demo_setup):
        condition = demo_setup.configs["condition"].rules
        seqparam = demo_setup.configs["seqparam"].rules
        assert len(seqparam) >= len(condition)

    def test_manual_flag_only_on_manual(self, demo_setup):
        for stage, config in demo_setup.configs.items():
            assert config.manual_other == (stage == "manual")

    def test_invalid_stage_rejected(self):
        from repro.experiments.common import run_benchmark

        with pytest.raises(ValueError):
            run_benchmark("mcf", "bogus")


class TestHelpers:
    def test_geomean_and_mean(self):
        from repro.experiments.common import geomean, mean

        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geomean_log_domain_no_overflow(self):
        from repro.experiments.common import geomean

        # The old product-then-root implementation overflowed to inf here
        # (1e308 ** 10) and underflowed to 0.0 on the tiny case.
        assert geomean([1e308] * 10) == pytest.approx(1e308, rel=1e-9)
        assert geomean([1e-308] * 10) == pytest.approx(1e-308, rel=1e-9)
        # Long lists of modest ratios must not drift either.
        assert geomean([1.1] * 5000) == pytest.approx(1.1)

    def test_geomean_zero_and_negative(self):
        from repro.experiments.common import geomean

        assert geomean([0.0, 2.0, 8.0]) == 0.0
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    def test_rewrite_imms(self):
        from repro.isa.arm import assemble as arm
        from repro.learning.learn import rewrite_imms

        insns = arm("add r0, r0, #5\nldr r1, [r2, #5]")
        rewritten = rewrite_imms(insns, {5: 99})
        assert rewritten[0].operands[2].value == 99
        assert rewritten[1].operands[1].disp == 99

    def test_describe_statement(self):
        from repro.lang import ast, parse
        from repro.lang.codegen_base import describe_statement

        program = parse(
            "global g[8];\nfunc f(a) { x = a + 1; g[a] = x; "
            "if (a < x) goto l; l: return x; }"
        )
        texts = [describe_statement(s) for s in program.functions["f"].body
                 if not isinstance(s, ast.LabelStmt)]
        assert texts[0] == "x = a + 1"
        assert "g[" in texts[1]
        assert texts[2].startswith("if (")

    def test_check_function_in_every_benchmark(self):
        from repro.workloads import benchmark_source, BENCHMARK_NAMES

        for name in BENCHMARK_NAMES:
            assert "func check(seed)" in benchmark_source(name)
