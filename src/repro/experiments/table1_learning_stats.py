"""Table I: the learning funnel per benchmark.

Statements -> rule candidates (extraction losses) -> learned rules
(verification losses) -> unique rules (dedup).  The paper reports
53.8% / 22.6% / 1.3% of statements on average for real SPEC CINT 2006.
"""

from __future__ import annotations

from repro.experiments.common import suite_stats
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="table1",
        title="Table I — rules learned per benchmark (enhanced learning approach)",
        headers=("benchmark", "statements", "candidates", "learned", "unique"),
    )
    stats = suite_stats()
    totals = [0, 0, 0, 0]
    for entry in stats:
        result.add(entry.name, entry.statements, entry.candidates, entry.learned, entry.unique)
        totals[0] += entry.statements
        totals[1] += entry.candidates
        totals[2] += entry.learned
        totals[3] += entry.unique
    n = len(stats)
    result.add("Avg.", totals[0] // n, totals[1] // n, totals[2] // n, totals[3] // n)
    result.add(
        "Percent%",
        "100%",
        f"{100 * totals[1] / totals[0]:.1f}%",
        f"{100 * totals[2] / totals[0]:.1f}%",
        f"{100 * totals[3] / totals[0]:.1f}%",
    )
    result.note("paper percentages: 53.8% candidates, 22.6% learned, 1.3% unique")
    return result
