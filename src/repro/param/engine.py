"""Parameterization orchestration: rule sets and DBT configurations.

Builds the five system configurations the evaluation compares (QEMU, the
learning baseline, and the three cumulative parameterization stages of
figs. 14/15), from one learned rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cache import MISS, BoundedMemo
from repro.dbt.translator import TranslationConfig
from repro.learning.ruleset import RuleSet
from repro.learning.store import ruleset_fingerprint
from repro.param.derive import ParamCounts, ParamResult, derive_rules
from repro.param.seqderive import derive_sequence_rules

#: Configuration keys in cumulative order.
STAGES = ("qemu", "wopara", "opcode", "addrmode", "condition", "seqparam", "manual")


@dataclass
class SystemSetup:
    """Everything the experiments need for one learned rule set."""

    learned: RuleSet
    param: ParamResult
    configs: Dict[str, TranslationConfig]


#: Setups are memoized by rule-set content, so e.g. the same training subset
#: drawn twice in a sweep (or in two stages of one experiment) derives once.
#: Returned SystemSetups are shared, so every RuleSet inside one is frozen:
#: a caller mutating a returned setup gets a loud error instead of silently
#: poisoning every later cache hit (use ``.copy()`` for a mutable set).
_SETUP_MEMO = BoundedMemo(maxsize=64)


def build_setup(learned: RuleSet) -> SystemSetup:
    """Derive rules and assemble one TranslationConfig per stage."""
    fingerprint = ruleset_fingerprint(learned)
    memoized = _SETUP_MEMO.get(fingerprint)
    if memoized is not MISS:
        return memoized
    setup = _build_setup_uncached(learned)
    _SETUP_MEMO.put(fingerprint, setup)
    return setup


def _build_setup_uncached(learned: RuleSet) -> SystemSetup:
    # Snapshot the caller's set: the memoized setup must not alias an object
    # the caller can keep mutating (same content ⇒ same derivation output).
    learned = learned.copy()
    param = derive_rules(learned, include_addrmode=True)

    opcode_rules = learned.copy()
    opcode_rules.extend(param.derived.by_origin("opcode-param"))

    all_rules = learned.copy()
    all_rules.extend(param.derived.rules)

    seq_rules = all_rules.copy()
    seq_rules.extend(derive_sequence_rules(learned).rules)

    configs = {
        "qemu": TranslationConfig("qemu", rules=None),
        "wopara": TranslationConfig("w/o para.", rules=learned),
        "opcode": TranslationConfig("opcode", rules=opcode_rules),
        "addrmode": TranslationConfig(
            "addr mode", rules=all_rules, pc_constraint=True
        ),
        "condition": TranslationConfig(
            "condition", rules=all_rules, condition=True, pc_constraint=True
        ),
        # Extension (the paper's future work, §V-D): sequence-rule
        # parameterization on top of the full system.
        "seqparam": TranslationConfig(
            "seq param",
            rules=seq_rules,
            condition=True,
            pc_constraint=True,
        ),
        # Extension (§V-B2's closing note): manual rules for the seven
        # unlearnable instructions on top of the full parameterized system.
        "manual": TranslationConfig(
            "manual",
            rules=all_rules,
            condition=True,
            pc_constraint=True,
            manual_other=True,
        ),
    }
    for ruleset in (learned, param.derived, opcode_rules, all_rules, seq_rules):
        ruleset.freeze()
    return SystemSetup(learned=learned, param=param, configs=configs)
