"""Experiment result schema and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """One reproduced table or figure, as rows of data."""

    ident: str  # e.g. "fig12"
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[Cell, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, header: str) -> List[Cell]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key: Cell) -> Tuple[Cell, ...]:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in {self.ident}")

    def format(self) -> str:
        return format_table(self.title, self.headers, self.rows, self.notes)


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    notes: Sequence[str] = (),
) -> str:
    table = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = [title, "-" * len(title)]
    for row_index, row in enumerate(table):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if row_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
