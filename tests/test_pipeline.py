"""The continuous-learning pipeline (``repro.pipeline``).

Covers the content-addressed artifact store (checksummed write-once
entries, corruption quarantine, single-flight build-or-wait), the
versioned ruleset store (publish idempotence, parent chain, latest
pointer, tamper detection, GC), body↔config reconstruction parity with the
derivation engine, and the staged pipeline itself: a second run is
artifact hits across the board, and invalidating one stage rebuilds
exactly that stage and its downstream suffix.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ReproError
from repro.pipeline import (
    ArtifactStore,
    Pipeline,
    PipelineConfig,
    RulesetStore,
    artifact_digest,
    body_digest,
    body_from_setup,
    serving_ruleset_from_body,
    serving_ruleset_from_setup,
)
from repro.pipeline.artifacts import BUILT, HIT


@pytest.fixture(scope="module")
def quick_setup():
    from repro.difftest.oracle import training_setup

    return training_setup()


@pytest.fixture(scope="module")
def quick_body(quick_setup):
    return body_from_setup(
        quick_setup, training="quick", benchmarks=("mcf", "libquantum")
    )


# ---------------------------------------------------------------------------
# artifact store


class TestArtifactStore:
    def test_digest_is_stable_and_input_sensitive(self):
        a = artifact_digest("learn", "abc", 3)
        assert a == artifact_digest("learn", "abc", 3)
        assert a != artifact_digest("learn", "abc", 4)
        assert a != artifact_digest("derive", "abc", 3)

    def test_build_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_digest("learn", "x")
        calls = []

        def build():
            calls.append(1)
            return {"rules": [1, 2]}

        payload, outcome = store.get_or_build("learn", digest, build)
        assert (payload, outcome) == ({"rules": [1, 2]}, BUILT)
        payload, outcome = store.get_or_build("learn", digest, build)
        assert (payload, outcome) == ({"rules": [1, 2]}, HIT)
        assert len(calls) == 1
        stats = store.stats()
        assert stats["builds"] == 1 and stats["hits"] == 1

    def test_corrupt_entry_is_quarantined_and_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_digest("learn", "x")
        store.get_or_build("learn", digest, lambda: {"v": 1})
        path = store.entry_path("learn", digest)

        # bit-flip the payload: checksum must catch it
        entry = json.loads(path.read_text())
        entry["payload"] = {"v": 2}
        path.write_text(json.dumps(entry))
        assert store.load("learn", digest) is None
        assert not path.exists()  # deleted, not trusted

        # truncated JSON: same fate
        payload, outcome = store.get_or_build("learn", digest, lambda: {"v": 3})
        assert (payload, outcome) == ({"v": 3}, BUILT)
        path.write_text(path.read_text()[:20])
        assert store.load("learn", digest) is None
        assert store.stats()["corrupt"] == 2

    def test_entries_are_write_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_digest("learn", "x")
        assert store.store("learn", digest, {"v": 1}) is True
        assert store.store("learn", digest, {"v": 2}) is False
        assert store.load("learn", digest) == {"v": 1}

    def test_concurrent_builders_single_flight(self, tmp_path):
        store = ArtifactStore(tmp_path, poll_interval=0.002)
        digest = artifact_digest("learn", "x")
        builds = []
        barrier = threading.Barrier(4)
        outcomes = []

        def build():
            builds.append(1)
            return {"v": 1}

        def worker():
            barrier.wait()
            payload, outcome = store.get_or_build("learn", digest, build)
            assert payload == {"v": 1}
            outcomes.append(outcome)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert sorted(outcomes) == [BUILT, HIT, HIT, HIT]

    def test_invalidate_by_stage(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_build("learn", artifact_digest("learn", 1), lambda: 1)
        store.get_or_build("derive", artifact_digest("derive", 1), lambda: 2)
        assert store.entry_count() == 2
        assert store.invalidate("learn") == 1
        assert store.entry_count() == 1
        assert store.invalidate() == 1
        assert store.entry_count() == 0


# ---------------------------------------------------------------------------
# ruleset store


def _tiny_body(tag: str) -> dict:
    """A minimal schema-valid body (no rules) for store-mechanics tests."""
    return {
        "format": "repro-ruleset-v1",
        "training": "quick",
        "benchmarks": [tag],
        "counts": {},
        "learned": [],
        "derived": [],
        "sequence": [],
    }


class TestRulesetStore:
    def test_publish_moves_latest_and_chains_parents(self, tmp_path):
        store = RulesetStore(tmp_path)
        assert store.latest_version() is None
        first = store.publish(_tiny_body("a"), provenance={"learn": "d1"})
        assert first.created and first.seq == 0 and first.parent is None
        assert store.latest_version() == first.version

        second = store.publish(_tiny_body("b"))
        assert second.created and second.seq == 1
        assert second.parent == first.version
        assert store.latest_version() == second.version
        manifest = store.read_manifest(first.version)
        assert manifest["provenance"] == {"learn": "d1"}

    def test_publish_is_idempotent_on_latest_body(self, tmp_path):
        store = RulesetStore(tmp_path)
        first = store.publish(_tiny_body("a"))
        again = store.publish(_tiny_body("a"))
        assert again.created is False
        assert again.version == first.version
        assert len(store.versions()) == 1

    def test_tampered_body_is_rejected(self, tmp_path):
        store = RulesetStore(tmp_path)
        result = store.publish(_tiny_body("a"))
        path = store.body_path(result.body_sha256)
        body = json.loads(path.read_text())
        body["benchmarks"] = ["evil"]
        path.write_text(json.dumps(body, sort_keys=True))
        with pytest.raises(ReproError, match="digest mismatch"):
            store.load_version(result.version)

    def test_damaged_latest_pointer_reads_as_unborn(self, tmp_path):
        store = RulesetStore(tmp_path)
        store.publish(_tiny_body("a"))
        store.latest_path.write_text("v999999-nonexistent\n")
        assert store.latest_version() is None

    def test_gc_keeps_latest_chain(self, tmp_path):
        store = RulesetStore(tmp_path)
        versions = [store.publish(_tiny_body(tag)).version for tag in "abcde"]
        swept = store.gc(keep=2)
        assert swept["kept"] == [versions[4], versions[3]]
        assert sorted(swept["removed_versions"]) == sorted(versions[:3])
        # kept versions still load; GC'd ones are gone
        assert store.load_version(versions[4])["body"]["benchmarks"] == ["e"]
        with pytest.raises(ReproError):
            store.load_version(versions[0])
        assert store.stats()["bodies"] == 2


# ---------------------------------------------------------------------------
# body <-> serving-config reconstruction


class TestManifestReconstruction:
    def test_body_digest_is_canonical(self, quick_body):
        reordered = dict(reversed(list(quick_body.items())))
        assert body_digest(reordered) == body_digest(quick_body)

    def test_reconstruction_translation_parity(self, quick_setup, quick_body):
        """Configs rebuilt from the body translate byte-identically to the
        derivation engine's own configs, on every rule-bearing stage."""
        from repro.dbt.block import BlockMap
        from repro.dbt.translator import BlockTranslator
        from repro.workloads import compiled_benchmark

        ruleset = serving_ruleset_from_body(quick_body, version="candidate")
        assert ruleset.rule_counts["learned"] == len(quick_setup.learned)
        unit = compiled_benchmark("mcf").guest
        for stage in ("wopara", "opcode", "addrmode", "condition", "seqparam"):
            theirs = quick_setup.configs[stage]
            ours = ruleset.config_for(stage)
            assert len(ours.rules) == len(theirs.rules)
            blockmap = BlockMap(unit)
            reference = BlockTranslator(unit, blockmap, theirs)
            rebuilt = BlockTranslator(unit, BlockMap(unit), ours)
            for block in blockmap.blocks:
                a = reference.translate(block)
                b = rebuilt.translate(block)
                assert [str(i) for i in a.host] == [str(i) for i in b.host]
                assert a.covered == b.covered

    def test_builtin_wrapper_identity(self, quick_setup):
        ruleset = serving_ruleset_from_setup(quick_setup, training="quick")
        assert ruleset.version == "builtin:quick"
        assert ruleset.source == "builtin"
        identity = ruleset.identity()
        assert identity["rules"]["serving"] == len(
            quick_setup.configs["condition"].rules
        )

    def test_unknown_stage_raises(self, quick_body):
        ruleset = serving_ruleset_from_body(quick_body, version="v")
        with pytest.raises(ReproError):
            ruleset.config_for("nope")


# ---------------------------------------------------------------------------
# the staged pipeline end to end


class TestPipelineRuns:
    @pytest.fixture()
    def pipeline(self, tmp_path):
        return Pipeline(
            PipelineConfig(
                workdir=str(tmp_path / "work"),
                benchmarks=("mcf",),
                verify_programs=2,
            )
        )

    def test_second_run_hits_every_stage(self, pipeline):
        first = pipeline.run()
        assert first["ok"] and not first["all_hits"]
        assert [s["outcome"] for s in first["stages"]] == ["built"] * 5
        assert first["ruleset"]["version"].startswith("v000000-")

        second = pipeline.run()
        assert second["all_hits"]
        assert [s["outcome"] for s in second["stages"]] == ["hit"] * 5
        # identical inputs -> identical digests -> same published version
        assert second["ruleset"]["version"] == first["ruleset"]["version"]
        assert [s["digest"] for s in second["stages"]] == [
            s["digest"] for s in first["stages"]
        ]
        status = pipeline.status()
        assert status["latest"] == first["ruleset"]["version"]
        assert status["last_run"]["all_hits"]

    def test_invalidate_rebuilds_exact_suffix(self, pipeline):
        pipeline.run()
        assert pipeline.invalidate("verify") == 1
        report = pipeline.run()
        outcomes = {s["name"]: s["outcome"] for s in report["stages"]}
        # verify rebuilds; publish is keyed by upstream digests (unchanged)
        # so it stays a hit — everything upstream untouched.
        assert outcomes == {
            "corpus": "hit",
            "learn": "hit",
            "derive": "hit",
            "verify": "built",
            "publish": "hit",
        }

    def test_corpus_change_rebuilds_downstream(self, tmp_path, pipeline):
        pipeline.run()
        wider = Pipeline(
            PipelineConfig(
                workdir=pipeline.config.workdir,
                benchmarks=("mcf", "libquantum"),
                verify_programs=2,
            )
        )
        report = wider.run()
        assert [s["outcome"] for s in report["stages"]] == ["built"] * 5
        # the new corpus publishes a child version of the first run's
        second = report["ruleset"]["version"]
        manifest = wider.store.read_manifest(second)
        assert manifest["parent"] is not None
        assert manifest["seq"] == 1

    def test_unknown_invalidate_stage_rejected(self, pipeline):
        with pytest.raises(ReproError):
            pipeline.invalidate("nonsense")

    def test_published_version_round_trips_to_serving_configs(self, pipeline):
        report = pipeline.run()
        loaded = pipeline.store.load_version(report["ruleset"]["version"])
        ruleset = serving_ruleset_from_body(
            loaded["body"],
            version=loaded["version"],
            digest=loaded["body_sha256"],
        )
        assert ruleset.config_for("condition").rules is not None
        assert ruleset.rule_counts["serving"] > 0
