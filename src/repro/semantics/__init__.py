"""Value-domain semantics layer (one semantics, concrete + symbolic)."""

from repro.semantics.domain import CONCRETE, SYMBOLIC, ConcreteDomain, SymbolicDomain
from repro.semantics.state import BaseState, ConcreteState

__all__ = [
    "ConcreteDomain",
    "SymbolicDomain",
    "CONCRETE",
    "SYMBOLIC",
    "BaseState",
    "ConcreteState",
]
