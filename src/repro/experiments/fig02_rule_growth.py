"""Figure 2: learned-rule count vs number of training benchmarks.

The paper adds one randomly-selected benchmark at a time (perlbench first)
and counts the merged unique learned rules; growth flattens after ~6
benchmarks.  We reproduce the same cumulative-merge protocol over the suite
order (perlbench is first in it, as in the paper's illustration).
"""

from __future__ import annotations

from repro.experiments.common import benchmark_learning, rules_from
from repro.experiments.report import ExperimentResult
from repro.workloads import BENCHMARK_NAMES


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="fig02",
        title="Fig. 2 — unique learned rules vs training-set size",
        headers=("benchmarks", "added", "unique rules"),
    )
    for count in range(1, len(BENCHMARK_NAMES) + 1):
        names = BENCHMARK_NAMES[:count]
        merged = rules_from(names)
        result.add(count, names[-1], len(merged))
    result.note(
        "paper shape: growth slows sharply after ~6 benchmarks "
        "(2,724 rules at 12 for real SPEC)"
    )
    return result
