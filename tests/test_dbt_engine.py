"""End-to-end DBT correctness: translated execution == reference execution.

This is the central integration invariant: for every program and every
configuration, the DBT engine's final architectural state must match the
reference interpreter's.
"""

import pytest

from repro.dbt import DBTEngine, check_against_reference
from repro.dbt.guest_interp import GuestInterpreter
from repro.lang import compile_pair
from repro.param import STAGES, build_setup
from tests.conftest import run_demo_config

PROGRAMS = {
    "arith": """global out[8];
        func main() { var a, b, c; a = 100; b = 7;
          c = a - b; c = c * 3; c = c ^ 255; c = c &~ 12; c = c << 2; c = c >>> 1;
          out[0] = c; return c; }""",
    "memory": """global g[128]; global out[16];
        func main() { var i, s, x;
          i = 0; s = 0;
        fill: g[i] = i; storeb(g, i, 9); i = i + 4; if (i <u 64) goto fill;
          i = 0;
        acc: x = g[i]; s = s + x; x = loadb(g, i); s = s + x;
          x = loadh(g, i); s = s ^ x; i = i + 4; if (i <u 64) goto acc;
          out[0] = s; return s; }""",
    "flags": """global out[8];
        func main() { var a, b, t, r; a = 10; b = 10; r = 0;
          if (a == b) goto eq; r = 1; goto j1; eq: r = 2; j1:
          if ((a & b) != 0) goto tst; r = r + 10; tst:
          if ((a ^ b) == 0) goto teq; r = r + 100; teq:
          iftest (t = r) goto nz; r = 55; nz:
          fuse (a - 10) eq goto z; r = r + 1000; z:
          out[0] = r; return r; }""",
    "calls": """global out[8];
        func fib(n) {
          var a, b, t, i;
          a = 0; b = 1; i = 0;
        loop: t = a + b; a = b; b = t; i = i + 1; if (i < n) goto loop;
          return a; }
        func main() { var r; r = call fib(10); out[0] = r; return r; }""",
    "special": """global out[16];
        func main() { var a, b, lo, hi, c, m;
          a = 123456789; b = 987654321; lo = 5; hi = 0;
          umlal(lo, hi, a, b);
          c = clz(a);
          m = 3; m = m + a * 2;
          out[0] = lo; out[4] = hi; out[8] = c; out[12] = m;
          return lo; }""",
}


@pytest.fixture(scope="module", params=sorted(PROGRAMS))
def program_pair(request):
    return compile_pair(request.param, PROGRAMS[request.param])


@pytest.fixture(scope="module")
def program_setup(program_pair):
    from repro.learning import learn_pair

    return build_setup(learn_pair(program_pair).rules)


class TestEndToEnd:
    @pytest.mark.parametrize("stage", STAGES)
    def test_all_configs_match_reference(self, program_pair, program_setup, stage):
        engine = DBTEngine(program_pair.guest, program_setup.configs[stage])
        result = engine.run()
        ok, message = check_against_reference(program_pair.guest, result)
        assert ok, f"{program_pair.name}/{stage}: {message}"

    def test_guest_dynamic_counts_agree_with_interpreter(
        self, program_pair, program_setup
    ):
        reference = GuestInterpreter(program_pair.guest).run()
        engine = DBTEngine(program_pair.guest, program_setup.configs["qemu"])
        result = engine.run()
        assert result.metrics.guest_dynamic == reference.steps


class TestEngineBehaviour:
    def test_code_cache_reused(self, demo_pair, demo_setup):
        engine = DBTEngine(demo_pair.guest, demo_setup.configs["condition"])
        result = engine.run()
        metrics = result.metrics
        assert metrics.blocks_translated == len(engine.code_cache)
        assert metrics.block_executions > metrics.blocks_translated

    def test_coverage_bounds(self, demo_pair, demo_setup):
        for stage in STAGES:
            metrics = run_demo_config(demo_pair, demo_setup, stage).metrics
            assert 0.0 <= metrics.coverage <= 1.0

    def test_stage_coverage_monotone_dynamic(self, demo_pair, demo_setup):
        coverages = [
            run_demo_config(demo_pair, demo_setup, stage).metrics.coverage
            for stage in STAGES
        ]
        assert coverages == sorted(coverages)

    def test_cost_decreases_with_rules(self, demo_pair, demo_setup):
        qemu = run_demo_config(demo_pair, demo_setup, "qemu").metrics.cost()
        full = run_demo_config(demo_pair, demo_setup, "condition").metrics.cost()
        assert full < qemu

    def test_category_ratios_positive(self, demo_pair, demo_setup):
        metrics = run_demo_config(demo_pair, demo_setup, "condition").metrics
        assert metrics.ratio("data") > 0
        assert metrics.ratio("control") > 0
        assert metrics.ratio("rule") > 0
        assert metrics.total_ratio > 1.0

    def test_helper_weights_applied(self):
        source = """global out[8];
        func main() { var a, c; a = 3; c = clz(a); out[0] = c; return c; }"""
        pair = compile_pair("t", source)
        from repro.dbt.translator import TranslationConfig

        engine = DBTEngine(pair.guest, TranslationConfig("qemu"))
        result = engine.run()
        ok, message = check_against_reference(pair.guest, result)
        assert ok, message
