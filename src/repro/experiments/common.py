"""Shared experiment machinery: the leave-one-out protocol and caches.

The paper's protocol (§V-A): rules learned from 11 benchmarks are applied
to the 12th, repeated for each benchmark.  Everything expensive — per-
benchmark learning, rule derivation, DBT runs — is cached per process, and
every DBT run is checked against the reference interpreter before its
metrics are trusted.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.dbt import DBTEngine, RunMetrics, check_against_reference
from repro.errors import ExecutionError
from repro.learning import LearnStats, PairLearning, RuleSet, Verifier, learn_pair
from repro.param import STAGES, SystemSetup, build_setup
from repro.workloads import BENCHMARK_NAMES, compiled_benchmark

_SHARED_VERIFIER = Verifier()


@lru_cache(maxsize=None)
def benchmark_learning(name: str) -> PairLearning:
    """Learn rules from one benchmark (shared verification cache)."""
    return learn_pair(compiled_benchmark(name), _SHARED_VERIFIER)


@lru_cache(maxsize=None)
def suite_stats() -> Tuple[LearnStats, ...]:
    return tuple(benchmark_learning(name).stats for name in BENCHMARK_NAMES)


def rules_from(names: Sequence[str]) -> RuleSet:
    """Merged unique rules learned from the given benchmarks."""
    merged = RuleSet()
    for name in names:
        merged.extend(benchmark_learning(name).rules.rules)
    return merged


@lru_cache(maxsize=None)
def rules_excluding(name: str) -> RuleSet:
    return rules_from(tuple(n for n in BENCHMARK_NAMES if n != name))


@lru_cache(maxsize=None)
def rules_full_suite() -> RuleSet:
    return rules_from(BENCHMARK_NAMES)


@lru_cache(maxsize=None)
def setup_excluding(name: str) -> SystemSetup:
    """Leave-one-out system setup (learned + derived rules, all stages)."""
    return build_setup(rules_excluding(name))


@lru_cache(maxsize=None)
def full_suite_setup() -> SystemSetup:
    return build_setup(rules_full_suite())


@lru_cache(maxsize=None)
def run_benchmark(name: str, stage: str) -> RunMetrics:
    """Run one benchmark under one configuration (leave-one-out rules).

    The final architectural state is validated against the reference
    interpreter; a mismatch is an error, not a data point.
    """
    if stage not in STAGES:
        raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
    pair = compiled_benchmark(name)
    setup = setup_excluding(name)
    engine = DBTEngine(pair.guest, setup.configs[stage])
    result = engine.run()
    ok, message = check_against_reference(pair.guest, result)
    if not ok:
        raise ExecutionError(f"{name}/{stage}: translated execution diverged: {message}")
    return result.metrics


def run_stage_metrics(stage: str) -> Dict[str, RunMetrics]:
    return {name: run_benchmark(name, stage) for name in BENCHMARK_NAMES}


def geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
