"""Figure 14: coverage contribution of each parameterization factor.

Cumulative stages: w/o para -> +opcode -> +addressing mode -> +condition
flags delegation.  Paper averages: 69.7 -> 79.8 -> 87.0 -> 95.5 (%).
"""

from __future__ import annotations

from repro.experiments.common import mean, run_benchmark
from repro.experiments.report import ExperimentResult
from repro.workloads import BENCHMARK_NAMES

STAGE_COLUMNS = ("wopara", "opcode", "addrmode", "condition")


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="fig14",
        title="Fig. 14 — dynamic coverage (%) by parameterization factor",
        headers=("benchmark", "w/o para.", "opcode", "addr mode", "condition"),
    )
    columns = {stage: [] for stage in STAGE_COLUMNS}
    for name in BENCHMARK_NAMES:
        values = []
        for stage in STAGE_COLUMNS:
            coverage = 100 * run_benchmark(name, stage).coverage
            columns[stage].append(coverage)
            values.append(coverage)
        result.add(name, *values)
    result.add("average", *(mean(columns[stage]) for stage in STAGE_COLUMNS))
    result.note("paper averages: 69.7 / 79.8 / 87.0 / 95.5")
    return result
