"""Tests for concrete evaluation of symbolic expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.symir import BinOp, Const, Extract, Ite, Sym, UnOp, ZeroExt, evaluate

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
MASK = 0xFFFFFFFF


def _s(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class TestBinops:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("add", MASK, 1, 0),
            ("sub", 0, 1, MASK),
            ("mul", 0x10000, 0x10000, 0),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 31, 0x80000000),
            ("shl", 1, 32, 0),
            ("lshr", 0x80000000, 31, 1),
            ("lshr", 0x80000000, 32, 0),
            ("ashr", 0x80000000, 31, MASK),
            ("ashr", 0x80000000, 100, MASK),
            ("eq", 5, 5, 1),
            ("ne", 5, 5, 0),
            ("ult", 1, 0x80000000, 1),
            ("slt", 1, 0x80000000, 0),
            ("ule", 5, 5, 1),
            ("sle", 0xFFFFFFFF, 0, 1),
        ],
    )
    def test_cases(self, op, a, b, expected):
        expr = BinOp(op, Const(a), Const(b))
        assert evaluate(expr, {}) == expected

    @given(a=U32, b=U32)
    def test_add_matches_python(self, a, b):
        expr = BinOp("add", Sym("a"), Sym("b"))
        assert evaluate(expr, {"a": a, "b": b}) == (a + b) & MASK

    @given(a=U32, b=U32)
    def test_slt_matches_python(self, a, b):
        expr = BinOp("slt", Sym("a"), Sym("b"))
        assert evaluate(expr, {"a": a, "b": b}) == int(_s(a) < _s(b))


class TestUnops:
    def test_not(self):
        assert evaluate(UnOp("not", Const(0)), {}) == MASK

    def test_neg(self):
        assert evaluate(UnOp("neg", Const(1)), {}) == MASK
        assert evaluate(UnOp("neg", Const(0)), {}) == 0

    @pytest.mark.parametrize(
        "value,expected", [(0, 32), (1, 31), (0x80000000, 0), (0xFF, 24)]
    )
    def test_clz(self, value, expected):
        assert evaluate(UnOp("clz", Const(value)), {}) == expected


class TestStructural:
    def test_ite(self):
        expr = Ite(Sym("c", 1), Const(10), Const(20))
        assert evaluate(expr, {"c": 1}) == 10
        assert evaluate(expr, {"c": 0}) == 20

    def test_extract(self):
        expr = Extract(Const(0xABCD1234), 8, 8)
        assert evaluate(expr, {}) == 0x12

    def test_zero_ext(self):
        expr = ZeroExt(Const(0xFF, 8), 32)
        assert evaluate(expr, {}) == 0xFF

    def test_symbol_masked_to_width(self):
        assert evaluate(Sym("x", 8), {"x": 0x1FF}) == 0xFF

    def test_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            evaluate(Sym("missing"), {})

    def test_shared_subtree_cached(self):
        shared = BinOp("add", Sym("a"), Const(1))
        expr = BinOp("xor", shared, shared)
        assert evaluate(expr, {"a": 41}) == 0

    @given(value=U32)
    def test_evaluate_respects_width(self, value):
        expr = BinOp("add", Sym("x", 8), Const(1, 8))
        assert evaluate(expr, {"x": value}) <= 0xFF
