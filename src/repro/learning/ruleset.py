"""Indexed collections of translation rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RuleError
from repro.isa.instruction import Instruction
from repro.learning.rule import (
    CanonicalKey,
    TranslationRule,
    guest_key,
    window_keys,
)


@dataclass
class RuleSet:
    """A deduplicated, lookup-indexed set of translation rules.

    Lookup honours the canonical operand-equality pattern of the rule (so a
    rule learned from ``add r0, r0, r1`` does not match ``add r2, r3, r5``,
    paper fig. 8) and prefers immediate-generalized rules, falling back to
    value-specific rules.
    """

    rules: List[TranslationRule] = field(default_factory=list)
    _generalized: Dict[CanonicalKey, TranslationRule] = field(default_factory=dict)
    _specific: Dict[CanonicalKey, TranslationRule] = field(default_factory=dict)
    _identities: Set[Tuple] = field(default_factory=set)
    _frozen: bool = field(default=False, repr=False)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[TranslationRule]:
        return iter(self.rules)

    def freeze(self) -> "RuleSet":
        """Make this set immutable; :meth:`add`/:meth:`extend` raise after.

        Shared, memoized rule sets (e.g. inside a cached
        :class:`repro.param.engine.SystemSetup`) are frozen so a caller
        mutating one poisons nothing — the attempt fails loudly instead.
        :meth:`copy` returns a mutable duplicate.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def add(self, rule: TranslationRule) -> bool:
        """Add a rule; returns False if it duplicates an existing rule.

        When two distinct rules share a guest key, the one with the shorter
        host sequence wins the index slot (better translated code quality);
        both remain in :attr:`rules` for counting.
        """
        if self._frozen:
            raise RuleError("RuleSet is frozen (shared/memoized); copy() it first")
        try:
            identity = rule.canonical_identity()
        except RuleError:
            return False
        if identity in self._identities:
            return False
        self._identities.add(identity)
        self.rules.append(rule)
        index = self._generalized if rule.imm_generalized else self._specific
        key = rule.key()
        current = index.get(key)
        if current is None or len(rule.host) < len(current.host):
            index[key] = rule
        return True

    def extend(self, rules: Iterable[TranslationRule]) -> int:
        return sum(1 for rule in rules if self.add(rule))

    def lookup(self, window: Sequence[Instruction]) -> Optional[TranslationRule]:
        """Best rule matching a concrete guest window, or None."""
        try:
            general, specific = window_keys(window)
        except RuleError:
            return None
        return self.lookup_canonical(general, specific)

    def lookup_canonical(
        self, general: CanonicalKey, specific: CanonicalKey
    ) -> Optional[TranslationRule]:
        """Lookup from precomputed :func:`window_keys` key pair.

        Preference order is identical to :meth:`lookup`: the
        immediate-generalized index wins, the value-specific index is the
        fallback.
        """
        rule = self._generalized.get(general)
        if rule is not None:
            return rule
        return self._specific.get(specific)

    def lookup_legacy(
        self, window: Sequence[Instruction]
    ) -> Optional[TranslationRule]:
        """The pre-fast-path lookup: one canonicalization pass per probe.

        Kept verbatim as the honest A/B baseline for ``repro bench
        --distill`` — :func:`window_keys` computes both keys in a single
        walk, this recomputes from scratch per index.  Must return exactly
        what :meth:`lookup` returns (the distill parity gate covers this).
        """
        try:
            general = guest_key(window, with_values=False)
        except RuleError:
            return None
        rule = self._generalized.get(general)
        if rule is not None:
            return rule
        specific = guest_key(window, with_values=True)
        return self._specific.get(specific)

    def max_guest_length(self) -> int:
        return max((rule.guest_length for rule in self.rules), default=0)

    def by_origin(self, origin: str) -> List[TranslationRule]:
        return [rule for rule in self.rules if rule.origin == origin]

    def single_instruction_rules(self) -> List[TranslationRule]:
        return [rule for rule in self.rules if rule.guest_length == 1]

    def partition(self, key_of) -> Dict:
        """Split into per-key :class:`RuleSet` parts by ``key_of(rule)``.

        Rules are re-added in original insertion order, so each part's
        lookup index reproduces the flat set's tie-breaks exactly.  As long
        as ``key_of`` is a function of the rule's guest key (e.g. the first
        guest mnemonic — every rule matching a given window shares it), a
        per-part lookup returns the same rule the flat lookup would: this
        is the invariant the service's sharded rule index relies on.
        """
        parts: Dict = {}
        for rule in self.rules:
            part = parts.get(key_of(rule))
            if part is None:
                part = parts[key_of(rule)] = RuleSet()
            part.add(rule)
        return parts

    def merged_with(self, other: "RuleSet") -> "RuleSet":
        merged = RuleSet()
        merged.extend(self.rules)
        merged.extend(other.rules)
        return merged

    def copy(self) -> "RuleSet":
        duplicate = RuleSet()
        duplicate.extend(self.rules)
        return duplicate
