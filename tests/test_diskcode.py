"""Fault-injection tests for the cross-process disk code cache.

The disk code cache (:mod:`repro.service.diskcode`) sits between pool
workers and ``compile()``: a corrupted entry that slipped through would be
*executed as guest semantics*.  These tests attack the entry format
(truncation, bit flips, version skew, misfiled keys) and the lockfile
protocol (stale locks from dead claimants, wait timeouts, claim races
across real forked processes) and assert the cache always degrades to a
miss — never to executing tampered source, never to a deadlock.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.dbt.compiler import (
    BlockSource,
    add_compile_listener,
    compile_block,
    compile_block_source,
    generate_block_source,
    remove_compile_listener,
)
from repro.service.diskcode import CACHED, CLAIMED, TIMEOUT, DiskCodeCache


@pytest.fixture
def cache(tmp_path):
    return DiskCodeCache(tmp_path / "codecache")


def _source(text: str = "def _run0(state):\n    return None\n") -> BlockSource:
    return BlockSource(text=text, step_counts=(1,), forward_only=True)


# ---------------------------------------------------------------------------
# BlockSource payload validation


class TestBlockSource:
    def test_payload_roundtrip_through_json(self):
        source = _source()
        clone = BlockSource.from_payload(
            json.loads(json.dumps(source.to_payload()))
        )
        assert clone == source

    @pytest.mark.parametrize(
        "corrupt",
        [
            {},
            {"text": 5, "step_counts": [1], "forward_only": True},
            {"text": "x", "step_counts": "nope", "forward_only": True},
            {"text": "x", "step_counts": [1, "two"], "forward_only": True},
            {"text": "x", "step_counts": [1], "forward_only": "yes"},
        ],
    )
    def test_bad_payload_shapes_raise(self, corrupt):
        with pytest.raises((KeyError, ValueError)):
            BlockSource.from_payload(corrupt)


# ---------------------------------------------------------------------------
# entry integrity under fault injection


class TestEntryIntegrity:
    def test_store_load_roundtrip(self, cache):
        digest = cache.key("unit", "condition", 0, "quick")
        assert cache.load(digest) is None  # cold miss
        assert cache.store(digest, _source()) is True
        assert cache.load(digest) == _source()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["writes"] == 1

    def test_store_is_write_once(self, cache):
        digest = cache.key("unit", "condition", 0, "quick")
        assert cache.store(digest, _source()) is True
        assert cache.store(digest, _source("def _run0(state):\n    pass\n")) is False
        assert cache.stats()["writes"] == 1
        assert cache.load(digest) == _source()  # first write wins

    def test_truncated_entry_is_quarantined_and_rewritten(self, cache):
        digest = cache.key("unit", "condition", 0, "quick")
        cache.store(digest, _source())
        path = cache.entry_path(digest)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(digest) is None  # never parsed as an entry
        assert not path.exists()  # quarantined: deleted so a writer rewrites
        assert cache.stats()["corrupt"] == 1
        assert cache.store(digest, _source()) is True
        assert cache.load(digest) == _source()

    def test_bitflipped_source_text_never_loads(self, cache):
        """A tampered payload fails the checksum: the poisoned text is
        returned to no caller, so it can never reach ``compile()``."""
        digest = cache.key("unit", "condition", 0, "quick")
        cache.store(digest, _source("def _run0(state):\n    return None\n"))
        path = cache.entry_path(digest)
        entry = json.loads(path.read_text())
        entry["payload"]["text"] = "import os; os.system('evil')"
        path.write_text(json.dumps(entry))
        assert cache.load(digest) is None
        assert cache.stats()["corrupt"] == 1
        assert not path.exists()

    def test_version_stale_entry_is_a_miss(self, cache):
        digest = cache.key("unit", "condition", 0, "quick")
        cache.store(digest, _source())
        path = cache.entry_path(digest)
        entry = json.loads(path.read_text())
        entry["format"] = "diskcode-v0"
        path.write_text(json.dumps(entry))
        assert cache.load(digest) is None
        assert cache.stats()["corrupt"] == 1

    def test_misfiled_entry_is_a_miss(self, cache):
        """An entry copied under the wrong digest (key binding) is rejected
        even though its own checksum is internally consistent."""
        digest_a = cache.key("unit", "condition", 0, "quick")
        digest_b = cache.key("unit", "condition", 4, "quick")
        cache.store(digest_a, _source())
        cache.entry_path(digest_b).parent.mkdir(parents=True, exist_ok=True)
        cache.entry_path(digest_b).write_text(
            cache.entry_path(digest_a).read_text()
        )
        assert cache.load(digest_b) is None
        assert cache.stats()["corrupt"] == 1

    def test_unwritable_root_degrades_to_no_persistence(self, tmp_path):
        # A root nested under a regular file: every mkdir/open fails with
        # ENOTDIR (robust even when the suite runs as root, where
        # permission-bit write denial doesn't apply).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = DiskCodeCache(blocker / "codecache")
        digest = cache.key("unit", "condition", 0, "quick")
        assert cache.store(digest, _source()) is False  # no raise
        outcome, cached = cache.claim_or_wait(digest)
        assert outcome == CLAIMED and cached is None  # generate locally


# ---------------------------------------------------------------------------
# lockfile claim-or-wait protocol


class TestClaimOrWait:
    def test_claim_then_release_then_reclaim(self, cache):
        digest = cache.key("u", "condition", 0, "quick")
        outcome, cached = cache.claim_or_wait(digest)
        assert outcome == CLAIMED and cached is None
        assert cache.lock_path(digest).exists()
        cache.release(digest)
        assert not cache.lock_path(digest).exists()
        outcome, _ = cache.claim_or_wait(digest)
        assert outcome == CLAIMED

    def test_published_entry_short_circuits_claim(self, cache):
        digest = cache.key("u", "condition", 0, "quick")
        cache.store(digest, _source())
        outcome, cached = cache.claim_or_wait(digest)
        assert outcome == CACHED and cached == _source()
        assert not cache.lock_path(digest).exists()  # double-check released it

    def test_waiter_times_out_against_live_lock(self, tmp_path):
        """A healthy (fresh) foreign lock with no publication: the waiter
        must give up at ``wait_timeout`` and fall back to local work —
        degraded to duplicate codegen, never a stall."""
        cache = DiskCodeCache(
            tmp_path, stale_lock_seconds=60.0, wait_timeout=0.2
        )
        digest = cache.key("u", "condition", 0, "quick")
        assert cache._try_claim(digest)  # some other process holds the lock
        waiter = DiskCodeCache(
            tmp_path, stale_lock_seconds=60.0, wait_timeout=0.2
        )
        started = time.monotonic()
        outcome, cached = waiter.claim_or_wait(digest)
        assert outcome == TIMEOUT and cached is None
        assert time.monotonic() - started < 5.0
        assert waiter.stats()["wait_timeouts"] == 1
        assert cache.lock_path(digest).exists()  # not ours to release

    def test_stale_lock_from_dead_claimant_is_broken(self, tmp_path):
        cache = DiskCodeCache(
            tmp_path, stale_lock_seconds=0.2, wait_timeout=10.0
        )
        digest = cache.key("u", "condition", 0, "quick")
        assert cache._try_claim(digest)
        # Backdate the lockfile: its claimant "died" long ago.
        lock = cache.lock_path(digest)
        old = time.time() - 60.0
        os.utime(lock, (old, old))
        waiter = DiskCodeCache(
            tmp_path, stale_lock_seconds=0.2, wait_timeout=10.0
        )
        outcome, cached = waiter.claim_or_wait(digest)
        assert outcome == CLAIMED and cached is None
        assert waiter.stats()["stale_breaks"] == 1

    def test_waiter_picks_up_late_publication(self, tmp_path):
        """Winner publishes while the loser is polling: the loser returns
        the published source instead of generating."""
        import threading

        cache = DiskCodeCache(tmp_path, wait_timeout=10.0)
        digest = cache.key("u", "condition", 0, "quick")
        assert cache._try_claim(digest)

        def publish():
            time.sleep(0.05)
            cache.store(digest, _source())
            cache.release(digest)

        thread = threading.Thread(target=publish)
        thread.start()
        waiter = DiskCodeCache(tmp_path, wait_timeout=10.0)
        outcome, cached = waiter.claim_or_wait(digest)
        thread.join()
        assert outcome == CACHED and cached == _source()
        assert waiter.stats()["waits"] >= 1


# ---------------------------------------------------------------------------
# cross-process claim race (real forked processes)


def _stampede_child(root, digest, barrier, results):
    """One racing process: claim-or-wait, generate on claim, record outcome."""
    cache = DiskCodeCache(root, wait_timeout=30.0)
    barrier.wait()  # all children hit claim_or_wait at the same instant
    outcome, cached = cache.claim_or_wait(digest)
    stored = False
    if outcome == CLAIMED:
        stored = cache.store(digest, _source())
        cache.release(digest)
    results.put(
        {
            "pid": os.getpid(),
            "outcome": outcome,
            "stored": stored,
            "got_source": cached == _source() if cached is not None else None,
        }
    )


class TestCrossProcessStampede:
    def test_n_processes_one_write(self, tmp_path):
        """The cold-start stampede, deterministically: N forked processes
        race ``claim_or_wait`` for one digest.  Exactly one claims and
        writes; every other process waits and reads the winner's entry."""
        ctx = multiprocessing.get_context("fork")
        n = 4
        barrier = ctx.Barrier(n)
        results = ctx.Queue()
        cache = DiskCodeCache(tmp_path)
        digest = cache.key("u", "condition", 0, "quick")
        children = [
            ctx.Process(
                target=_stampede_child,
                args=(tmp_path, digest, barrier, results),
            )
            for _ in range(n)
        ]
        for child in children:
            child.start()
        outcomes = [results.get(timeout=60) for _ in range(n)]
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0
        claimed = [o for o in outcomes if o["outcome"] == CLAIMED]
        waited = [o for o in outcomes if o["outcome"] == CACHED]
        assert len(claimed) == 1, outcomes
        assert claimed[0]["stored"] is True
        assert len(waited) == n - 1
        assert all(o["got_source"] for o in waited)
        # exactly one entry file on disk, loadable, no leftover locks
        assert cache.entry_count() == 1
        assert cache.load(digest) == _source()
        assert not cache.lock_path(digest).exists()


# ---------------------------------------------------------------------------
# generated source round-trips through the cache into real compiled blocks


@pytest.fixture(scope="module")
def demo_block(demo_pair, demo_setup):
    """First translated block of the demo program + its decoded defs."""
    from repro.dbt.block import BlockMap
    from repro.dbt.executor import BlockKernel
    from repro.dbt.translator import BlockTranslator

    config = demo_setup.configs["condition"]
    unit = demo_pair.guest
    blockmap = BlockMap(unit)
    tb = BlockTranslator(unit, blockmap, config).translate(blockmap.blocks[0])
    return tb, BlockKernel(tb).defs


class TestSourceRoundtrip:
    def test_codegen_is_deterministic(self, demo_block):
        tb, defs = demo_block
        assert generate_block_source(tb, defs) == generate_block_source(tb, defs)

    def test_cached_source_compiles_identically(self, demo_block, tmp_path):
        """disk-store → disk-load → compile must equal direct compilation:
        same compiled type, same run structure."""
        tb, defs = demo_block
        cache = DiskCodeCache(tmp_path)
        digest = cache.key("demo", "condition", tb.start, "quick")
        cache.store(digest, generate_block_source(tb, defs))
        loaded = cache.load(digest)
        direct = compile_block(tb, defs)
        recompiled = compile_block_source(tb, loaded, defs)
        assert type(recompiled) is type(direct)
        assert len(recompiled.runs) == len(direct.runs)

    def test_warm_hit_fires_no_compile_listener(self, demo_block):
        """Listeners count *codegen* (work happened), so re-instantiating
        cached source must not fire them — the accounting the stampede
        tests rely on."""
        tb, defs = demo_block
        source = generate_block_source(tb, defs)
        fired = []
        listener = lambda block: fired.append(block.start)  # noqa: E731
        add_compile_listener(listener)
        try:
            compile_block_source(tb, source, defs)
            assert fired == []
            generate_block_source(tb, defs)
            assert fired == [tb.start]
        finally:
            remove_compile_listener(listener)
