"""Content-addressed stage artifacts with single-flight build-or-wait.

Every pipeline stage (:mod:`repro.pipeline.stages`) persists its output as
one checksummed JSON artifact keyed by a digest over the stage's *inputs*
(upstream artifact digests + parameters).  A rerun whose inputs are
unchanged resolves to the same digest and loads the artifact instead of
rebuilding — the bergamot-style "skip if the artifact exists" discipline —
while any input change shifts the digest and forces a rebuild of that stage
and everything downstream.

The on-disk entry format and fault model are the ones proven by
:mod:`repro.service.diskcode`: entries are written once via atomic rename,
carry a sha256 over ``(format, key, payload)``, and a truncated / bit-
flipped / hand-edited entry fails verification and is quarantined (deleted
and rebuilt), never trusted.  Concurrent pipelines racing on one stage go
through the shared :mod:`repro.fslock` claim-or-wait protocol: one process
builds, the rest wait for the publication, and a dead builder's stale lock
is broken rather than waited on forever.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import fslock
from repro.cache import atomic_write_text

#: Entry format tag; bump on any incompatible artifact schema change.
ARTIFACT_FORMAT = "repro-artifact-v1"

#: ``get_or_build`` outcomes.
HIT = "hit"
BUILT = "built"


def artifact_digest(stage: str, *parts: Any) -> str:
    """Content digest for one stage invocation (inputs → key).

    ``parts`` are the stage's inputs: upstream artifact digests plus any
    parameters that change the output.  JSON-canonicalized so equal inputs
    digest identically across processes.
    """
    canon = json.dumps(
        [ARTIFACT_FORMAT, stage, list(parts)], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def _payload_checksum(key: str, payload: Any) -> str:
    canon = json.dumps(
        [ARTIFACT_FORMAT, key, payload], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ArtifactStore:
    """One directory of checksummed, write-once stage artifacts.

    Counters are per-process; the pipeline surfaces them through
    ``repro pipeline status`` and the run report (CI asserts a second run
    is all hits).
    """

    def __init__(
        self,
        root,
        stale_lock_seconds: float = 30.0,
        wait_timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> None:
        # Stage builds (learning, derivation, oracle verification) run
        # seconds-to-minutes, not milliseconds, hence the much longer
        # stale/wait budgets than the per-block disk code cache.
        self.root = Path(root)
        self.stale_lock_seconds = stale_lock_seconds
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.builds = 0
        self.claims = 0
        self.waits = 0
        self.wait_timeouts = 0
        self.stale_breaks = 0

    def _incr(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, stage: str, digest: str) -> Path:
        return self.root / stage / f"{digest}.json"

    def lock_path(self, stage: str, digest: str) -> Path:
        return self.root / stage / f"{digest}.lock"

    # -- load/store ----------------------------------------------------------

    def load(self, stage: str, digest: str) -> Optional[Any]:
        """The stored payload for one stage invocation, or None.

        A malformed, truncated, checksum-mismatched, or misfiled entry is
        deleted (so the next builder rewrites it) and reported as a miss —
        the pipeline must never act on a corrupt artifact.
        """
        path = self.entry_path(stage, digest)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._incr("misses")
            return None
        except (OSError, ValueError):
            self._quarantine(path)
            return None
        try:
            if entry["format"] != ARTIFACT_FORMAT or entry["key"] != digest:
                raise ValueError("stale or misfiled artifact")
            payload = entry["payload"]
            if entry["sha256"] != _payload_checksum(digest, payload):
                raise ValueError("checksum mismatch")
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None
        self._incr("hits")
        return payload

    def _quarantine(self, path: Path) -> None:
        self._incr("corrupt")
        self._incr("misses")
        try:
            path.unlink()
        except OSError:
            pass

    def store(self, stage: str, digest: str, payload: Any) -> bool:
        """Publish a stage artifact atomically; False if already present."""
        path = self.entry_path(stage, digest)
        if path.exists():
            return False
        entry = {
            "format": ARTIFACT_FORMAT,
            "key": digest,
            "stage": stage,
            "sha256": _payload_checksum(digest, payload),
            "payload": payload,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(entry, sort_keys=True))
        except OSError:
            return False  # read-only store disables persistence only
        self._incr("writes")
        return True

    # -- skip-or-build -------------------------------------------------------

    def get_or_build(
        self, stage: str, digest: str, build: Callable[[], Any]
    ) -> Tuple[Any, str]:
        """The stage's payload, building it exactly once cluster-wide.

        Returns ``(payload, outcome)`` with outcome :data:`HIT` (artifact
        existed, stage skipped — possibly after waiting on a concurrent
        builder) or :data:`BUILT` (``build()`` ran here).  Build failures
        propagate after the lock is released, so a crashed build never
        wedges other pipelines.
        """
        cached = self.load(stage, digest)
        if cached is not None:
            return cached, HIT
        def note(event: str) -> None:
            self._incr(event + "s")

        outcome, cached = fslock.claim_or_wait(
            self.lock_path(stage, digest),
            lambda: self.load(stage, digest),
            stale_lock_seconds=self.stale_lock_seconds,
            wait_timeout=self.wait_timeout,
            poll_interval=self.poll_interval,
            on_event=note,
        )
        if outcome == fslock.CACHED:
            return cached, HIT
        try:
            payload = build()
            self._incr("builds")
            self.store(stage, digest, payload)
        finally:
            if outcome == fslock.CLAIMED:
                fslock.release(self.lock_path(stage, digest))
        return payload, BUILT

    # -- maintenance / observability -----------------------------------------

    def invalidate(self, stage: Optional[str] = None) -> int:
        """Delete stored artifacts (one stage, or all); returns the count.

        Digest chaining means invalidating one stage forces a rebuild of it
        and every downstream stage on the next run.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        roots = [self.root / stage] if stage is not None else [
            p for p in self.root.iterdir() if p.is_dir()
        ]
        for stage_dir in roots:
            if not stage_dir.is_dir():
                continue
            for path in stage_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self.root),
                "entries": self.entry_count(),
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "writes": self.writes,
                "builds": self.builds,
                "claims": self.claims,
                "waits": self.waits,
                "wait_timeouts": self.wait_timeouts,
                "stale_breaks": self.stale_breaks,
            }
