"""Symbolic verification of translation-rule candidates."""

from repro.verify.checker import (
    CheckResult,
    check_equivalence,
    collect_imms,
    collect_labels,
    collect_regs,
)
from repro.verify.equivalence import exprs_equal, find_counterexample
from repro.verify.symstate import StoreRecord, SymbolicState, run_symbolic

__all__ = [
    "CheckResult",
    "check_equivalence",
    "collect_regs",
    "collect_imms",
    "collect_labels",
    "exprs_equal",
    "find_counterexample",
    "SymbolicState",
    "StoreRecord",
    "run_symbolic",
]
