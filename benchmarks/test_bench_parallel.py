"""Wall-clock benchmarks for the caching/parallelism layer.

Three comparisons, each printed with ``-s``:

* cold serial vs cold parallel fig16 sweep (the leave-one-out style fan-out
  is where ``--jobs`` pays off);
* cold vs disk-warm full-suite derivation (a warm process performs zero
  symbolic derivations);
* serial vs parallel results are asserted identical, not just fast.

Run:  pytest benchmarks/test_bench_parallel.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro import cache as cache_mod
from repro.cache import STATS, clear_all_caches


@pytest.fixture(autouse=True, scope="module")
def _restore_disk_cache():
    previous_root = cache_mod.disk_cache().root
    yield
    cache_mod.reset_disk_cache(previous_root)
    clear_all_caches()

#: Small-but-real fig16 sweep: 12 draws, up to 2 held-out runs each.
SWEEP = dict(sizes=(2, 3, 4), repetitions=4, eval_limit=2, seed=2020)

_ROWS = {}


def _fresh(tmp_path, name):
    cache_mod.reset_disk_cache(tmp_path / name)
    clear_all_caches()


def _sweep_rows():
    from repro.experiments import fig16_training_size

    return fig16_training_size.run(**SWEEP).rows


def test_bench_fig16_serial(benchmark, tmp_path):
    from repro.parallel import set_jobs

    def run():
        _fresh(tmp_path, "serial")
        set_jobs(1)
        return _sweep_rows()

    _ROWS["serial"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_bench_fig16_parallel(benchmark, tmp_path):
    from repro.parallel import set_jobs

    def run():
        _fresh(tmp_path, "parallel")
        set_jobs(min(4, os.cpu_count() or 1))
        return _sweep_rows()

    try:
        _ROWS["parallel"] = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        from repro.parallel import set_jobs as reset

        reset(1)


def test_parallel_rows_identical():
    """The speedup must not change a single number."""
    if "serial" in _ROWS and "parallel" in _ROWS:
        assert _ROWS["serial"] == _ROWS["parallel"]


def test_bench_derivation_warm_cache(benchmark, tmp_path):
    """Disk-warm derivation skips every symbolic derivation."""
    from repro.experiments.common import rules_full_suite
    from repro.param.derive import derive_rules

    _fresh(tmp_path, "warm")
    learned = rules_full_suite()

    cold_started = time.perf_counter()
    cold = derive_rules(learned)
    cold_elapsed = time.perf_counter() - cold_started

    def warm_run():
        clear_all_caches()  # memory gone; disk stays — like a new process
        return derive_rules(learned)

    before = STATS.snapshot()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    delta = STATS.delta(before)

    assert delta.derivations == 0
    assert delta.disk_hits > 0
    assert [str(r) for r in warm.derived] == [str(r) for r in cold.derived]
    print(f"\ncold derivation: {cold_elapsed:.2f}s; "
          f"warm: {delta.disk_hits} disk hits, 0 derivations")
