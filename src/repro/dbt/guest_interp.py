"""Reference interpreter for compiled guest (ARM) programs.

This is the correctness oracle: the DBT engine's translated execution must
produce the same final architectural state as this interpreter.  It also
doubles as the profiler that reports dynamic instruction counts per site,
which the coverage metrics are weighted by.

Addressing convention: the instruction at index ``i`` lives at byte address
``i * 4``.  Reading the PC yields ``i*4 + 8`` (the classic ARM pipeline
offset); ``bl`` stores the return address ``(i+1)*4`` into ``lr``; ``bx``
jumps to the byte address in its register operand.  Execution halts when
control transfers to :data:`HALT_ADDRESS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.isa.arm.opcodes import ARM
from repro.lang.program import STACK_BASE, CompiledUnit
from repro.semantics.state import ConcreteState

HALT_ADDRESS = 0xFFFF_FFF0
DEFAULT_MAX_STEPS = 5_000_000


@dataclass
class RunResult:
    """Outcome of one guest program execution."""

    state: ConcreteState
    steps: int
    #: dynamic execution count per instruction index.
    site_counts: Dict[int, int] = field(default_factory=dict)

    def dynamic_mnemonic_counts(self, instructions) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for index, count in self.site_counts.items():
            mnemonic = instructions[index].mnemonic
            counts[mnemonic] = counts.get(mnemonic, 0) + count
        return counts

    def architectural_snapshot(self) -> Dict[str, Dict]:
        """Final guest-visible architectural state, in the normalized form
        shared with :meth:`repro.dbt.engine.DBTRunResult.architectural_snapshot`
        (the differential-testing oracle diffs the two)."""
        regs = {f"r{i}": self.state.regs[f"r{i}"] for i in range(13)}
        regs["sp"] = self.state.regs["sp"]
        regs["lr"] = self.state.regs["lr"]
        return {
            "regs": regs,
            "flags": {f: self.state.flags[f] for f in ("N", "Z", "C", "V")},
            "memory": {
                addr: value for addr, value in self.state.memory.items() if value
            },
        }


def initial_state() -> ConcreteState:
    state = ConcreteState()
    state.reset_flags()
    for i in range(13):
        state.regs[f"r{i}"] = 0
    state.regs["sp"] = STACK_BASE
    state.regs["lr"] = HALT_ADDRESS
    state.regs["pc"] = 0
    return state


class GuestInterpreter:
    """Direct interpreter over a compiled guest unit."""

    def __init__(self, unit: CompiledUnit) -> None:
        self.unit = unit
        self.instructions = unit.real_instructions
        self.labels = unit.labels
        self.defs = tuple(ARM.defn(insn) for insn in self.instructions)

    def run(
        self,
        entry: str = "fn_main",
        max_steps: int = DEFAULT_MAX_STEPS,
        state: Optional[ConcreteState] = None,
        count_sites: bool = True,
    ) -> RunResult:
        if state is None:
            state = initial_state()
        index = self.labels[self.unit.func_labels.get(entry, entry)]
        instructions = self.instructions
        defs = self.defs
        labels = self.labels
        site_counts: Dict[int, int] = {}
        steps = 0
        n = len(instructions)

        while 0 <= index < n:
            if steps >= max_steps:
                raise ExecutionError(f"exceeded {max_steps} steps (runaway program?)")
            insn = instructions[index]
            defn = defs[index]
            state.regs["pc"] = index * 4 + 8
            state.clear_branch()
            defn.semantics(state, insn)
            steps += 1
            if count_sites:
                site_counts[index] = site_counts.get(index, 0) + 1

            if defn.is_call:
                state.regs["lr"] = (index + 1) * 4
            if state.branch_taken is not None and state.branch_taken:
                if state.branch_target is not None:
                    index = labels[state.branch_target]
                else:  # bx: target address in the register operand
                    address = state.get_reg(insn.operands[0].name)
                    if address == HALT_ADDRESS:
                        break
                    if address % 4:
                        raise ExecutionError(f"misaligned branch target {address:#x}")
                    index = address // 4
            else:
                index += 1
        return RunResult(state=state, steps=steps, site_counts=site_counts)
