"""repro — a reproduction of "More with Less" (MICRO 2020).

A learning-based dynamic binary translator with rule parameterization:

* :mod:`repro.isa` — ARM-like guest and x86-like host ISA models
* :mod:`repro.symir` / :mod:`repro.verify` — symbolic verification substrate
* :mod:`repro.lang` — mini compiler producing paired guest/host binaries
* :mod:`repro.learning` — translation-rule learning pipeline
* :mod:`repro.param` — the paper's parameterization framework
* :mod:`repro.dbt` — the DBT engine (QEMU-like baseline + rule translators)
* :mod:`repro.workloads` — synthetic SPEC CINT 2006 stand-ins
* :mod:`repro.experiments` — one harness per paper table/figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
