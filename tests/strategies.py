"""Shared hypothesis strategies: random instructions for both ISAs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, OperandKind as K, Reg

ARM_REGS = tuple(f"r{i}" for i in range(13))
X86_REGS = ("eax", "ecx", "edx", "ebx", "esi", "edi", "ebp")

imm_values = st.integers(min_value=-2048, max_value=0xFFFF)


def arm_reg():
    return st.sampled_from(ARM_REGS).map(Reg)


def x86_reg():
    return st.sampled_from(X86_REGS).map(Reg)


def arm_mem():
    return st.one_of(
        st.builds(lambda b: Mem(base=b), arm_reg()),
        st.builds(lambda b, d: Mem(base=b, disp=d), arm_reg(),
                  st.integers(min_value=0, max_value=255).map(lambda v: v * 4)),
        st.builds(lambda b, i: Mem(base=b, index=i), arm_reg(), arm_reg()),
    )


def x86_mem():
    return st.one_of(
        st.builds(lambda b: Mem(base=b), x86_reg()),
        st.builds(lambda b, d: Mem(base=b, disp=d), x86_reg(), imm_values),
        st.builds(
            lambda b, i, s: Mem(base=b, index=i, scale=s),
            x86_reg(),
            x86_reg(),
            st.sampled_from((1, 2, 4, 8)),
        ),
    )


def _operand(kind: K, reg, mem):
    if kind is K.REG:
        return reg
    if kind is K.IMM:
        return imm_values.map(Imm)
    if kind is K.MEM:
        return mem
    if kind is K.LABEL:
        return st.sampled_from((".L0", ".L1", "loop")).map(Label)
    raise ValueError(kind)


@st.composite
def _instruction_for(draw, isa, reg, mem, exclude=()):
    candidates = [
        d
        for d in isa.defs.values()
        if d.mnemonic not in exclude
        and all(K.REGLIST not in sig for sig in d.signatures)
    ]
    defn = draw(st.sampled_from(candidates))
    signature = draw(st.sampled_from(list(defn.signatures)))
    operands = tuple(draw(_operand(kind, reg, mem)) for kind in signature)
    return Instruction(defn.mnemonic, operands)


def arm_instructions(exclude=()):
    from repro.isa.arm.opcodes import ARM

    return _instruction_for(ARM, arm_reg(), arm_mem(), exclude=exclude)


def x86_instructions(exclude=()):
    from repro.isa.x86.opcodes import X86

    # Flag spill/reload + helpers are internal (no assembler syntax needed,
    # but they do round-trip); keep them in by default.
    return _instruction_for(X86, x86_reg(), x86_mem(), exclude=exclude)
