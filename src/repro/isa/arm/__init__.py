"""ARM-like guest ISA."""

from repro.isa.arm.assembler import assemble, disassemble, parse_line
from repro.isa.arm.opcodes import ARM
from repro.isa.arm.registers import ALL_REGISTERS, ALLOCATABLE, R

__all__ = ["ARM", "assemble", "disassemble", "parse_line", "ALL_REGISTERS", "ALLOCATABLE", "R"]
