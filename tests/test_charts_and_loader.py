"""Tests for ASCII chart rendering and miscellaneous utilities."""

import pytest

from repro.experiments.charts import render_chart, render_series
from repro.experiments.report import ExperimentResult


def sample_result():
    result = ExperimentResult(
        "figX", "Sample figure", ("benchmark", "base", "full")
    )
    result.add("alpha", 10.0, 40.0)
    result.add("beta", 25.0, 50.0)
    result.note("a note")
    return result


class TestRenderChart:
    def test_contains_labels_and_values(self):
        text = render_chart(sample_result())
        assert "alpha" in text and "beta" in text
        assert "40.00" in text and "25.00" in text
        assert "note: a note" in text

    def test_bar_lengths_scale(self):
        text = render_chart(sample_result(), width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        beta_full = next(l for l in lines if "50.00" in l)
        alpha_base = next(l for l in lines if "10.00" in l)
        assert beta_full.count("▒") > alpha_base.count("▌")

    def test_non_numeric_columns_fall_back_to_table(self):
        result = ExperimentResult("x", "T", ("k", "v"))
        result.add("a", "text")
        assert "T" in render_chart(result)

    def test_width_respected(self):
        text = render_chart(sample_result(), width=20)
        for line in text.splitlines():
            if "|" in line:
                inner = line.split("|")[1]
                assert len(inner) <= 21


class TestRenderSeries:
    def test_series_rendering(self):
        text = render_series(
            "Coverage vs size",
            xs=[1, 2, 4, 8],
            series={"base": [50, 60, 65, 66], "para": [94, 96, 97, 97]},
        )
        assert "Coverage vs size" in text
        assert "[1] base" in text and "[2] para" in text
        assert "97.0" in text or "97." in text.replace("\n", " ")

    def test_empty_series(self):
        assert render_series("T", [], {}) == "T"


class TestCliChartIntegration:
    def test_run_with_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "fig02", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # bar gutter present

    def test_verify_command_rejects(self, capsys):
        from repro.cli import main

        code = main(["verify", "b .L", "jmp .L"])
        assert code == 1
        assert "rejected" in capsys.readouterr().out

    def test_verify_command_with_temps(self, capsys):
        from repro.cli import main

        code = main(
            [
                "verify",
                "bic r0, r0, r1",
                "movl %ecx, %edx; notl %edx; andl %edx, %eax",
                "--temps",
                "1",
            ]
        )
        assert code == 0
