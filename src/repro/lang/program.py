"""Compiled-program artifacts.

A :class:`CompiledUnit` is the output of one backend for one program: the
instruction list (with ``.label`` pseudo-ops), a per-instruction statement
tag (the moral equivalent of DWARF line info — ``None`` marks compiler glue
such as prologues and spill traffic), the label map, and the global-array
layout.  A :class:`CompiledPair` bundles the guest and host units compiled
from the same source — the training artifact rule learning consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.isa import resolve_labels

#: Base address of the global-array region in guest memory.
GLOBALS_BASE = 0x0010_0000
#: Initial stack pointer (stack grows down).
STACK_BASE = 0x007F_F000


@dataclass
class CompiledUnit:
    """One program compiled for one ISA."""

    isa_name: str
    instructions: Tuple[Instruction, ...]
    #: statement id per instruction (aligned with `instructions`); None = glue.
    tags: Tuple[Optional[int], ...]
    #: function name -> entry label name.
    func_labels: Dict[str, str]
    #: global array name -> base address.
    globals_layout: Dict[str, int]

    def __post_init__(self) -> None:
        assert len(self.instructions) == len(self.tags)

    @property
    def labels(self) -> Dict[str, int]:
        """Label name -> index of the next real instruction (cached)."""
        cached = getattr(self, "_labels_cache", None)
        if cached is None:
            cached = dict(resolve_labels(self.instructions))
            self._labels_cache = cached
        return cached

    @property
    def real_instructions(self) -> Tuple[Instruction, ...]:
        """Instructions with ``.label`` pseudo-ops removed (cached)."""
        cached = getattr(self, "_real_cache", None)
        if cached is None:
            cached = tuple(i for i in self.instructions if i.mnemonic != ".label")
            self._real_cache = cached
        return cached

    @property
    def real_tags(self) -> Tuple[Optional[int], ...]:
        cached = getattr(self, "_real_tags_cache", None)
        if cached is None:
            cached = tuple(
                tag
                for insn, tag in zip(self.instructions, self.tags)
                if insn.mnemonic != ".label"
            )
            self._real_tags_cache = cached
        return cached

    def statement_spans(self) -> Dict[int, List[int]]:
        """Statement id -> indices into :attr:`real_instructions`."""
        spans: Dict[int, List[int]] = {}
        for index, tag in enumerate(self.real_tags):
            if tag is not None:
                spans.setdefault(tag, []).append(index)
        return spans


@dataclass
class StatementInfo:
    """Metadata for one source statement (shared across backends)."""

    stmt_id: int
    func: str
    text: str


@dataclass
class CompiledPair:
    """Guest + host binaries compiled from the same source program."""

    name: str
    guest: CompiledUnit
    host: CompiledUnit
    statements: Dict[int, StatementInfo] = field(default_factory=dict)

    @property
    def statement_count(self) -> int:
        return len(self.statements)
