"""Figure 16: coverage vs training-set size.

Random training subsets of size 1..8 are drawn, rules learned from them are
applied to the remaining benchmarks, and mean dynamic coverage is reported
for the parameterized and non-parameterized systems.  Paper: both curves
saturate around 6 training programs; para stays above w/o-para throughout,
ending at ~95.5% vs ~69.7%.

Training subsets are canonicalized (sorted) before rule merging, so two
draws of the same subset — in any order, in any process — share one cached
derivation; all draws for a sweep are made up front from the seeded RNG
(so results are independent of ``--jobs``) and then evaluated, possibly in
parallel.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.dbt import DBTEngine, check_against_reference
from repro.errors import ExecutionError
from repro.experiments.common import mean, setup_for, warm_learning
from repro.experiments.report import ExperimentResult
from repro.parallel import get_jobs, parallel_map
from repro.workloads import BENCHMARK_NAMES, compiled_benchmark

DEFAULT_SIZES = tuple(range(1, 9))
DEFAULT_REPETITIONS = 5

#: One sweep repetition: (training subset, held-out benchmarks to evaluate).
Draw = Tuple[Tuple[str, ...], Tuple[str, ...]]


def _coverage(config, evaluate: Sequence[str]) -> float:
    coverages = []
    for name in evaluate:
        pair = compiled_benchmark(name)
        result = DBTEngine(pair.guest, config).run()
        ok, message = check_against_reference(pair.guest, result)
        if not ok:
            raise ExecutionError(f"{name}/{config.name}: {message}")
        coverages.append(100 * result.metrics.coverage)
    return mean(coverages)


def _evaluate_draw(draw: Draw) -> Tuple[float, float]:
    """(w/o-para coverage, para coverage) for one training draw."""
    train, evaluate = draw
    setup = setup_for(train)
    return (
        _coverage(setup.configs["wopara"], evaluate),
        _coverage(setup.configs["condition"], evaluate),
    )


def _make_draws(
    sizes: Sequence[int], repetitions: int, eval_limit: int, seed: int
) -> List[Tuple[int, Draw]]:
    """All (size, draw) pairs, from one seeded RNG, canonicalized."""
    rng = random.Random(seed)
    draws: List[Tuple[int, Draw]] = []
    for size in sizes:
        for _ in range(repetitions):
            train = tuple(sorted(rng.sample(BENCHMARK_NAMES, size)))
            held_out = [n for n in BENCHMARK_NAMES if n not in train]
            evaluate = tuple(rng.sample(held_out, min(eval_limit, len(held_out))))
            draws.append((size, (train, evaluate)))
    return draws


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = DEFAULT_REPETITIONS,
    eval_limit: int = 4,
    seed: int = 2020,
) -> ExperimentResult:
    """``eval_limit`` caps how many held-out benchmarks each repetition
    evaluates (coverage averages converge quickly; the cap keeps the sweep
    tractable)."""
    draws = _make_draws(sizes, repetitions, eval_limit, seed)
    if get_jobs() > 1:
        warm_learning()  # forked workers inherit the learned rules
    outcomes = parallel_map(_evaluate_draw, [draw for _, draw in draws])

    by_size: Dict[int, Tuple[List[float], List[float]]] = {}
    for (size, _), (base, para) in zip(draws, outcomes):
        base_values, para_values = by_size.setdefault(size, ([], []))
        base_values.append(base)
        para_values.append(para)

    result = ExperimentResult(
        ident="fig16",
        title="Fig. 16 — mean dynamic coverage (%) vs training-set size",
        headers=("training size", "w/o para.", "para."),
    )
    for size in sizes:
        base_values, para_values = by_size[size]
        result.add(size, mean(base_values), mean(para_values))
    result.note(
        "paper: both curves saturate near 6 training programs; "
        "95.5% vs 69.7% at size 8"
    )
    return result
