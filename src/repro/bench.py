"""Execution-backend benchmark harness (``repro bench``).

Times every benchmark under the four engine configurations — ``interp`` and
``jit``, each with chaining off and on — and writes the results to
``BENCH_dbt.json``.  The protocol per configuration:

* one **cold** run on a fresh engine (pays translation, and for the jit
  backend closure compilation);
* ``repeats`` **warm** runs on the same engine (code cache and chain maps
  hot), keeping the minimum — throughput numbers come from this;
* ``translate_seconds`` is the cold/warm delta, an upper bound on the
  translate+compile cost.

Every configuration's final architectural snapshot is checked against the
interpreter baseline before its timing is trusted: a benchmark number from a
diverging backend would be meaningless.

``--quick`` trades rule quality for setup time: it benchmarks a three-name
subset under the cheap two-benchmark training configuration from
:mod:`repro.difftest.oracle` instead of the full leave-one-out setup, so a
cold CI container finishes in seconds.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dbt import DBTEngine
from repro.experiments.common import geomean

#: Schema stamp shared by every ``BENCH_*.json`` writer (dbt, offline,
#: service).  Bump when a report's structure changes incompatibly, so
#: cross-PR bench-trajectory tooling can diff like against like.
BENCH_SCHEMA_VERSION = 1


def _commit_hash() -> str:
    """Current git commit, or ``"unknown"`` outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def bench_metadata() -> Dict[str, object]:
    """The shared ``meta`` block stamped into every bench report."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "commit": _commit_hash(),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        # Throughput/saturation numbers are meaningless without the core
        # count they were measured on (a 1-core CI box cannot show pool
        # speedup no matter how correct the pool is).
        "cpu_count": os.cpu_count() or 1,
    }


def write_json_report(payload: Dict[str, object], path: str) -> None:
    """Write one bench report, stamping :func:`bench_metadata` into it.

    The single write path for ``BENCH_dbt.json``, ``BENCH_offline.json``,
    and ``BENCH_service.json`` — every report on disk carries the same
    machine-diffable metadata block.  Service reports that captured the
    server's ``stats`` additionally get the serving ruleset's version and
    digest stamped into the meta, so a report is attributable to the exact
    ruleset artifact it measured (an explicit caller-supplied ``meta`` is
    never touched).
    """
    payload = dict(payload)
    if "meta" not in payload:
        meta = bench_metadata()
        server_stats = payload.get("server_stats")
        if isinstance(server_stats, dict):
            ruleset = server_stats.get("ruleset")
            if isinstance(ruleset, dict):
                meta["ruleset_version"] = ruleset.get("version")
                meta["ruleset_digest"] = ruleset.get("digest")
        payload["meta"] = meta
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: benchmarks used by ``--quick`` (small, distinct control-flow shapes).
QUICK_NAMES = ("mcf", "libquantum", "astar")

#: (backend, chaining) configurations, keyed as they appear in the report.
CONFIGS: Tuple[Tuple[str, str, bool], ...] = (
    ("interp", "interp", False),
    ("interp+chain", "interp", True),
    ("jit", "jit", False),
    ("jit+chain", "jit", True),
    ("jit+trace", "trace", True),
)

#: configuration keys accepted by ``--configs``.
CONFIG_KEYS: Tuple[str, ...] = tuple(key for key, _, _ in CONFIGS)

STAGE = "condition"


def _select_configs(
    configs: Optional[Sequence[str]],
) -> Tuple[Tuple[str, str, bool], ...]:
    """Resolve a ``--configs`` filter against :data:`CONFIGS` (order kept)."""
    if configs is None:
        return CONFIGS
    unknown = sorted(set(configs) - set(CONFIG_KEYS))
    if unknown:
        raise ValueError(
            f"unknown bench configs {unknown}; expected a subset of "
            f"{list(CONFIG_KEYS)}"
        )
    wanted = set(configs)
    return tuple(row for row in CONFIGS if row[0] in wanted)


def _bench_config(name: str, quick: bool):
    if quick:
        from repro.difftest.oracle import stage_config

        return stage_config(STAGE)
    from repro.experiments.common import setup_excluding

    return setup_excluding(name).configs[STAGE]


def _bench_one(
    name: str,
    config,
    repeats: int,
    configs: Tuple[Tuple[str, str, bool], ...] = CONFIGS,
) -> Dict[str, Dict[str, float]]:
    """Time one benchmark under the selected configurations."""
    from repro.workloads import compiled_benchmark

    unit = compiled_benchmark(name).guest
    rows: Dict[str, Dict[str, float]] = {}
    baseline_snapshot = None
    for key, backend, chaining in configs:
        engine = DBTEngine(unit, config, chaining=chaining, backend=backend)
        started = time.perf_counter()
        result = engine.run()
        cold = time.perf_counter() - started
        # Translation happens once, on the cold run; warm-run metrics report
        # blocks_translated == 0 by design, so the translation count must be
        # captured here.
        cold_metrics = result.metrics
        warm = cold
        for _ in range(repeats):
            started = time.perf_counter()
            result = engine.run()
            warm = min(warm, time.perf_counter() - started)
        snapshot = result.architectural_snapshot()
        if baseline_snapshot is None:
            baseline_snapshot = snapshot
        elif snapshot != baseline_snapshot:
            raise RuntimeError(
                f"{name}/{key}: architectural snapshot diverged from the "
                "interpreter baseline; refusing to report its timings"
            )
        metrics = result.metrics
        rows[key] = {
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm, 6),
            # Explicit cold-run split: the cold run pays translation once
            # on top of an execution; the warm minimum is pure execution.
            "execute_seconds": round(warm, 6),
            "translate_seconds": round(max(0.0, cold - warm), 6),
            "guest_insns_per_sec": round(metrics.guest_dynamic / warm, 1),
            "blocks_per_sec": round(metrics.block_executions / warm, 1),
            "chain_rate": round(metrics.chain_rate, 4),
            "guest_dynamic": metrics.guest_dynamic,
            "block_executions": metrics.block_executions,
            "blocks_translated": cold_metrics.blocks_translated,
        }
        if backend == "trace":
            # Tier diagnostics: formation happens while the engine settles
            # (cold + early warm runs), steady-state entries come from the
            # reported warm run.
            rows[key]["traces_live"] = len(engine._traces)
            rows[key]["traces_blacklisted"] = len(engine._trace_blacklist)
            rows[key]["trace_entries"] = metrics.trace_entries
            rows[key]["trace_guard_exits"] = metrics.trace_guard_exits
    return rows


def _summary(benchmarks: Dict[str, Dict]) -> Dict[str, object]:
    """Geomean rates plus derived ratios for whichever configs were run.

    Tolerates ``--configs`` subsets: a ratio is only emitted when both of
    its operand configs are present in the report.
    """
    per_config: Dict[str, List[float]] = {}
    translate: Dict[str, List[float]] = {}
    for rows in benchmarks.values():
        for key, values in rows["configs"].items():
            per_config.setdefault(key, []).append(values["guest_insns_per_sec"])
            translate.setdefault(key, []).append(values["translate_seconds"])
    rates = {key: round(geomean(vals), 1) for key, vals in per_config.items()}
    summary: Dict[str, object] = {
        "geomean_guest_insns_per_sec": rates,
        # Mean (not geomean: cold/warm deltas can legitimately hit 0.0)
        # translate cost per config — the number the --check translate-time
        # regression gate compares against a prior report.
        "mean_translate_seconds": {
            key: round(sum(vals) / len(vals), 6)
            for key, vals in translate.items()
        },
    }

    def ratio(label: str, num: str, den: str, digits: int) -> None:
        if num in rates and den in rates:
            summary[label] = round(
                rates[num] / rates[den] if rates[den] else 0.0, digits
            )

    ratio("jit_speedup_over_interp", "jit", "interp", 2)
    ratio("chain_gain_jit", "jit+chain", "jit", 3)
    ratio("chain_gain_interp", "interp+chain", "interp", 3)
    ratio("trace_gain_jit", "jit+trace", "jit+chain", 3)
    chain_rates = [
        rows["configs"]["jit+chain"]["chain_rate"]
        for rows in benchmarks.values()
        if "jit+chain" in rows["configs"]
    ]
    if chain_rates:
        summary["mean_chain_rate_jit"] = round(
            sum(chain_rates) / len(chain_rates), 4
        )
    return summary


def run_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
    configs: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Benchmark the execution backends; return the report payload.

    ``configs`` filters the configuration grid by report key (CI bench-smoke
    runs only the cheap ones); ``None`` runs the full grid.
    """
    if names is None:
        if quick:
            names = QUICK_NAMES
        else:
            from repro.workloads import BENCHMARK_NAMES

            names = BENCHMARK_NAMES
    selected = _select_configs(configs)
    benchmarks: Dict[str, Dict] = {}
    for name in names:
        if log is not None:
            log(f"benchmarking {name} ...")
        config = _bench_config(name, quick)
        rows = _bench_one(name, config, repeats, selected)
        first_key = selected[0][0]
        benchmarks[name] = {
            "guest_dynamic": rows[first_key]["guest_dynamic"],
            "configs": rows,
        }
    return {
        "harness": "repro bench",
        "mode": "quick" if quick else "full",
        "stage": STAGE,
        "configs": [key for key, _, _ in selected],
        "repeats": repeats,
        "benchmarks": benchmarks,
        "summary": _summary(benchmarks),
    }


def write_report(payload: Dict[str, object], path: str) -> None:
    write_json_report(payload, path)


def render_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of a bench payload."""
    lines = [
        f"backend benchmark ({payload['mode']} mode, "
        f"stage={payload['stage']}, min of {payload['repeats']} warm runs)",
        f"{'benchmark':12s} {'config':13s} {'guest insns/s':>14s} "
        f"{'blocks/s':>10s} {'warm s':>8s} {'chain':>6s}",
    ]
    for name, rows in payload["benchmarks"].items():
        for key in rows["configs"]:
            values = rows["configs"][key]
            lines.append(
                f"{name:12s} {key:13s} {values['guest_insns_per_sec']:>14,.0f} "
                f"{values['blocks_per_sec']:>10,.0f} "
                f"{values['warm_seconds']:>8.4f} "
                f"{values['chain_rate']:>6.2f}"
            )
    summary = payload["summary"]
    rates = summary["geomean_guest_insns_per_sec"]
    lines.append("")
    lines.append("geomean guest insns/sec:")
    for key, rate in rates.items():
        lines.append(f"  {key:13s} {rate:>14,.0f}")
    labels = (
        ("jit_speedup_over_interp", "jit speedup over interp ", "{:.2f}x"),
        ("chain_gain_jit", "chaining gain (jit)     ", "{:.3f}x"),
        ("chain_gain_interp", "chaining gain (interp)  ", "{:.3f}x"),
        ("trace_gain_jit", "trace gain over jit+chain", "{:.3f}x"),
        ("mean_chain_rate_jit", "mean jit chain rate     ", "{:.2f}"),
    )
    for key, label, fmt in labels:
        if key in summary:
            lines.append(f"{label}: {fmt.format(summary[key])}")
    return "\n".join(lines)


#: A config's mean translate time may grow this much over the baseline
#: report before ``--check`` fails.  Translate costs on the quick corpus
#: are milliseconds, so a generous multiplicative slack absorbs scheduler
#: noise while still catching a real (2x+) translate-path regression.
TRANSLATE_REGRESSION_SLACK = 1.75

#: Mean translate times below this are considered noise-floor and never
#: gated (a 2ms -> 5ms swing on a loaded CI box is not a regression).
TRANSLATE_GATE_FLOOR_SECONDS = 0.01


def _check_translate_regression(
    payload: Dict[str, object], baseline: Dict[str, object]
) -> Tuple[bool, str]:
    """Gate current mean translate_seconds against a prior report's.

    Only comparable reports are judged: same mode and stage, and only
    configs present in both summaries.  Older baselines without the
    ``mean_translate_seconds`` summary field are skipped, not failed.
    """
    if baseline.get("mode") != payload.get("mode") or (
        baseline.get("stage") != payload.get("stage")
    ):
        return True, "baseline mode/stage differs; translate gate skipped"
    current = payload["summary"].get("mean_translate_seconds") or {}
    prior = (baseline.get("summary") or {}).get("mean_translate_seconds") or {}
    shared = [key for key in current if key in prior]
    if not shared:
        return True, "no shared translate timings with baseline"
    worst_key, worst_ratio = "", 0.0
    for key in shared:
        now, then = current[key], prior[key]
        if max(now, then) < TRANSLATE_GATE_FLOOR_SECONDS:
            continue
        ratio = now / then if then else float("inf")
        if ratio > worst_ratio:
            worst_key, worst_ratio = key, ratio
    if worst_ratio > TRANSLATE_REGRESSION_SLACK:
        return False, (
            f"translate time regressed: {worst_key} mean "
            f"{current[worst_key]:.4f}s vs baseline "
            f"{prior[worst_key]:.4f}s ({worst_ratio:.2f}x > "
            f"{TRANSLATE_REGRESSION_SLACK}x slack)"
        )
    if worst_ratio:
        return True, f"translate time within slack (worst {worst_ratio:.2f}x)"
    return True, "translate timings below gate floor"


def check_report(
    payload: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
) -> Tuple[bool, str]:
    """CI gate: jit must beat interp, and the trace tier must not lose to
    the block tier — whenever the report contains the configs to judge it.
    With a ``baseline`` report (the previous on-disk ``BENCH_dbt.json``),
    also gates translate-time regression per config.
    """
    summary = payload["summary"]
    notes = []
    if baseline is not None:
        ok, message = _check_translate_regression(payload, baseline)
        if not ok:
            return False, message
        notes.append(message)
    speedup = summary.get("jit_speedup_over_interp")
    if speedup is not None:
        if speedup <= 1.0:
            return False, f"jit is not faster than interp ({speedup:.2f}x)"
        notes.append(f"jit is {speedup:.2f}x interp")
    trace_gain = summary.get("trace_gain_jit")
    if trace_gain is not None:
        if trace_gain <= 1.0:
            return False, (
                f"trace tier is not faster than jit+chain ({trace_gain:.3f}x)"
            )
        notes.append(f"trace is {trace_gain:.3f}x jit+chain")
    if not notes:
        return True, "no gated ratios in report (config subset)"
    return True, "; ".join(notes)


# ---------------------------------------------------------------------------
# service saturation bench (``repro bench --service``)
#
# For each worker count, boot a real pool (``repro serve --workers N`` as a
# subprocess) and sweep client concurrency against it with the oracle-
# verified load generator.  The report is the clients-vs-latency curve per
# worker count, plus the peak-throughput speedup over one worker.  The meta
# block's ``cpu_count`` is the honest context for that speedup: on a
# single-core machine the pool cannot (and will not) show parallel gains.


def _boot_pool(workers: int, runtime_dir: str, log_path: str):
    """Start ``repro serve`` as a subprocess; return (process, port)."""
    import re
    import sys

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(
        os.environ,
        PYTHONPATH=src_dir + os.pathsep + os.environ.get("PYTHONPATH", ""),
    )
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--port",
        "0",
        "--workers",
        str(workers),
    ]
    if workers > 1:
        argv += ["--pool-dir", os.path.join(runtime_dir, f"pool-{workers}")]
    handle = open(log_path, "w")
    proc = subprocess.Popen(
        argv, stdout=handle, stderr=subprocess.STDOUT, env=env
    )
    pattern = re.compile(r"listening on [^:]+:(\d+)")
    ready = re.compile(r"worker \d+ ready")
    deadline = time.monotonic() + 300.0
    port = None
    while time.monotonic() < deadline:
        try:
            with open(log_path) as log_handle:
                text = log_handle.read()
        except OSError:
            text = ""
        match = pattern.search(text)
        if match and (workers == 1 or len(ready.findall(text)) >= workers):
            port = int(match.group(1))
            break
        if proc.poll() is not None:
            raise RuntimeError(f"serve exited during boot:\n{text}")
        time.sleep(0.1)
    if port is None:
        proc.kill()
        raise RuntimeError("serve did not come up within 300s")
    return proc, port


def run_service_bench(
    workers: Sequence[int] = (1, 2, 4, 8),
    clients: Sequence[int] = (1, 2, 4, 8),
    duration: float = 3.0,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Per-worker-count saturation curves; returns the report payload."""
    import signal
    import tempfile

    from repro.service.loadgen import LoadgenOptions, run_sweep

    curves: List[Dict[str, object]] = []
    server_stats: Optional[Dict[str, object]] = None
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as runtime:
        for count in workers:
            if log is not None:
                log(f"booting serve --workers {count} ...")
            proc, port = _boot_pool(
                count, runtime, os.path.join(runtime, f"serve-{count}.log")
            )
            try:
                options = LoadgenOptions(
                    port=port,
                    duration=duration,
                    seed=3,
                    fuzz_programs=2,
                    benchmarks=("mcf",),
                )
                sweep = run_sweep(options, list(clients), log=log)
                curves.append(
                    {"workers": count, "saturation": sweep["saturation"]}
                )
                server_stats = sweep.get("server_stats") or server_stats
            finally:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    proc.wait(timeout=120)
    peak = {
        str(curve["workers"]): max(
            point["throughput_rps"] for point in curve["saturation"]
        )
        for curve in curves
    }
    base = peak.get(str(workers[0]), 0.0) or 0.0
    divergences = sum(
        point["divergences"]
        for curve in curves
        for point in curve["saturation"]
    )
    return {
        "harness": "repro bench --service",
        "duration_seconds": duration,
        "clients": list(clients),
        "workers": curves,
        "server_stats": server_stats,
        "summary": {
            "peak_rps_by_workers": peak,
            "speedup_vs_first": {
                key: round(value / base, 2) if base else 0.0
                for key, value in peak.items()
            },
            "total_divergences": divergences,
        },
    }


def render_service_report(payload: Dict[str, object]) -> str:
    from repro.service.loadgen import render_sweep_report

    lines = [
        f"service saturation bench "
        f"({payload['duration_seconds']:.1f}s per point)"
    ]
    for curve in payload["workers"]:
        lines.append(f"workers={curve['workers']}:")
        lines.append(render_sweep_report(curve))
    summary = payload["summary"]
    lines.append("peak req/s by worker count:")
    for key, value in summary["peak_rps_by_workers"].items():
        lines.append(
            f"  {key:>3s} workers: {value:>8.1f} req/s "
            f"({summary['speedup_vs_first'][key]:.2f}x)"
        )
    return "\n".join(lines)


def check_service_report(payload: Dict[str, object]) -> Tuple[bool, str]:
    """CI gate: traffic flowed everywhere, zero errors, zero divergences."""
    from repro.service.loadgen import check_sweep_report

    for curve in payload["workers"]:
        ok, message = check_sweep_report(curve)
        if not ok:
            return False, f"workers={curve['workers']}: {message}"
    return True, (
        f"{len(payload['workers'])} worker counts x "
        f"{len(payload['clients'])} client counts clean; "
        f"peak {max(payload['summary']['peak_rps_by_workers'].values()):.1f} "
        "req/s, 0 divergences"
    )
