"""Execution-backend benchmark harness (``repro bench``).

Times every benchmark under the four engine configurations — ``interp`` and
``jit``, each with chaining off and on — and writes the results to
``BENCH_dbt.json``.  The protocol per configuration:

* one **cold** run on a fresh engine (pays translation, and for the jit
  backend closure compilation);
* ``repeats`` **warm** runs on the same engine (code cache and chain maps
  hot), keeping the minimum — throughput numbers come from this;
* ``translate_seconds`` is the cold/warm delta, an upper bound on the
  translate+compile cost.

Every configuration's final architectural snapshot is checked against the
interpreter baseline before its timing is trusted: a benchmark number from a
diverging backend would be meaningless.

``--quick`` trades rule quality for setup time: it benchmarks a three-name
subset under the cheap two-benchmark training configuration from
:mod:`repro.difftest.oracle` instead of the full leave-one-out setup, so a
cold CI container finishes in seconds.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dbt import DBTEngine
from repro.experiments.common import geomean

#: Schema stamp shared by every ``BENCH_*.json`` writer (dbt, offline,
#: service).  Bump when a report's structure changes incompatibly, so
#: cross-PR bench-trajectory tooling can diff like against like.
BENCH_SCHEMA_VERSION = 1


def _commit_hash() -> str:
    """Current git commit, or ``"unknown"`` outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def bench_metadata() -> Dict[str, object]:
    """The shared ``meta`` block stamped into every bench report."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "commit": _commit_hash(),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def write_json_report(payload: Dict[str, object], path: str) -> None:
    """Write one bench report, stamping :func:`bench_metadata` into it.

    The single write path for ``BENCH_dbt.json``, ``BENCH_offline.json``,
    and ``BENCH_service.json`` — every report on disk carries the same
    machine-diffable metadata block.
    """
    payload = dict(payload)
    payload.setdefault("meta", bench_metadata())
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: benchmarks used by ``--quick`` (small, distinct control-flow shapes).
QUICK_NAMES = ("mcf", "libquantum", "astar")

#: (backend, chaining) configurations, keyed as they appear in the report.
CONFIGS: Tuple[Tuple[str, str, bool], ...] = (
    ("interp", "interp", False),
    ("interp+chain", "interp", True),
    ("jit", "jit", False),
    ("jit+chain", "jit", True),
)

STAGE = "condition"


def _bench_config(name: str, quick: bool):
    if quick:
        from repro.difftest.oracle import stage_config

        return stage_config(STAGE)
    from repro.experiments.common import setup_excluding

    return setup_excluding(name).configs[STAGE]


def _bench_one(
    name: str, config, repeats: int
) -> Dict[str, Dict[str, float]]:
    """Time one benchmark under all four configurations."""
    from repro.workloads import compiled_benchmark

    unit = compiled_benchmark(name).guest
    rows: Dict[str, Dict[str, float]] = {}
    baseline_snapshot = None
    for key, backend, chaining in CONFIGS:
        engine = DBTEngine(unit, config, chaining=chaining, backend=backend)
        started = time.perf_counter()
        result = engine.run()
        cold = time.perf_counter() - started
        warm = cold
        for _ in range(repeats):
            started = time.perf_counter()
            result = engine.run()
            warm = min(warm, time.perf_counter() - started)
        snapshot = result.architectural_snapshot()
        if baseline_snapshot is None:
            baseline_snapshot = snapshot
        elif snapshot != baseline_snapshot:
            raise RuntimeError(
                f"{name}/{key}: architectural snapshot diverged from the "
                "interpreter baseline; refusing to report its timings"
            )
        metrics = result.metrics
        rows[key] = {
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm, 6),
            "translate_seconds": round(max(0.0, cold - warm), 6),
            "guest_insns_per_sec": round(metrics.guest_dynamic / warm, 1),
            "blocks_per_sec": round(metrics.block_executions / warm, 1),
            "chain_rate": round(metrics.chain_rate, 4),
            "guest_dynamic": metrics.guest_dynamic,
            "block_executions": metrics.block_executions,
            "blocks_translated": metrics.blocks_translated,
        }
    return rows


def _summary(benchmarks: Dict[str, Dict]) -> Dict[str, object]:
    per_config: Dict[str, List[float]] = {key: [] for key, _, _ in CONFIGS}
    for rows in benchmarks.values():
        for key, values in rows["configs"].items():
            per_config[key].append(values["guest_insns_per_sec"])
    rates = {key: round(geomean(vals), 1) for key, vals in per_config.items()}
    jit_speedup = rates["jit"] / rates["interp"] if rates["interp"] else 0.0
    chain_gain_jit = (
        rates["jit+chain"] / rates["jit"] if rates["jit"] else 0.0
    )
    chain_gain_interp = (
        rates["interp+chain"] / rates["interp"] if rates["interp"] else 0.0
    )
    chain_rates = [
        rows["configs"]["jit+chain"]["chain_rate"]
        for rows in benchmarks.values()
    ]
    return {
        "geomean_guest_insns_per_sec": rates,
        "jit_speedup_over_interp": round(jit_speedup, 2),
        "chain_gain_jit": round(chain_gain_jit, 3),
        "chain_gain_interp": round(chain_gain_interp, 3),
        "mean_chain_rate_jit": round(
            sum(chain_rates) / len(chain_rates), 4
        ) if chain_rates else 0.0,
    }


def run_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Benchmark the execution backends; return the report payload."""
    if names is None:
        if quick:
            names = QUICK_NAMES
        else:
            from repro.workloads import BENCHMARK_NAMES

            names = BENCHMARK_NAMES
    benchmarks: Dict[str, Dict] = {}
    for name in names:
        if log is not None:
            log(f"benchmarking {name} ...")
        config = _bench_config(name, quick)
        rows = _bench_one(name, config, repeats)
        benchmarks[name] = {
            "guest_dynamic": rows["interp"]["guest_dynamic"],
            "configs": rows,
        }
    return {
        "harness": "repro bench",
        "mode": "quick" if quick else "full",
        "stage": STAGE,
        "repeats": repeats,
        "benchmarks": benchmarks,
        "summary": _summary(benchmarks),
    }


def write_report(payload: Dict[str, object], path: str) -> None:
    write_json_report(payload, path)


def render_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of a bench payload."""
    lines = [
        f"backend benchmark ({payload['mode']} mode, "
        f"stage={payload['stage']}, min of {payload['repeats']} warm runs)",
        f"{'benchmark':12s} {'config':13s} {'guest insns/s':>14s} "
        f"{'blocks/s':>10s} {'warm s':>8s} {'chain':>6s}",
    ]
    for name, rows in payload["benchmarks"].items():
        for key, _, _ in CONFIGS:
            values = rows["configs"][key]
            lines.append(
                f"{name:12s} {key:13s} {values['guest_insns_per_sec']:>14,.0f} "
                f"{values['blocks_per_sec']:>10,.0f} "
                f"{values['warm_seconds']:>8.4f} "
                f"{values['chain_rate']:>6.2f}"
            )
    summary = payload["summary"]
    rates = summary["geomean_guest_insns_per_sec"]
    lines.append("")
    lines.append("geomean guest insns/sec:")
    for key, _, _ in CONFIGS:
        lines.append(f"  {key:13s} {rates[key]:>14,.0f}")
    lines.append(
        f"jit speedup over interp : {summary['jit_speedup_over_interp']:.2f}x"
    )
    lines.append(
        f"chaining gain (jit)     : {summary['chain_gain_jit']:.3f}x"
    )
    lines.append(
        f"chaining gain (interp)  : {summary['chain_gain_interp']:.3f}x"
    )
    lines.append(
        f"mean jit chain rate     : {summary['mean_chain_rate_jit']:.2f}"
    )
    return "\n".join(lines)


def check_report(payload: Dict[str, object]) -> Tuple[bool, str]:
    """CI gate: the jit backend must beat the interpreter."""
    speedup = payload["summary"]["jit_speedup_over_interp"]
    if speedup <= 1.0:
        return False, f"jit is not faster than interp ({speedup:.2f}x)"
    return True, f"jit is {speedup:.2f}x interp"
