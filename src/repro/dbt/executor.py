"""Host-code executor: runs translated blocks against a concrete state.

The executor is the "hardware" of the host machine: it interprets the
translated host instructions (including the virtual ``g_*`` block registers
and the environment memory) and accounts executed instructions per category.
Control returns to the engine when a block exit jumps to the dispatch label.

Per-block decode products (instruction defs, weights, category ids) live in
a :class:`BlockKernel` owned by the engine's code-cache entry alongside the
block itself, so a recycled ``TranslatedBlock`` can never alias another
block's decode state.  Executed-instruction counts are accumulated in a
local per-category array and merged into the caller's dict once per block
execution rather than once per instruction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dbt.runtime import DISPATCH_LABEL
from repro.dbt.translator import TranslatedBlock
from repro.errors import ExecutionError
from repro.isa.operands import Label
from repro.isa.x86.opcodes import X86
from repro.semantics.state import ConcreteState

#: Instruction-count weights: helpers stand for out-of-line code sequences.
WEIGHTS: Dict[str, int] = {"helper_umlal": 8, "helper_clz": 6}

_MAX_BLOCK_STEPS = 100_000


class BlockKernel:
    """Pre-decoded execution products for one translated block.

    Owned by the engine's code-cache entry next to the block itself; the
    interpreter backend never keys anything by ``id(tb)``.
    """

    __slots__ = ("defs", "weights", "cat_ids", "cat_names")

    def __init__(self, tb: TranslatedBlock) -> None:
        self.defs = tuple(X86.defn(insn) for insn in tb.host)
        self.weights = tuple(
            WEIGHTS.get(insn.mnemonic, 1) for insn in tb.host
        )
        names: list = []
        seen: Dict[str, int] = {}
        ids = []
        for cat in tb.categories:
            if cat not in seen:
                seen[cat] = len(names)
                names.append(cat)
            ids.append(seen[cat])
        self.cat_ids = tuple(ids)
        self.cat_names = tuple(names)


class HostExecutor:
    """Interprets translated blocks; shared state across blocks."""

    def __init__(self, state: ConcreteState) -> None:
        self.state = state

    def run_block(
        self,
        tb: TranslatedBlock,
        counts: Dict[str, int],
        kernel: Optional[BlockKernel] = None,
    ) -> None:
        """Execute one translated block to its dispatch exit.

        ``counts`` maps category -> weighted executed host instructions and
        is updated in place (batched: one merge per block execution, with
        partial counts preserved if execution faults mid-block).
        """
        if kernel is None:
            kernel = BlockKernel(tb)
        state = self.state
        host = tb.host
        defs = kernel.defs
        weights = kernel.weights
        cat_ids = kernel.cat_ids
        labels = tb.labels
        local = [0] * len(kernel.cat_names)
        index = 0
        steps = 0
        try:
            while True:
                if steps > _MAX_BLOCK_STEPS:
                    raise ExecutionError("runaway translated block")
                steps += 1
                insn = host[index]
                defn = defs[index]
                local[cat_ids[index]] += weights[index]
                if defn.is_branch:
                    target = insn.operands[0]
                    assert isinstance(target, Label)
                    if target.name == DISPATCH_LABEL:
                        return
                    state.clear_branch()
                    defn.semantics(state, insn)
                    if state.branch_taken:
                        index = labels[target.name]
                    else:
                        index += 1
                    continue
                defn.semantics(state, insn)
                index += 1
        finally:
            for cat, total in zip(kernel.cat_names, local):
                if total:
                    counts[cat] = counts.get(cat, 0) + total
