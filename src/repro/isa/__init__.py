"""ISA models: shared operand/instruction abstractions plus the two ISAs."""

from repro.isa.flags import ALL_FLAGS, CONDITION_FLAG_USES, FLAG_NAMES, condition_holds
from repro.isa.instruction import DataType, Instruction, InstructionDef, Subgroup
from repro.isa.isa import ISA, resolve_labels
from repro.isa.operands import Imm, Label, Mem, Operand, OperandKind, Reg, RegList

__all__ = [
    "Instruction",
    "InstructionDef",
    "Subgroup",
    "DataType",
    "ISA",
    "resolve_labels",
    "Operand",
    "OperandKind",
    "Reg",
    "Imm",
    "Mem",
    "Label",
    "RegList",
    "FLAG_NAMES",
    "ALL_FLAGS",
    "CONDITION_FLAG_USES",
    "condition_holds",
]
