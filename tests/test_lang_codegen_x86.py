"""Host-backend shape tests: the x86 code generator's lowering patterns.

The host binary never executes, but its *shapes* decide what rule learning
can see — so each destructive-form / aliasing / spill-folding path gets a
shape assertion here.
"""

import pytest

from repro.isa.operands import Imm, Mem, Reg
from repro.lang import parse
from repro.lang.codegen_x86 import X86Codegen
from repro.lang.optimizer import optimize


def host_for(body: str, params: str = "a, b, c"):
    """Compile a one-function program; return main's tagged instructions."""
    source = f"global g[64];\nfunc main({params}) {{ {body} }}"
    program = optimize(parse(source))
    codegen = X86Codegen(program)
    codegen.DEBUG_LOSS_RATE = 0.0  # deterministic mapping for shape checks
    unit, statements = codegen.compile()
    # Exclude the trailing `return` statement's code (an ABI move).
    return_ids = {
        stmt_id for stmt_id, info in statements.items() if info.text == "return"
    }
    return [
        insn
        for insn, tag in zip(unit.real_instructions, unit.real_tags)
        if tag is not None and tag not in return_ids
    ]


def mnemonics(instructions):
    return [insn.mnemonic for insn in instructions]


class TestAluForms:
    def test_destructive_form(self):
        insns = host_for("a = a + b; return a;")
        assert mnemonics(insns) == ["addl"]

    def test_commutative_reversed_alias(self):
        insns = host_for("a = b * a; return a;")
        assert mnemonics(insns) == ["imull"]

    def test_three_operand_mov_prefix(self):
        insns = host_for("c = a + b; return c;")
        assert mnemonics(insns) == ["movl", "addl"]

    def test_immediate_source(self):
        insns = host_for("a = a + 9; return a;")
        assert insns[0].operands[0] == Imm(9)

    def test_subtract_from_constant_nonalias(self):
        insns = host_for("c = 100 - b; return c;")
        assert mnemonics(insns) == ["movl", "subl"]
        assert insns[0].operands[0] == Imm(100)

    def test_subtract_alias_rhs_uses_negate(self):
        # a = b - a: negl a; addl b, a — no scratch register needed.
        insns = host_for("a = b - a; return a;")
        assert mnemonics(insns) == ["negl", "addl"]

    def test_shift_alias_rhs_needs_scratch(self):
        insns = host_for("a = b << a; return a;")
        assert mnemonics(insns)[0] == "movl"
        assert "shll" in mnemonics(insns)

    def test_andnot_nonalias(self):
        # The inversion always goes through a scratch register — which is
        # exactly why bic candidates fail the one-to-one mapping check.
        insns = host_for("c = a &~ b; return c;")
        assert mnemonics(insns) == ["movl", "notl", "andl", "movl"]

    def test_andnot_alias_dest_is_rhs(self):
        insns = host_for("b = a &~ b; return b;")
        assert mnemonics(insns) == ["notl", "andl"]

    def test_andnot_alias_dest_is_lhs_needs_scratch(self):
        insns = host_for("a = a &~ b; return a;")
        # movl b, scratch; notl scratch; andl scratch, a (+ possible store)
        assert mnemonics(insns)[:3] == ["movl", "notl", "andl"]

    def test_unary_not(self):
        insns = host_for("c = ~a; return c;")
        assert mnemonics(insns) == ["movl", "notl"]

    def test_unary_neg_alias(self):
        insns = host_for("a = -a; return a;")
        assert mnemonics(insns) == ["negl"]


class TestMlaAndClz:
    def test_accumulating_mla_uses_scratch(self):
        insns = host_for("a = a + b * c; return a;")
        assert mnemonics(insns) == ["movl", "imull", "addl"]
        # The product is computed in a scratch register, not in `a`.
        assert insns[0].operands[1] != insns[2].operands[1]

    def test_clz_is_a_loop(self):
        insns = host_for("c = clz(a); return c;")
        names = mnemonics(insns)
        assert "je" in names and "jmp" in names, "clz must lower to a loop"


class TestMemory:
    def test_load_base_index(self):
        insns = host_for("c = g[a]; return c;")
        mem = insns[-1].operands[0]
        assert isinstance(mem, Mem) and mem.index is not None

    def test_store_form(self):
        insns = host_for("g[a] = b; return b;")
        assert insns[-1].mnemonic == "movl_s"

    def test_scaled_index_folds_into_addressing(self):
        insns = host_for("c = g[a:4]; return c;")
        loads = [i for i in insns if i.mnemonic == "movl" and isinstance(i.operands[0], Mem)]
        assert any(m.operands[0].scale == 4 for m in loads)

    def test_byte_sizes(self):
        insns = host_for("c = loadb(g, a); storeb(g, a, b); return c;")
        names = mnemonics(insns)
        assert "movzbl" in names and "movb" in names


class TestSpillFolding:
    DECLS = ", ".join(f"v{i}" for i in range(10))

    def test_spilled_operands_fold_into_alu(self):
        body = (
            f"var {self.DECLS}; "
            + " ".join(f"v{i} = a + {i};" for i in range(10))
            + " v9 = v8 + v7; "
            + " ".join(f"a = a + v{i};" for i in range(10))
            + " return a;"
        )
        insns = host_for(body, params="a")
        esp_operands = [
            op
            for insn in insns
            for op in insn.operands
            if isinstance(op, Mem) and op.base == Reg("esp")
        ]
        assert esp_operands, "cold locals must spill on the host"

    def test_fused_alu_branch_emitted(self):
        body = (
            f"var {self.DECLS}; "
            + " ".join(f"v{i} = a + {i};" for i in range(10))
            + " fuse (v9 & v8) ne goto l; a = a + 1; l: "
            + " ".join(f"a = a + v{i};" for i in range(10))
            + " return a;"
        )
        insns = host_for(body, params="a")
        names = mnemonics(insns)
        assert "andl" in names and "jne" in names

    def test_fused_alu_to_memory_when_dest_spilled(self):
        """Direct check: a fused statement with a spilled destination folds
        the ALU operation into the stack slot."""
        from repro.lang import ast as A
        from repro.lang.codegen_base import FrameInfo

        program = optimize(parse("func main(a) { return a; }"))
        codegen = X86Codegen(program)
        codegen.frame = FrameInfo(
            reg_of={"a": "ebx"}, spill_of={"w": 0}, frame_size=4, saved_regs=("ebx",)
        )
        codegen._func_name = "main"
        codegen.reset_temps()
        codegen.stmt_fused(A.FusedAluGoto("w", "&", A.VarE("a"), "ne", "l"))
        insns = codegen.out.instructions
        assert insns[0].mnemonic == "andl"
        assert isinstance(insns[0].operands[1], Mem)
        assert insns[1].mnemonic == "jne"
