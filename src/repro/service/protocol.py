"""Newline-delimited JSON wire protocol for the translation service.

One request per line, one response per line.  Requests are JSON objects::

    {"id": 7, "op": "run", "benchmark": "mcf", "stage": "condition"}
    {"id": 8, "op": "translate", "program": ["mov r0, #1", "bx lr"]}
    {"id": 9, "op": "stats"}

Responses echo the request ``id`` (``null`` when the request was too
mangled to carry one)::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 8, "ok": false, "error": {"code": "backpressure",
                                     "message": "...", "retryable": true}}

Responses are encoded with sorted keys and compact separators, so two
identical requests produce **byte-identical** response lines — the property
the single-flight coalescing test pins down.

Error codes are a closed set (:data:`ERROR_CODES`); ``retryable`` marks
errors a well-behaved client should back off and retry (queue backpressure,
drain in progress) as opposed to errors it caused (malformed JSON, unknown
op, bad program).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: Bumped on incompatible wire changes; served by ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line (bytes), enforced by the stream
#: reader: a client streaming an unbounded line is cut off, not buffered.
MAX_LINE_BYTES = 1 << 20

#: Operations the service accepts.  ``reload`` is the admin op that
#: hot-swaps the serving ruleset to a store version without a restart.
OPS = ("ping", "translate", "run", "coverage", "stats", "reload")

#: The closed error-code set.
ERROR_CODES = (
    "bad-json",
    "bad-request",
    "unknown-op",
    "bad-program",
    "backpressure",
    "timeout",
    "shutting-down",
    "internal",
)

#: Codes a client should treat as transient (back off and retry).
RETRYABLE_CODES = frozenset({"backpressure", "shutting-down", "timeout"})


class ProtocolError(Exception):
    """A request the service refuses, tagged with a wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line: deterministic JSON (sorted keys) + newline."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(raw: bytes) -> Dict[str, Any]:
    """Parse one request line; :class:`ProtocolError` on malformed input."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad-json", f"undecodable request line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    return obj


def request_id(obj: Dict[str, Any]) -> Optional[Any]:
    """The echoable request id (scalars only; anything else becomes None)."""
    ident = obj.get("id")
    if isinstance(ident, (str, int, float, bool)) or ident is None:
        return ident
    return None


def parse_request(obj: Dict[str, Any]) -> Tuple[Optional[Any], str]:
    """Validate the envelope; returns ``(id, op)`` or raises ProtocolError."""
    ident = request_id(obj)
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing or non-string 'op'")
    return ident, op


def ok_response(ident: Optional[Any], result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": ident, "ok": True, "result": result}


def error_response(
    ident: Optional[Any], code: str, message: str
) -> Dict[str, Any]:
    if code not in ERROR_CODES:  # never leak an unclassified error code
        code = "internal"
    return {
        "id": ident,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retryable": code in RETRYABLE_CODES,
        },
    }
