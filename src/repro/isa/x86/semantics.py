"""Executable semantics for the x86-like host ISA (AT&T operand order).

Two-operand instructions are destructive: ``op src, dst`` computes
``dst = dst OP src``.  Flag modelling (see :mod:`repro.isa.flags`):

* ``addl/adcl/subl/sbbl/negl/cmpl`` set N, Z, C, V;
* ``andl/orl/xorl/testl`` set N and Z and *clobber* C and V to zero (their
  ARM counterparts preserve C/V — this asymmetry is what makes condition-flag
  delegation matter, e.g. the paper's ``eors`` loop in libquantum);
* shifts set N and Z and clobber C and V;
* ``movl``/``leal``/``notl``/``imull``/stack ops set no flags.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.isa.instruction import Instruction
from repro.isa.operands import Label


def _src_dst(st, insn):
    return st.read_operand(insn.operands[0]), st.read_operand(insn.operands[1])


def _clobber_cv(st) -> None:
    zero = st.d.const(0, 1)
    st.set_flag("C", zero)
    st.set_flag("V", zero)


def make_arith2(kind: str, use_carry: bool):
    """addl / subl / adcl / sbbl: full NZCV."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        src, dst = _src_dst(st, insn)
        carry = st.get_flag("C") if use_carry else None
        if kind == "add":
            cin = carry if use_carry else d.const(0, 1)
            result, c, v = d.addc(dst, src, cin)
        else:  # sub: dst - src, carry = no-borrow
            cin = carry if use_carry else d.const(1, 1)
            result, c, v = d.addc(dst, d.not_(src), cin)
        st.write_operand(insn.operands[1], result)
        st.set_nzcv(result, c, v)

    return sem


def make_logic2(kind: str):
    """andl / orl / xorl: N,Z set; C,V cleared."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        src, dst = _src_dst(st, insn)
        if kind == "and":
            result = d.and_(dst, src)
        elif kind == "or":
            result = d.or_(dst, src)
        elif kind == "xor":
            result = d.xor(dst, src)
        else:  # pragma: no cover
            raise AssertionError(kind)
        st.write_operand(insn.operands[1], result)
        st.set_nz(result)
        _clobber_cv(st)

    return sem


def make_shift2(kind: str):
    """shll / shrl / sarl: N,Z set; C,V cleared."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        src, dst = _src_dst(st, insn)
        if kind == "shl":
            result = d.shl(dst, src)
        elif kind == "shr":
            result = d.lshr(dst, src)
        elif kind == "sar":
            result = d.ashr(dst, src)
        else:  # pragma: no cover
            raise AssertionError(kind)
        st.write_operand(insn.operands[1], result)
        st.set_nz(result)
        _clobber_cv(st)

    return sem


def sem_imull(st, insn: Instruction) -> None:
    src, dst = _src_dst(st, insn)
    st.write_operand(insn.operands[1], st.d.mul(dst, src))


def sem_movl(st, insn: Instruction) -> None:
    st.write_operand(insn.operands[1], st.read_operand(insn.operands[0]))


def make_mov_sized(size: int, is_load: bool):
    """movzbl/movzwl (zero-extending loads) and movb/movw (narrow stores)."""

    def sem(st, insn: Instruction) -> None:
        if is_load:
            st.write_operand(insn.operands[1], st.read_operand(insn.operands[0], size))
        else:
            st.write_operand(insn.operands[1], st.read_operand(insn.operands[0]), size)

    return sem


def sem_leal(st, insn: Instruction) -> None:
    st.write_operand(insn.operands[1], st.addr_of(insn.operands[0]))


def sem_notl(st, insn: Instruction) -> None:
    value = st.read_operand(insn.operands[0])
    st.write_operand(insn.operands[0], st.d.not_(value))


def sem_negl(st, insn: Instruction) -> None:
    d = st.d
    value = st.read_operand(insn.operands[0])
    result, c, v = d.addc(d.const(0), d.not_(value), d.const(1, 1))
    st.write_operand(insn.operands[0], result)
    st.set_nzcv(result, c, v)


def sem_cmpl(st, insn: Instruction) -> None:
    d = st.d
    src, dst = _src_dst(st, insn)  # AT&T: cmpl b, a  computes a - b
    result, c, v = d.addc(dst, d.not_(src), d.const(1, 1))
    st.set_nzcv(result, c, v)


def sem_testl(st, insn: Instruction) -> None:
    src, dst = _src_dst(st, insn)
    st.set_nz(st.d.and_(dst, src))
    _clobber_cv(st)


def make_setcc(flag: str):
    """setz/sets/setc/seto: write a flag bit (0/1) into a register."""

    def sem(st, insn: Instruction) -> None:
        st.write_operand(insn.operands[0], st.d.ite(st.get_flag(flag), st.d.const(1), st.d.const(0)))

    return sem


def make_flag_store(flag: str):
    """``st<f> mem`` — spill one guest-visible flag to memory.

    Stand-in for the ``setcc``+``mov`` / ``lahf`` sequences a real DBT emits;
    modelled as a single instruction (see the cost-weight table in
    :mod:`repro.dbt.metrics`).
    """

    def sem(st, insn: Instruction) -> None:
        d = st.d
        value = d.ite(st.get_flag(flag), d.const(1), d.const(0))
        st.write_operand(insn.operands[0], value)

    return sem


def make_flag_load(flag: str):
    """``ld<f> mem`` — reload one guest flag from memory into EFLAGS."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        value = st.read_operand(insn.operands[0])
        st.set_flag(flag, d.bit(value, 0))

    return sem


def sem_helper_umlal(st, insn: Instruction) -> None:
    """64-bit multiply-accumulate helper (QEMU-style out-of-line helper)."""
    _require_concrete(st, insn)
    lo = st.read_operand(insn.operands[0])
    hi = st.read_operand(insn.operands[1])
    rn = st.read_operand(insn.operands[2])
    rm = st.read_operand(insn.operands[3])
    total = ((hi << 32) | lo) + rn * rm
    st.write_operand(insn.operands[0], total & 0xFFFFFFFF)
    st.write_operand(insn.operands[1], (total >> 32) & 0xFFFFFFFF)


def sem_helper_clz(st, insn: Instruction) -> None:
    """Count-leading-zeros helper."""
    value = st.read_operand(insn.operands[1])
    st.write_operand(insn.operands[0], st.d.clz(value))


def make_jump(cond):
    def sem(st, insn: Instruction) -> None:
        from repro.isa.arm.semantics import condition_value  # same flag algebra

        target = insn.operands[0]
        assert isinstance(target, Label)
        taken = st.d.const(1, 1) if cond is None else condition_value(st, cond)
        st.record_branch(taken, target)

    return sem


def _require_concrete(st, insn: Instruction) -> None:
    if st.d.name != "concrete":
        raise VerificationError(
            f"{insn.mnemonic} has ABI-dependent semantics and cannot be "
            "symbolically executed"
        )


def sem_pushl(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    sp = (st.get_reg("esp") - 4) & 0xFFFFFFFF
    st.store(sp, st.read_operand(insn.operands[0]))
    st.set_reg("esp", sp)


def sem_popl(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    sp = st.get_reg("esp")
    st.write_operand(insn.operands[0], st.load(sp))
    st.set_reg("esp", (sp + 4) & 0xFFFFFFFF)


def sem_call(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    target = insn.operands[0]
    assert isinstance(target, Label)
    st.record_branch(st.d.const(1, 1), target)


def sem_ret(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    st.record_branch(st.d.const(1, 1), None)
