"""Shared fixtures: a small demo program, its learned rules, and DBT setups.

Session-scoped so the expensive pieces (learning, derivation) are paid once
per test run.
"""

from __future__ import annotations

import pytest

from repro.dbt import DBTEngine, check_against_reference
from repro.dbt.guest_interp import GuestInterpreter
from repro.lang import compile_pair
from repro.learning import learn_pair
from repro.param import build_setup

DEMO_SOURCE = """
global data[256];
global out[64];

func fill(seed) {
  var i, v;
  i = 0;
  v = seed;
loop:
  data[i] = v;
  v = v * 1103515245;
  v = v + 12345;
  i = i + 4;
  if (i <u 96) goto loop;
  return v;
}

func mix(a, b) {
  var i, s, x, t;
  s = a;
  t = b;
  i = 0;
loop:
  x = data[i];
  s = s + x;
  t = t ^ s;
  x = x >>> 3;
  s = s - x;
  if ((s & t) != 0) goto skip;
  s = s + 7;
skip:
  i = i + 4;
  if (i <u 96) goto loop;
  s = s + t;
  return s;
}

func main() {
  var r, q;
  r = call fill(77);
  q = call mix(r, 13);
  out[0] = q;
  q = q & 65535;
  out[4] = q;
  return q;
}
"""


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the on-disk pipeline cache at a per-session temp directory.

    Tests still exercise the disk layer (warm-rerun paths work within a
    session) without reading from or polluting the user's real cache.
    """
    from repro import cache

    cache.reset_disk_cache(tmp_path_factory.mktemp("repro-disk-cache"))
    yield
    cache.reset_disk_cache()


@pytest.fixture(scope="session")
def demo_pair():
    return compile_pair("demo", DEMO_SOURCE)


@pytest.fixture(scope="session")
def demo_learning(demo_pair):
    return learn_pair(demo_pair)


@pytest.fixture(scope="session")
def demo_rules(demo_learning):
    return demo_learning.rules


@pytest.fixture(scope="session")
def demo_setup(demo_rules):
    return build_setup(demo_rules)


@pytest.fixture(scope="session")
def demo_reference(demo_pair):
    return GuestInterpreter(demo_pair.guest).run()


def run_demo_config(demo_pair, demo_setup, stage: str):
    """Run the demo under one DBT configuration, asserting correctness."""
    engine = DBTEngine(demo_pair.guest, demo_setup.configs[stage])
    result = engine.run()
    ok, message = check_against_reference(demo_pair.guest, result)
    assert ok, f"{stage}: {message}"
    return result
