"""Tests for the offline benchmark report helpers (no timed runs here; the
CI smoke job runs the real ``repro bench --offline --quick --check``)."""

from repro.bench_offline import (
    check_offline_report,
    render_offline_report,
    write_offline_report,
)


def _payload(**overrides):
    payload = {
        "quick": True,
        "training_set": ["mcf"],
        "repeats": 1,
        "stages": {
            "optimized": {"learn": 0.1, "derive": 0.05, "total": 0.15},
            "legacy": {"learn": 0.2, "derive": 0.15, "total": 0.35},
        },
        "speedup": {"learn": 2.0, "derive": 3.0, "total": 2.33},
        "identical": True,
        "counts": {"derived_unique": 10},
        "counts_match": True,
        "cross_check": {"checked": 12, "failed": 0},
        "memos": [],
        "note": "",
    }
    payload.update(overrides)
    return payload


class TestCheckOfflineReport:
    def test_passes_on_clean_payload(self):
        ok, message = check_offline_report(_payload())
        assert ok
        assert "12 cross-checks passed" in message

    def test_fails_on_payload_divergence(self):
        ok, message = check_offline_report(_payload(identical=False))
        assert not ok and "differs" in message

    def test_fails_on_count_mismatch(self):
        ok, message = check_offline_report(_payload(counts_match=False))
        assert not ok and "counts differ" in message

    def test_fails_on_cross_check_failure(self):
        ok, message = check_offline_report(
            _payload(cross_check={"checked": 5, "failed": 1})
        )
        assert not ok and "cross-check" in message


class TestRendering:
    def test_render_includes_stages_and_verdict(self):
        text = render_offline_report(_payload())
        assert "learn" in text and "derive" in text and "total" in text
        assert "batched == direct payload: yes" in text
        assert "12 re-verified" in text

    def test_render_flags_divergence(self):
        text = render_offline_report(_payload(identical=False))
        assert "DIVERGENCE" in text

    def test_write_report_round_trips(self, tmp_path):
        import json

        path = tmp_path / "BENCH_offline.json"
        write_offline_report(_payload(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["identical"] is True
        assert loaded["speedup"]["derive"] == 3.0
