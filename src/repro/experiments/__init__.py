"""Experiment harnesses — one module per paper table/figure."""

from repro.experiments import (
    fig02_rule_growth,
    fig11_speedup,
    fig12_coverage,
    fig13_ratio,
    fig14_coverage_factors,
    fig15_perf_factors,
    fig16_training_size,
    table1_learning_stats,
    table2_host_insns,
    table3_rule_counts,
)
from repro.experiments.charts import render_chart, render_series
from repro.experiments.report import ExperimentResult, format_table

EXPERIMENTS = {
    "fig02": fig02_rule_growth.run,
    "table1": table1_learning_stats.run,
    "fig11": fig11_speedup.run,
    "fig12": fig12_coverage.run,
    "fig13": fig13_ratio.run,
    "table2": table2_host_insns.run,
    "fig14": fig14_coverage_factors.run,
    "fig15": fig15_perf_factors.run,
    "fig16": fig16_training_size.run,
    "table3": table3_rule_counts.run,
}

__all__ = ["EXPERIMENTS", "ExperimentResult", "format_table", "render_chart", "render_series"]
