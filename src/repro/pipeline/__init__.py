"""Continuous-learning pipeline: staged artifacts, versioned rulesets.

``repro pipeline run`` drives corpus → learn → derive → verify → publish
with content-addressed skip-if-unchanged artifacts per stage
(:mod:`~repro.pipeline.stages`, :mod:`~repro.pipeline.artifacts`); the
publish stage emits schema-versioned ruleset artifacts into a store with a
``latest`` pointer and GC (:mod:`~repro.pipeline.store`,
:mod:`~repro.pipeline.manifest`), which `repro serve` hot-swaps without
dropping in-flight requests.
"""

from repro.pipeline.artifacts import ArtifactStore, artifact_digest
from repro.pipeline.manifest import (
    RULESET_FORMAT,
    ServingRuleset,
    body_digest,
    body_from_setup,
    build_body,
    serving_ruleset_from_body,
    serving_ruleset_from_setup,
)
from repro.pipeline.stages import STAGE_ORDER, Pipeline, PipelineConfig
from repro.pipeline.store import MANIFEST_FORMAT, PublishResult, RulesetStore

__all__ = [
    "ArtifactStore",
    "artifact_digest",
    "RULESET_FORMAT",
    "MANIFEST_FORMAT",
    "ServingRuleset",
    "body_digest",
    "body_from_setup",
    "build_body",
    "serving_ruleset_from_body",
    "serving_ruleset_from_setup",
    "STAGE_ORDER",
    "Pipeline",
    "PipelineConfig",
    "PublishResult",
    "RulesetStore",
]
