"""Packed tier-0 lookup front over a full rule index.

A :class:`HotIndex` holds a small distilled subset of a rule set (the
*tier-0* rules, selected by dynamic hit count — see
:mod:`repro.learning.distill`) in a single flat dict keyed by the canonical
window fingerprint from :func:`repro.learning.rule.window_keys`.  A lookup
computes the (generalized, value-specific) key pair once, probes the packed
dict, and only on a miss falls back to the full index (a flat
:class:`~repro.learning.ruleset.RuleSet` or the service's sharded index).

Parity argument (why a tier-0 hit can never change a translation): general
keys tag immediates ``("i", slot)`` / ``("m", ...)`` while specific keys tag
them ``("iv", slot, value)`` / ``("mv", ...)``, so the two key families
cannot collide unless a window is immediate-free, in which case both forms
are the same tuple.  Tier-0 admits only *slot owners* — rules ``r`` with
``full.lookup(r.guest) is r`` — so a generalized hit is exactly the full
index's generalized probe, and a specific hit implies no generalized rule
exists for that window's general key in the full set (otherwise the stored
rule would have lost its slot).  Every miss delegates to the full index.
Hence ``HotIndex`` and the flat lookup return the same rule for every
window; the distill bench enforces this byte-for-byte over the corpus.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.isa.instruction import Instruction
from repro.learning.rule import CanonicalKey, TranslationRule, window_keys
from repro.learning.ruleset import RuleSet


class Tier0Stats:
    """Process-wide tier-0 counters.

    Surfaced through :func:`repro.cache.stats_payload`, which is what both
    ``repro cache stats`` and the service ``stats`` endpoint serialize.
    ``rules`` / ``coverage`` are gauges describing the most recently loaded
    tier-0 set; the rest are monotonic counters.  The per-lookup counters
    are bumped lock-free from :meth:`HotIndex.lookup_canonical` (hot path;
    a lost increment under thread races is acceptable observability error),
    the lock only guards the cold operations (reset / load / snapshot).
    """

    _FIELDS = (
        "loads",
        "resolved_rules",
        "dropped_rules",
        "tier0_hits",
        "fallback_hits",
        "misses",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock"):
            for name in self._FIELDS:
                setattr(self, name, 0)
            self.rules = 0
            self.coverage = 0.0

    def incr(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    def note_load(self, rules: int, coverage: float) -> None:
        with self._lock:
            self.loads += 1
            self.rules = rules
            self.coverage = coverage

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            payload: Dict[str, object] = {
                name: getattr(self, name) for name in self._FIELDS
            }
            payload["rules"] = self.rules
            payload["coverage"] = round(self.coverage, 6)
            return payload


#: The process-wide counter instance.
TIER0_STATS = Tier0Stats()


def slot_owner(full: RuleSet, rule: TranslationRule) -> bool:
    """Does the full index answer ``rule.guest`` with this exact object?

    The admission filter for tier-0: only slot owners may enter the packed
    dict (see the module docstring's parity argument).
    """
    return full.lookup(rule.guest) is rule


class HotIndex:
    """Flat packed dict over tier-0 rules with full-index miss fallback.

    Duck-types the ``RuleSet`` lookup surface the translator and service
    rely on (``lookup`` / ``lookup_canonical`` / ``max_guest_length`` /
    ``__len__`` / ``__iter__`` / ``frozen``).  Iteration, length and
    ``max_guest_length`` delegate to the *fallback* (full) index when one is
    present so window planning and every non-lookup consumer behave exactly
    as without tier-0.
    """

    def __init__(
        self,
        rules: Iterable[TranslationRule],
        fallback=None,
        *,
        coverage: float = 0.0,
        digest: str = "",
    ) -> None:
        self._fallback = fallback
        self.coverage = float(coverage)
        self.digest = digest
        self.tier0_rules: Tuple[TranslationRule, ...] = tuple(rules)
        packed: Dict[CanonicalKey, TranslationRule] = {}
        for rule in self.tier0_rules:
            key = rule.key()
            current = packed.get(key)
            # Slot owners cannot collide; keep the flat preference anyway
            # (generalized beats specific) if a caller hands us extras.
            if current is None or (
                rule.imm_generalized and not current.imm_generalized
            ):
                packed[key] = rule
        self._packed = packed
        self.tier0_hits = 0
        self.fallback_hits = 0
        self.misses = 0

    # -- RuleSet surface -------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return True

    @property
    def tier0_size(self) -> int:
        return len(self.tier0_rules)

    def __len__(self) -> int:
        if self._fallback is not None:
            return len(self._fallback)
        return len(self.tier0_rules)

    def __iter__(self) -> Iterator[TranslationRule]:
        if self._fallback is not None:
            return iter(self._fallback)
        return iter(self.tier0_rules)

    def max_guest_length(self) -> int:
        if self._fallback is not None:
            return self._fallback.max_guest_length()
        return max((rule.guest_length for rule in self.tier0_rules), default=0)

    def lookup(self, window: Sequence[Instruction]) -> Optional[TranslationRule]:
        try:
            general, specific = window_keys(window)
        except RuleError:
            return None
        return self.lookup_canonical(general, specific)

    def lookup_canonical(
        self, general: CanonicalKey, specific: CanonicalKey
    ) -> Optional[TranslationRule]:
        # Counter bumps are deliberately lock-free: this sits on the
        # translate hot path, and a lost increment under thread races is an
        # acceptable observability error (single-threaded counts are exact).
        packed = self._packed
        rule = packed.get(general)
        if rule is None and specific is not general:
            rule = packed.get(specific)
        if rule is not None:
            self.tier0_hits += 1
            TIER0_STATS.tier0_hits += 1
            return rule
        fallback = self._fallback
        if fallback is not None:
            rule = fallback.lookup_canonical(general, specific)
        if rule is not None:
            self.fallback_hits += 1
            TIER0_STATS.fallback_hits += 1
        else:
            self.misses += 1
            TIER0_STATS.misses += 1
        return rule

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        tier0_hits = self.tier0_hits
        fallback_hits = self.fallback_hits
        misses = self.misses
        total = tier0_hits + fallback_hits + misses
        return {
            "rules": self.tier0_size,
            "coverage": round(self.coverage, 6),
            "digest": self.digest,
            "tier0_hits": tier0_hits,
            "fallback_hits": fallback_hits,
            "misses": misses,
            "tier0_hit_rate": round(tier0_hits / total, 6) if total else 0.0,
        }
