#!/usr/bin/env python
"""Quickstart: the whole pipeline on one small program.

Compiles a mini-language program for both ISAs, learns translation rules
from the statement-aligned binaries, parameterizes them, and runs the guest
binary under every DBT configuration — checking each run against the
reference interpreter and printing coverage/cost.

Run:  python examples/quickstart.py
"""

from repro.dbt import DBTEngine, check_against_reference, speedup
from repro.dbt.guest_interp import GuestInterpreter
from repro.isa.arm import disassemble
from repro.isa.x86.assembler import format_instruction
from repro.lang import compile_pair
from repro.learning import learn_pair
from repro.param import STAGES, build_setup

SOURCE = """
global data[256];
global out[16];

func fill(seed) {
  var i, v;
  i = 0;
  v = seed;
loop:
  data[i] = v;
  v = v * 1103515245;
  v = v + 12345;
  i = i + 4;
  if (i <u 128) goto loop;
  return v;
}

func checksum(x) {
  var i, s, w;
  s = x;
  i = 0;
loop:
  w = data[i];
  s = s + w;
  s = s ^ 9731;
  w = w >>> 5;
  s = s - w;
  i = i + 4;
  if (i <u 128) goto loop;
  return s;
}

func main() {
  var r;
  r = call fill(20260707);
  r = call checksum(r);
  out[0] = r;
  return r;
}
"""


def main() -> None:
    # 1. Compile the same source for the guest (ARM-like) and host
    #    (x86-like) ISAs — the training pair.
    pair = compile_pair("quickstart", SOURCE)
    print(f"compiled: {len(pair.guest.real_instructions)} guest / "
          f"{len(pair.host.real_instructions)} host instructions, "
          f"{pair.statement_count} statements\n")

    # 2. Reference execution (the correctness oracle).
    reference = GuestInterpreter(pair.guest).run()
    out_addr = pair.guest.globals_layout["out"]
    print(f"reference run: {reference.steps} guest instructions, "
          f"out[0] = {reference.state.load(out_addr):#010x}\n")

    # 3. Learn translation rules from the statement-aligned binaries.
    learning = learn_pair(pair)
    stats = learning.stats
    print("learning funnel (paper Table I shape):")
    print(f"  statements {stats.statements} -> candidates {stats.candidates} "
          f"-> learned {stats.learned} -> unique {stats.unique}\n")

    print("an example learned rule:")
    example = next(iter(learning.rules))
    for insn in example.guest:
        print(f"  guest: {insn}")
    for insn in example.host:
        print(f"  host : {format_instruction(insn)}")
    print(f"  immediates generalized: {example.imm_generalized}\n")

    # 4. Parameterize (opcode + addressing-mode derivation, §IV).
    setup = build_setup(learning.rules)
    counts = setup.param.counts
    print("parameterization (paper Table III shape):")
    print(f"  learned {counts.learned_rules} -> derived unique "
          f"{counts.derived_unique}, instantiable {counts.instantiated_rules}\n")

    # 5. Run the guest binary under every configuration.
    print(f"{'config':12s} {'coverage':>9s} {'host/guest':>11s} {'speedup':>8s}")
    qemu_metrics = None
    for stage in STAGES:
        engine = DBTEngine(pair.guest, setup.configs[stage])
        result = engine.run()
        ok, message = check_against_reference(pair.guest, result)
        assert ok, message
        metrics = result.metrics
        if stage == "qemu":
            qemu_metrics = metrics
        gain = speedup(qemu_metrics, metrics)
        print(f"{stage:12s} {100 * metrics.coverage:8.1f}% "
              f"{metrics.total_ratio:11.2f} {gain:8.2f}x")
    print("\nevery configuration produced the reference-identical final state.")


if __name__ == "__main__":
    main()
