"""Tests for target-shape enumeration and classification tables."""

import pytest

from repro.isa.arm import assemble as arm
from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Subgroup
from repro.param.classify import OPCODE_MAP, UNPARAMETERIZABLE, parameterizable_opcodes
from repro.param.shapes import (
    _set_partitions,
    build_guest_instruction,
    enumerate_shapes,
    shape_of_instruction,
)


class TestSetPartitions:
    def test_counts_are_bell_numbers(self):
        assert len(list(_set_partitions(0))) == 1
        assert len(list(_set_partitions(1))) == 1
        assert len(list(_set_partitions(2))) == 2
        assert len(list(_set_partitions(3))) == 5
        assert len(list(_set_partitions(4))) == 15

    def test_canonical_form(self):
        for pattern in _set_partitions(3):
            assert pattern[0] == 0
            for i in range(1, len(pattern)):
                assert pattern[i] <= max(pattern[:i]) + 1


class TestShapes:
    def test_alu_reg_shapes(self):
        shapes = list(enumerate_shapes("add"))
        # (R,R,R): 5 patterns; (R,R,I): 2 patterns.
        assert len(shapes) == 7

    def test_mul_has_no_imm_shapes(self):
        shapes = list(enumerate_shapes("mul"))
        assert len(shapes) == 5

    def test_load_shapes_cover_mem_subshapes(self):
        shapes = list(enumerate_shapes("ldr"))
        mem_shapes = {s.operands[1].mem_shape for s in shapes}
        assert mem_shapes == {"base", "base+disp", "base+index"}

    def test_roundtrip_build_then_recover(self):
        for mnemonic in ("add", "ldr", "str", "cmp", "mov", "eors"):
            for shape in enumerate_shapes(mnemonic):
                insn = build_guest_instruction(mnemonic, shape)
                ARM.validate(insn)
                assert shape_of_instruction(insn) == shape

    def test_shape_of_concrete_instruction(self):
        shape = shape_of_instruction(arm("add r3, r3, r5")[0])
        assert shape.pattern == (0, 0, 1)
        shape = shape_of_instruction(arm("ldr r1, [r2, r1]")[0])
        assert shape.pattern == (0, 1, 0)


class TestClassifyTables:
    def test_every_parameterizable_opcode_has_host_op(self):
        for subgroup in (Subgroup.ALU, Subgroup.LOAD, Subgroup.STORE, Subgroup.COMPARE):
            for mnemonic in parameterizable_opcodes(subgroup):
                assert mnemonic in OPCODE_MAP

    def test_other_subgroup_unparameterizable(self):
        for name in ("b", "bl", "bx", "push", "pop", "mla", "umlal", "clz"):
            assert name in UNPARAMETERIZABLE
            assert name not in OPCODE_MAP

    def test_complex_siblings_have_transforms(self):
        assert OPCODE_MAP["bic"].transform == "invert_src"
        assert OPCODE_MAP["mvn"].transform == "not_dest"
        assert OPCODE_MAP["rsb"].transform == "swap"
        assert OPCODE_MAP["cmn"].transform == "via_scratch"
        assert OPCODE_MAP["add"].transform is None

    @pytest.mark.parametrize("guest,host", [("eor", "xorl"), ("ldrb", "movzbl"), ("str", "movl_s"), ("tst", "testl")])
    def test_direct_mappings(self, guest, host):
        assert OPCODE_MAP[guest].mnemonic == host
