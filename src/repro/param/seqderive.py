"""Sequence-rule parameterization (the paper's future work, §V-D).

The paper parameterizes only single-guest-instruction rules and notes:
"Parameterizing instruction sequences will yield more rules ... and will
improve the performance further because they can produce more optimized host
code sequences after translation."  This module implements that extension:

* **opcode substitution inside sequences** — for each learned multi-
  instruction rule, every parameterizable guest instruction whose host
  counterpart appears exactly once in the host template is substituted with
  each same-subgroup opcode (direct mappings only), one position at a time;
* **condition substitution** — a sequence ending in a conditional branch is
  re-derived for every other condition code (``cmp+blt`` -> ``cmp+bge`` ...).

Every derived sequence is re-verified symbolically before it becomes a rule,
exactly like single-instruction derivation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Instruction
from repro.isa.x86.opcodes import X86, _COND_TO_JCC
from repro.learning.learn import try_generalize_imms
from repro.learning.rule import TranslationRule
from repro.learning.ruleset import RuleSet
from repro.param.classify import OPCODE_MAP, parameterizable_opcodes
from repro.verify.checker import check_equivalence

#: Derived-sequence verification results, memoized across rule sets.
_SEQ_CACHE: Dict[Tuple, Optional[TranslationRule]] = {}


def _replace_mnemonic(
    instructions: Tuple[Instruction, ...], index: int, mnemonic: str
) -> Tuple[Instruction, ...]:
    updated = list(instructions)
    updated[index] = Instruction(mnemonic, instructions[index].operands)
    return tuple(updated)


def _verify_sequence(
    guest: Tuple[Instruction, ...],
    host: Tuple[Instruction, ...],
    temps: int,
) -> Optional[TranslationRule]:
    key = (tuple(map(str, guest)), tuple(map(str, host)))
    if key in _SEQ_CACHE:
        return _SEQ_CACHE[key]
    result = check_equivalence(ARM, X86, guest, host, allow_temps=temps)
    rule: Optional[TranslationRule] = None
    if result.dataflow_ok:
        rule = TranslationRule(
            guest=guest,
            host=host,
            reg_mapping=tuple(sorted(result.reg_mapping.items())),
            host_temps=result.host_temps,
            flag_status=tuple(sorted(result.flag_status.items())),
            imm_generalized=try_generalize_imms(guest, host),
            origin="seq-param",
        )
    _SEQ_CACHE[key] = rule
    return rule


def _opcode_variants(rule: TranslationRule) -> List[TranslationRule]:
    """One-position opcode substitutions of a learned sequence rule."""
    variants: List[TranslationRule] = []
    for pos, guest_insn in enumerate(rule.guest):
        spec = OPCODE_MAP.get(guest_insn.mnemonic)
        if spec is None or spec.transform is not None:
            continue
        host_positions = [
            i for i, h in enumerate(rule.host) if h.mnemonic == spec.mnemonic
        ]
        if not 1 <= len(host_positions) <= 3:
            continue
        subgroup = ARM.lookup(guest_insn.mnemonic).subgroup
        for alt in parameterizable_opcodes(subgroup):
            alt_spec = OPCODE_MAP[alt]
            if alt == guest_insn.mnemonic or alt_spec.transform is not None:
                continue
            if not ARM.lookup(alt).accepts(guest_insn.kinds):
                continue
            guest = _replace_mnemonic(rule.guest, pos, alt)
            # The host counterpart position may be ambiguous (e.g. two movl
            # instructions); try each candidate — verification arbitrates.
            for host_pos in host_positions:
                host = _replace_mnemonic(rule.host, host_pos, alt_spec.mnemonic)
                derived = _verify_sequence(guest, host, len(rule.host_temps))
                if derived is not None:
                    variants.append(derived)
                    break
    return variants


def _condition_variants(rule: TranslationRule) -> List[TranslationRule]:
    """Condition-code substitutions for branch-terminated sequences."""
    guest_last = rule.guest[-1]
    defn = ARM.lookup(guest_last.mnemonic)
    if not defn.is_branch or defn.cond is None:
        return []
    host_last = rule.host[-1]
    if X86.lookup(host_last.mnemonic).cond != defn.cond:
        return []
    variants: List[TranslationRule] = []
    for cond, jcc in _COND_TO_JCC.items():
        if cond == defn.cond:
            continue
        guest = _replace_mnemonic(rule.guest, len(rule.guest) - 1, f"b{cond}")
        host = _replace_mnemonic(rule.host, len(rule.host) - 1, jcc)
        derived = _verify_sequence(guest, host, len(rule.host_temps))
        if derived is not None:
            variants.append(derived)
    return variants


def derive_sequence_rules(learned: RuleSet) -> RuleSet:
    """Derive verified sequence rules from the multi-instruction learned
    rules (combined with single-instruction rules by the caller)."""
    derived = RuleSet()
    for rule in learned:
        if rule.guest_length < 2:
            continue
        for variant in _opcode_variants(rule):
            if learned.lookup(variant.guest) is None:
                derived.add(variant)
        for variant in _condition_variants(rule):
            if learned.lookup(variant.guest) is None:
                derived.add(variant)
    return derived
