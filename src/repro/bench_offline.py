"""Offline-pipeline benchmark harness (``repro bench --offline``).

Times the offline phases — rule **learning** (trace alignment + candidate
verification) and rule **derivation** (parameterized-target search +
re-verification) — under the optimized fast paths and under the legacy
algorithm (:mod:`repro.perfopts`), and writes ``BENCH_offline.json``.

Protocol, per repetition (modes interleaved so machine-noise drift hits
both equally):

* all in-memory caches are cleared and the disk cache is disabled, so every
  round is a true cold run;
* ``learn`` and ``derive`` are timed separately; the minimum over
  repetitions is reported per mode;
* each round's derived rule set is serialized deterministically, and the
  report records whether the optimized (shape-class batched) and legacy
  (direct, unbatched) pipelines produced **byte-identical** payloads — the
  hard correctness gate for the optimization work.

An additional untimed pass runs the optimized pipeline with the shape-class
cross-check sampling at 100% (:func:`repro.verify.shapeclass.set_cross_check`),
so every memo-served verdict in that pass is re-verified directly; the
report records how many were checked and how many diverged (must be zero).

Honesty note: the legacy mode cannot disable expression interning — the node
classes themselves were replaced — so the legacy baseline *understates* the
true pre-interning cost even though it recomputes reprs and simplification
per call.  The recorded speedup is therefore a lower bound.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Tuple

from repro import perfopts
from repro.cache import clear_all_caches, disk_cache, memo_registry

#: benchmarks used by ``--quick`` (CI smoke: small, distinct shapes).
QUICK_NAMES = ("mcf", "libquantum", "astar")

#: Cross-check sampling used during the untimed soundness pass / restored
#: default afterwards.
_FULL_SAMPLING = 1
_DEFAULT_SAMPLING = 16


def _cold_round(names: Tuple[str, ...]) -> Dict[str, object]:
    """One cold learn+derive run; returns timings and the serialized result."""
    from repro.experiments.common import rules_from
    from repro.param.derive import _param_result_to_dict, derive_rules

    clear_all_caches()
    started = time.perf_counter()
    rules = rules_from(names)
    learned = time.perf_counter()
    result = derive_rules(rules)
    derived = time.perf_counter()
    payload = _param_result_to_dict(result)
    return {
        "learn_seconds": learned - started,
        "derive_seconds": derived - learned,
        "payload": json.dumps(payload, sort_keys=True),
        "counts": dict(payload["counts"]),
    }


def run_offline_bench(
    repeats: int = 3,
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the offline benchmark; returns the ``BENCH_offline.json`` payload."""
    from repro.verify import shapeclass
    from repro.workloads import BENCHMARK_NAMES

    names = QUICK_NAMES if quick else tuple(BENCHMARK_NAMES)
    emit = log or (lambda message: None)

    # Workload compilation is deterministic setup, not part of the offline
    # pipeline under measurement; warm it once so every round's ``learn``
    # time is alignment + verification only.
    from repro.workloads import compiled_benchmark

    for name in names:
        compiled_benchmark(name)

    cache = disk_cache()
    was_enabled = cache.enabled
    cache.enabled = False
    try:
        best: Dict[str, Dict[str, float]] = {
            "optimized": {"learn": float("inf"), "derive": float("inf")},
            "legacy": {"learn": float("inf"), "derive": float("inf")},
        }
        payloads: Dict[str, str] = {}
        counts: Dict[str, Dict[str, int]] = {}
        for repetition in range(repeats):
            for mode in ("optimized", "legacy"):
                previous = perfopts.optimized()
                perfopts.set_optimized(mode == "optimized")
                try:
                    round_data = _cold_round(names)
                finally:
                    perfopts.set_optimized(previous)
                best[mode]["learn"] = min(
                    best[mode]["learn"], round_data["learn_seconds"]
                )
                best[mode]["derive"] = min(
                    best[mode]["derive"], round_data["derive_seconds"]
                )
                if mode in payloads and payloads[mode] != round_data["payload"]:
                    raise RuntimeError(
                        f"{mode} pipeline is not deterministic across rounds"
                    )
                payloads[mode] = round_data["payload"]
                counts[mode] = round_data["counts"]
                emit(
                    f"round {repetition + 1}/{repeats} {mode}: "
                    f"learn {round_data['learn_seconds']:.3f}s, "
                    f"derive {round_data['derive_seconds']:.3f}s"
                )

        # Untimed soundness pass: re-verify every shape-class-served verdict.
        before = shapeclass.cross_check_stats()
        shapeclass.set_cross_check(_FULL_SAMPLING)
        try:
            _cold_round(names)
        finally:
            shapeclass.set_cross_check(_DEFAULT_SAMPLING)
        after = shapeclass.cross_check_stats()
        cross_check = {
            "checked": after["checked"] - before["checked"],
            "failed": after["failed"] - before["failed"],
        }
        emit(
            f"cross-check: {cross_check['checked']} verdicts re-verified, "
            f"{cross_check['failed']} diverged"
        )
    finally:
        cache.enabled = was_enabled

    for mode in best:
        best[mode]["total"] = best[mode]["learn"] + best[mode]["derive"]
    speedup = {
        stage: (
            best["legacy"][stage] / best["optimized"][stage]
            if best["optimized"][stage] > 0
            else float("inf")
        )
        for stage in ("learn", "derive", "total")
    }
    return {
        "quick": quick,
        "training_set": list(names),
        "repeats": repeats,
        "stages": best,
        "speedup": speedup,
        "identical": payloads["optimized"] == payloads["legacy"],
        "counts": counts["optimized"],
        "counts_match": counts["optimized"] == counts["legacy"],
        "cross_check": cross_check,
        "memos": [memo.stats() for memo in memo_registry()],
        "note": (
            "legacy baseline shares the interned expression classes, so the "
            "recorded speedup is a lower bound on the gain over the "
            "pre-interning implementation"
        ),
    }


def write_offline_report(payload: Dict[str, object], path: str) -> None:
    from repro.bench import write_json_report

    write_json_report(payload, path)


def render_offline_report(payload: Dict[str, object]) -> str:
    stages = payload["stages"]
    speedup = payload["speedup"]
    lines = [
        "offline pipeline benchmark"
        + (" (quick subset)" if payload["quick"] else ""),
        f"{'stage':10s} {'optimized':>12s} {'legacy':>12s} {'speedup':>9s}",
    ]
    for stage in ("learn", "derive", "total"):
        lines.append(
            f"{stage:10s} {stages['optimized'][stage] * 1000:10.1f}ms"
            f" {stages['legacy'][stage] * 1000:10.1f}ms"
            f" {speedup[stage]:8.2f}x"
        )
    lines.append(
        "batched == direct payload: "
        + ("yes" if payload["identical"] else "NO — DIVERGENCE")
    )
    lines.append(
        f"cross-check: {payload['cross_check']['checked']} re-verified, "
        f"{payload['cross_check']['failed']} diverged"
    )
    return "\n".join(lines)


def check_offline_report(payload: Dict[str, object]) -> Tuple[bool, str]:
    """CI gate: batched must match direct, and the cross-check must pass."""
    if not payload["identical"]:
        return False, "batched verification payload differs from direct"
    if not payload["counts_match"]:
        return False, "derived rule counts differ between batched and direct"
    if payload["cross_check"]["failed"]:
        return False, "shape-class cross-check found diverging verdicts"
    return True, (
        "batched == direct; "
        f"{payload['cross_check']['checked']} cross-checks passed; "
        f"derive speedup {payload['speedup']['derive']:.2f}x"
    )
