"""Target shapes for rule derivation.

A *target* is one concrete (opcode, operand-kind shape, register-dependency
pattern) combination that parameterization may derive a rule for.  The kind
shape covers the addressing-mode dimension (§IV-B) — including the memory
sub-shapes ``[base]``, ``[base, #disp]``, ``[base, index]`` — and the
pattern covers the intra-rule register-equality constraints of fig. 8.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Instruction, Subgroup
from repro.isa.operands import Imm, Mem, OperandKind as K, Reg

#: Probe values used when materializing targets for verification.
PROBE_IMM = 0x1A2B
PROBE_DISP = 0x30

#: Memory sub-shapes (addressing-mode dimension for MEM operands).
MemShape = str  # "base" | "base+disp" | "base+index"
MEM_SHAPES: Tuple[MemShape, ...] = ("base", "base+disp", "base+index")

#: Guest registers used to materialize patterns (allocatable, never pc/sp).
_GUEST_REGS = ("r0", "r1", "r2", "r3")


@dataclass(frozen=True)
class OperandShape:
    """Shape of one operand: a kind plus (for MEM) the sub-shape."""

    kind: K
    mem_shape: Optional[MemShape] = None

    @property
    def reg_slots(self) -> int:
        """How many register slots this operand contributes."""
        if self.kind is K.REG:
            return 1
        if self.kind is K.MEM:
            return 2 if self.mem_shape == "base+index" else 1
        return 0


@dataclass(frozen=True)
class TargetShape:
    """One derivation target (minus the opcode)."""

    operands: Tuple[OperandShape, ...]
    #: register slot index per register position, flattened across operands
    #: in order (fig. 8 dependency pattern).  ``(0, 0, 1)`` means the first
    #: two register positions share a register.
    pattern: Tuple[int, ...]

    @property
    def distinct_regs(self) -> int:
        return max(self.pattern) + 1 if self.pattern else 0


def _set_partitions(n: int) -> Iterator[Tuple[int, ...]]:
    """All canonical equality patterns over *n* positions.

    Patterns are restricted-growth strings: position 0 is slot 0, each later
    position reuses an earlier slot or opens the next one.
    """

    def extend(prefix: List[int], used: int) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == n:
            yield tuple(prefix)
            return
        for slot in range(used + 1):
            yield from extend(prefix + [slot], max(used, slot + 1))

    if n == 0:
        yield ()
    else:
        yield from extend([0], 1)


def enumerate_shapes(mnemonic: str) -> Iterator[TargetShape]:
    """All legal target shapes for a guest mnemonic.

    Legality comes from the guest ISA signatures, which encode the §IV-B
    guidelines (no immediate destinations, no memory on RISC ALU ops, loads
    read memory, stores write memory).
    """
    defn = ARM.lookup(mnemonic)
    for signature in defn.signatures:
        mem_choices = [
            MEM_SHAPES if kind is K.MEM else (None,) for kind in signature
        ]
        for mem_combo in itertools.product(*mem_choices):
            operands = tuple(
                OperandShape(kind, mem_shape)
                for kind, mem_shape in zip(signature, mem_combo)
            )
            positions = sum(shape.reg_slots for shape in operands)
            for pattern in _set_partitions(positions):
                if max(pattern, default=-1) + 1 > len(_GUEST_REGS):
                    continue
                yield TargetShape(operands, pattern)


def build_guest_instruction(mnemonic: str, shape: TargetShape) -> Instruction:
    """Materialize a target as a concrete guest instruction (probe values)."""
    slots = iter(shape.pattern)
    operands = []
    for op_shape in shape.operands:
        if op_shape.kind is K.REG:
            operands.append(Reg(_GUEST_REGS[next(slots)]))
        elif op_shape.kind is K.IMM:
            operands.append(Imm(PROBE_IMM))
        elif op_shape.kind is K.MEM:
            base = Reg(_GUEST_REGS[next(slots)])
            if op_shape.mem_shape == "base":
                operands.append(Mem(base=base))
            elif op_shape.mem_shape == "base+disp":
                operands.append(Mem(base=base, disp=PROBE_DISP))
            else:
                operands.append(Mem(base=base, index=Reg(_GUEST_REGS[next(slots)])))
        else:
            raise ValueError(f"unsupported operand kind {op_shape.kind}")
    return Instruction(mnemonic, tuple(operands))


def shape_of_instruction(insn: Instruction) -> TargetShape:
    """Recover the target shape of a concrete guest instruction."""
    operands = []
    reg_names: List[str] = []
    for op in insn.operands:
        if isinstance(op, Reg):
            operands.append(OperandShape(K.REG))
            reg_names.append(op.name)
        elif isinstance(op, Imm):
            operands.append(OperandShape(K.IMM))
        elif isinstance(op, Mem):
            if op.index is not None:
                operands.append(OperandShape(K.MEM, "base+index"))
                reg_names.append(op.base.name)
                reg_names.append(op.index.name)
            elif op.disp:
                operands.append(OperandShape(K.MEM, "base+disp"))
                reg_names.append(op.base.name)
            else:
                operands.append(OperandShape(K.MEM, "base"))
                reg_names.append(op.base.name)
        else:
            raise ValueError(f"unsupported operand {op!r}")
    slot_of: dict = {}
    pattern = []
    for name in reg_names:
        slot_of.setdefault(name, len(slot_of))
        pattern.append(slot_of[name])
    return TargetShape(tuple(operands), tuple(pattern))


def shape_count(subgroup: Subgroup) -> int:
    """Total target count for a subgroup (diagnostics)."""
    from repro.param.classify import parameterizable_opcodes

    return sum(
        1
        for mnemonic in parameterizable_opcodes(subgroup)
        for _ in enumerate_shapes(mnemonic)
    )
