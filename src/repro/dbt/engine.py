"""The DBT engine: code cache + dispatch loop + correctness checking.

``DBTEngine`` emulates a compiled guest program the way user-mode QEMU
does: discover the basic block at the current guest PC, translate it (once —
translations are cached), execute the translated host code, read the next
guest PC from the environment, repeat until control reaches the halt
address.

Two execution backends share the code cache (``--backend`` on the CLI):

* ``interp`` — the per-instruction :class:`HostExecutor`.  Slow, simple,
  and the oracle every other backend is differentially tested against.
* ``jit`` — :mod:`repro.dbt.compiler` lowers each translated block to
  pre-bound Python closures (operands resolved at compile time, straight-
  line runs fused, metrics pre-aggregated).  With ``chaining=True`` hot
  block edges transfer directly between compiled bodies without returning
  to this dispatch loop.

Each code-cache entry (:class:`CodeCacheEntry`) owns the translated block
*and* its backend artifacts — decoded defs for interp, the compiled body
for jit — so decode products can never outlive or alias their block (the
failure mode of the old ``id(tb)``-keyed defs cache in the executor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dbt.block import BlockMap
from repro.dbt.compiler import CompiledBlock, compile_block
from repro.dbt.executor import BlockKernel, HostExecutor
from repro.dbt.guest_interp import GuestInterpreter
from repro.dbt.metrics import RunMetrics
from repro.dbt.runtime import (
    ENV_BASE,
    HALT_ADDRESS,
    env_flag_addr,
    env_pc_word,
    env_reg_addr,
    is_env_address,
)
from repro.dbt.trace import TRACE_STATS, CompiledTrace, TraceConfig, form_trace
from repro.dbt.translator import BlockTranslator, TranslatedBlock, TranslationConfig
from repro.errors import ExecutionError
from repro.lang.program import STACK_BASE, CompiledUnit
from repro.semantics.state import ConcreteState

DEFAULT_MAX_BLOCKS = 2_000_000

#: Execution backends accepted by :class:`DBTEngine`.
BACKENDS = ("interp", "jit", "trace")


@dataclass
class DBTRunResult:
    metrics: RunMetrics
    state: ConcreteState

    def guest_reg(self, name: str) -> int:
        return self.state.load(env_reg_addr(name))

    def guest_flag(self, name: str) -> int:
        return self.state.load(env_flag_addr(name))

    def guest_memory(self) -> Dict[int, int]:
        """Guest-visible memory (environment slots excluded)."""
        return {
            word_addr: value
            for word_addr, value in self.state.memory.items()
            if not is_env_address(word_addr * 4) and value
        }

    def architectural_snapshot(self) -> Dict[str, Dict]:
        """Final guest architectural state read out of the CPU environment.

        Normalized to the same shape as
        :meth:`repro.dbt.guest_interp.RunResult.architectural_snapshot` so a
        differential-testing oracle can diff the two directly.  Flags are
        included for diagnostics but may legitimately differ from the
        reference when they are dead at program exit (the translator never
        materializes dead guest flags).
        """
        regs = {f"r{i}": self.guest_reg(f"r{i}") for i in range(13)}
        regs["sp"] = self.guest_reg("sp")
        regs["lr"] = self.guest_reg("lr")
        return {
            "regs": regs,
            "flags": {f: self.guest_flag(f) for f in ("N", "Z", "C", "V")},
            "memory": self.guest_memory(),
        }


def _initial_state() -> ConcreteState:
    state = ConcreteState()
    state.reset_flags()
    for i in range(13):
        state.store(env_reg_addr(f"r{i}"), 0)
    state.store(env_reg_addr("sp"), STACK_BASE)
    state.store(env_reg_addr("lr"), HALT_ADDRESS)
    state.store(env_reg_addr("pc"), 0)
    for flag in ("N", "Z", "C", "V"):
        state.store(env_flag_addr(flag), 0)
    return state


@dataclass
class CodeCacheEntry:
    """One code-cache slot: the block plus its per-backend artifacts.

    The entry pins the :class:`TranslatedBlock` for as long as its decode
    products (``kernel``) and compiled body (``compiled``) are reachable, so
    recycled blocks can never alias another block's artifacts.
    """

    tb: TranslatedBlock
    kernel: BlockKernel
    compiled: Optional[CompiledBlock] = field(default=None)


class DBTEngine:
    """Dynamic binary translator for one guest binary + one configuration.

    ``chaining=True`` enables QEMU-style block chaining: once a control-flow
    edge between two translated blocks has been taken, its exit is patched
    to transfer directly to the successor, skipping the dispatch loop.  The
    paper treats chaining as a complementary optimization outside its scope
    (§V-B1); under the interp backend it is modelled (edges are tracked and
    counted, metrics reflect the dispatches saved), under the jit backend it
    is real (chained transfers call the successor's compiled body directly).

    ``backend`` selects the execution engine: ``"interp"`` (the oracle),
    ``"jit"`` (closure-compiled blocks, see :mod:`repro.dbt.compiler`), or
    ``"trace"`` (the jit block tier plus hot-cycle superblocks with
    side-exit guards, see :mod:`repro.dbt.trace`).  All produce
    byte-identical architectural state and metrics.
    """

    def __init__(
        self,
        unit: CompiledUnit,
        config: TranslationConfig,
        chaining: bool = False,
        backend: str = "interp",
        code_cache: Optional[Dict[int, CodeCacheEntry]] = None,
        trace_config: Optional[TraceConfig] = None,
        trace_source_cache=None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.unit = unit
        self.config = config
        self.chaining = chaining
        self.backend = backend
        self.blockmap = BlockMap(unit)
        self.translator = BlockTranslator(unit, self.blockmap, config)
        #: ``code_cache`` may be injected: the serving layer pre-seeds an
        #: engine with entries compiled once (single-flight) and shared
        #: across requests for the same (program, stage), so a fresh engine
        #: pays zero translation for a warm program.
        self.code_cache: Dict[int, CodeCacheEntry] = (
            code_cache if code_cache is not None else {}
        )
        self._chained_edges: set = set()
        #: trace-tier state (``backend="trace"``): edge profile, live
        #: superblocks by head index, and heads proven not traceable.
        self.trace_config = trace_config or TraceConfig()
        #: optional diskcode adapter with ``get(starts)``/``put(starts, src)``
        #: so trace source generation is shared across processes.
        self.trace_source_cache = trace_source_cache
        self._edge_counts: Dict[Tuple[int, int], int] = {}
        self._traces: Dict[int, CompiledTrace] = {}
        self._trace_blacklist: set = set()
        #: edge profiling is on until ``profile_window`` transitions pass
        #: without a new trace forming; the countdown persists across runs
        #: so warm runs on a settled engine pay no profiling tax at all.
        self._profiling = True
        self._profile_countdown = self.trace_config.profile_window

    def _entry(self, index: int, metrics: RunMetrics) -> CodeCacheEntry:
        entry = self.code_cache.get(index)
        if entry is None:
            tb = self.translator.translate(self.blockmap.block_at(index))
            entry = CodeCacheEntry(tb=tb, kernel=BlockKernel(tb))
            self.code_cache[index] = entry
            metrics.blocks_translated += 1
        return entry

    def _compiled(self, entry: CodeCacheEntry) -> CompiledBlock:
        cb = entry.compiled
        if cb is None:
            cb = compile_block(entry.tb, entry.kernel.defs)
            entry.compiled = cb
        return cb

    def run(
        self,
        entry: str = "fn_main",
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        state: Optional[ConcreteState] = None,
        on_block=None,
    ) -> DBTRunResult:
        """Run to completion.

        ``on_block(tb, state)`` — if given — is invoked after every block
        execution with the translated block and the live machine state: an
        execution-trace hook for debugging and tooling.
        """
        state = state or _initial_state()
        metrics = RunMetrics(name=self.config.name)
        entry_label = self.unit.func_labels.get(entry, entry)
        pc_index = self.unit.labels[entry_label]
        if self.backend == "trace":
            self._run_trace(pc_index, max_blocks, state, metrics, on_block)
        elif self.backend == "jit":
            self._run_jit(pc_index, max_blocks, state, metrics, on_block)
        else:
            self._run_interp(pc_index, max_blocks, state, metrics, on_block)
        return DBTRunResult(metrics=metrics, state=state)

    def _run_interp(
        self,
        pc_index: int,
        max_blocks: int,
        state: ConcreteState,
        metrics: RunMetrics,
        on_block,
    ) -> None:
        executor = HostExecutor(state)
        pc_word = env_pc_word()
        memory = state.memory
        while True:
            if metrics.block_executions >= max_blocks:
                raise ExecutionError(f"exceeded {max_blocks} block executions")
            entry = self._entry(pc_index, metrics)
            tb = entry.tb
            executor.run_block(tb, metrics.host_counts, entry.kernel)
            metrics.account_block(tb.guest_count, tb.covered_count, tb.rule_agg)
            if on_block is not None:
                on_block(tb, state)
            next_addr = memory.get(pc_word, 0)
            if next_addr == HALT_ADDRESS:
                return
            if next_addr % 4:
                raise ExecutionError(f"misaligned guest PC {next_addr:#x}")
            next_index = next_addr // 4
            if self.chaining:
                edge = (pc_index, next_index)
                if edge in self._chained_edges:
                    metrics.chained_executions += 1
                else:
                    self._chained_edges.add(edge)
            pc_index = next_index

    def _run_jit(
        self,
        pc_index: int,
        max_blocks: int,
        state: ConcreteState,
        metrics: RunMetrics,
        on_block,
    ) -> None:
        chaining = self.chaining
        pc_word = env_pc_word()
        memory = state.memory
        host_counts = metrics.host_counts
        # Per-block execution counters, flushed into the metrics once the
        # run ends: the hot loop pays one dict increment per block instead
        # of re-walking rule aggregates on every execution.
        execs: Dict[CompiledBlock, int] = {}
        n_exec = 0
        n_chained = 0
        #: the compiled block whose just-taken exit edge should be patched to
        #: the successor the dispatch loop is about to look up.
        pending: Optional[CompiledBlock] = None
        try:
            while True:
                # Dispatch: code-cache lookup (+ lazy translate/compile).
                if n_exec >= max_blocks:
                    raise ExecutionError(
                        f"exceeded {max_blocks} block executions"
                    )
                cb = self._compiled(self._entry(pc_index, metrics))
                if pending is not None:
                    pending.chain[pc_index] = cb  # patch the hot exit edge
                    pending = None
                # Chained inner loop: direct block-to-block transfers.
                while True:
                    cb.execute(state, host_counts)
                    n_exec += 1
                    execs[cb] = execs.get(cb, 0) + 1
                    if on_block is not None:
                        on_block(cb.tb, state)
                    next_addr = memory.get(pc_word, 0)
                    if next_addr == HALT_ADDRESS:
                        return
                    if next_addr % 4:
                        raise ExecutionError(
                            f"misaligned guest PC {next_addr:#x}"
                        )
                    next_index = next_addr // 4
                    nxt = cb.chain.get(next_index)
                    if nxt is None:
                        if chaining:
                            pending = cb
                        pc_index = next_index
                        break
                    n_chained += 1
                    cb = nxt
                    if n_exec >= max_blocks:
                        raise ExecutionError(
                            f"exceeded {max_blocks} block executions"
                        )
        finally:
            metrics.block_executions += n_exec
            metrics.chained_executions += n_chained
            hits = metrics.rule_hits
            for block, count in execs.items():
                metrics.guest_dynamic += block.guest_count * count
                metrics.covered_dynamic += block.covered_count * count
                for rule, length in block.rule_agg:
                    hits[rule] = hits.get(rule, 0) + length * count

    def _run_trace(
        self,
        pc_index: int,
        max_blocks: int,
        state: ConcreteState,
        metrics: RunMetrics,
        on_block,
    ) -> None:
        """Tiered execution: profiled jit block tier + superblock traces.

        Metrics parity with the interp oracle is reconstructed exactly:
        a trace execution returning ``(iterations, exit_pos)`` accounts
        ``iterations`` full passes plus the partial prefix through
        ``exit_pos``, and *every* internal trace transfer counts as
        chained (each internal edge was necessarily traversed — and
        therefore registered — during profiling, so the interp backend
        would count it too).

        The loop runs in two phases.  While **profiling**, every block
        transition feeds the edge counters and the formation trigger, and
        chained-edge accounting uses the interp backend's seen-set model
        directly.  Once ``profile_window`` transitions pass without a new
        trace forming, the seen-set is synced into the compiled blocks'
        chain maps (patching a map entry on first traversal is exactly the
        seen-set model, so the counts stay byte-identical) and the loop
        drops into the **steady** phase: the jit tier's chained inner loop
        plus a trace-head check per transfer, with no profiling tax.
        """
        if on_block is not None:
            # Per-block hooks observe individual block executions; traces
            # fuse them away.  Correctness first: fall back to the jit tier.
            self._run_jit(pc_index, max_blocks, state, metrics, on_block)
            return
        tcfg = self.trace_config
        chaining = self.chaining
        pc_word = env_pc_word()
        memory = state.memory
        host_counts = metrics.host_counts
        edges = self._chained_edges
        edge_counts = self._edge_counts
        traces = self._traces
        blacklist = self._trace_blacklist
        cache_get = self.code_cache.get
        hot_threshold = tcfg.hot_threshold
        profiling = self._profiling
        countdown = self._profile_countdown
        execs: Dict[CompiledBlock, int] = {}
        n_exec = 0
        n_chained = 0
        # Per-trace run-end histograms: the generated trace code carries no
        # accounting at all, so every metric is reconstructed here from the
        # (iterations, exit_pos) pairs and the traces' translate-time
        # aggregate tables — a handful of dict increments per entry on the
        # hot path, one expansion pass per run in ``finally``.
        iter_hist: Dict[CompiledTrace, int] = {}
        entry_hist: Dict[CompiledTrace, int] = {}
        exit_hist: Dict[Tuple[CompiledTrace, int], int] = {}
        try:
            # -- profiling phase ------------------------------------------
            while profiling:
                if n_exec >= max_blocks:
                    raise ExecutionError(
                        f"exceeded {max_blocks} block executions"
                    )
                if countdown <= 0:
                    # Settled: no new trace formed for a full window.  The
                    # switch happens at the loop top, after the budget check
                    # passed, so the current block is guaranteed to run (or
                    # to raise at translation exactly as interp would) —
                    # which keeps the one possibly-untranslated seen-edge
                    # target the sync may translate early parity-safe.
                    profiling = False
                    edge_counts.clear()
                    if chaining:
                        self._sync_chain_maps(metrics)
                    break
                trace = traces.get(pc_index)
                if trace is not None and max_blocks - n_exec >= trace.length:
                    # The iteration budget keeps the block count within
                    # max_blocks exactly, so budget-exhaustion runs raise
                    # (or halt) precisely where the interp backend does.
                    iters, exit_pos = trace.fn(
                        state, (max_blocks - n_exec) // trace.length
                    )
                    executed = iters * trace.length + (
                        exit_pos + 1 if exit_pos >= 0 else 0
                    )
                    n_exec += executed
                    if chaining:
                        n_chained += executed - 1
                    iter_hist[trace] = iter_hist.get(trace, 0) + iters
                    entry_hist[trace] = entry_hist.get(trace, 0) + 1
                    if exit_pos >= 0:
                        key = (trace, exit_pos)
                        exit_hist[key] = exit_hist.get(key, 0) + 1
                        src = trace.block_indices[exit_pos]
                    else:
                        src = trace.block_indices[-1]
                    trace.window_entries += 1
                    trace.window_blocks += executed
                    if trace.window_entries >= tcfg.probation_entries:
                        if (
                            trace.window_blocks
                            < tcfg.min_mean_blocks * trace.window_entries
                        ):
                            # Pathological: entered over and over but guard
                            # exits almost immediately, covering next to
                            # nothing.  Retire for good.
                            del traces[pc_index]
                            blacklist.add(pc_index)
                            metrics.traces_retired += 1
                            TRACE_STATS.incr("retired")
                        else:
                            trace.window_entries = 0
                            trace.window_blocks = 0
                else:
                    entry = cache_get(pc_index)
                    if entry is None or entry.compiled is None:
                        entry = self._entry(pc_index, metrics)
                        cb = self._compiled(entry)
                    else:
                        cb = entry.compiled
                    cb.execute(state, host_counts)
                    n_exec += 1
                    execs[cb] = execs.get(cb, 0) + 1
                    src = pc_index
                next_addr = memory.get(pc_word, 0)
                if next_addr == HALT_ADDRESS:
                    return
                if next_addr % 4:
                    raise ExecutionError(f"misaligned guest PC {next_addr:#x}")
                next_index = next_addr // 4
                edge = (src, next_index)
                if chaining:
                    if edge in edges:
                        n_chained += 1
                    else:
                        edges.add(edge)
                count = edge_counts.get(edge, 0) + 1
                edge_counts[edge] = count
                if (
                    count == hot_threshold
                    and next_index <= src
                    and next_index not in traces
                    and next_index not in blacklist
                    and len(traces) < tcfg.max_traces
                    and self._form_trace(next_index, metrics)
                ):
                    countdown = tcfg.profile_window
                countdown -= 1
                pc_index = next_index
            # -- steady phase ---------------------------------------------
            # Chain maps now carry the seen-set; trace heads are checked on
            # every dispatch and every chained transfer, everything else is
            # the jit tier's inner loop verbatim.
            pending: Optional[CompiledBlock] = None
            while True:
                if n_exec >= max_blocks:
                    raise ExecutionError(
                        f"exceeded {max_blocks} block executions"
                    )
                trace = traces.get(pc_index)
                if trace is not None and max_blocks - n_exec >= trace.length:
                    if pending is not None:
                        pending.chain[pc_index] = cache_get(pc_index).compiled
                        pending = None
                    iters, exit_pos = trace.fn(
                        state, (max_blocks - n_exec) // trace.length
                    )
                    executed = iters * trace.length + (
                        exit_pos + 1 if exit_pos >= 0 else 0
                    )
                    n_exec += executed
                    if chaining:
                        n_chained += executed - 1
                    iter_hist[trace] = iter_hist.get(trace, 0) + iters
                    entry_hist[trace] = entry_hist.get(trace, 0) + 1
                    if exit_pos >= 0:
                        key = (trace, exit_pos)
                        exit_hist[key] = exit_hist.get(key, 0) + 1
                        src = trace.block_indices[exit_pos]
                    else:
                        src = trace.block_indices[-1]
                    trace.window_entries += 1
                    trace.window_blocks += executed
                    if trace.window_entries >= tcfg.probation_entries:
                        if (
                            trace.window_blocks
                            < tcfg.min_mean_blocks * trace.window_entries
                        ):
                            del traces[pc_index]
                            blacklist.add(pc_index)
                            metrics.traces_retired += 1
                            TRACE_STATS.incr("retired")
                        else:
                            trace.window_entries = 0
                            trace.window_blocks = 0
                    next_addr = memory.get(pc_word, 0)
                    if next_addr == HALT_ADDRESS:
                        return
                    if next_addr % 4:
                        raise ExecutionError(
                            f"misaligned guest PC {next_addr:#x}"
                        )
                    next_index = next_addr // 4
                    if chaining:
                        # Trace-exit edges go through the exit block's chain
                        # map like any other edge; a miss defers the patch to
                        # the next dispatch (the successor may not even be
                        # translated yet — e.g. a loop exit taken for the
                        # first time ever through a guard).
                        scb = cache_get(src).compiled
                        if next_index in scb.chain:
                            n_chained += 1
                        else:
                            pending = scb
                    pc_index = next_index
                    continue
                entry = cache_get(pc_index)
                if entry is None or entry.compiled is None:
                    entry = self._entry(pc_index, metrics)
                    cb = self._compiled(entry)
                else:
                    cb = entry.compiled
                if pending is not None:
                    pending.chain[pc_index] = cb
                    pending = None
                while True:
                    cb.execute(state, host_counts)
                    n_exec += 1
                    execs[cb] = execs.get(cb, 0) + 1
                    next_addr = memory.get(pc_word, 0)
                    if next_addr == HALT_ADDRESS:
                        return
                    if next_addr % 4:
                        raise ExecutionError(
                            f"misaligned guest PC {next_addr:#x}"
                        )
                    next_index = next_addr // 4
                    nxt = cb.chain.get(next_index)
                    if nxt is None:
                        if chaining:
                            pending = cb
                        pc_index = next_index
                        break
                    n_chained += 1
                    if next_index in traces:
                        pc_index = next_index
                        break
                    cb = nxt
                    if n_exec >= max_blocks:
                        raise ExecutionError(
                            f"exceeded {max_blocks} block executions"
                        )
        finally:
            self._profiling = profiling
            self._profile_countdown = countdown
            metrics.block_executions += n_exec
            metrics.chained_executions += n_chained
            hits = metrics.rule_hits
            total_iters = 0
            for trace, iters in iter_hist.items():
                if not iters:
                    continue
                total_iters += iters
                metrics.guest_dynamic += trace.guest_total * iters
                metrics.covered_dynamic += trace.covered_total * iters
                for rule, length in trace.rule_total:
                    hits[rule] = hits.get(rule, 0) + length * iters
                for cat, weight in trace.count_total.items():
                    host_counts[cat] = (
                        host_counts.get(cat, 0) + weight * iters
                    )
            total_guard = 0
            for (trace, pos), k in exit_hist.items():
                total_guard += k
                trace.guard_exits += k
                metrics.guest_dynamic += trace.guest_prefix[pos] * k
                metrics.covered_dynamic += trace.covered_prefix[pos] * k
                for rule, length in trace.rule_prefix[pos]:
                    hits[rule] = hits.get(rule, 0) + length * k
                for cat, weight in trace.count_prefix[pos].items():
                    host_counts[cat] = host_counts.get(cat, 0) + weight * k
            total_entries = sum(entry_hist.values())
            if total_entries:
                metrics.trace_entries += total_entries
                metrics.trace_iterations += total_iters
                metrics.trace_guard_exits += total_guard
                TRACE_STATS.incr("entries", total_entries)
                if total_iters:
                    TRACE_STATS.incr("iterations", total_iters)
                if total_guard:
                    TRACE_STATS.incr("guard_exits", total_guard)
            for block, count in execs.items():
                metrics.guest_dynamic += block.guest_count * count
                metrics.covered_dynamic += block.covered_count * count
                for rule, length in block.rule_agg:
                    hits[rule] = hits.get(rule, 0) + length * count

    def _sync_chain_maps(self, metrics: RunMetrics) -> None:
        """Mirror the seen-edge set into the compiled blocks' chain maps.

        Run once when profiling settles: after this, patch-on-first-
        traversal keeps the maps equal to the seen-set the interp backend
        maintains, so chained-execution counts stay byte-identical.  Every
        edge source has necessarily executed (and compiled); the one target
        that may not have yet is the current transition's — translating it
        here is safe because the caller only switches phases once the block
        is guaranteed to be dispatched next.
        """
        for a, b in self._chained_edges:
            entry_a = self.code_cache.get(a)
            if entry_a is None:
                continue
            entry_b = self.code_cache.get(b)
            if entry_b is None:
                entry_b = self._entry(b, metrics)
            self._compiled(entry_a).chain[b] = self._compiled(entry_b)

    def _form_trace(self, head: int, metrics: RunMetrics) -> bool:
        """Try to promote ``head``; returns True iff a trace went live."""
        trace, permanent = form_trace(
            head,
            self._edge_counts,
            self.code_cache.get,
            self.trace_config,
            self.trace_source_cache,
        )
        if trace is None:
            if permanent:
                self._trace_blacklist.add(head)
            return False
        self._traces[head] = trace
        metrics.traces_formed += 1
        return True


def check_against_reference(
    unit: CompiledUnit, result: DBTRunResult, entry: str = "fn_main"
) -> Tuple[bool, str]:
    """Compare a DBT run's final state with the reference interpreter.

    Compares general-purpose registers and guest-visible memory.  Condition
    flags are excluded: the translated code may legitimately leave dead
    guest flags unmaterialized.
    """
    reference = GuestInterpreter(unit).run(entry=entry)
    for i in range(13):
        name = f"r{i}"
        if reference.state.regs[name] != result.guest_reg(name):
            return False, (
                f"register {name}: reference {reference.state.regs[name]:#x} "
                f"!= DBT {result.guest_reg(name):#x}"
            )
    ref_memory = {
        addr: value for addr, value in reference.state.memory.items() if value
    }
    dbt_memory = result.guest_memory()
    if ref_memory != dbt_memory:
        delta = set(ref_memory.items()) ^ set(dbt_memory.items())
        return False, f"memory mismatch ({len(delta)} differing entries)"
    return True, "ok"
