"""Load handwritten guest assembly as an executable unit.

The compiler pipeline is the normal way to produce guest binaries, but the
DBT itself only needs a :class:`~repro.lang.program.CompiledUnit`.  This
loader assembles raw ARM-like text into one, so users (and tests) can drive
the translator with programs the compiler would never emit — cross-block
flag usage, hand-scheduled carry chains, PC arithmetic, and so on.

Example::

    unit = unit_from_assembly('''
    fn_main:
        mov r0, #0
        mov r1, #10
    loop:
        add r0, r0, r1
        subs r1, r1, #1
        bne loop
        bx lr
    ''')
    result = DBTEngine(unit, config).run()
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.arm import assemble
from repro.lang.program import CompiledUnit


def unit_from_assembly(
    source: str,
    globals_layout: Optional[Dict[str, int]] = None,
) -> CompiledUnit:
    """Assemble ARM-like text into a guest unit.

    Every label of the form ``fn_<name>:`` is registered as a function
    entry; execution starts at ``fn_main`` by default.  A ``fn_main`` label
    is prepended if the source defines no functions at all.
    """
    instructions = assemble(source)
    func_labels: Dict[str, str] = {}
    for insn in instructions:
        if insn.mnemonic == ".label":
            name = insn.operands[0].name
            if name.startswith("fn_"):
                func_labels[name[3:]] = name
    if not func_labels:
        from repro.isa.instruction import Instruction
        from repro.isa.operands import Label

        instructions = (Instruction(".label", (Label("fn_main"),)),) + instructions
        func_labels["main"] = "fn_main"
    return CompiledUnit(
        isa_name="arm",
        instructions=instructions,
        tags=(None,) * len(instructions),
        func_labels=func_labels,
        globals_layout=dict(globals_layout or {}),
    )
