"""Host-code executor: runs translated blocks against a concrete state.

The executor is the "hardware" of the host machine: it interprets the
translated host instructions (including the virtual ``g_*`` block registers
and the environment memory) and accounts executed instructions per category.
Control returns to the engine when a block exit jumps to the dispatch label.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dbt.runtime import DISPATCH_LABEL
from repro.dbt.translator import TranslatedBlock
from repro.errors import ExecutionError
from repro.isa.operands import Label
from repro.isa.x86.opcodes import X86
from repro.semantics.state import ConcreteState

#: Instruction-count weights: helpers stand for out-of-line code sequences.
WEIGHTS: Dict[str, int] = {"helper_umlal": 8, "helper_clz": 6}

_MAX_BLOCK_STEPS = 100_000


class HostExecutor:
    """Interprets translated blocks; shared state across blocks."""

    def __init__(self, state: ConcreteState) -> None:
        self.state = state
        # id(tb) -> (tb, defs).  The block itself is pinned in the entry:
        # without the pin, a freed TranslatedBlock whose id() is recycled by
        # a new block would return the *old* block's defs (the same
        # unsoundness class as the symir/simplify id()-memo).
        self._defs_cache: Dict[int, Tuple[TranslatedBlock, Tuple]] = {}

    def _defs(self, tb: TranslatedBlock):
        cached = self._defs_cache.get(id(tb))
        if cached is not None and cached[0] is tb:
            return cached[1]
        defs = tuple(X86.defn(insn) for insn in tb.host)
        self._defs_cache[id(tb)] = (tb, defs)
        return defs

    def run_block(self, tb: TranslatedBlock, counts: Dict[str, int]) -> None:
        """Execute one translated block to its dispatch exit.

        ``counts`` maps category -> weighted executed host instructions and
        is updated in place.
        """
        state = self.state
        host = tb.host
        cats = tb.categories
        defs = self._defs(tb)
        labels = tb.labels
        index = 0
        steps = 0
        while True:
            if steps > _MAX_BLOCK_STEPS:
                raise ExecutionError("runaway translated block")
            steps += 1
            insn = host[index]
            defn = defs[index]
            counts[cats[index]] = counts.get(cats[index], 0) + WEIGHTS.get(
                insn.mnemonic, 1
            )
            if defn.is_branch:
                target = insn.operands[0]
                assert isinstance(target, Label)
                if target.name == DISPATCH_LABEL:
                    return
                state.clear_branch()
                defn.semantics(state, insn)
                if state.branch_taken:
                    index = labels[target.name]
                else:
                    index += 1
                continue
            defn.semantics(state, insn)
            index += 1
