"""Bottom-up re-normalization of expression trees.

Expressions built through :mod:`repro.symir.build` are already mostly
canonical; :func:`simplify` re-runs a whole tree through the smart
constructors so that trees assembled from raw node constructors (e.g. loaded
from a rule store) reach the same form.

Because nodes are hash-consed (:mod:`repro.symir.expr`), simplification is
memoized process-wide, keyed on the node itself: structurally equal terms
are the *same* object, so a hit can never deliver the simplification of a
different expression.  Callers may still pass an explicit per-call cache
(the pre-interning id-keyed protocol) — it is honoured for compatibility.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cache import MISS, BoundedMemo
from repro.symir import build
from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt

#: Explicit-cache protocol: ``id(node) -> (node, simplified)``.  Keying by id
#: alone would be unsound: once a source node is garbage-collected its id can
#: be handed to a brand-new node, which would then receive the *stale*
#: simplification.  Storing the source node in the entry keeps it alive for
#: the cache's lifetime (ids of live objects are unique), and the lookup
#: additionally verifies identity before trusting a hit.
SimplifyCache = Dict[int, Tuple[Expr, Expr]]

#: Process-wide memo keyed directly on interned nodes.
_SIMPLIFY_MEMO = BoundedMemo(maxsize=65536, name="symir.simplify")


def simplify(expr: Expr, _cache: SimplifyCache | None = None) -> Expr:
    """Return a canonically simplified version of *expr*."""
    if _cache is not None:
        return _simplify_local(expr, _cache)
    return _simplify_global(expr)


def _rebuild(expr: Expr, rec) -> Expr:
    if isinstance(expr, (Const, Sym)):
        return expr
    if isinstance(expr, BinOp):
        return build.binop(expr.op, rec(expr.lhs), rec(expr.rhs))
    if isinstance(expr, UnOp):
        return build.unop(expr.op, rec(expr.operand))
    if isinstance(expr, Ite):
        return build.ite(rec(expr.cond), rec(expr.then), rec(expr.orelse))
    if isinstance(expr, Extract):
        return build.extract(rec(expr.operand), expr.lo, expr.width)
    if isinstance(expr, ZeroExt):
        return build.zero_ext(rec(expr.operand), expr.width)
    raise TypeError(f"unknown expression node: {expr!r}")


def _simplify_global(expr: Expr) -> Expr:
    result = _SIMPLIFY_MEMO.get(expr)
    if result is not MISS:
        return result
    result = _rebuild(expr, _simplify_global)
    _SIMPLIFY_MEMO.put(expr, result)
    return result


def _simplify_local(expr: Expr, cache: SimplifyCache) -> Expr:
    entry = cache.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    result = _rebuild(expr, lambda sub: _simplify_local(sub, cache))
    cache[id(expr)] = (expr, result)
    return result
