"""Top-level compilation driver: source text -> guest/host binary pair."""

from __future__ import annotations

from typing import Union

from repro.lang import ast
from repro.lang.codegen_arm import ArmCodegen
from repro.lang.codegen_x86 import X86Codegen
from repro.lang.optimizer import optimize
from repro.lang.parser import parse
from repro.lang.program import CompiledPair


def compile_pair(
    name: str, source: Union[str, ast.Program], pic: bool = False
) -> CompiledPair:
    """Compile mini-language source to an (ARM guest, x86 host) pair.

    Both backends compile the same optimized AST with identical statement
    ids, giving the statement-aligned binaries that rule learning consumes.
    """
    program = parse(source) if isinstance(source, str) else source
    program = optimize(program)
    guest, guest_stmts = ArmCodegen(program, pic=pic).compile()
    host, host_stmts = X86Codegen(program, pic=pic).compile()
    assert set(guest_stmts) == set(host_stmts), "backends disagree on statement ids"
    return CompiledPair(name=name, guest=guest, host=host, statements=guest_stmts)
