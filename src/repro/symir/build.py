"""Simplifying smart constructors for symbolic expressions.

All symbolic execution goes through these constructors, so expressions stay
close to a canonical form as they are built:

* constants fold eagerly;
* algebraic identities collapse (``x + 0``, ``x ^ x``, ``x & x``, ...);
* commutative operators order their operands canonically so syntactic
  comparison catches commuted-but-equal expressions.

This is intentionally a rewriting *constructor* layer rather than a separate
normalization pass; :func:`repro.symir.simplify.simplify` re-runs trees
through these constructors bottom-up.
"""

from __future__ import annotations

from repro.symir.expr import (
    COMMUTATIVE_OPS,
    COMPARISON_OPS,
    BinOp,
    Const,
    Expr,
    Extract,
    Ite,
    Sym,
    UnOp,
    ZeroExt,
)
from repro.symir.evaluate import evaluate

TRUE = Const(1, 1)
FALSE = Const(0, 1)


def const(value: int, width: int = 32) -> Const:
    return Const(value, width)


def sym(name: str, width: int = 32) -> Sym:
    return Sym(name, width)


def _canonical_key(expr: Expr) -> tuple:
    """Deterministic ordering key for commutative operand sorting.

    Constants sort last so identities like ``(add (add x 1) 2)`` keep the
    constant in a foldable position, symbols sort by name, and composite
    nodes by their repr.
    """
    if isinstance(expr, Const):
        return (2, expr.value, "")
    if isinstance(expr, Sym):
        return (0, 0, expr.name)
    return (1, 0, repr(expr))


def _fold(op: str, lhs: Const, rhs: Const) -> Const:
    width = 1 if op in COMPARISON_OPS else lhs.width
    value = evaluate(BinOp(op, lhs, rhs), {})
    return Const(value, width)


def binop(op: str, lhs: Expr, rhs: Expr) -> Expr:
    """Build ``(op lhs rhs)`` with folding and identity simplification."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return _fold(op, lhs, rhs)

    if op in COMMUTATIVE_OPS and _canonical_key(rhs) < _canonical_key(lhs):
        lhs, rhs = rhs, lhs

    zero = Const(0, lhs.width)
    ones = Const((1 << lhs.width) - 1, lhs.width)

    if op == "add":
        if rhs == zero:
            return lhs
        # (add (add x c1) c2) -> (add x (c1+c2))
        if isinstance(rhs, Const) and isinstance(lhs, BinOp) and lhs.op == "add" and isinstance(lhs.rhs, Const):
            return binop("add", lhs.lhs, _fold("add", lhs.rhs, rhs))
    elif op == "sub":
        if rhs == zero:
            return lhs
        if lhs == rhs:
            return zero
        if isinstance(rhs, Const):
            return binop("add", lhs, Const(-rhs.value, rhs.width))
    elif op == "mul":
        if rhs == zero:
            return zero
        if rhs == Const(1, lhs.width):
            return lhs
    elif op == "and":
        if rhs == zero:
            return zero
        if rhs == ones:
            return lhs
        if lhs == rhs:
            return lhs
    elif op == "or":
        if rhs == zero:
            return lhs
        if rhs == ones:
            return ones
        if lhs == rhs:
            return lhs
    elif op == "xor":
        if rhs == zero:
            return lhs
        if lhs == rhs:
            return Const(0, lhs.width)
    elif op in ("shl", "lshr", "ashr"):
        if rhs == zero:
            return lhs
        if isinstance(rhs, Const) and rhs.value >= lhs.width and op != "ashr":
            return Const(0, lhs.width)
    elif op == "eq":
        if lhs == rhs:
            return TRUE
    elif op == "ne":
        if lhs == rhs:
            return FALSE
    elif op in ("ult", "slt"):
        if lhs == rhs:
            return FALSE
    elif op in ("ule", "sle"):
        if lhs == rhs:
            return TRUE

    return BinOp(op, lhs, rhs)


def unop(op: str, operand: Expr) -> Expr:
    if isinstance(operand, Const):
        return Const(evaluate(UnOp(op, operand), {}), operand.width)
    if op == "not" and isinstance(operand, UnOp) and operand.op == "not":
        return operand.operand
    if op == "neg" and isinstance(operand, UnOp) and operand.op == "neg":
        return operand.operand
    return UnOp(op, operand)


def ite(cond: Expr, then: Expr, orelse: Expr) -> Expr:
    if isinstance(cond, Const):
        return then if cond.value else orelse
    if then == orelse:
        return then
    return Ite(cond, then, orelse)


def extract(operand: Expr, lo: int, width: int) -> Expr:
    if isinstance(operand, Const):
        return Const((operand.value >> lo) & ((1 << width) - 1), width)
    if lo == 0 and width == operand.width:
        return operand
    if isinstance(operand, ZeroExt):
        inner = operand.operand
        if lo + width <= inner.width:
            return extract(inner, lo, width)
        if lo >= inner.width:
            return Const(0, width)
    return Extract(operand, lo, width)


def zero_ext(operand: Expr, width: int) -> Expr:
    if width == operand.width:
        return operand
    if isinstance(operand, Const):
        return Const(operand.value, width)
    return ZeroExt(operand, width)


# Convenience wrappers -------------------------------------------------------


def add(a: Expr, b: Expr) -> Expr:
    return binop("add", a, b)


def sub(a: Expr, b: Expr) -> Expr:
    return binop("sub", a, b)


def mul(a: Expr, b: Expr) -> Expr:
    return binop("mul", a, b)


def and_(a: Expr, b: Expr) -> Expr:
    return binop("and", a, b)


def or_(a: Expr, b: Expr) -> Expr:
    return binop("or", a, b)


def xor(a: Expr, b: Expr) -> Expr:
    return binop("xor", a, b)


def not_(a: Expr) -> Expr:
    return unop("not", a)


def neg(a: Expr) -> Expr:
    return unop("neg", a)


def eq(a: Expr, b: Expr) -> Expr:
    return binop("eq", a, b)


def is_zero(a: Expr) -> Expr:
    return binop("eq", a, Const(0, a.width))
