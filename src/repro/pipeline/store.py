"""Versioned ruleset artifact store: bodies, manifests, latest pointer, GC.

Layout under one root directory::

    bodies/<sha256>.json      content-addressed ruleset bodies (checksummed,
                              write-once — same discipline as diskcode)
    versions/<version>.json   schema-versioned manifests: body sha256,
                              parent version, training label, stage
                              provenance digests, monotonic sequence number
    LATEST                    the current version id (atomic replace)
    publish.lock              fslock mutex serializing publishers

Versions are immutable once written; only ``LATEST`` moves.  A serving
process therefore never sees a half-written version: it reads ``LATEST``,
then the manifest, then the checksummed body — each of which was published
atomically before the pointer moved.  ``publish`` is idempotent: re-
publishing the body ``LATEST`` already points at returns the existing
version instead of minting a new one, which is what lets the pipeline's
publish stage rerun freely.  ``gc`` keeps the latest parent chain and
deletes unreferenced versions and orphaned bodies.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import fslock
from repro.cache import atomic_write_text
from repro.errors import ReproError
from repro.pipeline.manifest import body_digest, validate_body

#: Manifest format tag; bump on any incompatible manifest schema change.
MANIFEST_FORMAT = "repro-ruleset-manifest-v1"


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one ``publish`` call."""

    version: str
    body_sha256: str
    parent: Optional[str]
    seq: int
    #: False when the body was already the latest version (idempotent hit).
    created: bool


class RulesetStore:
    """One directory of versioned ruleset artifacts with a latest pointer."""

    def __init__(
        self,
        root,
        stale_lock_seconds: float = 60.0,
        wait_timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.root = Path(root)
        self.stale_lock_seconds = stale_lock_seconds
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval

    # -- paths ---------------------------------------------------------------

    @property
    def bodies_dir(self) -> Path:
        return self.root / "bodies"

    @property
    def versions_dir(self) -> Path:
        return self.root / "versions"

    @property
    def latest_path(self) -> Path:
        return self.root / "LATEST"

    def body_path(self, sha: str) -> Path:
        return self.bodies_dir / f"{sha}.json"

    def manifest_path(self, version: str) -> Path:
        return self.versions_dir / f"{version}.json"

    # -- reads ---------------------------------------------------------------

    def latest_version(self) -> Optional[str]:
        """The current version id, or None on an empty/unborn store.

        A pointer naming a missing manifest (partial manual surgery) is
        treated as unborn rather than an error — serving falls back, it
        never crashes on a damaged store.
        """
        try:
            version = self.latest_path.read_text().strip()
        except OSError:
            return None
        if not version or not self.manifest_path(version).is_file():
            return None
        return version

    def read_manifest(self, version: str) -> Dict[str, Any]:
        path = self.manifest_path(version)
        try:
            with open(path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(f"ruleset version {version!r}: unreadable manifest ({exc})")
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != MANIFEST_FORMAT
            or manifest.get("version") != version
        ):
            raise ReproError(f"ruleset version {version!r}: malformed manifest")
        return manifest

    def load_body(self, sha: str) -> Dict[str, Any]:
        """A body by content address, digest-verified before it is trusted."""
        path = self.body_path(sha)
        try:
            with open(path) as handle:
                body = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(f"ruleset body {sha[:12]}: unreadable ({exc})")
        validate_body(body)
        if body_digest(body) != sha:
            raise ReproError(f"ruleset body {sha[:12]}: digest mismatch (corrupt)")
        return body

    def load_version(self, version: str) -> Dict[str, Any]:
        """Manifest + verified body for one version (body under ``"body"``)."""
        manifest = self.read_manifest(version)
        body = self.load_body(manifest["body_sha256"])
        return {**manifest, "body": body}

    def versions(self) -> List[Dict[str, Any]]:
        """All readable manifests, oldest first (by sequence number)."""
        if not self.versions_dir.is_dir():
            return []
        manifests = []
        for path in self.versions_dir.glob("*.json"):
            try:
                manifests.append(self.read_manifest(path.stem))
            except ReproError:
                continue
        return sorted(manifests, key=lambda m: (m.get("seq", 0), m["version"]))

    # -- publish -------------------------------------------------------------

    def publish(
        self,
        body: Dict[str, Any],
        *,
        provenance: Optional[Dict[str, str]] = None,
    ) -> PublishResult:
        """Publish *body* as a new version and move ``LATEST`` to it.

        Idempotent: when ``LATEST`` already points at this exact body the
        existing version is returned with ``created=False``.  Publishers
        are serialized by a store-wide fslock mutex, so concurrent
        pipelines can never mint the same sequence number twice.
        """
        validate_body(body)
        sha = body_digest(body)
        lock = self.root / "publish.lock"
        deadline = time.monotonic() + self.wait_timeout
        while not fslock.try_claim(lock):
            age = fslock.lock_age(lock)
            if age is not None and age > self.stale_lock_seconds:
                fslock.release(lock)
                continue
            if time.monotonic() > deadline:
                raise ReproError(f"timed out waiting for publish lock {lock}")
            time.sleep(self.poll_interval)
        try:
            return self._publish_locked(body, sha, provenance or {})
        finally:
            fslock.release(lock)

    def _publish_locked(
        self, body: Dict[str, Any], sha: str, provenance: Dict[str, str]
    ) -> PublishResult:
        latest = self.latest_version()
        seq = 0
        if latest is not None:
            manifest = self.read_manifest(latest)
            if manifest.get("body_sha256") == sha:
                return PublishResult(
                    version=latest,
                    body_sha256=sha,
                    parent=manifest.get("parent"),
                    seq=int(manifest.get("seq", 0)),
                    created=False,
                )
            seq = int(manifest.get("seq", 0)) + 1
        version = f"v{seq:06d}-{sha[:10]}"
        body_path = self.body_path(sha)
        if not body_path.exists():
            self.bodies_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(body_path, json.dumps(body, sort_keys=True))
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": version,
            "seq": seq,
            "parent": latest,
            "body_sha256": sha,
            "training": body.get("training"),
            "benchmarks": body.get("benchmarks", []),
            "provenance": dict(provenance),
            "created": time.time(),
        }
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.manifest_path(version), json.dumps(manifest, indent=2, sort_keys=True)
        )
        # The pointer moves last: a reader can never reach a version whose
        # manifest or body is not already durable.
        atomic_write_text(self.latest_path, version + "\n")
        return PublishResult(
            version=version, body_sha256=sha, parent=latest, seq=seq, created=True
        )

    # -- GC ------------------------------------------------------------------

    def gc(self, keep: int = 3) -> Dict[str, Any]:
        """Drop versions off the latest parent chain beyond *keep* links.

        Walks parents from ``LATEST`` keeping at most *keep* versions, then
        deletes every other manifest and any body no surviving manifest
        references.  Returns ``{"kept", "removed_versions",
        "removed_bodies"}``.
        """
        keep = max(1, keep)
        kept: List[str] = []
        version = self.latest_version()
        while version is not None and len(kept) < keep:
            kept.append(version)
            try:
                version = self.read_manifest(version).get("parent")
            except ReproError:
                break
        removed_versions = []
        for manifest in self.versions():
            if manifest["version"] in kept:
                continue
            try:
                self.manifest_path(manifest["version"]).unlink()
                removed_versions.append(manifest["version"])
            except OSError:
                pass
        referenced = set()
        for version in kept:
            try:
                referenced.add(self.read_manifest(version)["body_sha256"])
            except ReproError:
                continue
        removed_bodies = []
        if self.bodies_dir.is_dir():
            for path in self.bodies_dir.glob("*.json"):
                if path.stem in referenced:
                    continue
                try:
                    path.unlink()
                    removed_bodies.append(path.stem)
                except OSError:
                    pass
        return {
            "kept": kept,
            "removed_versions": removed_versions,
            "removed_bodies": removed_bodies,
        }

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        manifests = self.versions()
        return {
            "directory": str(self.root),
            "latest": self.latest_version(),
            "versions": len(manifests),
            "bodies": (
                sum(1 for _ in self.bodies_dir.glob("*.json"))
                if self.bodies_dir.is_dir()
                else 0
            ),
        }
