"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs fail with ``invalid command 'bdist_wheel'``.  With this shim and no
``[build-system]`` table in pyproject.toml, ``pip install -e .`` takes the
legacy ``setup.py develop`` path, which works without wheel.
"""

from setuptools import setup

setup()
