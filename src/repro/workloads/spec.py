"""The synthetic SPEC CINT 2006 suite: sources and compiled pairs.

Generation and compilation are deterministic, and compiled pairs are cached
per process — the experiment harnesses re-use them heavily.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.lang import CompiledPair, compile_pair
from repro.workloads.generator import generate_source
from repro.workloads.profiles import BENCHMARK_NAMES, PROFILE_BY_NAME, Profile


@lru_cache(maxsize=None)
def benchmark_source(name: str) -> str:
    """Mini-language source text of one benchmark."""
    return generate_source(PROFILE_BY_NAME[name])


@lru_cache(maxsize=None)
def compiled_benchmark(name: str) -> CompiledPair:
    """Guest/host compiled pair of one benchmark (cached)."""
    profile: Profile = PROFILE_BY_NAME[name]
    return compile_pair(name, benchmark_source(name), pic=profile.pic)


def all_benchmarks() -> Tuple[CompiledPair, ...]:
    return tuple(compiled_benchmark(name) for name in BENCHMARK_NAMES)


def suite_summary() -> Dict[str, Dict[str, int]]:
    """Static size summary per benchmark (diagnostics / docs)."""
    summary: Dict[str, Dict[str, int]] = {}
    for name in BENCHMARK_NAMES:
        pair = compiled_benchmark(name)
        summary[name] = {
            "statements": pair.statement_count,
            "guest_instructions": len(pair.guest.real_instructions),
            "host_instructions": len(pair.host.real_instructions),
        }
    return summary
