"""DBT correctness on handwritten guest assembly.

These programs exercise translator paths the compiler never generates:
flags that live across basic blocks (the safety-net spills), carry chains
through adc/sbc/rsc, PC-as-GPR arithmetic, compare-negative/teq idioms, and
countdown loops on the s-variant instructions.  Every configuration must
match the reference interpreter exactly.
"""

import pytest

from repro.dbt import DBTEngine, check_against_reference
from repro.dbt.guest_interp import GuestInterpreter
from repro.dbt.loader import unit_from_assembly
from repro.param import STAGES, build_setup
from repro.learning import RuleSet

PROGRAMS = {
    "countdown_subs": """
fn_main:
    mov r0, #0
    mov r1, #25
loop:
    add r0, r0, r1
    subs r1, r1, #1
    bne loop
    bx lr
""",
    "cross_block_flags": """
fn_main:
    mov r0, #7
    mov r1, #7
    cmp r0, r1
    b check
check:
    bne differ
    mov r2, #111
    b done
differ:
    mov r2, #222
done:
    mov r0, r2
    bx lr
""",
    "carry_chain": """
fn_main:
    mov r0, #0xffffffff
    mov r1, #1
    mov r2, #10
    mov r3, #20
    adds r4, r0, r1
    adc r5, r2, r3
    subs r6, r1, r0
    sbc r7, r3, r2
    rsc r8, r2, r3
    add r0, r4, r5
    add r0, r0, r6
    add r0, r0, r7
    add r0, r0, r8
    bx lr
""",
    "pc_arithmetic": """
fn_main:
    add r0, pc, #8
    add r1, pc, #0
    sub r0, r0, r1
    bx lr
""",
    "flag_idioms": """
fn_main:
    mov r0, #12
    mov r1, #12
    teq r0, r1
    bne differ
    cmn r0, r1
    bmi differ
    tst r0, #4
    beq differ
    movs r2, r0
    beq differ
    mov r0, #1
    bx lr
differ:
    mov r0, #0
    bx lr
""",
    "logical_s_preserves_carry": """
fn_main:
    mov r0, #0xffffffff
    adds r1, r0, r0
    mov r2, #3
    ands r3, r2, #1
    adc r4, r2, r2
    mov r0, r4
    bx lr
""",
    "shift_variants": """
fn_main:
    mov r0, #0x81
    lsl r1, r0, #4
    lsr r2, r1, #2
    asr r3, r0, #1
    mov r4, #33
    lsl r5, r0, r4
    add r0, r1, r2
    add r0, r0, r3
    add r0, r0, r5
    bx lr
""",
    "special_instructions": """
fn_main:
    mov r0, #0
    mov r1, #0
    mov r2, #0x10001
    mov r3, #0x10001
    umlal r0, r1, r2, r3
    clz r4, r2
    mla r5, r2, r3, r4
    add r0, r0, r1
    add r0, r0, r4
    add r0, r0, r5
    bx lr
""",
    "memory_and_stack": """
fn_main:
    mov r4, #4096
    mov r5, #77
    str r5, [r4]
    str r5, [r4, #8]
    ldr r6, [r4]
    ldrb r7, [r4, #8]
    push {r4, r5}
    mov r4, #0
    mov r5, #0
    pop {r4, r5}
    add r0, r6, r7
    add r0, r0, r4
    add r0, r0, r5
    bx lr
""",
    "umlal_hi_crosses_blocks": """
fn_main:
    mov r0, #0
    mov r1, #0
    mov r2, #0x7fff1234
    mov r3, #0x7fff4321
    umlal r0, r1, r2, r3
    b join
join:
    add r0, r0, r1
    bx lr
""",
    "call_and_return": """
fn_helper:
    add r0, r0, #100
    bx lr
fn_main:
    push {lr}
    mov r0, #5
    bl fn_helper
    bl fn_helper
    pop {lr}
    bx lr
""",
}


@pytest.fixture(scope="module")
def empty_setup():
    return build_setup(RuleSet())


@pytest.fixture(scope="module")
def demo_rule_setup(demo_rules):
    return build_setup(demo_rules)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
class TestAssemblyPrograms:
    def test_reference_interpreter_runs(self, name):
        unit = unit_from_assembly(PROGRAMS[name])
        result = GuestInterpreter(unit).run()
        assert result.steps > 0

    @pytest.mark.parametrize("stage", ("qemu", "condition", "manual"))
    def test_dbt_matches_reference(self, name, stage, demo_rule_setup):
        unit = unit_from_assembly(PROGRAMS[name])
        engine = DBTEngine(unit, demo_rule_setup.configs[stage])
        result = engine.run()
        ok, message = check_against_reference(unit, result)
        assert ok, f"{name}/{stage}: {message}"

    def test_dbt_without_any_rules(self, name, empty_setup):
        unit = unit_from_assembly(PROGRAMS[name])
        engine = DBTEngine(unit, empty_setup.configs["condition"])
        result = engine.run()
        ok, message = check_against_reference(unit, result)
        assert ok, f"{name}: {message}"


class TestLoader:
    def test_functions_discovered(self):
        unit = unit_from_assembly(PROGRAMS["call_and_return"])
        assert set(unit.func_labels) == {"helper", "main"}

    def test_main_synthesized_when_missing(self):
        unit = unit_from_assembly("mov r0, #1\nbx lr")
        assert unit.func_labels == {"main": "fn_main"}
        result = GuestInterpreter(unit).run()
        assert result.state.regs["r0"] == 1

    def test_cross_block_flags_trigger_safety_net(self, demo_rule_setup):
        """live_in_flags must be nonempty and the run still correct."""
        from repro.dbt import BlockMap

        unit = unit_from_assembly(PROGRAMS["cross_block_flags"])
        assert BlockMap(unit).live_in_flags()
        engine = DBTEngine(unit, demo_rule_setup.configs["condition"])
        result = engine.run()
        ok, message = check_against_reference(unit, result)
        assert ok, message
        assert result.guest_reg("r0") == 111
