"""Deterministic replay of the difftest regression corpus.

Every entry in ``tests/corpus/`` is a shrunk (or hand-written) guest program
with an expected differential verdict; replaying them makes each fuzz-found
bug a permanent tier-1 regression test.  Entries are JSON so a failing
fuzz run can append to the corpus without touching test code.
"""

import os

import pytest

from repro.difftest.corpus import load_corpus
from repro.difftest.oracle import run_oracle, stage_config

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    # The issue requires >= 10 hand-written reproducers; keep the floor.
    assert len(CORPUS) >= 10


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
def test_replay(entry):
    outcome = run_oracle(entry.lines, stage_config(entry.stage))
    if entry.expect == "pass":
        assert outcome.divergence is None, (
            f"{entry.name}: unexpected divergence {outcome.divergence}\n"
            f"  {entry.description}"
        )
    else:
        assert outcome.divergence is not None, (
            f"{entry.name}: expected a divergence but reference and DBT agree"
        )


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
def test_roundtrip(entry, tmp_path):
    # Corpus files are canonical JSON: saving an entry again reproduces the
    # original file byte for byte (needed for determinism guarantees).
    from repro.difftest.corpus import save_reproducer

    path = save_reproducer(entry, str(tmp_path))
    with open(path) as handle:
        rewritten = handle.read()
    with open(os.path.join(CORPUS_DIR, f"{entry.name}.json")) as handle:
        original = handle.read()
    assert rewritten == original
