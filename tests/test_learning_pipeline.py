"""Tests for extraction, the learning pipeline, rule sets, and the store."""

import pytest

from repro.isa.arm import assemble as arm
from repro.lang import compile_pair
from repro.learning import (
    RuleSet,
    dump_rules,
    extract,
    learn_pair,
    learn_suite,
    load_rules,
)
from repro.learning.extract import (
    REASON_MULTI_BLOCK,
    REASON_NO_BINARY,
)


class TestExtraction:
    def test_demo_extraction(self, demo_pair):
        result = extract(demo_pair)
        assert result.statement_count == demo_pair.statement_count
        assert 0 < result.candidate_count <= result.statement_count

    def test_dead_statement_has_no_binary(self):
        pair = compile_pair(
            "t", "func main() { var a, d; a = 1; d = a + 2; return a; }"
        )
        result = extract(pair)
        assert REASON_NO_BINARY in result.outcomes.values()

    def test_clz_host_loop_is_multi_block(self):
        # Find a seed where debug info for the clz statement survives on
        # both sides; its host lowering is a loop and must be rejected.
        pair = compile_pair(
            "t",
            """global out[8];
            func main() { var a, c; a = 12345; c = clz(a); out[0] = c; return c; }""",
        )
        result = extract(pair)
        outcomes = set(result.outcomes.values())
        # The loop lowering is rejected either as too long or as multi-block
        # (both before it could ever reach verification).
        assert outcomes & {REASON_MULTI_BLOCK, "too-long"}
        assert not any(
            insn.mnemonic == "clz"
            for cand in result.candidates
            for insn in cand.guest
        )

    def test_sub_candidates_align_positionally(self, demo_pair):
        result = extract(demo_pair)
        for sub in result.sub_candidates:
            assert len(sub.guest) == 1 and len(sub.host) == 1


class TestLearning:
    def test_funnel_shrinks(self, demo_learning):
        stats = demo_learning.stats
        assert stats.statements >= stats.candidates >= stats.learned >= stats.unique
        assert stats.unique > 0

    def test_rules_are_actually_equivalent(self, demo_rules):
        """Every learned rule re-verifies (soundness of the pipeline)."""
        from repro.isa.arm.opcodes import ARM
        from repro.isa.x86.opcodes import X86
        from repro.verify import check_equivalence

        for rule in demo_rules:
            result = check_equivalence(
                ARM, X86, rule.guest, rule.host, allow_temps=len(rule.host_temps)
            )
            assert result.equivalent, f"rule {rule.guest} does not re-verify"

    def test_no_unlearnable_instructions(self, demo_rules):
        """The paper's seven instructions never produce learned rules."""
        forbidden = {"push", "pop", "b", "bl", "bx", "mla", "umlal", "clz"}
        for rule in demo_rules:
            for insn in rule.guest:
                assert insn.mnemonic not in forbidden

    def test_imm_generalization_present(self, demo_rules):
        assert any(rule.imm_generalized for rule in demo_rules)

    def test_learn_suite_merges(self, demo_pair):
        stats, merged = learn_suite([demo_pair, demo_pair])
        assert len(stats) == 2
        # Second pass adds nothing new (identical program).
        single = learn_pair(demo_pair).rules
        assert len(merged) == len(single)


class TestRuleSet:
    def test_dedup(self, demo_rules):
        duplicate = RuleSet()
        duplicate.extend(demo_rules.rules)
        added = duplicate.extend(demo_rules.rules)
        assert added == 0

    def test_lookup_prefers_generalized(self, demo_rules):
        window = arm("add r4, r4, #12345")
        rule = demo_rules.lookup(window)
        if rule is not None:
            assert rule.imm_generalized

    def test_lookup_respects_pattern(self, demo_rules):
        # If an accumulating add rule exists, a 3-distinct window must not
        # match it (and vice versa).
        acc = demo_rules.lookup(arm("add r4, r4, r5"))
        three = demo_rules.lookup(arm("add r4, r5, r6"))
        if acc and three:
            assert acc is not three

    def test_max_guest_length(self, demo_rules):
        assert demo_rules.max_guest_length() >= 1

    def test_copy_is_independent(self, demo_rules):
        copy = demo_rules.copy()
        assert len(copy) == len(demo_rules)
        assert copy.rules is not demo_rules.rules


def _synthetic_rule(guest, host, mapping, imm_gen=False):
    from repro.isa.x86 import assemble as x86
    from repro.learning.rule import TranslationRule

    return TranslationRule(
        guest=arm(guest),
        host=x86(host),
        reg_mapping=tuple(sorted(mapping.items())),
        imm_generalized=imm_gen,
    )


class TestRuleSetIndexing:
    """Regression tests for the index tie-break and lookup preference."""

    _MAPPING = {"r0": "eax", "r1": "ecx", "r2": "edx"}

    def _long(self):
        return _synthetic_rule(
            "add r0, r1, r2",
            "movl %ecx, %eax\naddl %edx, %eax",
            self._MAPPING,
        )

    def _short(self):
        return _synthetic_rule(
            "add r0, r1, r2", "addl %edx, %eax", self._MAPPING
        )

    def test_shorter_host_wins_index_slot(self):
        rules = RuleSet()
        assert rules.add(self._long())
        assert rules.add(self._short())
        hit = rules.lookup(arm("add r4, r5, r6"))
        assert hit is not None and len(hit.host) == 1

    def test_tie_break_is_order_independent(self):
        rules = RuleSet()
        assert rules.add(self._short())
        assert rules.add(self._long())
        hit = rules.lookup(arm("add r4, r5, r6"))
        assert hit is not None and len(hit.host) == 1

    def test_both_tied_rules_stay_counted(self):
        # The loser of the index slot still counts toward rule totals
        # (Table III counts every distinct learned rule).
        rules = RuleSet()
        rules.add(self._long())
        rules.add(self._short())
        assert len(rules) == 2
        assert len(rules.by_origin("learned")) == 2

    def test_lookup_prefers_generalized_over_specific(self):
        rules = RuleSet()
        specific = _synthetic_rule(
            "add r0, r0, #5", "addl $5, %eax", {"r0": "eax"}
        )
        general = _synthetic_rule(
            "add r0, r0, #5", "addl $5, %eax", {"r0": "eax"}, imm_gen=True
        )
        assert rules.add(specific)
        assert rules.add(general)
        hit = rules.lookup(arm("add r4, r4, #5"))
        assert hit is general
        # The generalized rule also covers immediates never seen.
        assert rules.lookup(arm("add r4, r4, #77")) is general

    def test_specific_fallback_when_no_generalized_rule(self):
        rules = RuleSet()
        specific = _synthetic_rule(
            "add r0, r0, #5", "addl $5, %eax", {"r0": "eax"}
        )
        rules.add(specific)
        assert rules.lookup(arm("add r4, r4, #5")) is specific
        assert rules.lookup(arm("add r4, r4, #9")) is None


class TestStore:
    def test_json_roundtrip(self, demo_rules):
        text = dump_rules(demo_rules)
        loaded = load_rules(text)
        assert len(loaded) == len(demo_rules)
        assert {r.canonical_identity() for r in loaded} == {
            r.canonical_identity() for r in demo_rules
        }

    def test_roundtripped_rules_still_lookup(self, demo_rules):
        loaded = load_rules(dump_rules(demo_rules))
        hits = 0
        for rule in demo_rules:
            if loaded.lookup(rule.guest) is not None:
                hits += 1
        assert hits == len(demo_rules.rules) or hits > 0
