"""Symbolic machine state for rule verification.

Registers and flags materialize as fresh symbols on first read (shared
symbols between the guest and host states are arranged by the equivalence
checker through :meth:`SymbolicState.bind_reg`).  Memory is a store buffer:
stores append ``(addr, value, size)`` records; loads resolve against the
buffer by canonical syntactic address equality.  Loads that cannot be
resolved draw from a *load oracle* — a mapping shared between the guest and
host states so that loads from equivalent addresses observe the same
symbolic value on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import VerificationError
from repro.semantics.domain import SymbolicDomain
from repro.semantics.state import BaseState
from repro.symir import Expr, Sym, build, simplify


@dataclass(frozen=True)
class StoreRecord:
    addr: Expr
    value: Expr
    size: int


class SymbolicState(BaseState):
    """Machine state over symbolic expressions with lazy symbol creation."""

    def __init__(self, prefix: str = "s", load_oracle: Optional[Dict] = None) -> None:
        super().__init__(SymbolicDomain())
        self.prefix = prefix
        self.stores: List[StoreRecord] = []
        #: shared (addr, size) -> symbol map; pass one dict to two states to
        #: give them a common view of initial memory.
        self.load_oracle: Dict[Tuple[Expr, int], Expr] = (
            load_oracle if load_oracle is not None else {}
        )
        #: registers that materialized lazily (read before any bind/write).
        self.lazy_reads: Set[str] = set()
        self.initial_regs: Dict[str, Sym] = {}
        self.initial_flags: Dict[str, Sym] = {}
        self.written_regs: Set[str] = set()

    # -- symbol binding --------------------------------------------------------

    def bind_reg(self, name: str, symbol: Expr) -> None:
        """Pre-bind a register to a symbol (used for guest/host mapping)."""
        self.regs[name] = symbol
        if isinstance(symbol, Sym):
            self.initial_regs[name] = symbol

    def bind_flag(self, name: str, symbol: Expr) -> None:
        self.flags[name] = symbol
        if isinstance(symbol, Sym):
            self.initial_flags[name] = symbol

    def get_reg(self, name: str) -> Expr:
        value = self.regs.get(name)
        if value is None:
            value = Sym(f"{self.prefix}_{name}", 32)
            self.regs[name] = value
            self.initial_regs[name] = value
            self.lazy_reads.add(name)
        return value

    def set_reg(self, name: str, value: Expr) -> None:
        self.regs[name] = value
        self.written_regs.add(name)

    def get_flag(self, name: str) -> Expr:
        value = self.flags.get(name)
        if value is None:
            value = Sym(f"{self.prefix}_flag_{name}", 1)
            self.flags[name] = value
            self.initial_flags[name] = value
        return value

    # -- memory ----------------------------------------------------------------

    def load(self, addr: Expr, size: int = 4) -> Expr:
        addr = simplify(addr)
        for record in reversed(self.stores):
            if record.addr == addr and record.size == size:
                return record.value
        if self.stores:
            # A prior store to a syntactically different address may alias
            # this load.  Rejecting is the sound choice — the paper's strict
            # verification loses such candidates too (§II-B).
            raise VerificationError(
                "load from address not provably disjoint from earlier store"
            )
        key = (addr, size)
        memo = self.load_oracle.get(key)
        if memo is None:
            memo = Sym(f"mem{len(self.load_oracle)}", 32)
            if size != 4:
                memo = build.extract(memo, 0, size * 8)
            self.load_oracle[key] = memo
        return memo

    def store(self, addr: Expr, value: Expr, size: int = 4) -> None:
        self.stores.append(StoreRecord(simplify(addr), value, size))


def run_symbolic(isa, instructions, state: SymbolicState) -> None:
    """Execute a straight-line instruction sequence symbolically.

    Branches are only legal as the final instruction (their outcome lands in
    ``state.branch_taken``); anything after a branch raises.
    """
    seen_branch = False
    for insn in instructions:
        if insn.mnemonic == ".label":
            continue
        if seen_branch:
            raise VerificationError("instruction after branch in straight-line sequence")
        defn = isa.defn(insn)
        if defn.semantics is None:
            raise VerificationError(f"{insn.mnemonic} has no executable semantics")
        defn.semantics(state, insn)
        if defn.is_branch:
            seen_branch = True
