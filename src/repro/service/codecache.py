"""Single-flight shared code cache for compiled translated blocks.

The batch engine keeps a per-engine code cache; a serving process wants one
**shared** cache so a hot program's blocks are translated and compiled once
across all clients and requests.  Two properties matter under concurrency:

* **single flight** — when many requests need the same uncompiled block
  key at the same moment, exactly one compilation runs; the rest await its
  result (an :class:`asyncio.Future` per in-flight key).  The compile-work
  fan-in is visible in the ``coalesced`` counter and provable through
  :func:`repro.dbt.compiler.add_compile_listener`.
* **bounded memory** — the cache is an LRU over block keys with explicit
  eviction accounting, so a long-lived server scanning many programs
  cannot grow without limit.

Keys are ``(unit_digest, stage, block_start_index)`` tuples; values are the
engine's own :class:`~repro.dbt.engine.CodeCacheEntry` (translated block +
decoded defs + compiled body), so cache entries plug straight into a
pre-seeded :class:`~repro.dbt.engine.DBTEngine` code cache.

The map itself is guarded by a lock (reads come from asyncio handlers,
publishes may come from worker threads); the single-flight bookkeeping is
event-loop-confined (``get_or_compile`` must be awaited on the loop).
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

BlockKey = Tuple


def _consume_exception(future: "asyncio.Future") -> None:
    # A failed compile with no coalesced awaiter would otherwise warn
    # "exception was never retrieved" at GC time.
    if not future.cancelled():
        future.exception()


class SingleFlightCodeCache:
    """LRU of block key -> CodeCacheEntry with single-flight compilation.

    ``disk`` optionally attaches the cross-process source-level layer
    (:class:`repro.service.diskcode.DiskCodeCache`): the compile functions
    passed to :meth:`get_or_compile` consult it themselves (they run in
    executor threads, where blocking file IO belongs); the cache holds the
    reference so one :meth:`stats` payload covers both layers.
    """

    def __init__(self, maxsize: int = 4096, disk: Optional[Any] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.disk = disk
        self._lock = threading.Lock()
        self._data: "OrderedDict[BlockKey, Any]" = OrderedDict()
        self._inflight: Dict[BlockKey, "asyncio.Future"] = {}
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.coalesced = 0
        self.evictions = 0

    # -- synchronous map operations -----------------------------------------

    def get(self, key: BlockKey) -> Optional[Any]:
        """Cached entry for *key* (LRU-touch), or None."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key: BlockKey) -> Optional[Any]:
        """Like :meth:`get` but with no counter or recency side effects."""
        with self._lock:
            return self._data.get(key)

    def publish(self, key: BlockKey, entry: Any) -> None:
        """Insert an entry, evicting least-recently-used keys past the bound."""
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- single-flight compile ----------------------------------------------

    async def get_or_compile(
        self, key: BlockKey, compile_fn: Callable[[], Any]
    ) -> Any:
        """The entry for *key*, compiling at most once per key concurrently.

        Must be awaited on the event loop.  ``compile_fn`` (a plain
        callable) runs in the loop's default executor so compilation never
        blocks request handling; concurrent callers for the same key await
        the first caller's future instead of compiling again.
        """
        entry = self.get(key)
        if entry is not None:
            return entry
        # No awaits between the miss above and the in-flight registration
        # below: on one event loop this window is atomic.
        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            return await asyncio.shield(pending)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        future.add_done_callback(_consume_exception)
        self._inflight[key] = future
        try:
            entry = await loop.run_in_executor(None, compile_fn)
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
            raise
        self._inflight.pop(key, None)
        with self._lock:
            self.compiles += 1
        self.publish(key, entry)
        if not future.cancelled():
            future.set_result(entry)
        return entry

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            payload: Dict[str, object] = {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
                "compiles": self.compiles,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "inflight": len(self._inflight),
            }
        if self.disk is not None:
            payload["disk"] = self.disk.stats()
        return payload
