"""AST for the mini source language.

The language is deliberately statement-flat (labels + conditional gotos, one
operation per statement) so that the statement ↔ instruction mapping that
drives rule learning is first-class, exactly like the debug-line mapping the
paper's pipeline extracts with GDB (§II-B).

Grammar sketch::

    program   := (global | func)*
    global    := "global" NAME "[" INT "]" ";"
    func      := "func" NAME "(" params ")" "{" stmt* "}"
    stmt      := "var" NAME ("," NAME)* ";"
               | NAME "=" expr ";"
               | NAME "[" index "]" "=" atom ";"          # word store
               | "storeb" | "storeh" forms                 # narrow stores
               | "if" "(" cond ")" "goto" NAME ";"
               | "iftest" "(" NAME "=" atom ")" "goto" NAME ";"   # movs+bne idiom
               | "goto" NAME ";"
               | NAME ":"
               | NAME "=" "call" NAME "(" atoms ")" ";"
               | "call" NAME "(" atoms ")" ";"
               | "return" atom? ";"
    expr      := atom
               | atom BINOP atom
               | "~" atom | "-" atom | "clz" "(" atom ")"
               | atom "+" atom "*" atom                    # mla pattern
               | NAME "[" index "]"                        # word load
               | "loadb" | "loadh" forms                   # narrow loads
    index     := atom ("+" INT)?  |  atom ":" INT          # ':4' = scaled
    cond      := atom RELOP atom | "(" atom "&" atom ")" "!=" "0"
               | "(" atom "^" atom ")" "==" "0"

Atoms are variables or integer literals; deeper expressions are built by the
workload generator through explicit temporaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

BINARY_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "&~")
RELOPS = ("==", "!=", "<", "<=", ">", ">=", "<u", "<=u", ">u", ">=u")

#: relop -> ARM condition code (signed by default, u-suffixed unsigned).
RELOP_TO_COND = {
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "<u": "cc",
    "<=u": "ls",
    ">u": "hi",
    ">=u": "cs",
}


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class ConstE:
    value: int


@dataclass(frozen=True)
class VarE:
    name: str


Atom = object  # ConstE | VarE


@dataclass(frozen=True)
class BinE:
    op: str
    lhs: Atom
    rhs: Atom


@dataclass(frozen=True)
class UnE:
    op: str  # "~", "-", "clz"
    operand: Atom


@dataclass(frozen=True)
class MlaE:
    """``addend + lhs * rhs`` — fuses to ``mla`` on the guest when the
    destination aliases the addend."""

    addend: Atom
    lhs: Atom
    rhs: Atom


@dataclass(frozen=True)
class Index:
    """Array index: ``var`` or ``var + disp`` (byte offset) or ``var:scale``."""

    base: Atom
    disp: int = 0
    scale: int = 1


@dataclass(frozen=True)
class LoadE:
    array: str
    index: Index
    size: int = 4


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    dest: str
    expr: object


@dataclass(frozen=True)
class Store:
    array: str
    index: Index
    value: Atom
    size: int = 4


@dataclass(frozen=True)
class Cond:
    """A branch condition."""

    kind: str  # "rel" | "tst" | "teq"
    op: str  # relop for "rel"; "!=0"/"==0" for tst/teq
    lhs: Atom
    rhs: Atom


@dataclass(frozen=True)
class IfGoto:
    cond: Cond
    target: str


@dataclass(frozen=True)
class IfTestGoto:
    """``iftest (x = y) goto L`` — compiles to the ARM ``movs``+``bne`` idiom."""

    dest: str
    source: Atom
    target: str


@dataclass(frozen=True)
class FusedAluGoto:
    """``fuse (x op y) cond goto L`` — compute ``x = x op y`` with the
    flag-setting instruction variant and branch on the result.

    Compiles to the ARM s-variant + conditional branch (``ands``/``eors``/
    ``adds``/... + ``b<cond>``), the fused compute-and-test idiom behind the
    paper's condition-flags-delegation coverage (§V-B2)."""

    dest: str
    op: str
    rhs: Atom
    cond: str  # "ne", "eq", "mi", "pl"
    target: str


@dataclass(frozen=True)
class Goto:
    target: str


@dataclass(frozen=True)
class LabelStmt:
    name: str


@dataclass(frozen=True)
class Call:
    func: str
    args: Tuple[Atom, ...]
    dest: Optional[str] = None


@dataclass(frozen=True)
class Return:
    value: Optional[Atom] = None


@dataclass(frozen=True)
class UmlalStmt:
    """``umlal(lo, hi, a, b)`` — 64-bit multiply-accumulate of ``a*b`` into
    the ``hi:lo`` register pair (maps to the ARM ``umlal`` instruction)."""

    lo: str
    hi: str
    lhs: Atom
    rhs: Atom


Statement = object


# -- program ---------------------------------------------------------------------


@dataclass
class Function:
    name: str
    params: Tuple[str, ...]
    body: List[Statement] = field(default_factory=list)

    def local_names(self) -> List[str]:
        """All variables assigned or used in the function, params first."""
        names: Dict[str, None] = {name: None for name in self.params}

        def visit_atom(atom) -> None:
            if isinstance(atom, VarE):
                names.setdefault(atom.name)

        for stmt in self.body:
            if isinstance(stmt, Assign):
                names.setdefault(stmt.dest)
                visit_expr(stmt.expr, visit_atom)
            elif isinstance(stmt, Store):
                visit_atom(stmt.index.base)
                visit_atom(stmt.value)
            elif isinstance(stmt, IfGoto):
                visit_atom(stmt.cond.lhs)
                visit_atom(stmt.cond.rhs)
            elif isinstance(stmt, IfTestGoto):
                names.setdefault(stmt.dest)
                visit_atom(stmt.source)
            elif isinstance(stmt, FusedAluGoto):
                names.setdefault(stmt.dest)
                visit_atom(stmt.rhs)
            elif isinstance(stmt, Call):
                if stmt.dest is not None:
                    names.setdefault(stmt.dest)
                for arg in stmt.args:
                    visit_atom(arg)
            elif isinstance(stmt, Return) and stmt.value is not None:
                visit_atom(stmt.value)
            elif isinstance(stmt, UmlalStmt):
                names.setdefault(stmt.lo)
                names.setdefault(stmt.hi)
                visit_atom(stmt.lhs)
                visit_atom(stmt.rhs)
        return list(names)


def usage_counts(func: "Function") -> Dict[str, int]:
    """How often each variable appears in a function (drives allocation).

    Global arrays are counted as pseudo-variables ``@<name>`` so the
    allocator can pin hot array bases into registers (compilers hoist
    loop-invariant base addresses the same way).
    """
    counts: Dict[str, int] = {name: 1 for name in func.params}

    def note(atom) -> None:
        if isinstance(atom, VarE):
            counts[atom.name] = counts.get(atom.name, 0) + 1

    def note_name(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    def note_array(array: str) -> None:
        note_name(f"@{array}")

    for stmt in func.body:
        if isinstance(stmt, Assign):
            note_name(stmt.dest)
            visit_expr(stmt.expr, note)
            if isinstance(stmt.expr, LoadE):
                note_array(stmt.expr.array)
        elif isinstance(stmt, Store):
            note_array(stmt.array)
            note(stmt.index.base)
            note(stmt.value)
        elif isinstance(stmt, IfGoto):
            note(stmt.cond.lhs)
            note(stmt.cond.rhs)
        elif isinstance(stmt, IfTestGoto):
            note_name(stmt.dest)
            note(stmt.source)
        elif isinstance(stmt, FusedAluGoto):
            note_name(stmt.dest)
            note(stmt.rhs)
        elif isinstance(stmt, Call):
            if stmt.dest is not None:
                note_name(stmt.dest)
            for arg in stmt.args:
                note(arg)
        elif isinstance(stmt, Return) and stmt.value is not None:
            note(stmt.value)
        elif isinstance(stmt, UmlalStmt):
            note_name(stmt.lo)
            note_name(stmt.hi)
            note(stmt.lhs)
            note(stmt.rhs)
    return counts


def arrays_used(func: "Function") -> List[str]:
    """Global arrays referenced by a function, in first-use order."""
    seen: Dict[str, None] = {}
    for stmt in func.body:
        if isinstance(stmt, Assign) and isinstance(stmt.expr, LoadE):
            seen.setdefault(stmt.expr.array)
        elif isinstance(stmt, Store):
            seen.setdefault(stmt.array)
    return list(seen)


def visit_expr(expr, visit_atom) -> None:
    """Apply *visit_atom* to every atom inside an expression."""
    if isinstance(expr, (ConstE, VarE)):
        visit_atom(expr)
    elif isinstance(expr, BinE):
        visit_atom(expr.lhs)
        visit_atom(expr.rhs)
    elif isinstance(expr, UnE):
        visit_atom(expr.operand)
    elif isinstance(expr, MlaE):
        visit_atom(expr.addend)
        visit_atom(expr.lhs)
        visit_atom(expr.rhs)
    elif isinstance(expr, LoadE):
        visit_atom(expr.index.base)
    else:
        raise TypeError(f"unknown expression: {expr!r}")


@dataclass
class Program:
    functions: Dict[str, Function] = field(default_factory=dict)
    #: global arrays: name -> size in bytes.
    globals: Dict[str, int] = field(default_factory=dict)

    def add_function(self, func: Function) -> None:
        self.functions[func.name] = func

    @property
    def main(self) -> Function:
        return self.functions["main"]
