"""Trace-tier tests: selection, formation, guards, retirement, persistence.

The trace backend's correctness contract is the same as the jit backend's
(see ``test_backend_difftest``): byte-identical architectural snapshots AND
byte-identical ``RunMetrics`` parity fields vs the interp oracle, no matter
how many superblocks formed, guard exits fired, or traces were retired
mid-run.  These tests pin the tier's moving parts individually — cycle
selection on synthetic edge profiles, guard side-exits under a mid-run
branch flip, retirement of pathological traces, cross-block flag-store
elision, and the content-addressed trace-source persistence used by the
service layer.
"""

import pytest

from repro.dbt import DBTEngine, TraceConfig
from repro.dbt.loader import unit_from_assembly
from repro.dbt.trace import (
    TRACE_CODEGEN_VERSION,
    TraceSource,
    _elided_flag_stores,
    parse_block,
    plan_junctions,
    select_cycle,
)
from repro.difftest.oracle import stage_config
from repro.service.diskcode import DiskCodeCache, TraceSourceDiskAdapter

_METRIC_FIELDS = (
    "host_counts",
    "guest_dynamic",
    "covered_dynamic",
    "block_executions",
    "blocks_translated",
    "chained_executions",
    "rule_hits",
)

#: a hot countdown loop: the bread-and-butter trace formation case.
COUNTDOWN = """
fn_main:
    mov r0, #0
    mov r1, #50
loop:
    add r0, r0, r1
    subs r1, r1, #1
    bne loop
    bx lr
"""

#: the hot cycle contains a data-dependent branch that flips direction
#: mid-run: iterations 0..99 go through ``low``, 100..199 through the
#: other arm, so a trace specialized on the early path starts failing its
#: guard on every entry once the flip happens.
BRANCH_FLIP = """
fn_main:
    mov r0, #0
    mov r1, #200
    mov r2, #0
loop:
    cmp r0, #100
    blt low
    add r2, r2, #2
    b join
low:
    add r2, r2, #1
join:
    add r0, r0, #1
    cmp r0, r1
    bne loop
    bx lr
"""

#: block ``chk`` reads Z before setting it, so the translator's safety net
#: spills NZCV at every flag-setter's block exit; along the stitched trace
#: the first spill is dead (re-stored in ``body`` before any read) and must
#: be elided, while ``body``'s spill feeds the guarded ``bne`` and stays.
CROSS_BLOCK_FLAGS = """
fn_main:
    mov r0, #0
    mov r1, #100
loop:
    subs r2, r1, #2
    b body
body:
    add r0, r0, r2
    subs r1, r1, #1
    b chk
chk:
    bne loop
    bx lr
"""


@pytest.fixture(scope="module")
def config():
    return stage_config("condition")


def _run_pair(unit, config, chaining, trace_config):
    """(interp result, trace result, trace engine) for one program."""
    ref = DBTEngine(unit, config, chaining=chaining, backend="interp").run()
    engine = DBTEngine(
        unit, config, chaining=chaining, backend="trace",
        trace_config=trace_config,
    )
    result = engine.run()
    return ref, result, engine


def _assert_parity(ref, result, context):
    assert (
        ref.architectural_snapshot() == result.architectural_snapshot()
    ), f"{context}: snapshot diverged from interp"
    for field in _METRIC_FIELDS:
        assert getattr(ref.metrics, field) == getattr(result.metrics, field), (
            f"{context}: metrics field {field} diverged"
        )


class TestFormation:
    @pytest.mark.parametrize("chaining", [False, True])
    def test_hot_loop_forms_trace_and_matches_oracle(self, config, chaining):
        unit = unit_from_assembly(COUNTDOWN)
        ref, result, engine = _run_pair(
            unit, config, chaining, TraceConfig.aggressive()
        )
        _assert_parity(ref, result, f"countdown chaining={chaining}")
        assert result.metrics.traces_formed >= 1
        assert result.metrics.trace_entries >= 1
        assert result.metrics.trace_iterations > 1
        assert engine._traces, "formed trace should stay live"

    def test_warm_run_reuses_settled_engine(self, config):
        unit = unit_from_assembly(COUNTDOWN)
        ref_engine = DBTEngine(unit, config, chaining=True, backend="interp")
        engine = DBTEngine(
            unit, config, chaining=True, backend="trace",
            trace_config=TraceConfig.aggressive(),
        )
        for lap in range(3):
            ref = ref_engine.run()
            result = engine.run()
            _assert_parity(ref, result, f"warm lap {lap}")
        assert result.metrics.trace_entries >= 1

    def test_max_traces_cap_is_respected(self, config):
        unit = unit_from_assembly(BRANCH_FLIP)
        tcfg = TraceConfig.aggressive()
        engine = DBTEngine(
            unit, config, backend="trace", trace_config=tcfg
        )
        engine.run()
        assert len(engine._traces) <= tcfg.max_traces


class TestGuardsAndRetirement:
    @pytest.mark.parametrize("chaining", [False, True])
    def test_branch_flip_guard_exits_then_retires(self, config, chaining):
        # Retirement thresholds tuned so the post-flip trace (every entry
        # bails at the first guard, covering one block) is pathological.
        tcfg = TraceConfig(
            hot_threshold=3, max_length=8, min_edge_count=1, dominance=0.5,
            probation_entries=4, min_mean_blocks=3.5, max_traces=32,
            profile_window=2048,
        )
        unit = unit_from_assembly(BRANCH_FLIP)
        ref, result, engine = _run_pair(unit, config, chaining, tcfg)
        _assert_parity(ref, result, f"branch-flip chaining={chaining}")
        assert result.metrics.trace_guard_exits >= 1
        assert result.metrics.traces_retired >= 1
        # Retired heads are blacklisted: the pathological trace cannot
        # immediately re-form on the same head.
        assert engine._trace_blacklist

    @pytest.mark.parametrize("chaining", [False, True])
    def test_snapshots_stay_identical_across_post_retirement_runs(
        self, config, chaining
    ):
        tcfg = TraceConfig(
            hot_threshold=3, max_length=8, min_edge_count=1, dominance=0.5,
            probation_entries=4, min_mean_blocks=3.5, max_traces=32,
            profile_window=2048,
        )
        unit = unit_from_assembly(BRANCH_FLIP)
        ref_engine = DBTEngine(unit, config, chaining=chaining, backend="interp")
        engine = DBTEngine(
            unit, config, chaining=chaining, backend="trace",
            trace_config=tcfg,
        )
        # First run forms and retires; later runs execute through the
        # blacklist on the block tier.  Every run must stay byte-identical.
        for lap in range(3):
            _assert_parity(
                ref_engine.run(), engine.run(),
                f"post-retirement lap {lap} chaining={chaining}",
            )


class TestCrossBlockFlagElision:
    def test_dead_cross_block_flag_spill_is_elided(self, config):
        unit = unit_from_assembly(CROSS_BLOCK_FLAGS)
        ref, result, engine = _run_pair(
            unit, config, True, TraceConfig.aggressive()
        )
        _assert_parity(ref, result, "cross-block flags")
        assert engine._traces
        trace = next(iter(engine._traces.values()))
        assert trace.length >= 3
        parsed = [
            parse_block(
                engine.code_cache[i].tb, engine.code_cache[i].kernel.defs
            )
            for i in trace.block_indices
        ]
        plans = plan_junctions(parsed)
        elided = _elided_flag_stores(parsed, plans)
        assert elided, "the dead cross-block NZCV spill must be elided"
        # The survivor feeds the guarded bne; only the dead spill goes.
        spill_positions = {pos for pos, _ in elided}
        assert len(spill_positions) < trace.length


class TestCycleSelection:
    CFG = TraceConfig(
        hot_threshold=3, max_length=4, min_edge_count=2, dominance=0.6,
        probation_entries=4, min_mean_blocks=1.05, max_traces=32,
        profile_window=2048,
    )

    def test_simple_cycle_is_selected(self):
        edges = {(1, 2): 10, (2, 3): 10, (3, 1): 10}
        assert select_cycle(1, edges, self.CFG) == [1, 2, 3]

    def test_ambiguous_junction_stops_selection(self):
        # 2 -> {3, 4} splits 50/50: below the 0.6 dominance bar.
        edges = {(1, 2): 20, (2, 3): 10, (2, 4): 10, (3, 1): 10}
        assert select_cycle(1, edges, self.CFG) is None

    def test_cold_edge_stops_selection(self):
        edges = {(1, 2): 10, (2, 1): 1}  # below min_edge_count
        assert select_cycle(1, edges, self.CFG) is None

    def test_length_bound_is_enforced(self):
        edges = {(i, i + 1): 10 for i in range(1, 7)}
        edges[(7, 1)] = 10  # cycle of length 7 > max_length 4
        assert select_cycle(1, edges, self.CFG) is None

    def test_inner_cycle_not_through_head_is_rejected(self):
        edges = {(1, 2): 10, (2, 3): 10, (3, 2): 10}
        assert select_cycle(1, edges, self.CFG) is None


class TestTraceSourcePersistence:
    def _formed_trace(self, config):
        unit = unit_from_assembly(COUNTDOWN)
        engine = DBTEngine(
            unit, config, backend="trace", trace_config=TraceConfig.aggressive()
        )
        engine.run()
        assert engine._traces
        return next(iter(engine._traces.values()))

    def test_payload_roundtrip(self, config):
        source = self._formed_trace(config).source
        clone = TraceSource.from_payload(source.to_payload())
        assert clone == source
        assert clone.version == TRACE_CODEGEN_VERSION

    def test_malformed_payloads_are_rejected(self, config):
        payload = self._formed_trace(config).source.to_payload()
        stale = dict(payload, version="trace-v0")
        with pytest.raises(ValueError):
            TraceSource.from_payload(stale)
        broken = dict(payload, block_starts=["2", "4"])
        with pytest.raises(ValueError):
            TraceSource.from_payload(broken)

    def test_disk_adapter_roundtrip(self, config, tmp_path):
        source = self._formed_trace(config).source
        disk = DiskCodeCache(tmp_path / "codecache")
        adapter = TraceSourceDiskAdapter(disk, "unit-digest", "condition", "quick")
        assert adapter.get(source.block_starts) is None
        adapter.put(source.block_starts, source)
        assert adapter.get(source.block_starts) == source
        # Other key components miss: different starts, stage, or unit.
        assert adapter.get(source.block_starts + (99,)) is None
        other_stage = TraceSourceDiskAdapter(
            disk, "unit-digest", "opcode", "quick"
        )
        assert other_stage.get(source.block_starts) is None
        other_unit = TraceSourceDiskAdapter(
            disk, "other-digest", "condition", "quick"
        )
        assert other_unit.get(source.block_starts) is None

    def test_engine_reuses_shared_trace_source(self, config, tmp_path):
        unit = unit_from_assembly(COUNTDOWN)
        disk = DiskCodeCache(tmp_path / "codecache")
        adapters = [
            TraceSourceDiskAdapter(disk, "countdown", "condition", "quick")
            for _ in range(2)
        ]
        ref = DBTEngine(unit, config, backend="interp").run()
        results = []
        for adapter in adapters:
            engine = DBTEngine(
                unit, config, backend="trace",
                trace_config=TraceConfig.aggressive(),
                trace_source_cache=adapter,
            )
            results.append(engine.run())
        # Second engine formed its trace from the first engine's published
        # source — and execution stays byte-identical either way.
        assert disk.writes == 1
        assert disk.hits >= 1
        for lap, result in enumerate(results):
            _assert_parity(ref, result, f"shared-source engine {lap}")
