"""Tests for the smart constructors and the simplifier.

The key property: simplification never changes the value of an expression
under any assignment (checked exhaustively on random expressions with
hypothesis).
"""

from hypothesis import given, settings, strategies as st

from repro.symir import (
    BinOp,
    Const,
    Sym,
    UnOp,
    binop,
    const,
    evaluate,
    free_symbols,
    ite,
    simplify,
    sym,
    unop,
)
from repro.symir.expr import (
    BINARY_OPS,
    COMPARISON_OPS,
    UNARY_OPS,
    Ite,
    ZeroExt,
)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)

_SYMS = ("a", "b", "c")

# Arithmetic ops keep their operands' width; comparisons produce 1-bit
# results and are re-widened below so every subtree stays 32 bits wide.
_ARITH_OPS = sorted(BINARY_OPS - COMPARISON_OPS)
_CMP_OPS = sorted(COMPARISON_OPS)


def exprs(depth: int = 3):
    """Strategy producing random well-formed 32-bit expressions.

    Comparison operators are included: a 1-bit comparison of two 32-bit
    subtrees re-enters the tree either zero-extended back to 32 bits or as
    the condition of an if-then-else over two 32-bit branches.

    Leaves are constructed at draw time, not strategy-build time: a Sym
    captured across a ``clear_all_caches()`` belongs to a dead interning
    epoch, and composites interned over it would break the ``is``-identity
    guarantee for later same-epoch nodes.
    """
    leaf = st.one_of(
        st.sampled_from(_SYMS).map(Sym),
        U32.map(lambda v: Const(v)),
    )

    def extend(children):
        binary = st.builds(
            BinOp, st.sampled_from(_ARITH_OPS), children, children
        )
        unary = st.builds(UnOp, st.sampled_from(sorted(UNARY_OPS)), children)
        compare = st.builds(
            BinOp, st.sampled_from(_CMP_OPS), children, children
        )
        widened = compare.map(lambda cmp: ZeroExt(cmp, 32))
        selected = st.builds(Ite, compare, children, children)
        return st.one_of(binary, unary, widened, selected)

    return st.recursive(leaf, extend, max_leaves=8)


class TestIdentities:
    def test_add_zero(self):
        a = sym("a")
        assert binop("add", a, const(0)) is a

    def test_sub_self_is_zero(self):
        a = sym("a")
        assert binop("sub", a, a) == const(0)

    def test_xor_self_is_zero(self):
        a = sym("a")
        assert binop("xor", a, a) == const(0)

    def test_and_self(self):
        a = sym("a")
        assert binop("and", a, a) is a

    def test_and_ones(self):
        a = sym("a")
        assert binop("and", a, const(0xFFFFFFFF)) is a

    def test_or_zero(self):
        a = sym("a")
        assert binop("or", a, const(0)) is a

    def test_mul_one(self):
        a = sym("a")
        assert binop("mul", a, const(1)) is a

    def test_mul_zero(self):
        assert binop("mul", sym("a"), const(0)) == const(0)

    def test_sub_const_becomes_add(self):
        result = binop("sub", sym("a"), const(5))
        assert isinstance(result, BinOp) and result.op == "add"

    def test_add_const_chains_fold(self):
        result = binop("add", binop("add", sym("a"), const(3)), const(4))
        assert result == binop("add", sym("a"), const(7))

    def test_double_not(self):
        a = sym("a")
        assert unop("not", unop("not", a)) is a

    def test_double_neg(self):
        a = sym("a")
        assert unop("neg", unop("neg", a)) is a

    def test_commutative_canonical_order(self):
        ab = binop("add", sym("a"), sym("b"))
        ba = binop("add", sym("b"), sym("a"))
        assert ab == ba

    def test_eq_self_true(self):
        assert binop("eq", sym("a"), sym("a")) == const(1, 1)

    def test_comparison_self_identities(self):
        a = sym("a")
        assert binop("ne", a, a) == const(0, 1)
        assert binop("ult", a, a) == const(0, 1)
        assert binop("slt", a, a) == const(0, 1)
        assert binop("ule", a, a) == const(1, 1)
        assert binop("sle", a, a) == const(1, 1)

    def test_comparison_constant_folding(self):
        assert binop("eq", const(5), const(5)) == const(1, 1)
        assert binop("ne", const(5), const(6)) == const(1, 1)
        assert binop("ult", const(1), const(2)) == const(1, 1)
        assert binop("ule", const(2), const(2)) == const(1, 1)
        # 0xFFFFFFFF is -1 signed: below 0 signed, above it unsigned.
        assert binop("slt", const(0xFFFFFFFF), const(0)) == const(1, 1)
        assert binop("ult", const(0xFFFFFFFF), const(0)) == const(0, 1)
        assert binop("sle", const(0), const(0x7FFFFFFF)) == const(1, 1)
        assert binop("sle", const(0x80000000), const(0)) == const(1, 1)

    def test_constant_folding(self):
        assert binop("mul", const(6), const(7)) == const(42)

    def test_ite_constant_condition(self):
        assert ite(const(1, 1), sym("a"), sym("b")) == sym("a")
        assert ite(const(0, 1), sym("a"), sym("b")) == sym("b")

    def test_ite_same_branches(self):
        assert ite(sym("c", 1), sym("a"), sym("a")) == sym("a")

    def test_shift_by_zero(self):
        a = sym("a")
        assert binop("shl", a, const(0)) is a

    def test_shift_overflow_folds_to_zero(self):
        assert binop("shl", sym("a"), const(40)) == const(0)


class TestSimplifyProperty:
    @settings(max_examples=200, deadline=None)
    @given(expr=exprs(), a=U32, b=U32, c=U32)
    def test_simplify_preserves_semantics(self, expr, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert evaluate(simplify(expr), env) == evaluate(expr, env)

    @settings(max_examples=100, deadline=None)
    @given(expr=exprs())
    def test_simplify_idempotent(self, expr):
        once = simplify(expr)
        assert simplify(once) == once

    @settings(max_examples=200, deadline=None)
    @given(
        op=st.sampled_from(_CMP_OPS),
        lhs=exprs(),
        rhs=exprs(),
        a=U32,
        b=U32,
        c=U32,
    )
    def test_simplify_preserves_comparisons(self, op, lhs, rhs, a, b, c):
        """Comparison nodes at the root (1-bit results) are preserved too."""
        env = {"a": a, "b": b, "c": c}
        cmp = BinOp(op, lhs, rhs)
        simplified = simplify(cmp)
        assert simplified.width == 1
        assert evaluate(simplified, env) == evaluate(cmp, env)

    @settings(max_examples=100, deadline=None)
    @given(expr=exprs())
    def test_simplify_never_adds_symbols(self, expr):
        before = {s.name for s in free_symbols(expr)}
        after = {s.name for s in free_symbols(simplify(expr))}
        assert after <= before


class TestSimplifyCacheSafety:
    """Regression: the memo used to key on ``id(expr)`` alone, so a node
    garbage-collected mid-lifetime could hand its id to a *different* new
    node, which then received the stale simplification."""

    def test_cache_keeps_source_nodes_alive(self):
        import gc

        cache = {}
        simplify(binop("add", sym("a"), const(0)), cache)
        cached_ids = set(cache)
        gc.collect()
        # Because entries hold their source node, every cached id must still
        # refer to a live object — ids cannot be recycled out from under us.
        for entry_id, (node, _) in cache.items():
            assert id(node) == entry_id

    def test_recycled_id_cannot_return_stale_result(self):
        import gc

        cache = {}
        victim = binop("add", sym("a"), const(0))
        simplify(victim, cache)  # simplifies to sym("a")
        victim_id = id(victim)
        del victim
        gc.collect()
        # Allocate fresh, structurally different nodes; even if CPython
        # recycles the old id, the identity check must reject the entry.
        for value in range(1, 200):
            fresh = BinOp("xor", Sym("b"), Const(value))
            result = simplify(fresh, cache)
            env = {"a": 7, "b": 9, "c": 0}
            assert evaluate(result, env) == evaluate(fresh, env), (
                f"stale cache entry returned for recycled id {id(fresh)}"
                f" (victim id was {victim_id})"
            )

    def test_shared_cache_across_calls_still_correct(self):
        cache = {}
        shared = binop("add", sym("a"), sym("b"))
        tree1 = binop("xor", shared, const(0))
        tree2 = binop("or", shared, const(0))
        env = {"a": 5, "b": 6, "c": 0}
        assert evaluate(simplify(tree1, cache), env) == evaluate(tree1, env)
        assert evaluate(simplify(tree2, cache), env) == evaluate(tree2, env)
