"""Concrete evaluation of symbolic expressions.

Given an assignment of integer values to free symbols, compute the concrete
value of an expression.  This is the workhorse of the randomized equivalence
checker in :mod:`repro.verify.equivalence`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt


def _to_signed(value: int, width: int) -> int:
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def _clz(value: int, width: int) -> int:
    for i in range(width - 1, -1, -1):
        if value & (1 << i):
            return width - 1 - i
    return width


def evaluate(expr: Expr, env: Mapping[str, int], _cache: Dict[int, int] | None = None) -> int:
    """Evaluate *expr* under *env* (symbol name -> unsigned integer value).

    The result is an unsigned integer masked to the expression's width.
    Raises :class:`KeyError` if a free symbol is missing from *env*.
    """
    if _cache is None:
        _cache = {}
    key = id(expr)
    cached = _cache.get(key)
    if cached is not None:
        return cached

    if isinstance(expr, Const):
        result = expr.value
    elif isinstance(expr, Sym):
        result = env[expr.name] & expr.mask()
    elif isinstance(expr, BinOp):
        lhs = evaluate(expr.lhs, env, _cache)
        rhs = evaluate(expr.rhs, env, _cache)
        width = expr.lhs.width
        mask = (1 << width) - 1
        op = expr.op
        if op == "add":
            result = (lhs + rhs) & mask
        elif op == "sub":
            result = (lhs - rhs) & mask
        elif op == "mul":
            result = (lhs * rhs) & mask
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = (lhs << (rhs % width)) & mask if rhs < width else 0
        elif op == "lshr":
            result = lhs >> rhs if rhs < width else 0
        elif op == "ashr":
            shift = min(rhs, width - 1)
            result = (_to_signed(lhs, width) >> shift) & mask
        elif op == "eq":
            result = int(lhs == rhs)
        elif op == "ne":
            result = int(lhs != rhs)
        elif op == "ult":
            result = int(lhs < rhs)
        elif op == "ule":
            result = int(lhs <= rhs)
        elif op == "slt":
            result = int(_to_signed(lhs, width) < _to_signed(rhs, width))
        elif op == "sle":
            result = int(_to_signed(lhs, width) <= _to_signed(rhs, width))
        else:
            raise ValueError(f"unknown binary operator: {op}")
    elif isinstance(expr, UnOp):
        operand = evaluate(expr.operand, env, _cache)
        width = expr.operand.width
        mask = (1 << width) - 1
        if expr.op == "not":
            result = ~operand & mask
        elif expr.op == "neg":
            result = -operand & mask
        elif expr.op == "clz":
            result = _clz(operand, width)
        else:
            raise ValueError(f"unknown unary operator: {expr.op}")
    elif isinstance(expr, Ite):
        cond = evaluate(expr.cond, env, _cache)
        result = evaluate(expr.then if cond else expr.orelse, env, _cache)
    elif isinstance(expr, Extract):
        operand = evaluate(expr.operand, env, _cache)
        result = (operand >> expr.lo) & expr.mask()
    elif isinstance(expr, ZeroExt):
        result = evaluate(expr.operand, env, _cache)
    else:
        raise TypeError(f"unknown expression node: {expr!r}")

    _cache[key] = result
    return result


def _postorder(expr: Expr) -> List[Expr]:
    """Unique sub-DAG nodes of *expr*, children before parents.

    Nodes are interned, so deduplicating by the node itself collapses every
    occurrence of a shared subterm to one entry — the walk (and the batched
    evaluation over it) is linear in the DAG, not the tree.
    """
    order: List[Expr] = []
    seen: Dict[Expr, None] = {}
    stack: List[tuple] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in seen:
            continue
        seen[node] = None
        stack.append((node, True))
        if isinstance(node, BinOp):
            stack.append((node.lhs, False))
            stack.append((node.rhs, False))
        elif isinstance(node, UnOp):
            stack.append((node.operand, False))
        elif isinstance(node, Ite):
            stack.append((node.cond, False))
            stack.append((node.then, False))
            stack.append((node.orelse, False))
        elif isinstance(node, (Extract, ZeroExt)):
            stack.append((node.operand, False))
    return order


def evaluate_many(expr: Expr, envs: Sequence[Mapping[str, int]]) -> List[int]:
    """Evaluate *expr* under each environment in *envs*.

    Equivalent to ``[evaluate(expr, env) for env in envs]`` but walks the
    expression DAG once, computing all environments' values per node — the
    per-node dispatch cost is paid once per distinct subterm instead of once
    per (subterm, environment) pair.  Unlike :func:`evaluate`, both branches
    of an :class:`Ite` are computed, so every free symbol (including those
    only reachable through untaken branches) must be bound in every
    environment.
    """
    columns: Dict[str, List[int]] = {}
    for env in envs:
        for name, value in env.items():
            columns.setdefault(name, []).append(value)
    return evaluate_columns(expr, columns, len(envs))


def evaluate_columns(
    expr: Expr, columns: Mapping[str, Sequence[int]], count: int
) -> List[int]:
    """Column-oriented :func:`evaluate_many`: one value list per symbol name.

    Each column must have *count* entries; assignment ``i`` is row ``i``
    across all columns.  Values are masked to each symbol's width on read,
    matching :func:`evaluate`'s treatment of oversized environment values.
    """
    n = count
    vals: Dict[Expr, List[int]] = {}
    for node in _postorder(expr):
        if isinstance(node, Const):
            vals[node] = [node.value] * n
        elif isinstance(node, Sym):
            mask = node.mask()
            vals[node] = [v & mask for v in columns[node.name]]
        elif isinstance(node, BinOp):
            ls = vals[node.lhs]
            rs = vals[node.rhs]
            width = node.lhs.width
            mask = (1 << width) - 1
            op = node.op
            if op == "add":
                out = [(l + r) & mask for l, r in zip(ls, rs)]
            elif op == "sub":
                out = [(l - r) & mask for l, r in zip(ls, rs)]
            elif op == "mul":
                out = [(l * r) & mask for l, r in zip(ls, rs)]
            elif op == "and":
                out = [l & r for l, r in zip(ls, rs)]
            elif op == "or":
                out = [l | r for l, r in zip(ls, rs)]
            elif op == "xor":
                out = [l ^ r for l, r in zip(ls, rs)]
            elif op == "shl":
                out = [
                    (l << (r % width)) & mask if r < width else 0
                    for l, r in zip(ls, rs)
                ]
            elif op == "lshr":
                out = [l >> r if r < width else 0 for l, r in zip(ls, rs)]
            elif op == "ashr":
                out = [
                    (_to_signed(l, width) >> min(r, width - 1)) & mask
                    for l, r in zip(ls, rs)
                ]
            elif op == "eq":
                out = [int(l == r) for l, r in zip(ls, rs)]
            elif op == "ne":
                out = [int(l != r) for l, r in zip(ls, rs)]
            elif op == "ult":
                out = [int(l < r) for l, r in zip(ls, rs)]
            elif op == "ule":
                out = [int(l <= r) for l, r in zip(ls, rs)]
            elif op == "slt":
                out = [
                    int(_to_signed(l, width) < _to_signed(r, width))
                    for l, r in zip(ls, rs)
                ]
            elif op == "sle":
                out = [
                    int(_to_signed(l, width) <= _to_signed(r, width))
                    for l, r in zip(ls, rs)
                ]
            else:
                raise ValueError(f"unknown binary operator: {op}")
            vals[node] = out
        elif isinstance(node, UnOp):
            xs = vals[node.operand]
            width = node.operand.width
            mask = (1 << width) - 1
            if node.op == "not":
                vals[node] = [~x & mask for x in xs]
            elif node.op == "neg":
                vals[node] = [-x & mask for x in xs]
            elif node.op == "clz":
                vals[node] = [_clz(x, width) for x in xs]
            else:
                raise ValueError(f"unknown unary operator: {node.op}")
        elif isinstance(node, Ite):
            cs = vals[node.cond]
            ts = vals[node.then]
            os_ = vals[node.orelse]
            vals[node] = [t if c else o for c, t, o in zip(cs, ts, os_)]
        elif isinstance(node, Extract):
            lo = node.lo
            mask = node.mask()
            vals[node] = [(x >> lo) & mask for x in vals[node.operand]]
        elif isinstance(node, ZeroExt):
            vals[node] = vals[node.operand]
        else:
            raise TypeError(f"unknown expression node: {node!r}")
    return vals[expr]
