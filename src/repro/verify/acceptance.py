"""Ruleset acceptance verification: gate a candidate ruleset before publish.

The symbolic machinery in this package proves individual rules equivalent at
learning time; this module is the *system-level* gate the continuous-learning
pipeline (:mod:`repro.pipeline.stages`) runs just before publishing a ruleset
version: execute the training corpus plus a seeded batch of fuzzed programs
through the DBT under the candidate configs and diff every final
architectural state against the reference interpreter.  Zero divergences is
the bar — a candidate that moves even one register value never becomes
``latest``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

#: Oracle-diffed stage: the full parameterized system, the config `repro
#: serve` answers translate/run requests with by default.
DEFAULT_STAGE = "condition"


def verify_serving_configs(
    configs: Dict[str, Any],
    *,
    benchmarks: Sequence[str] = (),
    programs: int = 0,
    seed: int = 0,
    backend: str = "jit",
    stage: str = DEFAULT_STAGE,
) -> Dict[str, Any]:
    """Differentially verify a candidate config map; returns a report dict.

    Runs every corpus benchmark program and ``programs`` seeded fuzzed
    programs through ``configs[stage]`` under *backend*, diffing each final
    state against the reference interpreter (:func:`repro.difftest.oracle
    .run_oracle`).  Fuzzed programs the reference itself rejects (runaway
    splices, wild branches) are counted as skipped, not failures.

    The report is JSON-serializable so the pipeline can persist it as the
    verify stage's artifact::

        {"stage", "backend", "seed", "benchmarks", "checked", "skipped",
         "divergences": ["<program> [kind] detail", ...]}
    """
    from repro.difftest.gen import ProgramGenerator
    from repro.difftest.oracle import InvalidProgram, run_oracle
    from repro.workloads import compiled_benchmark

    config = configs[stage]
    checked = 0
    skipped = 0
    divergences: List[str] = []

    for name in benchmarks:
        pair = compiled_benchmark(name)
        outcome = run_oracle(pair.guest, config, backend=backend)
        checked += 1
        if not outcome.ok:
            divergences.append(f"benchmark {name}: {outcome.divergence}")

    generator = ProgramGenerator(seed)
    for index in range(programs):
        program = generator.generate(index)
        try:
            outcome = run_oracle(list(program.lines), config, backend=backend)
        except InvalidProgram:
            skipped += 1
            continue
        checked += 1
        if not outcome.ok:
            divergences.append(f"fuzz[{index}] seed={seed}: {outcome.divergence}")

    return {
        "stage": stage,
        "backend": backend,
        "seed": seed,
        "programs": programs,
        "benchmarks": list(benchmarks),
        "checked": checked,
        "skipped": skipped,
        "divergences": divergences,
    }
