"""Instruction definitions for the x86-like host ISA.

Subgroup classification mirrors the guest side (paper §IV-A): the ALU
subgroup holds the destructive 2-operand arithmetic/logic instructions, the
LOAD subgroup holds register-writing ``movl``/``movzbl``/``leal``, the STORE
subgroup the memory-writing moves, COMPARE holds ``cmpl``/``testl``, and
everything else (jumps, stack, ``set<f>``) is OTHER.
"""

from __future__ import annotations

from typing import List

from repro.isa.flags import CONDITION_FLAG_USES, NZ, NZCV
from repro.isa.instruction import InstructionDef, Subgroup
from repro.isa.isa import ISA
from repro.isa.operands import OperandKind as K
from repro.isa.x86 import semantics as sem
from repro.isa.x86.registers import ALL_REGISTERS, ALLOCATABLE, SP

#: src may be reg/imm/mem; dst may be reg/mem; not both mem.
_ALU2 = (
    (K.REG, K.REG),
    (K.IMM, K.REG),
    (K.MEM, K.REG),
    (K.REG, K.MEM),
    (K.IMM, K.MEM),
)
_ALU2_REG_DST = ((K.REG, K.REG), (K.IMM, K.REG), (K.MEM, K.REG))
_SHIFT = ((K.IMM, K.REG), (K.REG, K.REG), (K.IMM, K.MEM))
_ONE_OP = ((K.REG,), (K.MEM,))


def _alu2(mnemonic, fn, *, flags=frozenset(), reads=frozenset(), commutative=False, sigs=_ALU2):
    return InstructionDef(
        mnemonic=mnemonic,
        signatures=sigs,
        subgroup=Subgroup.ALU,
        semantics=fn,
        flags_set=flags,
        flags_read=reads,
        dest_index=1,
        source_indices=(0, 1),
        commutative=commutative,
    )


_COND_TO_JCC = {
    "eq": "je",
    "ne": "jne",
    "lt": "jl",
    "ge": "jge",
    "gt": "jg",
    "le": "jle",
    "mi": "js",
    "pl": "jns",
    # The unified no-borrow carry convention (see repro.isa.flags) means
    # C==1 reads as "no borrow" = unsigned >=, so the carry-set jump is jae.
    "cs": "jae",
    "cc": "jb",
    "hi": "ja",
    "ls": "jbe",
    "vs": "jo",
    "vc": "jno",
}
JCC_TO_COND = {v: k for k, v in _COND_TO_JCC.items()}


def build_defs() -> List[InstructionDef]:
    defs: List[InstructionDef] = []
    carry = frozenset({"C"})

    # ALU.
    defs.append(_alu2("addl", sem.make_arith2("add", False), flags=NZCV, commutative=True))
    defs.append(
        _alu2("adcl", sem.make_arith2("add", True), flags=NZCV, reads=carry, commutative=True)
    )
    defs.append(_alu2("subl", sem.make_arith2("sub", False), flags=NZCV))
    defs.append(_alu2("sbbl", sem.make_arith2("sub", True), flags=NZCV, reads=carry))
    defs.append(_alu2("andl", sem.make_logic2("and"), flags=NZCV, commutative=True))
    defs.append(_alu2("orl", sem.make_logic2("or"), flags=NZCV, commutative=True))
    defs.append(_alu2("xorl", sem.make_logic2("xor"), flags=NZCV, commutative=True))
    defs.append(_alu2("imull", sem.sem_imull, commutative=True, sigs=_ALU2_REG_DST))
    defs.append(_alu2("shll", sem.make_shift2("shl"), flags=NZCV, sigs=_SHIFT))
    defs.append(_alu2("shrl", sem.make_shift2("shr"), flags=NZCV, sigs=_SHIFT))
    defs.append(_alu2("sarl", sem.make_shift2("sar"), flags=NZCV, sigs=_SHIFT))
    defs.append(
        InstructionDef(
            mnemonic="notl",
            signatures=_ONE_OP,
            subgroup=Subgroup.ALU,
            semantics=sem.sem_notl,
            dest_index=0,
            source_indices=(0,),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="negl",
            signatures=_ONE_OP,
            subgroup=Subgroup.ALU,
            semantics=sem.sem_negl,
            flags_set=NZCV,
            dest_index=0,
            source_indices=(0,),
        )
    )

    # LOAD (register-writing data transfer).
    defs.append(
        InstructionDef(
            mnemonic="movl",
            signatures=((K.REG, K.REG), (K.IMM, K.REG), (K.MEM, K.REG)),
            subgroup=Subgroup.LOAD,
            semantics=sem.sem_movl,
            dest_index=1,
            source_indices=(0,),
        )
    )
    for name, size in (("movzbl", 1), ("movzwl", 2)):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=((K.MEM, K.REG),),
                subgroup=Subgroup.LOAD,
                semantics=sem.make_mov_sized(size, is_load=True),
                dest_index=1,
                source_indices=(0,),
            )
        )
    defs.append(
        InstructionDef(
            mnemonic="leal",
            signatures=((K.MEM, K.REG),),
            subgroup=Subgroup.LOAD,
            semantics=sem.sem_leal,
            dest_index=1,
            source_indices=(0,),
        )
    )

    # STORE (memory-writing data transfer).  ``movl reg, mem`` is a separate
    # mnemonic-shape of movl on real x86; we give the store shape its own
    # definition name so subgroup classification is by-definition.
    defs.append(
        InstructionDef(
            mnemonic="movl_s",
            signatures=((K.REG, K.MEM), (K.IMM, K.MEM)),
            subgroup=Subgroup.STORE,
            semantics=sem.sem_movl,
            dest_index=1,
            source_indices=(0,),
        )
    )
    for name, size in (("movb", 1), ("movw", 2)):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=((K.REG, K.MEM),),
                subgroup=Subgroup.STORE,
                semantics=sem.make_mov_sized(size, is_load=False),
                dest_index=1,
                source_indices=(0,),
            )
        )

    # COMPARE.
    defs.append(
        InstructionDef(
            mnemonic="cmpl",
            signatures=((K.REG, K.REG), (K.IMM, K.REG), (K.MEM, K.REG), (K.IMM, K.MEM), (K.REG, K.MEM)),
            subgroup=Subgroup.COMPARE,
            semantics=sem.sem_cmpl,
            flags_set=NZCV,
            source_indices=(0, 1),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="testl",
            signatures=((K.REG, K.REG), (K.IMM, K.REG), (K.IMM, K.MEM)),
            subgroup=Subgroup.COMPARE,
            semantics=sem.sem_testl,
            flags_set=NZCV,
            source_indices=(0, 1),
            commutative=True,
        )
    )

    # OTHER: control flow, stack, flag spill helpers.
    defs.append(
        InstructionDef(
            mnemonic="jmp",
            signatures=((K.LABEL,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.make_jump(None),
            is_branch=True,
        )
    )
    for cond, jcc in _COND_TO_JCC.items():
        defs.append(
            InstructionDef(
                mnemonic=jcc,
                signatures=((K.LABEL,),),
                subgroup=Subgroup.OTHER,
                semantics=sem.make_jump(cond),
                flags_read=CONDITION_FLAG_USES[cond],
                is_branch=True,
                cond=cond,
            )
        )
    defs.append(
        InstructionDef(
            mnemonic="pushl",
            signatures=((K.REG,), (K.IMM,)),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_pushl,
            source_indices=(0,),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="popl",
            signatures=((K.REG,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_popl,
            dest_index=0,
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="call",
            signatures=((K.LABEL,),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_call,
            is_branch=True,
            is_call=True,
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="ret",
            signatures=((),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_ret,
            is_branch=True,
            is_return=True,
        )
    )
    for name, flag in (("setz", "Z"), ("sets", "N"), ("setc", "C"), ("seto", "V")):
        defs.append(
            InstructionDef(
                mnemonic=name,
                signatures=((K.REG,),),
                subgroup=Subgroup.OTHER,
                semantics=sem.make_setcc(flag),
                flags_read=frozenset({flag}),
                dest_index=0,
            )
        )
    # Flag spill/reload (setcc+mov / sahf stand-ins; used by the DBT's
    # condition-flag machinery) and QEMU-style out-of-line helpers.
    for flag in ("N", "Z", "C", "V"):
        defs.append(
            InstructionDef(
                mnemonic=f"st{flag.lower()}f",
                signatures=((K.MEM,),),
                subgroup=Subgroup.OTHER,
                semantics=sem.make_flag_store(flag),
                flags_read=frozenset({flag}),
                dest_index=0,
            )
        )
        defs.append(
            InstructionDef(
                mnemonic=f"ld{flag.lower()}f",
                signatures=((K.MEM,),),
                subgroup=Subgroup.OTHER,
                semantics=sem.make_flag_load(flag),
                flags_set=frozenset({flag}),
                source_indices=(0,),
            )
        )
    defs.append(
        InstructionDef(
            mnemonic="helper_umlal",
            signatures=((K.REG, K.REG, K.REG, K.REG),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_helper_umlal,
            dest_index=0,
            source_indices=(0, 1, 2, 3),
        )
    )
    defs.append(
        InstructionDef(
            mnemonic="helper_clz",
            signatures=((K.REG, K.REG),),
            subgroup=Subgroup.OTHER,
            semantics=sem.sem_helper_clz,
            dest_index=0,
            source_indices=(1,),
        )
    )
    return defs


def build_isa() -> ISA:
    isa = ISA(
        name="x86",
        registers=ALL_REGISTERS,
        pc_register=None,
        sp_register=SP,
        allocatable=ALLOCATABLE,
    )
    isa.add_all(build_defs())
    return isa


X86 = build_isa()
