"""The differential-testing subsystem: generator, oracle, shrinker, campaign.

Covers the issue's acceptance properties at test scale: deterministic
seeded generation, divergence-free campaigns on the real translator,
fault-injection self-checks (a planted translator bug must be found and
shrunk to a handful of instructions), byte-identical reports across runs
and across ``--jobs``, and the executor defs-cache pinning regression.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.difftest.campaign import DifftestOptions, run_difftest
from repro.difftest.gen import (
    BucketCoverage,
    ProgramGenerator,
    bucket_id,
    bucket_universe,
    program_buckets,
)
from repro.difftest.oracle import (
    InvalidProgram,
    assemble_program,
    config_with_fault,
    diff_snapshots,
    run_oracle,
    stage_config,
)
from repro.difftest.shrink import shrink_program
from repro.parallel import set_jobs


@pytest.fixture(autouse=True)
def _serial_default():
    yield
    set_jobs(1)


class TestGenerator:
    def test_bucket_universe_is_stable(self):
        universe = bucket_universe()
        assert len(universe) == len(set(universe))
        assert len(universe) > 300  # (opcode, shape, liveness) combinations

    def test_generation_is_deterministic(self):
        a = ProgramGenerator(7).generate(3, [])
        b = ProgramGenerator(7).generate(3, [])
        assert a.lines == b.lines

    def test_distinct_indices_differ(self):
        gen = ProgramGenerator(7)
        assert gen.generate(0, []).lines != gen.generate(1, []).lines

    def test_generated_programs_assemble_and_run(self):
        gen = ProgramGenerator(11)
        coverage = BucketCoverage()
        for index in range(8):
            targets = sorted(
                coverage.universe - coverage.exercised, key=bucket_id
            )[:3]
            program = gen.generate(index, targets)
            unit = assemble_program(program.lines)
            coverage.note(program_buckets(unit.instructions))
        assert coverage.hit_count > 0

    def test_targeting_reaches_requested_buckets(self):
        gen = ProgramGenerator(5)
        universe = sorted(bucket_universe(), key=bucket_id)
        hits = 0
        for index, target in enumerate(universe[:12]):
            program = gen.generate(index, [target])
            unit = assemble_program(program.lines)
            if target in program_buckets(unit.instructions):
                hits += 1
        # Guidance is best-effort (liveness targets can be perturbed by
        # surrounding instructions) but must mostly land.
        assert hits >= 8


class TestOracle:
    def test_agreeing_program(self):
        outcome = run_oracle(
            ["mov r0, #41", "add r0, r0, #1", "bx lr"], stage_config()
        )
        assert outcome.ok
        assert outcome.metrics is not None

    def test_undefined_label_is_invalid_not_divergent(self):
        with pytest.raises(InvalidProgram):
            run_oracle(["bne Lmissing", "bx lr"], stage_config())

    def test_runaway_is_invalid(self):
        with pytest.raises(InvalidProgram):
            run_oracle(
                ["L1:", "b L1", "bx lr"], stage_config(), max_steps=100
            )

    def test_diff_snapshots_flags_excluded(self):
        regs = {name: 0 for name in [f"r{i}" for i in range(13)] + ["sp", "lr"]}
        ref = {"regs": dict(regs), "memory": {}, "flags": {"N": 1}}
        dbt = {"regs": dict(regs), "memory": {}, "flags": {"N": 0}}
        assert diff_snapshots(ref, dbt) is None

    def test_diff_snapshots_register(self):
        regs = {name: 0 for name in [f"r{i}" for i in range(13)] + ["sp", "lr"]}
        ref = {"regs": dict(regs), "memory": {}}
        dbt = {"regs": dict(regs, r3=7), "memory": {}}
        divergence = diff_snapshots(ref, dbt)
        assert divergence is not None and divergence.kind == "register"

    def test_diff_snapshots_memory(self):
        regs = {name: 0 for name in [f"r{i}" for i in range(13)] + ["sp", "lr"]}
        ref = {"regs": regs, "memory": {100: 1}}
        dbt = {"regs": regs, "memory": {100: 2}}
        divergence = diff_snapshots(ref, dbt)
        assert divergence is not None and divergence.kind == "memory"


class TestFaultInjection:
    def test_swap_operands_changes_rule_set(self):
        config = stage_config()
        sabotaged = config_with_fault(config, "swap-operands")
        assert sabotaged.name.endswith("+swap-operands")
        assert sabotaged.rules is not config.rules

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            config_with_fault(stage_config(), "no-such-fault")

    def test_swap_operands_fault_is_caught_and_shrunk_small(self):
        report = run_difftest(
            DifftestOptions(
                seed=0, programs=32, fault="swap-operands", max_shrinks=1
            )
        )
        assert report.failures, "planted fault was not detected"
        first = report.failures[0]
        assert first.shrunk is not None
        assert first.shrunk_instructions <= 3

    def test_flag_lie_fault_is_caught(self):
        report = run_difftest(
            DifftestOptions(
                seed=0, programs=64, fault="flag-lie", max_shrinks=1
            )
        )
        assert report.failures, "planted flag-status lie was not detected"


class TestShrinker:
    def test_shrinks_to_core(self):
        lines = [
            "mov r0, #1",
            "mov r1, #2",
            "mov r2, #3",
            "sub r5, r2, r1",
            "mov r6, #7",
            "bx lr",
        ]
        shrunk = shrink_program(
            lines, lambda candidate: "sub r5, r2, r1" in candidate
        )
        assert shrunk == ["sub r5, r2, r1"]

    def test_rejecting_predicate_returns_original(self):
        lines = ["mov r0, #1", "bx lr"]
        assert shrink_program(lines, lambda candidate: False) == lines

    def test_budget_is_respected(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        shrink_program(["mov r0, #1"] * 12, predicate, budget=5)
        # +1: the initial sanity evaluation is outside the search budget
        # accounting but still one call.
        assert len(calls) <= 6

    def test_operand_shrinking_terminates(self):
        # 0 <-> 1 immediate rewrites must not oscillate forever.
        lines = ["mov r0, #1", "mov r1, #0", "bx lr"]
        shrunk = shrink_program(lines, lambda candidate: True)
        assert shrunk  # termination is the assertion


class TestCampaignDeterminism:
    def _run(self, tmp_path, tag, jobs):
        set_jobs(jobs)
        corpus = os.path.join(str(tmp_path), tag)
        report = run_difftest(
            DifftestOptions(
                seed=0,
                programs=16,
                fault="swap-operands",
                max_shrinks=1,
                corpus_dir=corpus,
            )
        )
        files = {}
        for name in sorted(os.listdir(corpus)):
            with open(os.path.join(corpus, name)) as handle:
                files[name] = handle.read()
        rendered = report.render()
        # saved paths embed tmp dirs; normalize before comparing
        rendered = rendered.replace(corpus, "<corpus>")
        payload = report.to_dict()
        return rendered, json.dumps(payload, sort_keys=True), files

    def test_reports_and_corpus_byte_identical(self, tmp_path):
        first = self._run(tmp_path, "a", jobs=1)
        second = self._run(tmp_path, "b", jobs=1)
        parallel = self._run(tmp_path, "c", jobs=4)
        assert first == second
        assert first == parallel

    def test_campaign_exercises_derived_rules(self):
        report = run_difftest(DifftestOptions(seed=0, programs=16))
        assert report.executed > 0
        assert report.derived_rule_buckets > 0
        assert not report.failures


class TestExecutorDefsAliasing:
    """Regression: decode products must live with their block, not in an
    ``id(tb)``-keyed side cache.

    The executor used to memoize decoded defs by ``id(tb)``; a freed
    ``TranslatedBlock`` whose id was recycled could serve stale defs for a
    different block (same class of bug as the symir simplify memo).  Defs
    now live in a :class:`BlockKernel` on the engine's code-cache entry,
    which pins the block for as long as its decode products are reachable.
    """

    def _tiny_block(self, mnemonic):
        from repro.dbt.translator import TranslatedBlock
        from repro.isa.instruction import Instruction
        from repro.isa.operands import Reg

        host = (Instruction(mnemonic, (Reg("ecx"), Reg("eax"))),)
        return TranslatedBlock(
            start=0,
            guest_count=1,
            host=host,
            categories=("rule",),
            labels={},
            covered=(True,),
        )

    def test_executor_holds_no_id_keyed_state(self):
        from repro.dbt.executor import HostExecutor
        from repro.semantics.state import ConcreteState

        executor = HostExecutor(ConcreteState())
        assert not hasattr(executor, "_defs_cache")
        assert not hasattr(executor, "_defs")

    def test_recycled_blocks_cannot_alias(self):
        import gc

        from repro.dbt.executor import BlockKernel

        # Force many allocate/free cycles at the same addresses: every
        # kernel must reflect its own block, never a stale entry for a
        # recycled id.
        for _ in range(64):
            movl_block = self._tiny_block("movl")
            kernel = BlockKernel(movl_block)
            assert kernel.defs[0].mnemonic == "movl"
            del movl_block
            gc.collect()
            addl_block = self._tiny_block("addl")
            assert BlockKernel(addl_block).defs[0].mnemonic == "addl"

    def test_code_cache_entry_pins_block(self):
        from repro.dbt import DBTEngine, unit_from_assembly
        from repro.dbt.translator import TranslationConfig

        unit = unit_from_assembly("fn_main:\n  mov r0, #7\n  bx lr\n")
        engine = DBTEngine(unit, TranslationConfig("qemu"))
        engine.run()
        for entry in engine.code_cache.values():
            assert entry.kernel.defs is not None
            assert len(entry.kernel.defs) == len(entry.tb.host)


class TestCli:
    def test_difftest_smoke(self, capsys):
        from repro.cli import main

        code = main(
            ["difftest", "--seed", "1", "--programs", "8", "--quiet"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bucket coverage:" in out
        assert "derived-rule buckets exercised:" in out

    def test_difftest_fault_mode_exit_code(self, capsys, tmp_path):
        from repro.cli import main

        report_path = os.path.join(str(tmp_path), "report.json")
        code = main(
            [
                "difftest",
                "--seed", "0",
                "--programs", "16",
                "--fault", "swap-operands",
                "--max-shrinks", "1",
                "--quiet",
                "--json", report_path,
            ]
        )
        assert code == 0  # fault mode: finding the fault is success
        with open(report_path) as handle:
            payload = json.load(handle)
        assert payload["failures"]
