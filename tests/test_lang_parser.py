"""Tests for the mini-language parser and optimizer."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, parse
from repro.lang.optimizer import fold_expr, optimize


class TestParser:
    def test_globals(self):
        program = parse("global data[64];")
        assert program.globals == {"data": 64}

    def test_function_params(self):
        program = parse("func f(a, b) { return a; }")
        assert program.functions["f"].params == ("a", "b")

    def test_assignment_forms(self):
        program = parse(
            """func f() {
              x = 5;
              y = x + 3;
              z = x & y;
              w = ~x;
              n = -x;
              c = clz(x);
            }"""
        )
        body = program.functions["f"].body
        assert isinstance(body[0].expr, ast.ConstE)
        assert isinstance(body[1].expr, ast.BinE) and body[1].expr.op == "+"
        assert isinstance(body[3].expr, ast.UnE) and body[3].expr.op == "~"
        assert body[5].expr.op == "clz"

    def test_mla_pattern(self):
        program = parse("func f(a, b, c) { a = a + b * c; return a; }")
        expr = program.functions["f"].body[0].expr
        assert isinstance(expr, ast.MlaE)

    def test_loads_and_stores(self):
        program = parse(
            """global g[16];
            func f(i, v) {
              x = g[i];
              y = g[i + 8];
              z = g[i:4];
              b = loadb(g, i);
              g[i] = v;
              storeb(g, i, v);
              storeh(g, i, v);
              return x;
            }"""
        )
        body = program.functions["f"].body
        assert body[0].expr.size == 4
        assert body[1].expr.index.disp == 8
        assert body[2].expr.index.scale == 4
        assert body[3].expr.size == 1
        assert isinstance(body[4], ast.Store) and body[4].size == 4
        assert body[5].size == 1
        assert body[6].size == 2

    def test_control_flow(self):
        program = parse(
            """func f(a, b) {
            top:
              if (a < b) goto top;
              if ((a & b) != 0) goto top;
              if ((a ^ b) == 0) goto top;
              iftest (t = a) goto top;
              fuse (a & b) ne goto top;
              goto top;
            }"""
        )
        body = program.functions["f"].body
        assert isinstance(body[0], ast.LabelStmt)
        assert body[1].cond.kind == "rel"
        assert body[2].cond.kind == "tst"
        assert body[3].cond.kind == "teq"
        assert isinstance(body[4], ast.IfTestGoto)
        assert isinstance(body[5], ast.FusedAluGoto)
        assert isinstance(body[6], ast.Goto)

    def test_calls(self):
        program = parse(
            """func g(x) { return x; }
            func f() { r = call g(3); call g(4); return r; }"""
        )
        body = program.functions["f"].body
        assert isinstance(body[0], ast.Call) and body[0].dest == "r"
        assert body[1].dest is None

    def test_umlal(self):
        program = parse("func f(a, b) { umlal(lo, hi, a, b); return lo; }")
        assert isinstance(program.functions["f"].body[0], ast.UmlalStmt)

    def test_unknown_statement_raises(self):
        with pytest.raises(ParseError):
            parse("func f() { !!! }")

    def test_unterminated_raises(self):
        with pytest.raises(ParseError):
            parse("func f() { x = 1 }")

    def test_bad_fused_condition(self):
        with pytest.raises(ParseError):
            parse("func f(a) { fuse (a + a) zz goto l; }")

    def test_comments_skipped(self):
        program = parse("// a comment\nfunc f() { return; } // tail")
        assert "f" in program.functions


class TestOptimizer:
    def test_constant_folding(self):
        assert fold_expr(ast.BinE("+", ast.ConstE(3), ast.ConstE(4))) == ast.ConstE(7)
        assert fold_expr(ast.BinE("*", ast.ConstE(6), ast.ConstE(7))) == ast.ConstE(42)

    def test_identity_folding(self):
        x = ast.VarE("x")
        assert fold_expr(ast.BinE("+", x, ast.ConstE(0))) is x
        assert fold_expr(ast.BinE("*", x, ast.ConstE(1))) is x
        assert fold_expr(ast.BinE("&", x, ast.ConstE(0))) == ast.ConstE(0)

    def test_unary_folding(self):
        assert fold_expr(ast.UnE("~", ast.ConstE(0))) == ast.ConstE(0xFFFFFFFF)
        assert fold_expr(ast.UnE("clz", ast.ConstE(1))) == ast.ConstE(31)

    def test_dead_assignment_removed(self):
        program = optimize(
            parse("func f(a) { dead = a + 1; live = a + 2; return live; }")
        )
        body = program.functions["f"].body
        assert len(body) == 2
        assert body[0].dest == "live"

    def test_dead_chain_removed_to_fixpoint(self):
        program = optimize(
            parse("func f(a) { t1 = a + 1; t2 = t1 + 1; return a; }")
        )
        assert len(program.functions["f"].body) == 1

    def test_live_through_store_kept(self):
        program = optimize(
            parse("global g[8];\nfunc f(a) { v = a + 1; g[0] = v; return; }")
        )
        assert len(program.functions["f"].body) == 3

    def test_statement_counts_differ_after_optimization(self):
        """Dead statements produce no binary — an extraction-loss source."""
        source = "func f(a) { dead = a + 9; return a; }"
        before = parse(source)
        after = optimize(before)
        assert len(after.functions["f"].body) < len(before.functions["f"].body)
