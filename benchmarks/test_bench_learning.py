"""Benchmarks for Fig. 2 (rule growth) and Table I (learning funnel)."""

from conftest import run_once

from repro.experiments import EXPERIMENTS


def test_bench_fig02_rule_growth(benchmark, warm_suite):
    """Fig. 2: unique learned rules vs training-set size (growth flattens)."""
    result = run_once(benchmark, EXPERIMENTS["fig02"])
    print("\n" + result.format())
    counts = result.column("unique rules")
    assert counts == sorted(counts), "rule count must grow monotonically"
    early = counts[5] - counts[0]
    late = counts[11] - counts[6]
    assert late < early, "growth must flatten after ~6 benchmarks (paper Fig. 2)"


def test_bench_table1_learning_stats(benchmark, warm_suite):
    """Table I: statements -> candidates -> learned -> unique."""
    result = run_once(benchmark, EXPERIMENTS["table1"])
    print("\n" + result.format())
    percent = result.row_for("Percent%")
    candidates = float(percent[2].rstrip("%"))
    learned = float(percent[3].rstrip("%"))
    # paper: 53.8% / 22.6%
    assert 40 <= candidates <= 65
    assert 12 <= learned <= 32
