"""Closure-compiled row evaluators for sampling-based equivalence checks.

The randomized equivalence checker (:mod:`repro.verify.equivalence`)
evaluates the same expression under thousands of assignments.  Interpreting
the DAG per assignment — or even per chunk of assignments
(:func:`repro.symir.evaluate.evaluate_columns`) — pays Python-level
dispatch per node.  This module instead lowers an expression once to a
generated Python function::

    def _row_eval(rows):
        out = []
        append = out.append
        for (r0, r1) in rows:
            t0 = (r0 + r1) & 0xFFFFFFFF
            append(1 if t0 == r1 else 0)
        return out

and compiles it, so each assignment costs one pass of straight-line
bytecode.  Generated arithmetic replicates :func:`repro.symir.evaluate.
evaluate` bit-for-bit (masking, shift-out-of-range, signed compares, clz),
and shared subterms are bound to one local (the walk is over the DAG).
Compiled functions are memoized per ``(expr, names)`` — interned nodes make
the key exact — so compilation amortizes across chunks, calls, and the many
rule candidates that reduce to the same value expressions.

This is the same technique the DBT's execution backend uses for translated
blocks (:mod:`repro.dbt.compiler`), applied to the offline pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.cache import MISS, BoundedMemo
from repro.symir.evaluate import _clz, _postorder
from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt

#: expr -> generated function, keyed with the symbol-name order the rows use.
_ROW_EVAL_MEMO = BoundedMemo(maxsize=8192, name="symir.row_eval")

RowEvaluator = Callable[[Sequence[tuple]], List[int]]


def _signed(operand: str, width: int) -> str:
    sign = 1 << (width - 1)
    modulus = 1 << width
    return f"({operand} - {modulus} if {operand} & {sign} else {operand})"


def _emit(node: Expr, ref: Dict[Expr, str]) -> str:
    """Python expression computing *node* from already-emitted operands."""
    if isinstance(node, BinOp):
        lhs, rhs = ref[node.lhs], ref[node.rhs]
        width = node.lhs.width
        mask = (1 << width) - 1
        op = node.op
        if op == "add":
            return f"({lhs} + {rhs}) & {mask}"
        if op == "sub":
            return f"({lhs} - {rhs}) & {mask}"
        if op == "mul":
            return f"({lhs} * {rhs}) & {mask}"
        if op == "and":
            return f"{lhs} & {rhs}"
        if op == "or":
            return f"{lhs} | {rhs}"
        if op == "xor":
            return f"{lhs} ^ {rhs}"
        if op == "shl":
            return f"(({lhs} << ({rhs} % {width})) & {mask} if {rhs} < {width} else 0)"
        if op == "lshr":
            return f"({lhs} >> {rhs} if {rhs} < {width} else 0)"
        if op == "ashr":
            shift = f"({rhs} if {rhs} < {width - 1} else {width - 1})"
            return f"({_signed(lhs, width)} >> {shift}) & {mask}"
        if op == "eq":
            return f"1 if {lhs} == {rhs} else 0"
        if op == "ne":
            return f"1 if {lhs} != {rhs} else 0"
        if op == "ult":
            return f"1 if {lhs} < {rhs} else 0"
        if op == "ule":
            return f"1 if {lhs} <= {rhs} else 0"
        if op == "slt":
            return f"1 if {_signed(lhs, width)} < {_signed(rhs, width)} else 0"
        if op == "sle":
            return f"1 if {_signed(lhs, width)} <= {_signed(rhs, width)} else 0"
        raise ValueError(f"unknown binary operator: {op}")
    if isinstance(node, UnOp):
        operand = ref[node.operand]
        width = node.operand.width
        mask = (1 << width) - 1
        if node.op == "not":
            return f"(~{operand}) & {mask}"
        if node.op == "neg":
            return f"(-{operand}) & {mask}"
        if node.op == "clz":
            return f"_clz({operand}, {width})"
        raise ValueError(f"unknown unary operator: {node.op}")
    if isinstance(node, Ite):
        return f"{ref[node.then]} if {ref[node.cond]} else {ref[node.orelse]}"
    if isinstance(node, Extract):
        return f"({ref[node.operand]} >> {node.lo}) & {node.mask()}"
    if isinstance(node, ZeroExt):
        return ref[node.operand]
    raise TypeError(f"unknown expression node: {node!r}")


def _build_refs(
    exprs: Sequence[Expr], names: Tuple[str, ...]
) -> Tuple[Dict[Expr, str], List[str]]:
    """Emit locals for every unique non-leaf node across *exprs*.

    The walk is over the union of the expression DAGs, so a subterm shared
    between the two sides of an equivalence check is computed once per row.
    """
    position = {name: i for i, name in enumerate(names)}
    ref: Dict[Expr, str] = {}
    lines: List[str] = []
    counter = 0
    for expr in exprs:
        for node in _postorder(expr):
            if node in ref:
                continue
            if isinstance(node, Const):
                ref[node] = str(node.value)
            elif isinstance(node, Sym):
                # Rows are pre-clipped, but a symbol narrower than its column
                # (same-name symbols of different widths) still masks on
                # read, exactly as the interpreter does.
                var = f"r{position[node.name]}"
                ref[node] = f"({var} & {node.mask()})" if node.width < 32 else var
            elif isinstance(node, ZeroExt):
                ref[node] = ref[node.operand]
            else:
                ref[node] = f"t{counter}"
                lines.append(f"        t{counter} = {_emit(node, ref)}")
                counter += 1
    return ref, lines


def _compile(source: str) -> Dict[str, object]:
    namespace: Dict[str, object] = {"_clz": _clz}
    exec(compile(source, "<rowcompile>", "exec"), namespace)
    return namespace


def row_evaluator(expr: Expr, names: Tuple[str, ...]) -> RowEvaluator:
    """Compiled evaluator for *expr* over rows of values in *names* order.

    ``fn(rows) == [evaluate(expr, dict(zip(names, row))) for row in rows]``
    for rows whose values already fit each symbol's width (the assignment
    generator clips them; symbol-width masking is additionally baked into
    the generated reads, matching :func:`evaluate`).
    """
    key = (expr, names)
    fn = _ROW_EVAL_MEMO.get(key)
    if fn is not MISS:
        return fn

    ref, lines = _build_refs((expr,), names)
    unpack = ", ".join(f"r{i}" for i in range(len(names)))
    target = f"({unpack},)" if names else "_"
    body = "\n".join(lines) if lines else "        pass"
    source = (
        "def _row_eval(rows):\n"
        "    out = []\n"
        "    append = out.append\n"
        f"    for {target} in rows:\n"
        f"{body}\n"
        f"        append({ref[expr]})\n"
        "    return out\n"
    )
    fn = _compile(source)["_row_eval"]
    _ROW_EVAL_MEMO.put(key, fn)
    return fn


PairEvaluator = Callable[[Sequence[tuple]], int]


def pair_evaluator(
    lhs: Expr, rhs: Expr, names: Tuple[str, ...]
) -> PairEvaluator:
    """Compiled first-difference scanner for a pair of expressions.

    ``fn(rows)`` returns the index of the first row on which the two
    expressions evaluate differently, or ``-1`` if they agree on every row.
    Rows may be any iterable; it is consumed lazily, so the scan stops at
    the first difference.  Both sides are lowered into one function over the
    union of their DAGs, so subterms shared between the sides — common for a
    guest/host value pair — are evaluated once per row.
    """
    key = (lhs, rhs, names)
    fn = _ROW_EVAL_MEMO.get(key)
    if fn is not MISS:
        return fn

    ref, lines = _build_refs((lhs, rhs), names)
    unpack = ", ".join(f"r{i}" for i in range(len(names)))
    target = f"({unpack},)" if names else "_"
    body = "\n".join(lines) if lines else "        pass"
    source = (
        "def _pair_eval(rows):\n"
        f"    for i, {target} in enumerate(rows):\n"
        f"{body}\n"
        f"        if {ref[lhs]} != {ref[rhs]}:\n"
        "            return i\n"
        "    return -1\n"
    )
    fn = _compile(source)["_pair_eval"]
    _ROW_EVAL_MEMO.put(key, fn)
    return fn
