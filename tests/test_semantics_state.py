"""Tests for the concrete machine state (registers, flags, memory)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.isa.operands import Imm, Mem, Reg
from repro.semantics.state import ConcreteState

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def make_state(**regs) -> ConcreteState:
    state = ConcreteState()
    state.reset_flags()
    for name, value in regs.items():
        state.regs[name] = value
    return state


class TestRegistersAndFlags:
    def test_uninitialized_register_read_raises(self):
        with pytest.raises(ExecutionError):
            ConcreteState().get_reg("r0")

    def test_set_get(self):
        state = make_state()
        state.set_reg("r3", 42)
        assert state.get_reg("r3") == 42

    def test_reset_flags(self):
        state = ConcreteState()
        state.reset_flags()
        assert all(state.get_flag(f) == 0 for f in "NZCV")

    def test_set_nz(self):
        state = make_state()
        state.set_nz(0)
        assert (state.get_flag("N"), state.get_flag("Z")) == (0, 1)
        state.set_nz(0x80000000)
        assert (state.get_flag("N"), state.get_flag("Z")) == (1, 0)


class TestMemory:
    def test_word_roundtrip(self):
        state = make_state()
        state.store(0x1000, 0xDEADBEEF)
        assert state.load(0x1000) == 0xDEADBEEF

    def test_default_zero(self):
        assert make_state().load(0x2000) == 0

    def test_byte_access_within_word(self):
        state = make_state()
        state.store(0x1000, 0x44332211)
        assert state.load(0x1000, 1) == 0x11
        assert state.load(0x1001, 1) == 0x22
        assert state.load(0x1003, 1) == 0x44

    def test_byte_store_preserves_neighbours(self):
        state = make_state()
        state.store(0x1000, 0x44332211)
        state.store(0x1001, 0xAA, 1)
        assert state.load(0x1000) == 0x4433AA11

    def test_halfword_roundtrip(self):
        state = make_state()
        state.store(0x1000, 0xBEEF, 2)
        state.store(0x1002, 0xDEAD, 2)
        assert state.load(0x1000) == 0xDEADBEEF
        assert state.load(0x1002, 2) == 0xDEAD

    def test_unaligned_word_access(self):
        state = make_state()
        state.store(0x1000, 0x44332211)
        state.store(0x1004, 0x88776655)
        assert state.load(0x1002) == 0x66554433

    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                U32,
                st.sampled_from([1, 2, 4]),
            ),
            max_size=24,
        )
    )
    def test_matches_bytearray_model(self, writes):
        """Memory behaves like a flat little-endian byte array."""
        state = make_state()
        model = bytearray(96)
        for offset, value, size in writes:
            state.store(0x1000 + offset, value, size)
            model[offset : offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
                size, "little"
            )
        for offset in range(0, 60, 4):
            expected = int.from_bytes(model[offset : offset + 4], "little")
            assert state.load(0x1000 + offset) == expected


class TestOperandAccess:
    def test_read_reg_imm(self):
        state = make_state(r1=7)
        assert state.read_operand(Reg("r1")) == 7
        assert state.read_operand(Imm(-1)) == 0xFFFFFFFF

    def test_mem_effective_address(self):
        state = make_state(r1=0x1000, r2=8)
        state.store(0x1010, 99)
        mem = Mem(base=Reg("r1"), index=Reg("r2"), scale=2)
        assert state.read_operand(mem) == 99

    def test_mem_disp(self):
        state = make_state(r1=0x1000)
        state.store(0x1004, 5)
        assert state.read_operand(Mem(base=Reg("r1"), disp=4)) == 5

    def test_write_operand_mem(self):
        state = make_state(r1=0x1000)
        state.write_operand(Mem(base=Reg("r1")), 123)
        assert state.load(0x1000) == 123

    def test_write_imm_raises(self):
        with pytest.raises(ExecutionError):
            make_state().write_operand(Imm(1), 2)

    def test_snapshot_is_copy(self):
        state = make_state(r1=1)
        snap = state.snapshot()
        state.set_reg("r1", 2)
        assert snap["regs"]["r1"] == 1
