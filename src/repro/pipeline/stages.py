"""The staged continuous-learning pipeline: corpus → learn → derive → verify → publish.

Each stage's inputs are digested (upstream artifact digests + parameters)
and its output persisted through :class:`~repro.pipeline.artifacts
.ArtifactStore`, so a rerun with unchanged inputs skips straight through on
artifact hits and any input change rebuilds exactly the affected suffix of
the chain:

* **corpus** — compile the training workload and fingerprint every
  guest/host pair; the fingerprints are what chain into everything
  downstream, so touching a workload generator reruns the world.
* **learn** — leave-nothing-out rule learning over the corpus
  (:func:`repro.experiments.common.rules_from`, itself memory+disk cached).
* **derive** — parameterized derivation (opcode/addr-mode) plus sequence
  rules, serialized in index order.
* **verify** — rebuild the serving configs from the candidate body exactly
  as a server would (:func:`serving_ruleset_from_body`) and differentially
  execute corpus + seeded fuzzed programs against the reference interpreter
  (:mod:`repro.verify.acceptance`); any divergence fails the run before
  anything is published.
* **publish** — assemble the ruleset body and publish it to the versioned
  :class:`~repro.pipeline.store.RulesetStore` (idempotent; moves
  ``LATEST``), recording stage provenance digests in the manifest.

The run report (also persisted as ``<workdir>/last-run.json``) lists each
stage's digest, hit/built outcome, and timing — CI's ``pipeline-smoke``
asserts a second run is hits across the board.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import atomic_write_text
from repro.errors import ReproError
from repro.pipeline.artifacts import BUILT, HIT, ArtifactStore, artifact_digest
from repro.pipeline.manifest import (
    RULESET_FORMAT,
    serving_ruleset_from_body,
)
from repro.pipeline.store import RulesetStore

#: Stage execution order; digests chain along this sequence.
STAGE_ORDER = ("corpus", "learn", "derive", "verify", "publish")


@dataclass
class PipelineConfig:
    """One pipeline invocation's parameters."""

    workdir: str = "pipeline-runtime"
    #: ruleset store root; defaults to ``<workdir>/rulesets``.
    store_dir: Optional[str] = None
    training: str = "quick"
    #: explicit corpus override; None derives it from ``training``.
    benchmarks: Optional[Tuple[str, ...]] = None
    verify_programs: int = 25
    verify_seed: int = 0
    backend: str = "jit"

    def resolved_store_dir(self) -> str:
        return self.store_dir or str(Path(self.workdir) / "rulesets")


@dataclass
class StageResult:
    name: str
    digest: str
    outcome: str  # "hit" | "built"
    elapsed: float
    summary: str
    payload: Any = field(repr=False, default=None)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "digest": self.digest,
            "outcome": self.outcome,
            "elapsed": round(self.elapsed, 6),
            "summary": self.summary,
        }


class Pipeline:
    """Drives the stage chain over one artifact store + ruleset store."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.workdir = Path(config.workdir)
        self.artifacts = ArtifactStore(self.workdir / "artifacts")
        self.store = RulesetStore(config.resolved_store_dir())

    # -- corpus --------------------------------------------------------------

    def corpus_names(self) -> Tuple[str, ...]:
        if self.config.benchmarks:
            return tuple(self.config.benchmarks)
        if self.config.training == "full":
            from repro.workloads import BENCHMARK_NAMES

            return tuple(BENCHMARK_NAMES)
        if self.config.training != "quick":
            raise ReproError(f"unknown training corpus {self.config.training!r}")
        from repro.difftest.oracle import TRAINING_BENCHMARKS

        return tuple(TRAINING_BENCHMARKS)

    # -- the run -------------------------------------------------------------

    def run(self, log: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
        """Execute the full chain; raises :class:`ReproError` on a verify
        divergence.  Returns (and persists) the run report."""
        emit = log or (lambda message: None)
        results: List[StageResult] = []

        def run_stage(name: str, digest: str, build: Callable[[], Any]) -> Any:
            started = time.perf_counter()
            payload, outcome = self.artifacts.get_or_build(name, digest, build)
            result = StageResult(
                name=name,
                digest=digest,
                outcome=outcome,
                elapsed=time.perf_counter() - started,
                summary=self._summarize(name, payload),
                payload=payload,
            )
            results.append(result)
            emit(
                f"{name}: {outcome} [{digest[:12]}] {result.summary}"
                f" ({result.elapsed:.2f}s)"
            )
            return payload

        names = self.corpus_names()
        corpus_digest = artifact_digest(
            "corpus", list(names), self._corpus_fingerprints(names)
        )
        corpus = run_stage("corpus", corpus_digest, lambda: self._build_corpus(names))

        learn_digest = artifact_digest("learn", corpus_digest)
        learn = run_stage("learn", learn_digest, lambda: self._build_learn(corpus))

        derive_digest = artifact_digest("derive", learn_digest)
        derive = run_stage("derive", derive_digest, lambda: self._build_derive(learn))

        body = self._assemble_body(corpus, learn, derive)
        verify_digest = artifact_digest(
            "verify",
            derive_digest,
            self.config.verify_programs,
            self.config.verify_seed,
            self.config.backend,
        )
        verify = run_stage(
            "verify", verify_digest, lambda: self._build_verify(body)
        )

        publish_digest = artifact_digest(
            "publish", learn_digest, derive_digest, verify_digest, self.config.training
        )
        provenance = {
            "corpus": corpus_digest,
            "learn": learn_digest,
            "derive": derive_digest,
            "verify": verify_digest,
        }
        publish = run_stage(
            "publish",
            publish_digest,
            lambda: self._build_publish(body, provenance),
        )
        # A hit artifact can outlive the store it published into (wiped or
        # GC'd store, warm workdir): re-publish idempotently so LATEST is
        # real, and surface the repair in the report.
        if not self.store.manifest_path(publish["version"]).is_file():
            result = self.store.publish(body, provenance=provenance)
            publish = {**publish, "version": result.version, "created": result.created}
            results[-1].payload = publish
            results[-1].summary = self._summarize("publish", publish) + " (repaired)"
            emit(f"publish: store repaired -> {result.version}")

        report = {
            "ok": not verify["divergences"],
            "training": self.config.training,
            "benchmarks": list(names),
            "stages": [result.to_dict() for result in results],
            "all_hits": all(result.outcome == HIT for result in results),
            "ruleset": {
                "version": publish["version"],
                "body_sha256": publish["body_sha256"],
                "created": publish["created"],
            },
            "artifacts": self.artifacts.stats(),
            "store": self.store.stats(),
        }
        self._write_report(report)
        if verify["divergences"]:
            raise ReproError(
                "verify stage found divergences: "
                + "; ".join(verify["divergences"][:3])
            )
        return report

    # -- stage builders ------------------------------------------------------

    def _corpus_fingerprints(self, names: Sequence[str]) -> Dict[str, str]:
        from repro.experiments.common import _pair_fingerprint

        return {name: _pair_fingerprint(name) for name in names}

    def _build_corpus(self, names: Sequence[str]) -> Dict[str, Any]:
        from repro.workloads import compiled_benchmark

        entries = {}
        for name in names:
            pair = compiled_benchmark(name)
            entries[name] = {
                "fingerprint": self._corpus_fingerprints([name])[name],
                "guest_instructions": len(pair.guest.instructions),
                "host_instructions": len(pair.host.instructions),
            }
        return {"benchmarks": list(names), "entries": entries}

    def _build_learn(self, corpus: Dict[str, Any]) -> Dict[str, Any]:
        from dataclasses import asdict

        from repro.experiments.common import benchmark_learning, rules_from
        from repro.learning.store import rule_to_dict

        names = corpus["benchmarks"]
        merged = rules_from(names)
        return {
            "rules": [rule_to_dict(rule) for rule in merged],
            "count": len(merged),
            "per_benchmark": {
                name: asdict(benchmark_learning(name).stats) for name in names
            },
        }

    def _build_derive(self, learn: Dict[str, Any]) -> Dict[str, Any]:
        from dataclasses import asdict

        from repro.learning.ruleset import RuleSet
        from repro.learning.store import rule_from_dict, rule_to_dict
        from repro.param.derive import derive_rules
        from repro.param.seqderive import derive_sequence_rules

        learned = RuleSet()
        for entry in learn["rules"]:
            learned.add(rule_from_dict(entry))
        param = derive_rules(learned, include_addrmode=True)
        sequence = derive_sequence_rules(learned)
        return {
            "derived": [rule_to_dict(rule) for rule in param.derived],
            "sequence": [rule_to_dict(rule) for rule in sequence],
            "counts": asdict(param.counts),
        }

    def _assemble_body(
        self, corpus: Dict[str, Any], learn: Dict[str, Any], derive: Dict[str, Any]
    ) -> Dict[str, Any]:
        # Straight from the artifact payloads — no dict → rule → dict round
        # trip, so the body digest is a pure function of the stage outputs.
        return {
            "format": RULESET_FORMAT,
            "training": self.config.training,
            "benchmarks": list(corpus["benchmarks"]),
            "counts": dict(derive["counts"]),
            "learned": learn["rules"],
            "derived": derive["derived"],
            "sequence": derive["sequence"],
        }

    def _build_verify(self, body: Dict[str, Any]) -> Dict[str, Any]:
        from repro.verify.acceptance import verify_serving_configs

        candidate = serving_ruleset_from_body(body, version="candidate")
        return verify_serving_configs(
            candidate.configs,
            benchmarks=body["benchmarks"],
            programs=self.config.verify_programs,
            seed=self.config.verify_seed,
            backend=self.config.backend,
        )

    def _build_publish(
        self, body: Dict[str, Any], provenance: Dict[str, str]
    ) -> Dict[str, Any]:
        result = self.store.publish(body, provenance=provenance)
        return {
            "version": result.version,
            "body_sha256": result.body_sha256,
            "parent": result.parent,
            "seq": result.seq,
            "created": result.created,
        }

    # -- reporting / maintenance ---------------------------------------------

    @staticmethod
    def _summarize(name: str, payload: Dict[str, Any]) -> str:
        if name == "corpus":
            return f"{len(payload['benchmarks'])} benchmarks"
        if name == "learn":
            return f"{payload['count']} learned rules"
        if name == "derive":
            return (
                f"{len(payload['derived'])} derived"
                f" + {len(payload['sequence'])} sequence rules"
            )
        if name == "verify":
            return (
                f"{payload['checked']} checked,"
                f" {len(payload['divergences'])} divergences"
            )
        if name == "publish":
            tag = "new" if payload.get("created") else "existing"
            return f"{payload['version']} ({tag})"
        return ""

    def _write_report(self, report: Dict[str, Any]) -> None:
        try:
            self.workdir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.workdir / "last-run.json",
                json.dumps(report, indent=2, sort_keys=True) + "\n",
            )
        except OSError:
            pass  # reporting must never fail the run

    def status(self) -> Dict[str, Any]:
        """Last-run report (if any) + live store/artifact state."""
        last_run = None
        try:
            with open(self.workdir / "last-run.json") as handle:
                last_run = json.load(handle)
        except (OSError, ValueError):
            pass
        return {
            "workdir": str(self.workdir),
            "last_run": last_run,
            "artifacts": self.artifacts.stats(),
            "store": self.store.stats(),
            "latest": self.store.latest_version(),
        }

    def invalidate(self, stage: Optional[str] = None) -> int:
        """Delete stage artifacts so the next run rebuilds from *stage* on."""
        if stage is not None and stage not in STAGE_ORDER:
            raise ReproError(
                f"unknown stage {stage!r}; expected one of {STAGE_ORDER}"
            )
        return self.artifacts.invalidate(stage)
