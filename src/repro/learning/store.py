"""Rule-set serialization (JSON).

Rules round-trip through the two assemblers' text syntax, so a stored rule
file is human-readable: each rule shows its guest and host assembly, the
register mapping, flag verdicts, and constraints.  The same dict forms back
the on-disk pipeline cache (:mod:`repro.cache`): per-benchmark learning
results and derived rule sets persist as JSON keyed by
:func:`ruleset_fingerprint`-style content digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import List

from repro.isa.arm import assembler as arm_asm
from repro.isa.x86 import assembler as x86_asm
from repro.learning.learn import LearnStats, PairLearning
from repro.learning.rule import TranslationRule
from repro.learning.ruleset import RuleSet


def rule_to_dict(rule: TranslationRule) -> dict:
    return {
        "guest": [str(insn) for insn in rule.guest],
        "host": [x86_asm.format_instruction(insn) for insn in rule.host],
        "reg_mapping": dict(rule.reg_mapping),
        "host_temps": list(rule.host_temps),
        "flag_status": dict(rule.flag_status),
        "imm_generalized": rule.imm_generalized,
        "origin": rule.origin,
        "constraints": list(rule.constraints),
    }


def rule_from_dict(data: dict) -> TranslationRule:
    guest = tuple(arm_asm.parse_line(line) for line in data["guest"])
    host = tuple(x86_asm.parse_line(line) for line in data["host"])
    return TranslationRule(
        guest=guest,
        host=host,
        reg_mapping=tuple(sorted(data["reg_mapping"].items())),
        host_temps=tuple(data.get("host_temps", ())),
        flag_status=tuple(sorted(data.get("flag_status", {}).items())),
        imm_generalized=bool(data.get("imm_generalized", False)),
        origin=data.get("origin", "learned"),
        constraints=tuple(data.get("constraints", ())),
    )


def dump_rules(rules: RuleSet) -> str:
    return json.dumps([rule_to_dict(rule) for rule in rules], indent=2)


def load_rules(text: str) -> RuleSet:
    ruleset = RuleSet()
    for entry in json.loads(text):
        ruleset.add(rule_from_dict(entry))
    return ruleset


def save_rules(rules: RuleSet, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dump_rules(rules))


def load_rules_file(path: str) -> RuleSet:
    with open(path) as handle:
        return load_rules(handle.read())


def ruleset_fingerprint(rules: RuleSet) -> str:
    """Content digest of a rule set (cache key for everything derived).

    Two rule sets holding the same rules in the same order share a
    fingerprint regardless of which process built them.
    """
    text = json.dumps([rule_to_dict(rule) for rule in rules], sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def learning_to_dict(learning: PairLearning) -> dict:
    """JSON form of one benchmark's learning output (stats + rules)."""
    return {
        "stats": asdict(learning.stats),
        "rules": [rule_to_dict(rule) for rule in learning.rules],
    }


def learning_from_dict(data: dict) -> PairLearning:
    stats = LearnStats(**data["stats"])
    rules = RuleSet()
    for entry in data["rules"]:
        rules.add(rule_from_dict(entry))
    return PairLearning(stats=stats, rules=rules)
