"""Synthetic SPEC CINT 2006 stand-in workloads."""

from repro.workloads.generator import (
    KernelGen,
    generate_kernel,
    generate_source,
    mutate_profile,
)
from repro.workloads.profiles import BENCHMARK_NAMES, PROFILE_BY_NAME, PROFILES, Profile
from repro.workloads.spec import (
    all_benchmarks,
    benchmark_source,
    compiled_benchmark,
    suite_summary,
)

__all__ = [
    "KernelGen",
    "generate_kernel",
    "generate_source",
    "mutate_profile",
    "Profile",
    "PROFILES",
    "PROFILE_BY_NAME",
    "BENCHMARK_NAMES",
    "benchmark_source",
    "compiled_benchmark",
    "all_benchmarks",
    "suite_summary",
]
