"""The content-addressed disk cache and the cache-lifecycle API."""

from __future__ import annotations

import json

import pytest

from repro import cache as cache_mod
from repro.cache import (
    MISS,
    STATS,
    BoundedMemo,
    CacheStats,
    DiskCache,
    clear_all_caches,
    digest_key,
    register_cache,
)


@pytest.fixture()
def disk(tmp_path):
    return DiskCache(tmp_path / "cache")


class TestDiskCache:
    def test_roundtrip(self, disk):
        assert disk.get("kind", "a", 1) is MISS
        disk.put("kind", "a", 1, payload={"x": [1, 2]}, elapsed=0.5)
        assert disk.get("kind", "a", 1) == {"x": [1, 2]}

    def test_null_payload_is_not_a_miss(self, disk):
        disk.put("kind", "nothing", payload=None)
        assert disk.get("kind", "nothing") is None

    def test_key_sensitivity(self, disk):
        disk.put("kind", "a", payload=1)
        assert disk.get("kind", "b") is MISS
        assert disk.get("other", "a") is MISS
        assert digest_key("kind", "a") != digest_key("kind", "b")

    def test_version_stamp_mismatch_recomputes(self, disk):
        disk.put("kind", "a", payload="fresh")
        path = disk._path(digest_key("kind", "a"))
        entry = json.loads(path.read_text())
        entry["version"] = "some-older-pipeline"
        path.write_text(json.dumps(entry))
        assert disk.get("kind", "a") is MISS  # stale -> recompute, not crash

    def test_corrupted_entry_is_a_miss(self, disk):
        disk.put("kind", "a", payload="fresh")
        path = disk._path(digest_key("kind", "a"))
        path.write_text('{"version": truncated garba')
        assert disk.get("kind", "a") is MISS
        disk.put("kind", "a", payload="recomputed")  # and can be re-put
        assert disk.get("kind", "a") == "recomputed"

    def test_clear_and_counts(self, disk):
        for i in range(5):
            disk.put("kind", i, payload=i)
        assert disk.entry_count() == 5
        assert disk.total_bytes() > 0
        assert disk.clear() == 5
        assert disk.entry_count() == 0
        assert disk.get("kind", 3) is MISS

    def test_disabled_cache_never_hits(self, tmp_path):
        disk = DiskCache(tmp_path, enabled=False)
        disk.put("kind", "a", payload=1)
        assert disk.get("kind", "a") is MISS
        assert disk.entry_count() == 0

    def test_stats_counters(self, disk):
        before = STATS.snapshot()
        disk.get("kind", "nope")
        disk.put("kind", "yes", payload=1, elapsed=2.0)
        disk.get("kind", "yes")
        delta = STATS.delta(before)
        assert delta.disk_misses == 1
        assert delta.disk_writes == 1
        assert delta.disk_hits == 1
        assert delta.seconds_saved == pytest.approx(2.0)


class TestCacheStats:
    def test_snapshot_delta_reset(self):
        stats = CacheStats(disk_hits=3, derivations=2, seconds_saved=1.5)
        snap = stats.snapshot()
        stats.disk_hits += 4
        delta = stats.delta(snap)
        assert delta.disk_hits == 4 and delta.derivations == 0
        stats.reset()
        assert stats.as_dict() == CacheStats().as_dict()

    def test_summary_mentions_everything(self):
        text = CacheStats(disk_hits=1, memo_misses=2, derivations=3).summary()
        assert "1 hits" in text and "3 derivations" in text


class TestBoundedMemo:
    def test_put_get_and_bound(self):
        memo = BoundedMemo(maxsize=2, register=False)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("c", 3)  # evicts the least recently used ("a")
        assert "a" not in memo
        assert memo.get("b") == 2 and memo.get("c") == 3
        assert len(memo) == 2

    def test_lru_recency(self):
        memo = BoundedMemo(maxsize=2, register=False)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.get("a")  # refresh "a"; "b" is now the eviction candidate
        memo.put("c", 3)
        assert "a" in memo and "b" not in memo

    def test_miss_sentinel_distinguishes_cached_none(self):
        memo = BoundedMemo(register=False)
        memo.put("k", None)
        assert memo.get("k") is None
        assert memo.get("other") is MISS


class TestThreadSafety:
    """The serving layer shares memos and STATS across worker threads."""

    def test_bounded_memo_threaded_hammer(self):
        import random
        import threading

        memo = BoundedMemo(maxsize=64, register=False)
        threads, errors = 8, []
        lookups_per_thread = 2000

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(lookups_per_thread):
                    key = rng.randrange(200)
                    value = memo.get(key)
                    if value is not MISS and value != key * 3:
                        errors.append((key, value))
                    memo.put(key, key * 3)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        stats = memo.stats()
        # every lookup was counted exactly once, despite the contention
        assert stats["hits"] + stats["misses"] == threads * lookups_per_thread
        assert len(memo) <= 64

    def test_cache_stats_incr_is_atomic(self):
        import threading

        stats = CacheStats()
        increments_per_thread = 5000

        def worker() -> None:
            for _ in range(increments_per_thread):
                stats.incr(memo_hits=1, seconds_saved=0.5)

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert stats.memo_hits == 8 * increments_per_thread
        assert stats.seconds_saved == pytest.approx(8 * increments_per_thread * 0.5)


class TestLifecycle:
    def test_registered_caches_are_cleared(self):
        memo = BoundedMemo()  # registers itself
        calls = []
        register_cache(lambda: calls.append("custom"))
        memo.put("k", 1)
        clear_all_caches()
        assert len(memo) == 0
        assert calls == ["custom"]

    def test_clear_all_resets_pipeline_memos(self):
        from repro.experiments import common
        from repro.param import derive, engine

        # Touch the pipeline so the memos are non-trivially populated.
        common.benchmark_learning("gcc")
        assert common._LEARNING_CACHE
        clear_all_caches()
        assert not common._LEARNING_CACHE
        assert not common._RUN_CACHE
        assert len(derive._TARGET_MEMO) == 0
        assert len(engine._SETUP_MEMO) == 0
        assert common.rules_full_suite.cache_info().currsize == 0

    def test_disk_survives_clear_all(self, tmp_path):
        previous_root = cache_mod.disk_cache().root
        disk = cache_mod.reset_disk_cache(tmp_path / "persist")
        try:
            disk.put("kind", "a", payload=1)
            clear_all_caches()
            assert disk.get("kind", "a") == 1
        finally:
            cache_mod.reset_disk_cache(previous_root)


class TestPipelineDiskReuse:
    def test_warm_derivation_skips_recompute(self, tmp_path):
        """A fresh process (simulated via clear_all_caches) re-deriving the
        same rule set performs zero symbolic derivations."""
        from repro.experiments.common import benchmark_learning
        from repro.param.derive import derive_rules

        previous_root = cache_mod.disk_cache().root
        cache_mod.reset_disk_cache(tmp_path / "warm")
        try:
            learned = benchmark_learning("gcc").rules
            cold = derive_rules(learned)
            clear_all_caches()
            before = STATS.snapshot()
            warm = derive_rules(learned)
            delta = STATS.delta(before)
            assert delta.derivations == 0
            assert delta.disk_hits > 0
            assert [str(r) for r in warm.derived] == [str(r) for r in cold.derived]
            assert warm.counts == cold.counts
            assert warm.target_stage == cold.target_stage
        finally:
            cache_mod.reset_disk_cache(previous_root)
            clear_all_caches()
