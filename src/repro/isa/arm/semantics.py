"""Executable semantics for the ARM-like guest ISA.

Each function takes ``(state, insn)`` and manipulates the state through the
value-domain protocol, so the same code runs concretely (interpreter) and
symbolically (verifier).  Instructions whose behaviour cannot be expressed
as straight-line dataflow over the domain (``push``/``pop``/``bl``/``bx``,
the 64-bit ``umlal``) raise :class:`VerificationError` under the symbolic
domain — exactly the instructions the paper reports as unlearnable.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.isa.instruction import Instruction
from repro.isa.operands import Label, RegList
from repro.semantics.domain import WORD_MASK


def _bit_not(st, value):
    """1-bit logical not."""
    return st.d.xor(value, st.d.const(1, 1))


def _require_concrete(st, insn: Instruction) -> None:
    if st.d.name != "concrete":
        raise VerificationError(
            f"{insn.mnemonic} has ABI/width-dependent semantics and cannot be "
            "symbolically executed"
        )


# -- ALU ----------------------------------------------------------------------


def _sources3(st, insn):
    return st.read_operand(insn.operands[1]), st.read_operand(insn.operands[2])


def make_arith(kind: str, set_flags: bool, use_carry: bool):
    """Build semantics for add/sub/rsb (+carry variants adc/sbc/rsc)."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        a, b = _sources3(st, insn)
        carry = st.get_flag("C") if use_carry else None
        if kind == "add":
            cin = carry if use_carry else d.const(0, 1)
            result, c, v = d.addc(a, b, cin)
        elif kind == "sub":
            cin = carry if use_carry else d.const(1, 1)
            result, c, v = d.addc(a, d.not_(b), cin)
        elif kind == "rsb":
            cin = carry if use_carry else d.const(1, 1)
            result, c, v = d.addc(b, d.not_(a), cin)
        else:  # pragma: no cover - table is closed
            raise AssertionError(kind)
        st.write_operand(insn.operands[0], result)
        if set_flags:
            st.set_nzcv(result, c, v)

    return sem


def make_logical(kind: str, set_flags: bool):
    """Build semantics for and/orr/eor/bic."""

    def sem(st, insn: Instruction) -> None:
        d = st.d
        a, b = _sources3(st, insn)
        if kind == "and":
            result = d.and_(a, b)
        elif kind == "orr":
            result = d.or_(a, b)
        elif kind == "eor":
            result = d.xor(a, b)
        elif kind == "bic":
            result = d.and_(a, d.not_(b))
        else:  # pragma: no cover
            raise AssertionError(kind)
        st.write_operand(insn.operands[0], result)
        if set_flags:
            st.set_nz(result)

    return sem


def make_shift(kind: str, set_flags: bool):
    def sem(st, insn: Instruction) -> None:
        d = st.d
        a, b = _sources3(st, insn)
        if kind == "lsl":
            result = d.shl(a, b)
        elif kind == "lsr":
            result = d.lshr(a, b)
        elif kind == "asr":
            result = d.ashr(a, b)
        else:  # pragma: no cover
            raise AssertionError(kind)
        st.write_operand(insn.operands[0], result)
        if set_flags:
            st.set_nz(result)

    return sem


def make_mul(set_flags: bool):
    def sem(st, insn: Instruction) -> None:
        a, b = _sources3(st, insn)
        result = st.d.mul(a, b)
        st.write_operand(insn.operands[0], result)
        if set_flags:
            st.set_nz(result)

    return sem


def make_move(invert: bool, set_flags: bool):
    """mov / mvn (2-operand)."""

    def sem(st, insn: Instruction) -> None:
        value = st.read_operand(insn.operands[1])
        if invert:
            value = st.d.not_(value)
        st.write_operand(insn.operands[0], value)
        if set_flags:
            st.set_nz(value)

    return sem


def sem_clz(st, insn: Instruction) -> None:
    value = st.read_operand(insn.operands[1])
    st.write_operand(insn.operands[0], st.d.clz(value))


def sem_mla(st, insn: Instruction) -> None:
    d = st.d
    rn = st.read_operand(insn.operands[1])
    rm = st.read_operand(insn.operands[2])
    ra = st.read_operand(insn.operands[3])
    st.write_operand(insn.operands[0], d.add(d.mul(rn, rm), ra))


def sem_umlal(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    rdlo = st.read_operand(insn.operands[0])
    rdhi = st.read_operand(insn.operands[1])
    rn = st.read_operand(insn.operands[2])
    rm = st.read_operand(insn.operands[3])
    total = ((rdhi << 32) | rdlo) + rn * rm
    st.write_operand(insn.operands[0], total & WORD_MASK)
    st.write_operand(insn.operands[1], (total >> 32) & WORD_MASK)


# -- data transfer -------------------------------------------------------------


def make_load(size: int):
    def sem(st, insn: Instruction) -> None:
        st.write_operand(insn.operands[0], st.read_operand(insn.operands[1], size))

    return sem


def make_store(size: int):
    def sem(st, insn: Instruction) -> None:
        st.write_operand(insn.operands[1], st.read_operand(insn.operands[0]), size)

    return sem


# -- compares -------------------------------------------------------------------


def sem_cmp(st, insn: Instruction) -> None:
    d = st.d
    a = st.read_operand(insn.operands[0])
    b = st.read_operand(insn.operands[1])
    result, c, v = d.addc(a, d.not_(b), d.const(1, 1))
    st.set_nzcv(result, c, v)


def sem_cmn(st, insn: Instruction) -> None:
    d = st.d
    a = st.read_operand(insn.operands[0])
    b = st.read_operand(insn.operands[1])
    result, c, v = d.addc(a, b, d.const(0, 1))
    st.set_nzcv(result, c, v)


def sem_tst(st, insn: Instruction) -> None:
    a = st.read_operand(insn.operands[0])
    b = st.read_operand(insn.operands[1])
    st.set_nz(st.d.and_(a, b))


def sem_teq(st, insn: Instruction) -> None:
    a = st.read_operand(insn.operands[0])
    b = st.read_operand(insn.operands[1])
    st.set_nz(st.d.xor(a, b))


# -- control flow ----------------------------------------------------------------


def condition_value(st, cond: str):
    """Evaluate a condition code to a 1-bit domain value from state flags."""
    d = st.d
    n, z = st.get_flag("N"), st.get_flag("Z")
    if cond == "eq":
        return z
    if cond == "ne":
        return _bit_not(st, z)
    c = st.flags.get("C")
    v = st.flags.get("V")
    if cond == "lt":
        return d.xor(n, v)
    if cond == "ge":
        return _bit_not(st, d.xor(n, v))
    if cond == "gt":
        return d.and_(_bit_not(st, z), _bit_not(st, d.xor(n, v)))
    if cond == "le":
        return d.or_(z, d.xor(n, v))
    if cond == "mi":
        return n
    if cond == "pl":
        return _bit_not(st, n)
    if cond == "cs":
        return c
    if cond == "cc":
        return _bit_not(st, c)
    if cond == "hi":
        return d.and_(c, _bit_not(st, z))
    if cond == "ls":
        return d.or_(_bit_not(st, c), z)
    if cond == "vs":
        return v
    if cond == "vc":
        return _bit_not(st, v)
    raise ValueError(f"unknown condition code {cond!r}")


def make_branch(cond):
    def sem(st, insn: Instruction) -> None:
        target = insn.operands[0]
        assert isinstance(target, Label)
        taken = st.d.const(1, 1) if cond is None else condition_value(st, cond)
        st.record_branch(taken, target)

    return sem


def sem_bl(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    target = insn.operands[0]
    assert isinstance(target, Label)
    st.record_branch(st.d.const(1, 1), target)
    # The interpreter stores the return address into lr (it knows the pc).


def sem_bx(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    st.record_branch(st.d.const(1, 1), None)  # target = register, interpreter resolves


def sem_push(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    reglist = insn.operands[0]
    assert isinstance(reglist, RegList)
    sp = st.get_reg("sp")
    for entry in reversed(reglist.regs):
        sp = (sp - 4) & WORD_MASK
        st.store(sp, st.get_reg(entry.name))
    st.set_reg("sp", sp)


def sem_pop(st, insn: Instruction) -> None:
    _require_concrete(st, insn)
    reglist = insn.operands[0]
    assert isinstance(reglist, RegList)
    sp = st.get_reg("sp")
    for entry in reglist.regs:
        st.set_reg(entry.name, st.load(sp))
        sp = (sp + 4) & WORD_MASK
    st.set_reg("sp", sp)
