"""Concrete evaluation of symbolic expressions.

Given an assignment of integer values to free symbols, compute the concrete
value of an expression.  This is the workhorse of the randomized equivalence
checker in :mod:`repro.verify.equivalence`.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt


def _to_signed(value: int, width: int) -> int:
    sign_bit = 1 << (width - 1)
    return value - (1 << width) if value & sign_bit else value


def _clz(value: int, width: int) -> int:
    for i in range(width - 1, -1, -1):
        if value & (1 << i):
            return width - 1 - i
    return width


def evaluate(expr: Expr, env: Mapping[str, int], _cache: Dict[int, int] | None = None) -> int:
    """Evaluate *expr* under *env* (symbol name -> unsigned integer value).

    The result is an unsigned integer masked to the expression's width.
    Raises :class:`KeyError` if a free symbol is missing from *env*.
    """
    if _cache is None:
        _cache = {}
    key = id(expr)
    cached = _cache.get(key)
    if cached is not None:
        return cached

    if isinstance(expr, Const):
        result = expr.value
    elif isinstance(expr, Sym):
        result = env[expr.name] & expr.mask()
    elif isinstance(expr, BinOp):
        lhs = evaluate(expr.lhs, env, _cache)
        rhs = evaluate(expr.rhs, env, _cache)
        width = expr.lhs.width
        mask = (1 << width) - 1
        op = expr.op
        if op == "add":
            result = (lhs + rhs) & mask
        elif op == "sub":
            result = (lhs - rhs) & mask
        elif op == "mul":
            result = (lhs * rhs) & mask
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = (lhs << (rhs % width)) & mask if rhs < width else 0
        elif op == "lshr":
            result = lhs >> rhs if rhs < width else 0
        elif op == "ashr":
            shift = min(rhs, width - 1)
            result = (_to_signed(lhs, width) >> shift) & mask
        elif op == "eq":
            result = int(lhs == rhs)
        elif op == "ne":
            result = int(lhs != rhs)
        elif op == "ult":
            result = int(lhs < rhs)
        elif op == "ule":
            result = int(lhs <= rhs)
        elif op == "slt":
            result = int(_to_signed(lhs, width) < _to_signed(rhs, width))
        elif op == "sle":
            result = int(_to_signed(lhs, width) <= _to_signed(rhs, width))
        else:
            raise ValueError(f"unknown binary operator: {op}")
    elif isinstance(expr, UnOp):
        operand = evaluate(expr.operand, env, _cache)
        width = expr.operand.width
        mask = (1 << width) - 1
        if expr.op == "not":
            result = ~operand & mask
        elif expr.op == "neg":
            result = -operand & mask
        elif expr.op == "clz":
            result = _clz(operand, width)
        else:
            raise ValueError(f"unknown unary operator: {expr.op}")
    elif isinstance(expr, Ite):
        cond = evaluate(expr.cond, env, _cache)
        result = evaluate(expr.then if cond else expr.orelse, env, _cache)
    elif isinstance(expr, Extract):
        operand = evaluate(expr.operand, env, _cache)
        result = (operand >> expr.lo) & expr.mask()
    elif isinstance(expr, ZeroExt):
        result = evaluate(expr.operand, env, _cache)
    else:
        raise TypeError(f"unknown expression node: {expr!r}")

    _cache[key] = result
    return result
