"""Profile-driven benchmark generator.

Generates deterministic mini-language programs from a
:class:`~repro.workloads.profiles.Profile`: an ``init`` function seeding the
global arrays with an LCG, a set of kernel functions whose loop bodies are
drawn from the profile's statement/operator/memory-style distributions, and
a ``main`` that repeatedly calls the kernels and stores checksums.

Structural properties the generator guarantees:

* every local is initialized before use, loops always terminate, and
  forward branches never skip the loop scaffold;
* flag-setting instructions are only produced adjacent to their readers
  (compare+branch, move-and-test) — flags never live across basic blocks,
  like compiler output;
* a configurable fraction of statements assign to never-read variables;
  the optimizer deletes them, reproducing statements-without-binary
  extraction losses (§II-B).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional

from repro.workloads.profiles import Profile

_RELOPS = ("<", "<=", ">", ">=", "==", "!=", "<u", ">u")
_DATA_BYTES = 4096
_FILL_BYTES = 1024


class KernelGen:
    """Generates one kernel function body.

    Public so fuzzers and tests can drive kernel generation directly (a
    mutation hook: hand in a biased profile and a seeded ``random.Random``
    and get one kernel's mini-language source back).
    """

    def __init__(self, profile: Profile, rng: random.Random, index: int) -> None:
        self.profile = profile
        self.rng = rng
        self.index = index
        self.lines: List[str] = []
        self.locals = [f"v{i}" for i in range(profile.locals_count)]
        self.label_counter = 0
        self.dead_used = False

    # -- small helpers -----------------------------------------------------

    def fresh_label(self) -> str:
        self.label_counter += 1
        return f"L{self.index}_{self.label_counter}"

    def var(self) -> str:
        return self.rng.choice(self.locals)

    def dest(self) -> str:
        return self.rng.choice(self.locals + ["acc"])

    def src(self) -> str:
        return self.rng.choice(self.locals + ["acc", "i"])

    def imm(self, op: str) -> int:
        if op in ("<<", ">>", ">>>"):
            return self.rng.randint(1, 15)
        return self.rng.randint(1, 255)

    def pick(self, weights: dict) -> str:
        items = list(weights)
        return self.rng.choices(items, weights=[weights[k] for k in items])[0]

    def emit(self, line: str) -> None:
        self.lines.append(f"  {line}")

    # -- statement emitters ---------------------------------------------------

    def _distinct(self, *exclude: str) -> str:
        candidates = [v for v in self.locals + ["acc", "i"] if v not in exclude]
        return self.rng.choice(candidates)

    def stmt_alu(self) -> None:
        op = self.pick(self.profile.op_weights)
        form = self.profile.op_form[op]
        # Immediate forms of * / &~ are folded or unsupported upstream.
        if op in ("*", "&~") and form.endswith("imm"):
            form = form[: -len("imm")] or "acc"
        if form == "acc":
            dest = self.dest()
            self.emit(f"{dest} = {dest} {op} {self._distinct(dest)};")
        elif form == "accimm":
            dest = self.dest()
            self.emit(f"{dest} = {dest} {op} {self.imm(op)};")
        elif form == "three":
            # Strictly three-operand: all registers distinct (pattern 0,1,2).
            dest = self.dest()
            lhs = self._distinct(dest)
            rhs = self._distinct(dest, lhs)
            self.emit(f"{dest} = {lhs} {op} {rhs};")
        elif form == "threeimm":
            dest = self.dest()
            self.emit(f"{dest} = {self._distinct(dest)} {op} {self.imm(op)};")
        elif form == "revacc":
            # x = y op x — the dest-equals-second-source dependency pattern
            # of paper fig. 8 (needs a copy auxiliary when derived).
            dest = self.dest()
            self.emit(f"{dest} = {self._distinct(dest)} {op} {dest};")
        elif form == "dup":
            # z = x op x (doubling and friends): both sources are the same
            # register — another fig. 8 dependency pattern.
            dest = self.dest()
            src = self._distinct(dest)
            self.emit(f"{dest} = {src} {op} {src};")
        else:
            raise ValueError(f"unknown ALU form {form!r}")

    def stmt_load(self) -> None:
        style = self.pick(self.profile.load_weights)
        array = self.rng.choice(("data", "aux"))
        dest = self.dest()
        disp = self.rng.choice((4, 8, 16, 32, 64))
        if style == "index":
            self.emit(f"{dest} = {array}[i];")
        elif style == "disp":
            self.emit(f"{dest} = {array}[i + {disp}];")
        elif style == "scaled":
            tmp = self.var()
            self.emit(f"{tmp} = i & 252;")
            self.emit(f"{dest} = {array}[{tmp}:4];")
        elif style == "byte":
            self.emit(f"{dest} = loadb({array}, i);")
        else:  # half
            self.emit(f"{dest} = loadh({array}, i);")

    def stmt_store(self) -> None:
        style = self.pick(self.profile.store_weights)
        array = "aux" if self.rng.random() < 0.8 else "out"
        src = self.src()
        disp = self.rng.choice((4, 8, 16, 32))
        if style == "index":
            self.emit(f"{array}[i] = {src};")
        elif style == "disp":
            self.emit(f"{array}[i + {disp}] = {src};")
        elif style == "byte":
            self.emit(f"storeb({array}, i, {src});")
        else:
            self.emit(f"storeh({array}, i, {src});")

    def _cond(self) -> str:
        if self.rng.random() < 0.15:
            return f"({self.src()} & {self.src()}) != 0"
        if self.rng.random() < 0.1:
            return f"({self.src()} ^ {self.src()}) == 0"
        if self.rng.random() < self.profile.cond_imm_bias:
            return f"{self.src()} {self.rng.choice(_RELOPS)} {self.rng.randint(1, 200)}"
        return f"{self.src()} {self.rng.choice(_RELOPS)} {self.src()}"

    def stmt_branch(self) -> None:
        label = self.fresh_label()
        self.emit(f"if ({self._cond()}) goto {label};")
        for _ in range(self.rng.randint(1, 2)):
            self.stmt_alu()
        self.emit(f"{label}:")

    def stmt_diamond(self) -> None:
        then_label = self.fresh_label()
        join_label = self.fresh_label()
        self.emit(f"if ({self._cond()}) goto {then_label};")
        self.stmt_alu()
        self.emit(f"goto {join_label};")
        self.emit(f"{then_label}:")
        self.stmt_alu()
        self.emit(f"{join_label}:")

    def stmt_iftest(self) -> None:
        label = self.fresh_label()
        self.emit(f"iftest (tf = {self.src()}) goto {label};")
        self.stmt_alu()
        self.emit(f"{label}:")

    def stmt_fusion(self) -> None:
        op, cond = self.profile.fusion
        dest = self.dest()
        label = self.fresh_label()
        rhs = self._distinct(dest)
        self.emit(f"fuse ({dest} {op} {rhs}) {cond} goto {label};")
        self.stmt_alu()
        self.emit(f"{label}:")

    def stmt_mla(self) -> None:
        self.emit(f"acc = acc + {self.var()} * {self.var()};")

    def stmt_unary(self) -> None:
        op = self.pick(self.profile.unary_weights)
        if op == "clz":
            self.emit(f"{self.dest()} = clz({self.src()});")
        else:
            self.emit(f"{self.dest()} = {op}{self.src()};")

    def stmt_dead(self) -> None:
        self.emit(f"dead = {self.src()} + {self.imm('+')};")
        self.dead_used = True

    # -- body ------------------------------------------------------------------

    def generate(self) -> str:
        profile = self.profile
        bound = profile.loop_iters * 4
        header = [
            f"func k{self.index}(a, b) {{",
            f"  var acc, i, tf, dead, {', '.join(self.locals)};",
            "  acc = a;",
        ]
        for j, name in enumerate(self.locals):
            seed_src = "a" if j % 2 == 0 else "b"
            header.append(f"  {name} = {seed_src} ^ {17 + 13 * j};")
        header.append("  tf = 0;")
        header.append("  i = 0;")
        header.append(f"loop{self.index}:")

        emitters = {
            "alu": self.stmt_alu,
            "load": self.stmt_load,
            "store": self.stmt_store,
            "branch": self.stmt_branch,
            "diamond": self.stmt_diamond,
            "iftest": self.stmt_iftest,
            "fusion": self.stmt_fusion,
            "mla": self.stmt_mla,
            "unary": self.stmt_unary,
        }
        for _ in range(profile.body_statements):
            if self.rng.random() < 0.05:
                self.stmt_dead()
                continue
            emitters[self.pick(profile.stmt_weights)]()
        if profile.use_umlal and self.index == 0:
            self.emit(f"umlal(acc, tf, {self.var()}, {self.var()});")

        footer = [
            "  acc = acc + tf;",
            "  i = i + 4;",
            f"  if (i <u {bound}) goto loop{self.index};",
            "  return acc;",
            "}",
        ]
        return "\n".join(header + self.lines + footer)


#: Backwards-compatible private alias.
_KernelGen = KernelGen


def _reweighted(weights: Dict[str, float], bias: Dict[str, float]) -> Dict[str, float]:
    unknown = set(bias) - set(weights)
    if unknown:
        raise ValueError(f"bias for unknown keys: {sorted(unknown)}")
    return {key: value * bias.get(key, 1.0) for key, value in weights.items()}


def mutate_profile(
    profile: Profile,
    seed: int,
    stmt_bias: Optional[Dict[str, float]] = None,
    op_bias: Optional[Dict[str, float]] = None,
) -> Profile:
    """A deterministic variant of *profile* with reweighted distributions.

    The mutation hook for coverage-guided fuzzing: multiply statement-kind
    and/or operator weights by a bias factor (``0`` disables a kind, ``>1``
    favours it) and reseed, so repeated calls explore different program
    compositions while :func:`generate_source` stays fully deterministic.
    Biases may only reference keys the profile already has — a profile
    cannot be biased toward statements its palette does not contain.
    """
    mutated = replace(
        profile,
        name=f"{profile.name}~{seed}",
        seed=profile.seed ^ (0x9E3779B1 * (seed + 1) & 0x7FFFFFFF),
    )
    if stmt_bias:
        mutated = replace(mutated, stmt_weights=_reweighted(profile.stmt_weights, stmt_bias))
    if op_bias:
        mutated = replace(mutated, op_weights=_reweighted(profile.op_weights, op_bias))
    if all(weight == 0 for weight in mutated.stmt_weights.values()):
        raise ValueError("mutation disabled every statement kind")
    return mutated


def generate_kernel(profile: Profile, seed: int, index: int = 0) -> str:
    """Generate one standalone kernel function body (fuzzing entry point)."""
    return KernelGen(profile, random.Random(seed), index).generate()


def generate_source(profile: Profile) -> str:
    """Deterministically generate a benchmark's mini-language source."""
    rng = random.Random(profile.seed)
    parts = [
        f"// synthetic stand-in for SPEC CINT 2006 {profile.name}",
        f"global data[{_DATA_BYTES}];",
        f"global aux[{_DATA_BYTES}];",
        "global out[256];",
        "",
        _init_function(profile),
    ]
    parts.append(_check_function())
    kernels = []
    for index in range(profile.kernels):
        kernels.append(KernelGen(profile, rng, index).generate())
    parts.extend(kernels)
    parts.append(_main_function(profile, rng))
    return "\n\n".join(parts) + "\n"


def _init_function(profile: Profile) -> str:
    return f"""func init() {{
  var i, v, w;
  i = 0;
  v = {profile.seed * 2654435761 % 0x7FFFFFFF};
  w = 777;
fill:
  data[i] = v;
  aux[i] = w;
  v = v * 1103515245;
  v = v + 12345;
  w = w ^ v;
  w = w + 13;
  i = i + 4;
  if (i <u {_FILL_BYTES}) goto fill;
  return;
}}"""


def _check_function() -> str:
    """A small clean checksum kernel every program shares.

    Simple utility loops like this exist in any real program; they are where
    the *common-core* rules (indexed loads, accumulating adds, compare +
    branch, moves) are learnable from every benchmark.
    """
    return """func check(seed) {
  var s, x, i;
  s = seed;
  i = 0;
chk:
  x = data[i];
  s = s + x;
  i = i + 4;
  if (i <u 64) goto chk;
  return s;
}"""


def _main_function(profile: Profile, rng: random.Random) -> str:
    lines = [
        "func main() {",
        "  var r, rep, chk;",
        "  call init();",
        "  r = 1;",
        "  rep = 0;",
        "mainloop:",
    ]
    lines.append("  r = call check(r);")
    for index in range(profile.kernels):
        lines.append(f"  r = call k{index}(r, {rng.randint(3, 9999)});")
    lines.extend(
        [
            "  rep = rep + 1;",
            f"  if (rep < {profile.repeats}) goto mainloop;",
            "  out[0] = r;",
            "  chk = r ^ 305419896;",
            "  out[4] = chk;",
            "  return r;",
            "}",
        ]
    )
    return "\n".join(lines)
