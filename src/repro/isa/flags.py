"""Condition-flag model.

Both ISAs expose the same four canonical flags so that condition-flag
delegation (paper §IV-B, §IV-D) can reason about guest/host flag
correspondence directly:

======== ============= ==============
canonical ARM (CPSR)    x86 (EFLAGS)
======== ============= ==============
``N``     N (negative)  SF (sign)
``Z``     Z (zero)      ZF (zero)
``C``     C (carry)     CF (carry)
``V``     V (overflow)  OF (overflow)
======== ============= ==============

The carry convention for subtraction is modelled identically on both sides
(carry = no-borrow); the real ARM/x86 disagreement on this point is a
constant inversion that the paper's delegation machinery would fold into the
flag mapping, so modelling them uniformly preserves the delegation behaviour
while keeping the equivalence checker simple (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import FrozenSet

FLAG_NAMES = ("N", "Z", "C", "V")

ALL_FLAGS: FrozenSet[str] = frozenset(FLAG_NAMES)
NZ: FrozenSet[str] = frozenset({"N", "Z"})
NZC: FrozenSet[str] = frozenset({"N", "Z", "C"})
NZCV: FrozenSet[str] = frozenset(FLAG_NAMES)
NO_FLAGS: FrozenSet[str] = frozenset()

#: Condition code -> the flags it reads.  Shared by both ISAs (ARM ``bne``
#: and x86 ``jne`` both read ``Z``, etc.).
CONDITION_FLAG_USES = {
    "eq": frozenset({"Z"}),
    "ne": frozenset({"Z"}),
    "lt": frozenset({"N", "V"}),
    "ge": frozenset({"N", "V"}),
    "gt": frozenset({"Z", "N", "V"}),
    "le": frozenset({"Z", "N", "V"}),
    "mi": frozenset({"N"}),
    "pl": frozenset({"N"}),
    "cs": frozenset({"C"}),
    "cc": frozenset({"C"}),
    "hi": frozenset({"Z", "C"}),
    "ls": frozenset({"Z", "C"}),
    "vs": frozenset({"V"}),
    "vc": frozenset({"V"}),
}


def condition_holds(cond: str, n: int, z: int, c: int, v: int) -> bool:
    """Evaluate a condition code against concrete flag bits."""
    if cond == "eq":
        return z == 1
    if cond == "ne":
        return z == 0
    if cond == "lt":
        return n != v
    if cond == "ge":
        return n == v
    if cond == "gt":
        return z == 0 and n == v
    if cond == "le":
        return z == 1 or n != v
    if cond == "mi":
        return n == 1
    if cond == "pl":
        return n == 0
    if cond == "cs":
        return c == 1
    if cond == "cc":
        return c == 0
    if cond == "hi":
        return c == 1 and z == 0
    if cond == "ls":
        return c == 0 or z == 1
    if cond == "vs":
        return v == 1
    if cond == "vc":
        return v == 0
    raise ValueError(f"unknown condition code: {cond}")
