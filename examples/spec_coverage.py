#!/usr/bin/env python
"""Leave-one-out coverage on the synthetic SPEC CINT 2006 stand-ins.

For a few benchmarks: learn rules from the *other eleven* programs (the
paper's protocol, §V-A), then translate and execute the held-out benchmark
under each configuration, reporting dynamic coverage and the host/guest
instruction ratio — a miniature of the paper's figures 12-14.

Run:  python examples/spec_coverage.py [benchmark ...]
"""

import sys

from repro.experiments.common import run_benchmark
from repro.param import STAGES
from repro.workloads import BENCHMARK_NAMES

DEFAULT = ("mcf", "libquantum", "h264ref")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT)
    unknown = [n for n in names if n not in BENCHMARK_NAMES]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}; pick from {BENCHMARK_NAMES}")

    header = f"{'benchmark':12s} {'stage':10s} {'coverage':>9s} {'ratio':>7s} {'cost':>10s}"
    print(header)
    print("-" * len(header))
    for name in names:
        for stage in STAGES:
            metrics = run_benchmark(name, stage)
            print(
                f"{name:12s} {stage:10s} {100 * metrics.coverage:8.1f}% "
                f"{metrics.total_ratio:7.2f} {metrics.cost():10.0f}"
            )
        print()
    print("notes:")
    print(" - w/o para corresponds to the enhanced learning baseline [16]")
    print(" - the condition stage is the full parameterized system (paper: 95.5%)")
    print(" - the manual stage adds hand-written rules for the residual seven")
    print("   instructions (paper: 100% coverage)")


if __name__ == "__main__":
    main()
