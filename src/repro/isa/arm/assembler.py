"""Text assembler / disassembler for the ARM-like guest ISA.

Accepted syntax (one instruction per line, ``@`` starts a comment)::

    .L0:
        add   r0, r1, r2
        adds  r0, r1, #5
        ldr   r0, [r1, #4]
        ldr   r0, [r1, r2]
        str   r0, [r1]
        push  {r4, r5, lr}
        bne   .L0

Label definitions become ``.label`` pseudo-instructions, resolved by
:func:`repro.isa.isa.resolve_labels`.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import AssemblyError, UnknownInstructionError
from repro.isa.arm.opcodes import ARM
from repro.isa.arm.registers import ALL_REGISTERS
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Operand, Reg, RegList

_IMM_RE = re.compile(r"^#(-?(?:0x[0-9a-fA-F]+|\d+))$")
_LABEL_DEF_RE = re.compile(r"^(\.?[A-Za-z_][\w.]*):$")


def _parse_int(text: str) -> int:
    return int(text, 0)


def parse_operand(text: str) -> Operand:
    """Parse a single ARM operand."""
    text = text.strip()
    if text in ALL_REGISTERS:
        return Reg(text)
    match = _IMM_RE.match(text)
    if match:
        return Imm(_parse_int(match.group(1)))
    if text.startswith("[") and text.endswith("]"):
        return _parse_mem(text[1:-1])
    if text.startswith("{") and text.endswith("}"):
        regs = tuple(Reg(part.strip()) for part in text[1:-1].split(","))
        for entry in regs:
            if entry.name not in ALL_REGISTERS:
                raise AssemblyError(f"unknown register in list: {entry.name!r}")
        return RegList(regs)
    if re.match(r"^\.?[A-Za-z_][\w.]*$", text):
        return Label(text)
    raise AssemblyError(f"cannot parse operand {text!r}")


def _parse_mem(inner: str) -> Mem:
    parts = [part.strip() for part in inner.split(",")]
    if not parts or not parts[0]:
        raise AssemblyError(f"empty memory operand [{inner}]")
    if parts[0] not in ALL_REGISTERS:
        raise AssemblyError(f"memory base must be a register, got {parts[0]!r}")
    base = Reg(parts[0])
    if len(parts) == 1:
        return Mem(base=base)
    if len(parts) == 2:
        second = parts[1]
        match = _IMM_RE.match(second)
        if match:
            return Mem(base=base, disp=_parse_int(match.group(1)))
        if second in ALL_REGISTERS:
            return Mem(base=base, index=Reg(second))
        raise AssemblyError(f"cannot parse memory offset {second!r}")
    raise AssemblyError(f"too many parts in memory operand [{inner}]")


def _split_operands(text: str) -> List[str]:
    """Split an operand field on commas not inside brackets/braces."""
    parts: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def parse_line(line: str) -> Instruction | None:
    """Parse one line; returns None for blank/comment-only lines."""
    line = line.split("@", 1)[0].strip()
    if not line:
        return None
    match = _LABEL_DEF_RE.match(line)
    if match:
        return Instruction(".label", (Label(match.group(1)),))
    fields = line.split(None, 1)
    mnemonic = fields[0]
    operand_text = fields[1] if len(fields) > 1 else ""
    operands = tuple(parse_operand(part) for part in _split_operands(operand_text))
    insn = Instruction(mnemonic, operands)
    ARM.validate(insn)
    return insn


def assemble(source: str) -> Tuple[Instruction, ...]:
    """Assemble a multi-line ARM listing (labels kept as pseudo-ops)."""
    instructions: List[Instruction] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            insn = parse_line(line)
        except (AssemblyError, UnknownInstructionError) as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc
        if insn is not None:
            instructions.append(insn)
    return tuple(instructions)


def disassemble(instructions: Tuple[Instruction, ...]) -> str:
    """Render instructions back to canonical text."""
    lines = []
    for insn in instructions:
        if insn.mnemonic == ".label":
            lines.append(f"{insn.operands[0]}:")
        else:
            lines.append(f"    {insn}")
    return "\n".join(lines)
