"""Concurrency battery for the pre-fork worker pool (``serve --workers N``).

Every test here boots the real thing — ``python -m repro.cli serve`` as a
subprocess, parent + forked workers accepting on one shared socket — and
attacks it the way production does:

* sustained oracle-verified load across 4 workers (every ``run`` snapshot
  diffed against the reference interpreter; zero divergences tolerated);
* a cold-start stampede of identical requests, proving the cross-process
  disk code cache admitted exactly one write (and one codegen) per block;
* SIGKILL of a worker mid-session: the parent respawns it, sibling
  workers' connections keep answering, and the exit accounting in
  ``pool.json`` records the crash;
* SIGTERM of the parent with a request in flight: fan-out drain, the
  in-flight response still arrives, exit code 0 — the single-process
  drain contract (PR 5) preserved under the pool;
* a Hypothesis property: random request interleavings across the
  2-worker pool are byte-identical to the single-process server's
  responses.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

_LISTEN_RE = re.compile(r"listening on [^:]+:(\d+)")
_READY_RE = re.compile(r"worker (\d+) ready \(pid=(\d+)\)")


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """One pipeline cache for all server subprocesses: the first boot pays
    for training, the rest warm-start from disk."""
    return tmp_path_factory.mktemp("pool-pipeline-cache")


class PoolHandle:
    """A booted serve subprocess plus its parsed log state."""

    def __init__(self, proc, log_path: Path, pool_dir: Path) -> None:
        self.proc = proc
        self.log_path = log_path
        self.pool_dir = pool_dir
        self.port: int = 0

    def log_text(self) -> str:
        try:
            return self.log_path.read_text()
        except OSError:
            return ""

    def await_log(self, predicate, timeout: float = 180.0, what: str = "pattern"):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            text = self.log_text()
            value = predicate(text)
            if value:
                return value
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"server exited (code {self.proc.returncode}) before "
                    f"{what}:\n{text}"
                )
            time.sleep(0.05)
        raise AssertionError(f"timed out waiting for {what}:\n{self.log_text()}")

    def worker_pids(self) -> dict:
        """index -> pid of the most recently announced worker per index."""
        pids = {}
        for index, pid in _READY_RE.findall(self.log_text()):
            pids[int(index)] = int(pid)
        return pids

    def pool_file(self) -> dict:
        return json.loads((self.pool_dir / "pool.json").read_text())

    def terminate(self, timeout: float = 120.0) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


def _boot(
    tmp_path: Path,
    cache_dir: Path,
    workers: int,
    name: str,
    handlers: int = 4,
    extra: tuple = (),
) -> PoolHandle:
    log_path = tmp_path / f"{name}.log"
    pool_dir = tmp_path / f"{name}-pool"
    env = dict(
        os.environ,
        REPRO_CACHE_DIR=str(cache_dir),
        PYTHONPATH=SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", ""),
    )
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--port",
        "0",
        "--workers",
        str(workers),
        "--handlers",
        str(handlers),
    ]
    argv += list(extra)
    if workers > 1:
        argv += ["--pool-dir", str(pool_dir)]
    with open(log_path, "w") as log_handle:
        proc = subprocess.Popen(
            argv, stdout=log_handle, stderr=subprocess.STDOUT, env=env
        )
    handle = PoolHandle(proc, log_path, pool_dir)
    match = handle.await_log(
        lambda text: _LISTEN_RE.search(text), what="listening banner"
    )
    handle.port = int(match.group(1))
    if workers > 1:
        handle.await_log(
            lambda text: len(_READY_RE.findall(text)) >= workers or None,
            what=f"{workers} ready workers",
        )
    return handle


# ---------------------------------------------------------------------------
# blocking JSON-lines client helpers


class Conn:
    """One persistent client connection (blocking sockets; test-side only)."""

    def __init__(self, port: int, timeout: float = 120.0) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        self.file = self.sock.makefile("rb")

    def request_raw(self, obj: dict) -> bytes:
        self.sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))
        line = self.file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line

    def request(self, obj: dict) -> dict:
        return json.loads(self.request_raw(obj))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _request(port: int, obj: dict) -> dict:
    conn = Conn(port)
    try:
        return conn.request(obj)
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# sustained verified load + cross-process stats aggregation + drain


class TestPoolUnderLoad:
    def test_loadgen_stats_sweep_and_drain(
        self, tmp_path, shared_cache_dir
    ):
        from repro.service.loadgen import (
            LoadgenOptions,
            check_loadgen_report,
            check_sweep_report,
            run_loadgen,
            run_sweep,
        )

        pool = _boot(tmp_path, shared_cache_dir, workers=4, name="load4")
        try:
            options = LoadgenOptions(
                port=pool.port,
                concurrency=6,
                duration=3.0,
                seed=11,
                fuzz_programs=2,
                benchmarks=("mcf",),
            )
            payload = run_loadgen(options)
            assert payload["requests"]["ok"] > 0
            assert payload["requests"]["errors"] == 0, payload["error_samples"]
            assert payload["oracle"]["runs_checked"] > 0
            assert payload["oracle"]["divergences"] == 0, (
                payload["oracle"]["divergence_samples"]
            )
            ok, message = check_loadgen_report(payload)
            assert ok, message

            # saturation sweep against the same pool: the curve must be
            # clean (0 errors, 0 divergences) at every client count
            sweep = run_sweep(
                LoadgenOptions(
                    port=pool.port,
                    duration=1.0,
                    seed=5,
                    fuzz_programs=1,
                    benchmarks=("mcf",),
                ),
                clients=[1, 4],
            )
            assert [p["clients"] for p in sweep["saturation"]] == [1, 4]
            ok, message = check_sweep_report(sweep)
            assert ok, message

            # cross-process stats aggregation: one request shows the pool
            time.sleep(1.0)  # let every worker's periodic flush land
            stats = _request(pool.port, {"id": "s", "op": "stats"})["result"]
            assert stats["worker"]["index"] in range(4)
            pool_section = stats["pool"]
            assert len(pool_section["workers"]) == 4
            assert len(pool_section["parent"]["workers"]) == 4
            aggregate = pool_section["aggregate"]
            assert aggregate["requests_total"] >= payload["requests"]["ok"]
            assert aggregate["disk_code"]["writes"] > 0
            assert aggregate["endpoints"]["run"]["count"] > 0

            # SIGTERM fan-out: every worker drains, parent exits 0
            assert pool.terminate() == 0
            text = pool.log_text()
            assert text.count("drained cleanly (pid=") == 4
            assert "pool drained cleanly" in text
        finally:
            pool.kill()


# ---------------------------------------------------------------------------
# cold-start stampede: exactly one disk write per block, cluster-wide


class TestColdStartStampede:
    def test_concurrent_identical_translates_write_once(
        self, tmp_path, shared_cache_dir
    ):
        import concurrent.futures

        pool = _boot(tmp_path, shared_cache_dir, workers=2, name="stampede")
        try:
            request = {"op": "translate", "benchmark": "libquantum"}
            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool_ex:
                responses = list(
                    pool_ex.map(
                        lambda i: _request(
                            pool.port, dict(request, id=f"c{i}")
                        ),
                        range(6),
                    )
                )
            assert all(r["ok"] for r in responses), responses
            blocks = responses[0]["result"]["blocks"]
            assert blocks > 0
            assert all(r["result"]["blocks"] == blocks for r in responses)

            time.sleep(1.0)  # let both workers flush their counters
            stats = _request(pool.port, {"id": "s", "op": "stats"})["result"]
            disk = stats["pool"]["aggregate"]["disk_code"]
            entries = len(
                list((pool.pool_dir / "codecache").glob("*/*.json"))
            )
            # one entry file per block, one write per entry, one codegen
            # per entry — across both processes and all six requests
            assert entries == blocks
            assert disk["writes"] == blocks
            assert disk["generations"] == blocks
            assert disk["wait_timeouts"] == 0
            # no lockfiles left behind
            assert list((pool.pool_dir / "codecache").glob("*/*.lock")) == []
            assert pool.terminate() == 0
        finally:
            pool.kill()


# ---------------------------------------------------------------------------
# worker crash: respawn, sibling isolation, exit accounting, then drain


class TestWorkerCrash:
    def test_sigkill_respawn_and_graceful_drain(
        self, tmp_path, shared_cache_dir
    ):
        pool = _boot(tmp_path, shared_cache_dir, workers=2, name="crash")
        conns = []
        try:
            ready_pids = set(pool.worker_pids().values())
            assert len(ready_pids) == 2

            # Map persistent connections to the worker pid serving them.
            by_pid = {}
            for i in range(8):
                conn = Conn(pool.port)
                conns.append(conn)
                response = conn.request({"id": f"m{i}", "op": "stats"})
                by_pid.setdefault(response["result"]["pid"], []).append(conn)
            assert set(by_pid) <= ready_pids

            # Kill a worker that serves none of our connections if there is
            # one (the idle sibling), else any one of them; either way some
            # held connections survive on the other worker.
            idle = ready_pids - set(by_pid)
            victim = idle.pop() if idle else sorted(
                by_pid, key=lambda pid: len(by_pid[pid])
            )[0]
            survivors = [
                c for pid, cs in by_pid.items() if pid != victim for c in cs
            ]
            assert survivors, "need at least one connection on a survivor"
            os.kill(victim, signal.SIGKILL)

            # Parent reaps and respawns: a new ready line for the same index
            pool.await_log(
                lambda text: "respawning" in text or None, what="respawn notice"
            )
            pool.await_log(
                lambda text: len(_READY_RE.findall(text)) >= 3 or None,
                what="respawned worker ready",
            )
            new_pids = set(pool.worker_pids().values())
            assert len(new_pids - ready_pids) == 1  # one fresh pid

            # Exit accounting: the crash is recorded with its signal
            accounting = pool.pool_file()
            crash_exits = [
                e for e in accounting["exits"] if e["pid"] == victim
            ]
            assert len(crash_exits) == 1
            assert crash_exits[0]["signal"] == signal.SIGKILL
            assert crash_exits[0]["respawned"] is True
            assert accounting["respawns"] == 1
            assert len(accounting["workers"]) == 2

            # In-flight clients on the sibling were untouched
            for i, conn in enumerate(survivors):
                response = conn.request({"id": f"p{i}", "op": "ping"})
                assert response["ok"], response
            # ... and fresh connections reach the recovered pool
            assert _request(pool.port, {"id": "f", "op": "ping"})["ok"]

            # Now the PR-5 drain contract under the pool: send a run, then
            # SIGTERM the parent while it may still be in flight — the
            # response must arrive and the pool must exit 0.
            runner = survivors[0]
            runner.sock.sendall(
                (json.dumps({"id": "inflight", "op": "run", "benchmark": "mcf"}) + "\n").encode()
            )
            time.sleep(0.2)
            pool.proc.send_signal(signal.SIGTERM)
            response = json.loads(runner.file.readline())
            assert response["id"] == "inflight" and response["ok"], response
            assert pool.proc.wait(timeout=120) == 0
            text = pool.log_text()
            assert text.count("drained cleanly (pid=") == 2
            assert "pool drained cleanly" in text
        finally:
            for conn in conns:
                conn.close()
            pool.kill()


# ---------------------------------------------------------------------------
# property: pool responses byte-identical to the single-process server


#: deterministic request specs (no stats/ping — those answer with
#: uptime/pid, which legitimately differ per process).
_OP_SPECS = (
    {"op": "translate", "benchmark": "mcf"},
    {"op": "coverage", "benchmark": "mcf"},
    {"op": "run", "benchmark": "mcf"},
    {"op": "run", "program": ["mov r0, #7", "add r0, r0, #5", "bx lr"]},
    {"op": "translate", "benchmark": "astar"},
)


#: Chaining is disabled on both equivalence servers: chain links warm up
#: inside shared cache entries across requests, which makes the run
#: metrics depend on how many prior runs a process served — correct, but
#: not byte-stable.  Without chaining every response is a pure function
#: of the request, which is exactly the property under test.
_DETERMINISTIC = ("--no-chaining",)


@pytest.fixture(scope="module")
def solo_server(tmp_path_factory, shared_cache_dir):
    handle = _boot(
        tmp_path_factory.mktemp("solo"),
        shared_cache_dir,
        workers=1,
        name="solo",
        extra=_DETERMINISTIC,
    )
    yield handle
    handle.kill()


@pytest.fixture(scope="module")
def pool_server(tmp_path_factory, shared_cache_dir):
    handle = _boot(
        tmp_path_factory.mktemp("pool2"),
        shared_cache_dir,
        workers=2,
        name="pool2",
        extra=_DETERMINISTIC,
    )
    yield handle
    handle.kill()


class TestPoolEquivalenceProperty:
    _solo_memo: dict = {}

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        steps=st.lists(
            st.tuples(
                st.integers(0, len(_OP_SPECS) - 1), st.integers(0, 1)
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_interleavings_byte_identical_to_single_process(
        self, solo_server, pool_server, steps
    ):
        """Any interleaving of requests across two pool connections (each
        possibly served by a different OS process) yields exactly the bytes
        the single-process server produces for the same requests."""
        conns = [Conn(pool_server.port), Conn(pool_server.port)]
        try:
            for op_index, conn_index in steps:
                request = dict(_OP_SPECS[op_index], id=f"op{op_index}")
                pool_raw = conns[conn_index].request_raw(request)
                solo_raw = self._solo_memo.get(op_index)
                if solo_raw is None:
                    solo_raw = _request_raw(solo_server.port, request)
                    self._solo_memo[op_index] = solo_raw
                assert pool_raw == solo_raw, (
                    f"divergent bytes for {request}:\n"
                    f"pool: {pool_raw!r}\nsolo: {solo_raw!r}"
                )
        finally:
            for conn in conns:
                conn.close()


def _request_raw(port: int, obj: dict) -> bytes:
    conn = Conn(port)
    try:
        return conn.request_raw(obj)
    finally:
        conn.close()
