"""Integration tests for the experiment harnesses.

These run against the real synthetic suite with leave-one-out learning
(cached per process), checking the structural properties each paper result
must exhibit — not exact values.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.workloads import BENCHMARK_NAMES

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    """Run the cheap experiments once."""
    return {
        ident: EXPERIMENTS[ident]()
        for ident in ("fig02", "table1", "fig12", "fig14", "fig15", "table3")
    }


class TestFig02:
    def test_monotone_growth(self, results):
        counts = results["fig02"].column("unique rules")
        assert counts == sorted(counts)

    def test_growth_flattens(self, results):
        counts = results["fig02"].column("unique rules")
        first_half = counts[5] - counts[0]
        second_half = counts[11] - counts[6]
        assert second_half < first_half


class TestTable1:
    def test_funnel_shape(self, results):
        table = results["table1"]
        for name in BENCHMARK_NAMES:
            _, statements, candidates, learned, unique = table.row_for(name)
            assert statements >= candidates >= learned >= unique > 0

    def test_candidate_rate_near_paper(self, results):
        row = results["table1"].row_for("Percent%")
        candidate_rate = float(row[2].rstrip("%"))
        assert 40 <= candidate_rate <= 65  # paper: 53.8%

    def test_learned_rate_near_paper(self, results):
        row = results["table1"].row_for("Percent%")
        learned_rate = float(row[3].rstrip("%"))
        assert 12 <= learned_rate <= 32  # paper: 22.6%


class TestCoverage:
    def test_parameterization_beats_baseline_everywhere(self, results):
        table = results["fig12"]
        for name in BENCHMARK_NAMES:
            _, baseline, full = table.row_for(name)
            assert full > baseline

    def test_average_coverage_near_paper(self, results):
        _, baseline, full = results["fig12"].row_for("average")
        assert 60 <= baseline <= 80  # paper: 69.7
        assert full >= 90  # paper: 95.5

    def test_stage_monotonicity(self, results):
        table = results["fig14"]
        for name in BENCHMARK_NAMES:
            row = table.row_for(name)[1:]
            assert list(row) == sorted(row)

    def test_h264ref_small_opcode_gain(self, results):
        """§V-B2: h264ref uses few instruction types."""
        table = results["fig14"]
        average_gain = (
            table.row_for("average")[2] - table.row_for("average")[1]
        )
        h264_gain = table.row_for("h264ref")[2] - table.row_for("h264ref")[1]
        assert h264_gain < average_gain

    def test_libquantum_condition_gain_dominates(self, results):
        """§V-B2: libquantum's loop needs condition-flag delegation."""
        table = results["fig14"]
        row = table.row_for("libquantum")
        condition_gain = row[4] - row[3]
        average_gain = (
            table.row_for("average")[4] - table.row_for("average")[3]
        )
        assert condition_gain > average_gain


class TestPerformance:
    def test_speedups_ordered(self, results):
        table = results["fig15"]
        for name in BENCHMARK_NAMES:
            row = table.row_for(name)[1:]
            assert row[-1] == max(row)
            assert all(v >= 0.95 for v in row)

    def test_headline_speedup(self, results):
        row = results["fig15"].row_for("geomean")
        assert 1.2 <= row[4] <= 1.4  # paper: 1.29
        assert row[1] < row[4]


class TestTable3:
    def test_rule_count_shape(self, results):
        table = results["table3"]
        learned = table.row_for("learned rules")[1]
        opcode = table.row_for("after opcode parameterization")[1]
        addrmode = table.row_for("after addressing-mode parameterization")[1]
        instantiated = table.row_for("instantiated (applicable) rules")[1]
        assert learned > opcode > addrmode
        assert instantiated > 10 * learned


class TestFig16Determinism:
    def test_same_seed_identical_tables(self):
        """Canonicalized training subsets: two sweeps with one seed agree.

        Regression for the unsorted-``rng.sample`` bug — equal subsets drawn
        in different orders built distinct (uncacheable) rule merges, and a
        rerun could disagree with itself once caches were involved.
        """
        from repro.experiments import fig16_training_size

        kwargs = dict(sizes=(2, 3), repetitions=2, eval_limit=1, seed=99)
        first = fig16_training_size.run(**kwargs)
        second = fig16_training_size.run(**kwargs)
        assert first.rows == second.rows

    def test_draws_are_canonical_and_seeded(self):
        from repro.experiments.fig16_training_size import _make_draws

        draws = _make_draws(sizes=(3,), repetitions=4, eval_limit=2, seed=7)
        again = _make_draws(sizes=(3,), repetitions=4, eval_limit=2, seed=7)
        assert draws == again
        for _, (train, evaluate) in draws:
            assert list(train) == sorted(train)
            assert not set(train) & set(evaluate)
