"""x86 backend of the mini compiler (the *host* side — training data only).

Host binaries are never executed; they exist to be paired with guest
binaries for rule learning.  The backend therefore aims for *realistic
shapes*, the ones that make learning easy or hard in the ways the paper
reports:

* destructive two-operand ALU form with a leading ``movl`` when the
  destination differs from both sources (the rule shape of paper fig. 6);
* ``a & ~b`` and the fused multiply-accumulate need a scratch register —
  their candidates fail the one-to-one operand-mapping check, which is
  precisely why ``bic``/``mla`` end up unlearnable (fig. 7 / §V-B2);
* ``clz`` lowers to a loop, so its candidate is never straight-line;
* global-array bases are register-cached only when a callee-saved register
  is left over, otherwise absolute addressing is used — making array-access
  rules learnable only from small functions (training-composition effects,
  §II-B).
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.isa.operands import Imm, Label, Mem, Operand, Reg
from repro.isa.x86.opcodes import _COND_TO_JCC
from repro.lang import ast
from repro.lang.codegen_base import CodegenBase

_OP_MNEMONIC = {
    "+": "addl",
    "-": "subl",
    "*": "imull",
    "&": "andl",
    "|": "orl",
    "^": "xorl",
    "<<": "shll",
    ">>": "sarl",
    ">>>": "shrl",
}

_COMMUTATIVE = {"+", "*", "&", "|", "^"}

_LOAD_MNEMONIC = {4: "movl", 2: "movzwl", 1: "movzbl"}
_STORE_MNEMONIC = {4: "movl_s", 2: "movw", 1: "movb"}

ARG_REGS = ("eax", "edx", "ecx")
RETURN_REG = "eax"


class X86Codegen(CodegenBase):
    ISA_NAME = "x86"
    LOCAL_POOL = ("ebx", "esi", "edi", "ebp", "ecx")
    TEMP_POOL = ("eax", "edx", "ecx")
    DEBUG_LOSS_RATE = 0.35

    def __init__(self, program: ast.Program, pic: bool = False) -> None:
        super().__init__(program, pic)
        self._clz_counter = 0

    # -- value access -----------------------------------------------------------

    def use(self, atom, allow_imm: bool = False) -> Operand:
        if isinstance(atom, ast.ConstE):
            if allow_imm:
                return Imm(atom.value)
            reg = self.temp()
            self.out.emit("movl", Imm(atom.value), reg)
            return reg
        if isinstance(atom, ast.VarE):
            name = atom.name
            if name in self.frame.reg_of:
                return Reg(self.frame.reg_of[name])
            reg = self.temp()
            self.out.emit(
                "movl", Mem(base=Reg("esp"), disp=self.frame.spill_of[name]), reg
            )
            return reg
        raise CodegenError(f"cannot use atom {atom!r}")

    def _place(self, atom):
        """Operand for an atom without consuming a scratch register
        (x86 folds memory operands into ALU instructions)."""
        if isinstance(atom, ast.ConstE):
            return Imm(atom.value)
        name = atom.name
        if name in self.frame.reg_of:
            return Reg(self.frame.reg_of[name])
        return Mem(base=Reg("esp"), disp=self.frame.spill_of[name])

    def _slot(self, var: str):
        if var in self.frame.reg_of:
            return Reg(self.frame.reg_of[var])
        return Mem(base=Reg("esp"), disp=self.frame.spill_of[var])

    def var_reg(self, var: str):
        """Register holding *var*, or None if spilled."""
        name = self.frame.reg_of.get(var)
        return Reg(name) if name is not None else None

    def dest(self, var: str) -> Reg:
        reg = self.var_reg(var)
        return reg if reg is not None else self.temp()

    def finish_dest(self, var: str, reg: Reg) -> None:
        if var not in self.frame.reg_of:
            self.out.emit(
                "movl_s", reg, Mem(base=Reg("esp"), disp=self.frame.spill_of[var])
            )

    def global_base(self, array: str):
        """Register caching the array base, or None (use absolute disp)."""
        allocated = self.frame.reg_of.get(f"@{array}")
        return Reg(allocated) if allocated is not None else None

    def emit_global_bases(self, func: ast.Function) -> None:
        for array in ast.arrays_used(func):
            allocated = self.frame.reg_of.get(f"@{array}")
            if allocated is not None:
                self.out.emit(
                    "movl", Imm(self.globals_layout[array]), Reg(allocated), glue=True
                )

    def addr_operand(self, array: str, index: ast.Index) -> Mem:
        base = self.global_base(array)
        addr = self.globals_layout[array]
        if isinstance(index.base, ast.ConstE):
            disp = index.base.value * index.scale + index.disp
            if base is not None:
                return Mem(base=base, disp=disp)
            return Mem(disp=addr + disp)  # absolute
        ireg = self.use(index.base)
        if base is not None:
            return Mem(base=base, index=ireg, scale=index.scale, disp=index.disp)
        return Mem(index=ireg, scale=index.scale, disp=addr + index.disp)

    # -- prologue / epilogue ------------------------------------------------------

    def emit_prologue(self, func: ast.Function) -> None:
        for name in self.frame.saved_regs:
            self.out.emit("pushl", Reg(name), glue=True)
        if self.frame.frame_size:
            self.out.emit("subl", Imm(self.frame.frame_size), Reg("esp"), glue=True)
        for i, param in enumerate(func.params):
            if i >= len(ARG_REGS):
                raise CodegenError("more than 3 parameters are not supported on x86")
            src = Reg(ARG_REGS[i])
            if param in self.frame.reg_of:
                self.out.emit("movl", src, Reg(self.frame.reg_of[param]), glue=True)
            else:
                self.out.emit(
                    "movl_s",
                    src,
                    Mem(base=Reg("esp"), disp=self.frame.spill_of[param]),
                    glue=True,
                )

    def emit_epilogue(self, func: ast.Function) -> None:
        if self.frame.frame_size:
            self.out.emit("addl", Imm(self.frame.frame_size), Reg("esp"), glue=True)
        for name in reversed(self.frame.saved_regs):
            self.out.emit("popl", Reg(name), glue=True)
        self.out.emit("ret", glue=True)

    # -- statements ------------------------------------------------------------------

    def stmt_assign(self, stmt: ast.Assign) -> None:
        expr = stmt.expr
        if isinstance(expr, (ast.ConstE, ast.VarE)):
            dest = self.dest(stmt.dest)
            src = self.use(expr, allow_imm=True)
            if src != dest:
                self.out.emit("movl", src, dest)
            self.finish_dest(stmt.dest, dest)
            return
        if isinstance(expr, ast.BinE):
            self._assign_binop(stmt.dest, expr)
            return
        if isinstance(expr, ast.UnE):
            self._assign_unop(stmt.dest, expr)
            return
        if isinstance(expr, ast.MlaE):
            self._assign_mla(stmt.dest, expr)
            return
        if isinstance(expr, ast.LoadE):
            dest = self.dest(stmt.dest)
            mem = self.addr_operand(expr.array, expr.index)
            self.out.emit(_LOAD_MNEMONIC[expr.size], mem, dest)
            self.finish_dest(stmt.dest, dest)
            return
        raise CodegenError(f"cannot compile expression {expr!r}")

    def _same_var(self, dest_var: str, atom) -> bool:
        return isinstance(atom, ast.VarE) and atom.name == dest_var

    def _assign_binop(self, dest_var: str, expr: ast.BinE) -> None:
        op = expr.op
        lhs, rhs = expr.lhs, expr.rhs
        if isinstance(lhs, ast.ConstE) and op in _COMMUTATIVE:
            lhs, rhs = rhs, lhs

        if op == "&~":
            self._assign_andnot(dest_var, lhs, rhs)
            return

        mnemonic = _OP_MNEMONIC[op]
        dest_slot = self._slot(dest_var)
        shift = op in ("<<", ">>", ">>>")

        def alu_source(loc):
            """Shift amounts cannot be memory operands; load them."""
            if shift and isinstance(loc, Mem):
                scratch = self.temp()
                self.out.emit("movl", loc, scratch)
                return scratch
            return loc

        if isinstance(lhs, ast.ConstE) and op == "-":
            # c - b: negate-and-add (d == b) or movl $c + subl.
            if self._same_var(dest_var, rhs) and isinstance(dest_slot, Reg):
                self.out.emit("negl", dest_slot)
                self.out.emit("addl", Imm(lhs.value), dest_slot)
                return
            dest = self.dest(dest_var)
            self.out.emit("movl", Imm(lhs.value), dest)
            self.out.emit("subl", alu_source(self._place(rhs)), dest)
            self.finish_dest(dest_var, dest)
            return

        if self._same_var(dest_var, lhs):
            # d = d op b: destructive form, folding a spilled destination.
            src = alu_source(self._place(rhs))
            if isinstance(src, Mem) and isinstance(dest_slot, Mem):
                scratch = self.temp()
                self.out.emit("movl", src, scratch)
                src = scratch
            self.out.emit(mnemonic, src, dest_slot)
            return
        if self._same_var(dest_var, rhs) and op in _COMMUTATIVE:
            src = self._place(lhs)
            if isinstance(src, Mem) and isinstance(dest_slot, Mem):
                scratch = self.temp()
                self.out.emit("movl", src, scratch)
                src = scratch
            self.out.emit(mnemonic, src, dest_slot)
            return
        if self._same_var(dest_var, rhs) and op == "-":
            if isinstance(dest_slot, Reg):
                self.out.emit("negl", dest_slot)
                self.out.emit("addl", alu_source(self._place(lhs)), dest_slot)
                return
            scratch = self.temp()
            self.out.emit("movl", self._place(lhs), scratch)
            self.out.emit("subl", dest_slot, scratch)
            self.out.emit("movl_s", scratch, dest_slot)
            return
        if self._same_var(dest_var, rhs):
            # d = a <shift> d: the amount lives in d — needs a scratch.
            scratch = self.temp()
            amount = self.temp()
            self.out.emit("movl", dest_slot, amount)
            self.out.emit("movl", self._place(lhs), scratch)
            self.out.emit(mnemonic, amount, scratch)
            if isinstance(dest_slot, Mem):
                self.out.emit("movl_s", scratch, dest_slot)
            else:
                self.out.emit("movl", scratch, dest_slot)
            return

        dest = self.dest(dest_var)
        self.out.emit("movl", self._place(lhs), dest)
        self.out.emit(mnemonic, alu_source(self._place(rhs)), dest)
        self.finish_dest(dest_var, dest)

    def _assign_andnot(self, dest_var: str, lhs, rhs) -> None:
        """d = lhs & ~rhs."""
        dest_slot = self._slot(dest_var)
        if self._same_var(dest_var, rhs) and isinstance(dest_slot, Reg):
            self.out.emit("notl", dest_slot)
            self.out.emit("andl", self._place(lhs), dest_slot)
            return
        # The inversion needs a scratch register either way.
        scratch = self.temp()
        self.out.emit("movl", self._place(rhs), scratch)
        self.out.emit("notl", scratch)
        self.out.emit("andl", self._place(lhs), scratch)
        if isinstance(dest_slot, Mem):
            self.out.emit("movl_s", scratch, dest_slot)
        else:
            self.out.emit("movl", scratch, dest_slot)

    def _assign_unop(self, dest_var: str, expr: ast.UnE) -> None:
        dest = self.dest(dest_var)
        if expr.op in ("~", "-"):
            mnemonic = "notl" if expr.op == "~" else "negl"
            src = self._place(expr.operand)
            if src != dest:
                self.out.emit("movl", src, dest)
            self.out.emit(mnemonic, dest)
        elif expr.op == "clz":
            # _place, not use(): the operand is only ever the source of the
            # initial movl into the clz scratch register, so spilled/constant
            # operands need no staging register of their own.  (With use(),
            # a spilled dest + spilled operand + the scratch need three
            # temps, and the pool can be down to two when ecx holds a local.)
            self._emit_clz(dest, self._place(expr.operand))
        else:
            raise CodegenError(f"unknown unary op {expr.op!r}")
        self.finish_dest(dest_var, dest)

    def _emit_clz(self, dest: Reg, source: Operand) -> None:
        """Count leading zeros via a shift loop (no bsr in this ISA)."""
        scratch = self.temp()
        self._clz_counter += 1
        loop = f"clz_loop_{self._clz_counter}"
        done = f"clz_done_{self._clz_counter}"
        self.out.emit("movl", source, scratch)
        self.out.emit("movl", Imm(32), dest)
        self.out.emit_label(loop)
        self.out.emit("testl", scratch, scratch)
        self.out.emit("je", Label(done))
        self.out.emit("shrl", Imm(1), scratch)
        self.out.emit("subl", Imm(1), dest)
        self.out.emit("jmp", Label(loop))
        self.out.emit_label(done)

    def _assign_mla(self, dest_var: str, expr: ast.MlaE) -> None:
        accumulating = self._same_var(dest_var, expr.addend)
        if accumulating:
            # d += l * r: the product needs a scratch register (which is why
            # the guest mla candidate fails the one-to-one mapping check).
            scratch = self.temp()
            self.out.emit("movl", self._place(expr.lhs), scratch)
            self.out.emit("imull", self._place(expr.rhs), scratch)
            self.out.emit("addl", scratch, self._slot(dest_var))
            return
        dest = self.dest(dest_var)
        self.out.emit("movl", self._place(expr.lhs), dest)
        self.out.emit("imull", self._place(expr.rhs), dest)
        self.out.emit("addl", self._place(expr.addend), dest)
        self.finish_dest(dest_var, dest)

    def stmt_store(self, stmt: ast.Store) -> None:
        value = self._place(stmt.value)
        if isinstance(value, Mem):
            scratch = self.temp()
            self.out.emit("movl", value, scratch)
            value = scratch
        mem = self.addr_operand(stmt.array, stmt.index)
        self.out.emit(_STORE_MNEMONIC[stmt.size], value, mem)

    def stmt_ifgoto(self, stmt: ast.IfGoto) -> None:
        cond = stmt.cond
        target = Label(self.local_label(stmt.target))
        lhs = self.use(cond.lhs)
        rhs = self.use(cond.rhs, allow_imm=True)
        if cond.kind == "rel":
            self.out.emit("cmpl", rhs, lhs)  # AT&T: cmpl b, a computes a-b
            self.out.emit(_COND_TO_JCC[ast.RELOP_TO_COND[cond.op]], target)
        elif cond.kind == "tst":
            self.out.emit("testl", rhs, lhs)
            self.out.emit("jne" if cond.op == "!=0" else "je", target)
        elif cond.kind == "teq":
            # (a ^ b) == 0 is a == b: cmpl matches the branch outcome (the N
            # flag differs from the guest teq — a delegation-relevant rule).
            self.out.emit("cmpl", rhs, lhs)
            self.out.emit("je" if cond.op == "==0" else "jne", target)
        else:
            raise CodegenError(f"unknown condition kind {cond.kind!r}")

    def stmt_iftest(self, stmt: ast.IfTestGoto) -> None:
        dest = self.dest(stmt.dest)
        src = self.use(stmt.source, allow_imm=True)
        if src != dest:
            self.out.emit("movl", src, dest)
        self.out.emit("testl", dest, dest)
        self.finish_dest(stmt.dest, dest)
        self.out.emit("jne", Label(self.local_label(stmt.target)))

    _FUSED_JCC = {"ne": "jne", "eq": "je", "mi": "js", "pl": "jns"}

    def stmt_fused(self, stmt) -> None:
        dest = self._slot(stmt.dest)  # ALU-to-memory folds if spilled
        op = stmt.op
        if op == "&~":
            scratch = self.temp()
            self.out.emit("movl", self.use(stmt.rhs), scratch)
            self.out.emit("notl", scratch)
            self.out.emit("andl", scratch, dest)
        else:
            self.out.emit(_OP_MNEMONIC[op], self.use(stmt.rhs, allow_imm=True), dest)
        self.out.emit(self._FUSED_JCC[stmt.cond], Label(self.local_label(stmt.target)))

    def stmt_goto(self, stmt: ast.Goto) -> None:
        self.out.emit("jmp", Label(self.local_label(stmt.target)))

    def stmt_call(self, stmt: ast.Call) -> None:
        if len(stmt.args) > len(ARG_REGS):
            raise CodegenError("more than 3 arguments are not supported on x86")
        for i, arg in enumerate(stmt.args):
            src = self._place(arg)
            if src != Reg(ARG_REGS[i]):
                self.out.emit("movl", src, Reg(ARG_REGS[i]))
        self.out.emit("call", Label(f"fn_{stmt.func}"))
        if stmt.dest is not None:
            dest = self.dest(stmt.dest)
            if dest.name != RETURN_REG:
                self.out.emit("movl", Reg(RETURN_REG), dest)
            self.finish_dest(stmt.dest, dest)

    def stmt_umlal(self, stmt) -> None:
        """32x32 -> 64 multiply-accumulate via half-word partial products.

        A long, scratch-hungry lowering (real x86-32 would use ``mull`` with
        its edx:eax register pair); either way the candidate cannot satisfy
        a one-to-one operand mapping, which is why ``umlal`` is unlearnable.
        """
        t0 = self.temp()
        self.out.emit("movl", self._place(stmt.lhs), t0)
        self.out.emit("imull", self._place(stmt.rhs), t0)
        self.out.emit("addl", t0, self._slot(stmt.lo))
        # Carry + high-word contribution (schematic training-side code).
        self.out.emit("shrl", Imm(16), t0)
        self.out.emit("addl", t0, self._slot(stmt.hi))

    def stmt_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self.use(stmt.value, allow_imm=True)
            if not (isinstance(value, Reg) and value.name == RETURN_REG):
                self.out.emit("movl", value, Reg(RETURN_REG))
        self.emit_epilogue(None)
