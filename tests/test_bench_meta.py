"""The shared metadata block every ``BENCH_*.json`` report carries."""

from __future__ import annotations

import json
from datetime import datetime

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    bench_metadata,
    write_json_report,
    write_report,
)
from repro.bench_offline import write_offline_report
from repro.service.loadgen import write_loadgen_report


class TestBenchMetadata:
    def test_metadata_shape(self):
        meta = bench_metadata()
        assert set(meta) == {"schema_version", "commit", "created_utc", "cpu_count"}
        assert meta["schema_version"] == BENCH_SCHEMA_VERSION
        # a 40-hex commit inside a work tree, the literal "unknown" outside
        assert meta["commit"] == "unknown" or len(meta["commit"]) == 40
        # ISO-8601 with timezone, parseable round-trip
        stamp = datetime.fromisoformat(meta["created_utc"])
        assert stamp.tzinfo is not None

    def test_write_json_report_stamps_meta(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_json_report({"results": [1, 2]}, str(path))
        payload = json.loads(path.read_text())
        assert payload["results"] == [1, 2]
        assert payload["meta"]["schema_version"] == BENCH_SCHEMA_VERSION

    def test_existing_meta_not_overwritten(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_json_report({"meta": {"schema_version": 99}}, str(path))
        payload = json.loads(path.read_text())
        assert payload["meta"] == {"schema_version": 99}

    def test_all_writers_share_the_stamp(self, tmp_path):
        """dbt, offline, and service reports all carry the same meta block."""
        writers = {
            "dbt": write_report,
            "offline": write_offline_report,
            "service": write_loadgen_report,
        }
        for name, writer in writers.items():
            path = tmp_path / f"BENCH_{name}.json"
            writer({"kind": name}, str(path))
            payload = json.loads(path.read_text())
            assert set(payload["meta"]) == {"schema_version", "commit", "created_utc", "cpu_count"}
            assert payload["kind"] == name
