"""Shape-class batched verification (register-renamed canonical checking).

Rule-candidate verification is invariant under consistent register renaming:
the mapping search binds guest registers positionally (``guest_regs[i]`` →
``Sym("v{i}")``), so two candidates that differ only in which allocatable
registers they use — the same *shape class*, in the sense of the paper's
parameterization (register operands are parameters, §IV-B) — have
verification outcomes that are images of each other under the renaming.

This module exploits that: a candidate pair is renamed to its canonical
shape (registers replaced, in first-occurrence order, by the ISA's
allocatable pool: ``r0, r1, ...`` / ``eax, ecx, ...``), the full mapping
search runs once per canonical shape, and the verdict is *rebased* through
the inverse renaming for every other member of the class.  Derivation
targets are materialized in canonical form already (`repro.param.shapes`),
so the big win is cross-phase: the learning phase verifies trace candidates
in whatever registers the binaries used, and derivation re-verifies the
same shapes in canonical registers — one search serves both.

Soundness argument (why the rebased verdict equals a direct check):

* The candidate stream (:func:`repro.verify.checker._candidate_mappings`)
  enumerates register *positions* of the first-occurrence lists, so under a
  first-occurrence renaming the k-th canonical mapping corresponds to the
  k-th original mapping.
* Every expression the search compares is over positional symbols (``v0``,
  ``F*``, ``mem*``) — register names never appear.  Lazily-materialized
  ``h_<reg>`` symbols would be name-dependent, but the probe pruning skips
  any mapping whose unmapped registers are read-before-written, so no
  surviving comparison contains one.
* Sequences touching registers outside the allocatable pool (``sp``,
  ``pc``, ``lr``) bypass canonicalization entirely and are checked
  directly.

As a defence against the argument being wrong anywhere, a deterministic
seeded sample of memo-served verdicts is additionally re-verified directly
and compared field-for-field (:func:`set_cross_check` tunes the rate; the
offline benchmark runs with sampling at 100%).  A divergence raises
:class:`~repro.errors.VerificationError` — loudly, because it would mean
derived rules could differ from direct verification.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import MISS, BoundedMemo
from repro.errors import VerificationError
from repro.isa.instruction import Instruction
from repro.isa.operands import Mem, Reg, RegList

#: Canonical verdicts keyed by (ISA names, canonical insns, wanted flags).
_SHAPE_MEMO = BoundedMemo(maxsize=4096, name="verify.shape_class")

#: 1-in-N deterministic sampling of memo-served verdicts for the direct
#: cross-check (0 disables).  The digest below is stable across processes,
#: unlike ``hash`` of a string, so a given corpus always checks the same
#: members.
_CROSS_CHECK_MOD = 16
_CROSS_CHECK_SEED = 0

_cross_checked = 0
_cross_failed = 0


def set_cross_check(mod: int, seed: int = 0) -> None:
    """Set the cross-check sampling rate to 1-in-*mod* (0 disables)."""
    global _CROSS_CHECK_MOD, _CROSS_CHECK_SEED
    _CROSS_CHECK_MOD = mod
    _CROSS_CHECK_SEED = seed


def cross_check_stats() -> Dict[str, int]:
    """How many memo-served verdicts were re-verified, and how many diverged."""
    return {"checked": _cross_checked, "failed": _cross_failed}


def _rename_operand(op, rename: Dict[str, str]):
    if isinstance(op, Reg):
        return Reg(rename[op.name])
    if isinstance(op, Mem):
        base = Reg(rename[op.base.name]) if op.base is not None else None
        index = Reg(rename[op.index.name]) if op.index is not None else None
        return Mem(base=base, index=index, disp=op.disp, scale=op.scale)
    if isinstance(op, RegList):
        return RegList(tuple(Reg(rename[r.name]) for r in op.regs))
    return op


def rename_registers(
    insns: Sequence[Instruction], rename: Dict[str, str]
) -> Tuple[Instruction, ...]:
    """Rebuild *insns* with every register operand renamed through *rename*."""
    return tuple(
        Instruction(
            insn.mnemonic,
            tuple(_rename_operand(op, rename) for op in insn.operands),
        )
        for insn in insns
    )


def _canonical_rename(regs: List[str], pool: Sequence[str]) -> Optional[Dict[str, str]]:
    """First-occurrence renaming onto *pool*; None when not renamable."""
    if len(regs) > len(pool):
        return None
    pool_set = set(pool)
    if any(r not in pool_set for r in regs):
        return None
    return {r: pool[i] for i, r in enumerate(regs)}


@dataclass(frozen=True)
class CanonicalPair:
    """A candidate pair in canonical registers, with the inverse renamings."""

    guest_insns: Tuple[Instruction, ...]
    host_insns: Tuple[Instruction, ...]
    guest_regs: List[str]
    host_regs: List[str]
    inv_guest: Dict[str, str]
    inv_host: Dict[str, str]
    identity: bool


def canonicalize_pair(
    guest_isa,
    host_isa,
    guest_insns: Tuple[Instruction, ...],
    host_insns: Tuple[Instruction, ...],
    guest_regs: List[str],
    host_regs: List[str],
) -> Optional[CanonicalPair]:
    """Canonical form of a candidate pair, or None when it must be checked
    directly (a register outside the allocatable pool is involved)."""
    g_rename = _canonical_rename(guest_regs, guest_isa.allocatable)
    if g_rename is None:
        return None
    h_rename = _canonical_rename(host_regs, host_isa.allocatable)
    if h_rename is None:
        return None
    identity = all(k == v for k, v in g_rename.items()) and all(
        k == v for k, v in h_rename.items()
    )
    return CanonicalPair(
        guest_insns=guest_insns if identity else rename_registers(guest_insns, g_rename),
        host_insns=host_insns if identity else rename_registers(host_insns, h_rename),
        guest_regs=[g_rename[r] for r in guest_regs],
        host_regs=[h_rename[r] for r in host_regs],
        inv_guest={v: k for k, v in g_rename.items()},
        inv_host={v: k for k, v in h_rename.items()},
        identity=identity,
    )


def _rebase(result, inv_guest: Dict[str, str], inv_host: Dict[str, str]):
    """A fresh CheckResult with registers mapped back to the member's names."""
    from repro.verify.checker import CheckResult

    if result.reg_mapping is None:
        return CheckResult(False, reason=result.reason)
    return CheckResult(
        equivalent=result.equivalent,
        reg_mapping={
            inv_guest[g]: inv_host[h] for g, h in result.reg_mapping.items()
        },
        host_temps=tuple(inv_host[t] for t in result.host_temps),
        flag_status=dict(result.flag_status),
        reason=result.reason,
    )


def _sampled(guest_insns, host_insns) -> bool:
    if not _CROSS_CHECK_MOD:
        return False
    text = "|".join(str(i) for i in guest_insns) + "||" + "|".join(
        str(i) for i in host_insns
    )
    digest = zlib.crc32(f"{_CROSS_CHECK_SEED}:{text}".encode())
    return digest % _CROSS_CHECK_MOD == 0


def _results_agree(a, b) -> bool:
    return (
        a.equivalent == b.equivalent
        and a.reg_mapping == b.reg_mapping
        and a.host_temps == b.host_temps
        and a.flag_status == b.flag_status
        and a.reason == b.reason
    )


def check_shape_class(
    guest_isa,
    host_isa,
    guest_insns: Tuple[Instruction, ...],
    host_insns: Tuple[Instruction, ...],
    guest_regs: List[str],
    host_regs: List[str],
    wanted_flags: frozenset,
    search: Callable,
):
    """Run *search* once per canonical shape; rebase the verdict per member.

    *search* is the full mapping search
    (:func:`repro.verify.checker._search_mappings_fast`); it is invoked with
    the canonical pair on a memo miss, and bypassed (served from the memo)
    otherwise.  Pairs that cannot be canonicalized fall through to a direct
    search.
    """
    global _cross_checked, _cross_failed

    pair = canonicalize_pair(
        guest_isa, host_isa, guest_insns, host_insns, guest_regs, host_regs
    )
    if pair is None:
        return search(
            guest_isa, host_isa, guest_insns, host_insns,
            guest_regs, host_regs, wanted_flags,
        )

    key = (guest_isa.name, host_isa.name, pair.guest_insns, pair.host_insns,
           wanted_flags)
    result = _SHAPE_MEMO.get(key)
    if result is MISS:
        result = search(
            guest_isa, host_isa, pair.guest_insns, pair.host_insns,
            pair.guest_regs, pair.host_regs, wanted_flags,
        )
        _SHAPE_MEMO.put(key, result)
    elif _sampled(guest_insns, host_insns):
        # Soundness guard: re-verify this member directly and require the
        # rebased class verdict to match field-for-field.
        direct = search(
            guest_isa, host_isa, guest_insns, host_insns,
            guest_regs, host_regs, wanted_flags,
        )
        rebased = _rebase(result, pair.inv_guest, pair.inv_host)
        _cross_checked += 1
        if not _results_agree(direct, rebased):
            _cross_failed += 1
            raise VerificationError(
                "shape-class verdict diverges from direct verification for "
                f"{[str(i) for i in guest_insns]} vs "
                f"{[str(i) for i in host_insns]}"
            )
        return rebased
    return _rebase(result, pair.inv_guest, pair.inv_host)
