"""Tests for the two compiler backends.

The master property: for any program, executing the compiled *guest* binary
on the reference interpreter produces the values a direct Python evaluation
of the source produces.  Statement alignment between the backends is the
second pillar (it is what rule learning consumes).
"""

import pytest

from repro.dbt.guest_interp import GuestInterpreter
from repro.isa.arm.opcodes import ARM
from repro.lang import compile_pair
from repro.lang.program import GLOBALS_BASE


def run_guest(source: str, name: str = "t", pic: bool = False):
    pair = compile_pair(name, source, pic=pic)
    result = GuestInterpreter(pair.guest).run()
    return pair, result


def out_word(pair, result, offset: int = 0) -> int:
    return result.state.load(pair.guest.globals_layout["out"] + offset)


class TestExpressionCodegen:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("9 + 4", 13),
            ("9 - 4", 5),
            ("4 - a", 4 - 7 & 0xFFFFFFFF),
            ("a * 3", 21),
            ("a & 5", 5),
            ("a | 8", 15),
            ("a ^ 1", 6),
            ("a << 2", 28),
            ("a >> 1", 3),
            ("a >>> 1", 3),
            ("a &~ 2", 5),
        ],
    )
    def test_binops(self, expr, expected):
        source = f"""global out[8];
        func main() {{ var a, r; a = 7; r = {expr}; out[0] = r; return r; }}"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == expected & 0xFFFFFFFF

    def test_unary_ops(self):
        source = """global out[16];
        func main() {
          var a, x, y, z;
          a = 12;
          x = ~a;
          y = -a;
          z = clz(a);
          out[0] = x; out[4] = y; out[8] = z;
          return x;
        }"""
        pair, result = run_guest(source)
        assert out_word(pair, result, 0) == ~12 & 0xFFFFFFFF
        assert out_word(pair, result, 4) == -12 & 0xFFFFFFFF
        assert out_word(pair, result, 8) == 28

    def test_mla_fusion_used_and_correct(self):
        source = """global out[8];
        func main() { var a, b, s; a = 3; b = 4; s = 100; s = s + a * b; out[0] = s; return s; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 112
        assert any(i.mnemonic == "mla" for i in pair.guest.real_instructions)

    def test_memory_sizes(self):
        source = """global g[64]; global out[16];
        func main() {
          var i, x;
          i = 8;
          g[i] = 305419896;
          x = loadb(g, i);
          out[0] = x;
          x = loadh(g, i);
          out[4] = x;
          storeb(g, i, 255);
          x = g[i];
          out[8] = x;
          return x;
        }"""
        pair, result = run_guest(source)
        assert out_word(pair, result, 0) == 0x78
        assert out_word(pair, result, 4) == 0x5678
        assert out_word(pair, result, 8) == 0x123456FF

    def test_scaled_index(self):
        source = """global g[64]; global out[8];
        func main() { var i, x; i = 3; g[12] = 77; x = g[i:4]; out[0] = x; return x; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 77


class TestControlFlow:
    def test_loop(self):
        source = """global out[8];
        func main() { var i, s; i = 0; s = 0;
        loop: s = s + i; i = i + 1; if (i < 5) goto loop;
        out[0] = s; return s; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 10

    def test_diamond(self):
        source = """global out[8];
        func main() { var a, r; a = 3; r = 0;
        if (a > 2) goto big; r = 1; goto done;
        big: r = 2;
        done: out[0] = r; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 2

    def test_iftest_idiom(self):
        source = """global out[8];
        func main() { var a, t, r; a = 5; r = 1;
        iftest (t = a) goto nz; r = 0;
        nz: out[0] = r; out[4] = t; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result, 0) == 1
        assert out_word(pair, result, 4) == 5
        assert any(i.mnemonic == "movs" for i in pair.guest.real_instructions)

    def test_fused_alu_branch(self):
        source = """global out[8];
        func main() { var a, r; a = 6; r = 1;
        fuse (a & 8) ne goto nz; r = 0;
        nz: out[0] = r; out[4] = a; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result, 0) == 0  # 6 & 8 == 0: not taken
        assert out_word(pair, result, 4) == 0
        assert any(i.mnemonic == "ands" for i in pair.guest.real_instructions)

    def test_unsigned_compare(self):
        source = """global out[8];
        func main() { var a, r; a = 0 - 1; r = 0;
        if (a >u 10) goto big; r = 1; goto done; big: r = 2;
        done: out[0] = r; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 2

    def test_calls_and_returns(self):
        source = """global out[8];
        func double(x) { var r; r = x + x; return r; }
        func main() { var r; r = call double(21); out[0] = r; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 42

    def test_nested_calls_preserve_callee_saved(self):
        source = """global out[8];
        func leaf(x) { var a, b, c; a = x + 1; b = a + 1; c = b + 1; return c; }
        func mid(x) { var keep, r; keep = x * 7; r = call leaf(x); r = r + keep; return r; }
        func main() { var r; r = call mid(3); out[0] = r; return r; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == 3 * 7 + 6

    def test_umlal_statement(self):
        source = """global out[8];
        func main() { var lo, hi, a, b;
          lo = 4294967295; hi = 1; a = 65536; b = 65536;
          umlal(lo, hi, a, b);
          out[0] = lo; out[4] = hi; return lo; }"""
        pair, result = run_guest(source)
        assert out_word(pair, result, 0) == 0xFFFFFFFF
        assert out_word(pair, result, 4) == 2


class TestStatementAlignment:
    SOURCE = """global g[64]; global out[8];
    func main() {
      var i, s, x;
      i = 0; s = 0;
    loop:
      x = g[i];
      s = s + x;
      g[i] = s;
      i = i + 4;
      if (i < 32) goto loop;
      out[0] = s;
      return s;
    }"""

    def test_backends_share_statement_ids(self):
        pair = compile_pair("t", self.SOURCE)
        guest_ids = {t for t in pair.guest.real_tags if t is not None}
        host_ids = {t for t in pair.host.real_tags if t is not None}
        # Modulo deterministic debug-info loss, ids come from one numbering.
        assert guest_ids <= set(pair.statements)
        assert host_ids <= set(pair.statements)

    def test_glue_untagged(self):
        pair = compile_pair("t", self.SOURCE)
        for insn, tag in zip(pair.guest.real_instructions, pair.guest.real_tags):
            if insn.mnemonic in ("push", "pop", "bx"):
                assert tag is None

    def test_spans_are_contiguous_for_simple_statements(self):
        pair = compile_pair("t", self.SOURCE)
        for indices in pair.guest.statement_spans().values():
            assert indices == list(range(indices[0], indices[-1] + 1))


class TestPic:
    SOURCE = """global g[64]; global out[8];
    func main() { var i, x; i = 4; g[i] = 9; x = g[i]; out[0] = x; return x; }"""

    def test_pic_uses_pc_relative_bases(self):
        pair, result = run_guest(self.SOURCE, pic=True)
        pc_adds = [
            i
            for i in pair.guest.real_instructions
            if i.mnemonic == "add" and any(getattr(o, "name", "") == "pc" for o in i.operands)
        ]
        assert pc_adds, "PIC compilation should materialize bases PC-relatively"
        assert out_word(pair, result) == 9

    def test_pic_and_non_pic_agree(self):
        _, plain = run_guest(self.SOURCE, pic=False)
        _, pic = run_guest(self.SOURCE, pic=True)
        assert plain.state.regs["r0"] == pic.state.regs["r0"]


class TestFrameSpills:
    def test_many_locals_spill_and_still_compute(self):
        decls = ", ".join(f"v{i}" for i in range(12))
        assigns = "\n".join(f"v{i} = {i + 1};" for i in range(12))
        total = "\n".join(f"s = s + v{i};" for i in range(12))
        source = f"""global out[8];
        func main() {{ var s, {decls}; s = 0;\n{assigns}\n{total}\nout[0] = s; return s; }}"""
        pair, result = run_guest(source)
        assert out_word(pair, result) == sum(range(1, 13))
        assert any(
            i.mnemonic in ("ldr", "str")
            and any(getattr(getattr(o, "base", None), "name", "") == "sp" for o in i.operands)
            for i in pair.guest.real_instructions
        ), "expected stack spills with 13 locals"
