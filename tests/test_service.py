"""Tests for the translation-as-a-service subsystem (``repro.service``).

Covers the sharded rule index (lookup parity with the flat RuleSet), the
single-flight code cache (coalescing, failure retry, eviction accounting),
latency histograms, the asyncio server's protocol/robustness guarantees
(malformed-request isolation, backpressure, timeouts, graceful drain), the
run endpoint's oracle parity, and a short in-process loadgen run.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time

import pytest

from repro.service import protocol
from repro.service.codecache import SingleFlightCodeCache
from repro.service.server import ServiceConfig, TranslationService, start_server
from repro.service.shards import ShardedRuleIndex, shard_of
from repro.service.stats import EndpointStats, LatencyHistogram


@pytest.fixture(scope="session")
def service_setup():
    """The quick two-benchmark training setup servers are booted with."""
    from repro.difftest.oracle import training_setup

    return training_setup()


# ---------------------------------------------------------------------------
# sharded rule index


class TestShardedRuleIndex:
    def test_shard_of_is_stable_and_bounded(self):
        assert shard_of("add", 8) == shard_of("add", 8)
        assert all(0 <= shard_of(m, 5) < 5 for m in ("add", "sub", "ldr", "b"))

    def test_rejects_bad_shard_count(self, demo_rules):
        with pytest.raises(ValueError):
            ShardedRuleIndex(demo_rules.freeze(), num_shards=0)

    def test_translation_parity_with_flat_ruleset(self, demo_pair, demo_setup):
        """Sharded lookup must reproduce the flat index's choices exactly."""
        from repro.dbt.block import BlockMap
        from repro.dbt.translator import BlockTranslator

        base = demo_setup.configs["condition"]
        index = ShardedRuleIndex(base.rules, num_shards=8)
        assert len(index) == len(base.rules)
        assert index.max_guest_length() == base.rules.max_guest_length()
        assert index.frozen

        unit = demo_pair.guest
        blockmap = BlockMap(unit)
        flat = BlockTranslator(unit, blockmap, base)
        sharded = BlockTranslator(
            unit, BlockMap(unit), dataclasses.replace(base, rules=index)
        )
        for block in blockmap.blocks:
            a = flat.translate(block)
            b = sharded.translate(block)
            assert [str(i) for i in a.host] == [str(i) for i in b.host]
            assert a.covered == b.covered
        assert index.lookups() > 0

    def test_stats_shape(self, demo_setup):
        index = ShardedRuleIndex(demo_setup.configs["condition"].rules, 4)
        stats = index.stats()
        assert stats["num_shards"] == 4
        assert stats["rules"] == len(index)
        assert len(stats["shards"]) == 4
        assert sum(s["rules"] for s in stats["shards"]) == stats["rules"]
        for shard in stats["shards"]:
            # every mnemonic in a shard must actually hash there
            for mnemonic in shard["mnemonics"]:
                assert shard_of(mnemonic, 4) == shard["shard"]
            assert shard["opcode_classes"] == sorted(set(shard["opcode_classes"]))

    def test_lookup_counters(self, demo_setup):
        from repro.isa.arm import assemble as arm_assemble

        index = ShardedRuleIndex(demo_setup.configs["condition"].rules, 4)
        window = tuple(arm_assemble("add r0, r1, r2"))
        index.lookup(window)
        index.lookup(())
        assert index.lookups() == 1  # empty windows don't touch a shard


# ---------------------------------------------------------------------------
# single-flight code cache


class TestSingleFlightCodeCache:
    def test_concurrent_requests_compile_once(self):
        cache = SingleFlightCodeCache()
        calls = []

        def compile_fn():
            calls.append(1)
            time.sleep(0.05)  # hold the flight open so others coalesce
            return "entry"

        async def body():
            return await asyncio.gather(
                *(cache.get_or_compile(("k",), compile_fn) for _ in range(5))
            )

        results = asyncio.run(body())
        assert results == ["entry"] * 5
        assert len(calls) == 1
        assert cache.compiles == 1
        assert cache.coalesced == 4

    def test_failed_compile_propagates_and_key_retries(self):
        cache = SingleFlightCodeCache()
        attempts = []

        def compile_fn():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("boom")
            return "ok"

        async def body():
            with pytest.raises(RuntimeError, match="boom"):
                await cache.get_or_compile(("k",), compile_fn)
            return await cache.get_or_compile(("k",), compile_fn)

        assert asyncio.run(body()) == "ok"
        assert len(attempts) == 2

    def test_lru_eviction_accounting(self):
        cache = SingleFlightCodeCache(maxsize=2)
        cache.publish("a", 1)
        cache.publish("b", 2)
        assert cache.get("a") == 1  # touch: "b" is now LRU
        cache.publish("c", 3)
        assert cache.evictions == 1
        assert cache.peek("b") is None
        assert cache.peek("a") == 1 and cache.peek("c") == 3
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1

    def test_hit_rate(self):
        cache = SingleFlightCodeCache()
        cache.publish("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("nope") is None
        assert cache.stats()["hit_rate"] == 0.5


# ---------------------------------------------------------------------------
# latency histograms


class TestStats:
    def test_histogram_percentiles_bracket_observations(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 4, 100):
            hist.observe(ms / 1e3)
        summary = hist.summary()
        assert summary["count"] == 5
        # p50 falls within one 35%-wide bucket of the true median (3ms)
        assert 2.0 <= summary["p50_ms"] <= 3.0 * 1.35
        assert summary["p99_ms"] <= summary["max_ms"] == 100.0
        assert summary["mean_ms"] == pytest.approx(22.0, rel=0.01)

    def test_histogram_empty(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0 and summary["p99_ms"] == 0.0

    def test_endpoint_stats_counts(self):
        stats = EndpointStats()
        stats.observe("run", 0.01, ok=True)
        stats.observe("run", 0.02, ok=False)
        stats.observe("ping", 0.001, ok=True)
        summary = stats.summary()
        assert summary["run"]["ok"] == 1 and summary["run"]["errors"] == 1
        assert summary["ping"]["count"] == 1


# ---------------------------------------------------------------------------
# server-level tests (in-process asyncio server per test)


async def _connect(port):
    return await asyncio.open_connection(
        "127.0.0.1", port, limit=protocol.MAX_LINE_BYTES
    )


async def _rpc(reader, writer, obj):
    writer.write(protocol.encode(obj))
    await writer.drain()
    return json.loads(await reader.readline())


class TestServiceServer:
    def test_ping_translate_and_stats(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=4), setup=service_setup
            )
            try:
                reader, writer = await _connect(server.port)
                pong = await _rpc(reader, writer, {"id": 1, "op": "ping"})
                assert pong["ok"] and pong["result"]["pong"]
                assert pong["result"]["protocol_version"] == protocol.PROTOCOL_VERSION

                t = await _rpc(
                    reader, writer, {"id": 2, "op": "translate", "benchmark": "mcf"}
                )
                assert t["ok"]
                assert t["result"]["blocks"] > 0
                assert 0.0 < t["result"]["static_coverage"] <= 1.0

                st = await _rpc(reader, writer, {"id": 3, "op": "stats"})
                assert st["ok"]
                result = st["result"]
                assert result["requests"]["total"] >= 2
                assert result["code_cache"]["compiles"] > 0
                assert "condition" in result["rule_index"]
                assert result["server"]["connections"] == 1
                assert "process" in result["caches"]  # shared serializer payload
                writer.close()
            finally:
                await server.aclose()

        asyncio.run(body())

    def test_run_matches_interpreter_oracle(self, service_setup):
        from repro.difftest.oracle import diff_snapshots
        from repro.dbt.guest_interp import GuestInterpreter
        from repro.service.loadgen import _normalize_snapshot
        from repro.workloads import compiled_benchmark

        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=2), setup=service_setup
            )
            try:
                reader, writer = await _connect(server.port)
                response = await _rpc(
                    reader, writer, {"id": "r", "op": "run", "benchmark": "mcf"}
                )
                assert response["ok"], response
                writer.close()
                return response["result"]
            finally:
                await server.aclose()

        result = asyncio.run(body())
        reference = (
            GuestInterpreter(compiled_benchmark("mcf").guest)
            .run()
            .architectural_snapshot()
        )
        divergence = diff_snapshots(reference, _normalize_snapshot(result["snapshot"]))
        assert divergence is None, f"{divergence.kind}: {divergence.detail}"
        assert result["metrics"]["guest_dynamic"] > 0

    def test_concurrent_identical_translates_single_flight(self, service_setup):
        """Two concurrent identical requests: byte-identical responses and
        exactly one compilation per unique block (the coalescing proof the
        issue asks for)."""
        from repro.dbt.compiler import add_compile_listener, remove_compile_listener

        compiled_starts = []
        listener = lambda tb: compiled_starts.append(tb.start)  # noqa: E731

        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=4), setup=service_setup
            )
            try:
                request = {"id": "same", "op": "translate", "benchmark": "libquantum"}

                async def one():
                    reader, writer = await _connect(server.port)
                    writer.write(protocol.encode(request))
                    await writer.drain()
                    raw = await reader.readline()
                    writer.close()
                    return raw

                lines = await asyncio.gather(one(), one())
                return lines, server.service.code_cache.stats()
            finally:
                await server.aclose()

        add_compile_listener(listener)
        try:
            (line_a, line_b), cache_stats = asyncio.run(body())
        finally:
            remove_compile_listener(listener)
        assert line_a == line_b  # byte-identical
        response = json.loads(line_a)
        assert response["ok"]
        blocks = response["result"]["blocks"]
        # exactly one compile per unique block key, despite two requests
        assert len(compiled_starts) == blocks
        assert len(set(compiled_starts)) == blocks
        assert cache_stats["compiles"] == blocks

    def test_malformed_request_isolation(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=2), setup=service_setup
            )
            try:
                reader, writer = await _connect(server.port)
                # not JSON at all
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert not response["ok"]
                assert response["error"]["code"] == "bad-json"
                # a JSON array, not an object
                writer.write(b"[1, 2]\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["error"]["code"] == "bad-request"
                # an object with an unknown op (id echoed back)
                response = await _rpc(reader, writer, {"id": 7, "op": "nope"})
                assert response["id"] == 7
                assert response["error"]["code"] == "unknown-op"
                # missing benchmark AND program
                response = await _rpc(reader, writer, {"id": 8, "op": "run"})
                assert response["error"]["code"] == "bad-request"
                # unknown benchmark
                response = await _rpc(
                    reader, writer, {"id": 9, "op": "run", "benchmark": "nope"}
                )
                assert response["error"]["code"] == "bad-program"
                # ... and the connection still serves fine afterwards
                response = await _rpc(reader, writer, {"id": 10, "op": "ping"})
                assert response["ok"]
                writer.close()
            finally:
                await server.aclose()

        asyncio.run(body())

    def test_debug_sleep_hidden_without_flag(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=1), setup=service_setup
            )
            try:
                reader, writer = await _connect(server.port)
                response = await _rpc(
                    reader, writer, {"id": 1, "op": "_sleep", "seconds": 0}
                )
                assert response["error"]["code"] == "unknown-op"
                writer.close()
            finally:
                await server.aclose()

        asyncio.run(body())

    def test_backpressure_when_queue_full(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=1, max_queue=1, debug_ops=True),
                setup=service_setup,
            )
            try:
                reader, writer = await _connect(server.port)
                # r1 occupies the single worker; r2 fills the queue; r3 is
                # rejected with a retryable backpressure error.
                writer.write(protocol.encode({"id": 1, "op": "_sleep", "seconds": 0.4}))
                await writer.drain()
                await asyncio.sleep(0.15)  # let the worker dequeue r1
                writer.write(protocol.encode({"id": 2, "op": "_sleep", "seconds": 0}))
                writer.write(protocol.encode({"id": 3, "op": "ping"}))
                await writer.drain()
                responses = [json.loads(await reader.readline()) for _ in range(3)]
                by_id = {r["id"]: r for r in responses}
                rejected = by_id[3]
                assert rejected["error"]["code"] == "backpressure"
                assert rejected["error"]["retryable"] is True
                assert by_id[1]["ok"] and by_id[2]["ok"]
                assert server.stats()["backpressure_rejections"] == 1
                writer.close()
            finally:
                await server.aclose()

        asyncio.run(body())

    def test_per_request_timeout(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(
                    port=0, handlers=1, request_timeout=0.2, debug_ops=True
                ),
                setup=service_setup,
            )
            try:
                reader, writer = await _connect(server.port)
                response = await _rpc(
                    reader, writer, {"id": 1, "op": "_sleep", "seconds": 30}
                )
                assert response["error"]["code"] == "timeout"
                assert response["error"]["retryable"] is True
                # server still alive afterwards
                response = await _rpc(reader, writer, {"id": 2, "op": "ping"})
                assert response["ok"]
                writer.close()
            finally:
                await server.aclose()

        asyncio.run(body())

    def test_graceful_drain_answers_queued_requests(self, service_setup):
        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=1, debug_ops=True),
                setup=service_setup,
            )
            reader, writer = await _connect(server.port)
            writer.write(protocol.encode({"id": 1, "op": "_sleep", "seconds": 0.3}))
            await writer.drain()
            await asyncio.sleep(0.1)  # request admitted before the drain
            drain = asyncio.create_task(server.drain())
            response = json.loads(await reader.readline())
            assert response["ok"] and response["id"] == 1  # answered, not dropped
            await drain
            await server.wait_closed()
            assert server.stats()["draining"]
            # new connections are refused once the listener is closed
            with pytest.raises((ConnectionError, OSError)):
                await _connect(server.port)

        asyncio.run(body())

    def test_custom_program_runs(self, service_setup):
        program = ["mov r0, #7", "add r0, r0, #5", "bx lr"]

        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=2), setup=service_setup
            )
            try:
                reader, writer = await _connect(server.port)
                response = await _rpc(
                    reader, writer, {"id": 1, "op": "run", "program": program}
                )
                writer.close()
                return response
            finally:
                await server.aclose()

        response = asyncio.run(body())
        assert response["ok"], response
        assert response["result"]["unit"].startswith("prog:")
        assert response["result"]["snapshot"]["regs"]["r0"] == 12


# ---------------------------------------------------------------------------
# loadgen (in-process, short)


class TestLoadgen:
    def test_loadgen_smoke_zero_divergences(self, service_setup, tmp_path):
        from repro.service.loadgen import (
            LoadgenOptions,
            check_loadgen_report,
            render_loadgen_report,
            run_loadgen_async,
            write_loadgen_report,
        )

        async def body():
            server = await start_server(
                ServiceConfig(port=0, handlers=4), setup=service_setup
            )
            try:
                options = LoadgenOptions(
                    port=server.port,
                    concurrency=3,
                    duration=1.2,
                    seed=7,
                    fuzz_programs=2,
                    benchmarks=("mcf",),
                    out=str(tmp_path / "BENCH_service.json"),
                )
                payload = await run_loadgen_async(options)
                return options, payload
            finally:
                await server.aclose()

        options, payload = asyncio.run(body())
        assert payload["requests"]["ok"] > 0
        assert payload["requests"]["errors"] == 0
        assert payload["oracle"]["divergences"] == 0
        assert payload["oracle"]["runs_checked"] > 0
        assert payload["server_stats"] is not None
        ok, message = check_loadgen_report(payload)
        assert ok, message
        rendered = render_loadgen_report(payload)
        assert "0 divergences" in rendered
        write_loadgen_report(payload, options.out)
        with open(options.out) as handle:
            on_disk = json.load(handle)
        assert on_disk["meta"]["schema_version"] == 1
        # server_stats carries the ruleset identity, so the meta writer
        # stamps the serving version/digest the measurement is attributable to
        assert set(on_disk["meta"]) == {
            "schema_version", "commit", "created_utc", "cpu_count",
            "ruleset_version", "ruleset_digest",
        }
        assert on_disk["meta"]["ruleset_version"] == "builtin:quick"

    def test_check_fails_on_errors_or_divergences(self):
        from repro.service.loadgen import check_loadgen_report

        base = {
            "requests": {"ok": 10, "errors": 0, "backpressure_retries": 0},
            "oracle": {"divergences": 0, "runs_checked": 5},
            "throughput_rps": 1.0,
        }
        assert check_loadgen_report(base)[0]
        bad = {**base, "requests": {**base["requests"], "errors": 2}}
        assert not check_loadgen_report(bad)[0]
        bad = {**base, "oracle": {**base["oracle"], "divergences": 1}}
        assert not check_loadgen_report(bad)[0]
        bad = {**base, "requests": {**base["requests"], "ok": 0}}
        assert not check_loadgen_report(bad)[0]
