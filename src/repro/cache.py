"""Content-addressed on-disk cache + process-wide cache lifecycle.

Everything expensive in the pipeline — per-benchmark rule learning, symbolic
verification of derivation targets, whole rule-set derivation — is memoized
at two levels:

* an **in-memory** level (bounded :class:`BoundedMemo` instances and the
  ``lru_cache``-decorated helpers in :mod:`repro.experiments.common`), all
  registered with the lifecycle registry here so that
  :func:`clear_all_caches` resets every one of them in one call;
* an **on-disk** level (:class:`DiskCache`), content-addressed: the key of
  an entry is a SHA-256 digest over a *kind* tag, the
  :data:`PIPELINE_VERSION` stamp, and the JSON-serialized inputs (e.g. the
  learned rule-set dump and the guest-target string).  Entries therefore
  survive process boundaries and are shared between parallel workers, and
  any change to the derivation/verification semantics is invalidated by
  bumping the version stamp.

Disk entries are plain JSON (reusing the serialization in
:mod:`repro.learning.store`), written atomically (temp file + rename) so a
crashed or concurrent writer can never leave a truncated entry behind.  A
corrupted or version-stale entry is treated as a miss and recomputed — never
an error.

Observability: every level counts hits/misses (and derivations performed)
in the module-wide :data:`STATS`, surfaced by ``repro cache stats`` and in
per-experiment reports.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Bump whenever learning/derivation/verification semantics change: every
#: on-disk entry is stamped with this and a mismatch is a cache miss.
#: v2: hash-consed symir + comparison-op self-folds + checker restructure.
PIPELINE_VERSION = "mwl-cache-v2"

#: Sentinel distinguishing "cached None" from "not cached".
MISS = object()


# ---------------------------------------------------------------------------
# Statistics


@dataclass
class CacheStats:
    """Hit/miss/time counters for both cache levels (process-wide).

    Counters are mutated through :meth:`incr` under an internal lock: the
    serving layer (:mod:`repro.service`) runs translation and compilation
    on worker threads, so two threads bumping ``memo_hits`` concurrently
    must never lose an increment.
    """

    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    #: symbolic derivations actually performed (cache-miss work).
    derivations: int = 0
    #: wall-clock seconds of recorded compute skipped thanks to disk hits.
    seconds_saved: float = 0.0

    def __post_init__(self) -> None:
        # Not a dataclass field: asdict()/snapshot() must only see counters.
        self._lock = threading.Lock()

    def incr(self, **deltas: float) -> None:
        """Atomically add the given deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return asdict(self)

    def snapshot(self) -> "CacheStats":
        return CacheStats(**self.as_dict())

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after the *since* snapshot."""
        old = since.as_dict()
        return CacheStats(**{k: v - old[k] for k, v in self.as_dict().items()})

    def reset(self) -> None:
        fresh = CacheStats()
        with self._lock:
            for key in asdict(self):
                setattr(self, key, getattr(fresh, key))

    def summary(self) -> str:
        return (
            f"disk {self.disk_hits} hits / {self.disk_misses} misses, "
            f"memo {self.memo_hits} hits / {self.memo_misses} misses, "
            f"{self.derivations} derivations, "
            f"~{self.seconds_saved:.1f}s recompute avoided"
        )


#: Process-wide counters (parallel workers keep their own copies).
STATS = CacheStats()


def reset_stats() -> None:
    STATS.reset()


# ---------------------------------------------------------------------------
# Cache lifecycle registry


_CLEARERS: List[Callable[[], None]] = []


def register_cache(clearer: Callable[[], None]) -> Callable[[], None]:
    """Register an in-memory cache's clear function with the lifecycle API.

    Returns the clearer so it can be used as a decorator-style one-liner.
    """
    _CLEARERS.append(clearer)
    return clearer


def clear_all_caches() -> None:
    """Reset every registered **in-memory** cache (disk entries persist).

    Long-lived processes call this to bound memory or to force recomputation
    after mutating global configuration; it replaces the ad-hoc module
    globals the caches grew out of.
    """
    for clearer in _CLEARERS:
        clearer()


# ---------------------------------------------------------------------------
# Bounded in-memory memo


#: Named memos, in registration order; ``repro cache stats`` walks this to
#: show per-memo hit/miss/size counters alongside the process-wide totals.
MEMO_REGISTRY: List["BoundedMemo"] = []


def memo_registry() -> List["BoundedMemo"]:
    """All :class:`BoundedMemo` instances created with a ``name``."""
    return list(MEMO_REGISTRY)


class BoundedMemo:
    """A small LRU dict for per-process memoization.

    Unlike a bare module-global dict it (a) has a bound, so long-lived
    processes cannot grow it without limit, (b) registers itself with
    :func:`clear_all_caches`, and (c) when given a ``name`` shows up with
    per-memo hit/miss/size counters in ``repro cache stats``.

    Thread-safe: lookups, inserts, eviction, and the hit/miss counters are
    all guarded by one lock, so concurrent hammering from service worker
    threads keeps ``hits + misses`` equal to the number of lookups and the
    LRU order consistent (no lost updates, no dict-resize races).
    """

    def __init__(
        self, maxsize: int = 4096, register: bool = True, name: Optional[str] = None
    ) -> None:
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        if register:
            register_cache(self.clear)
        if name is not None:
            MEMO_REGISTRY.append(self)

    def get(self, key: Any, default: Any = MISS) -> Any:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                STATS.incr(memo_misses=1)
                return default
            self._data.move_to_end(key)
            self.hits += 1
        STATS.incr(memo_hits=1)
        return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> Dict[str, Any]:
        """Observability payload for ``repro cache stats``."""
        with self._lock:
            return {
                "name": self.name or "<anonymous>",
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }


# ---------------------------------------------------------------------------
# On-disk cache


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* atomically (temp file in-dir + rename).

    The one atomic-publish discipline shared by every on-disk cache in the
    repo (the derivation :class:`DiskCache` here and the serving layer's
    :mod:`repro.service.diskcode`): a reader can observe the old entry or
    the complete new entry, never a truncated one, no matter how many
    processes write concurrently or crash mid-write.  Raises ``OSError``
    on filesystem failure; callers decide whether that disables
    persistence or propagates.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def digest_key(kind: str, *parts: Any) -> str:
    """Content digest of a cache key: kind + version stamp + JSON'd parts."""
    payload = json.dumps(
        [kind, PIPELINE_VERSION, list(parts)], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class DiskCache:
    """Content-addressed JSON entry store under one root directory."""

    def __init__(self, root: Optional[os.PathLike] = None, enabled: bool = True) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-mwl"
            )
        self.root = Path(root)
        self.enabled = enabled and not os.environ.get("REPRO_CACHE_DISABLE")

    # -- key/path helpers ---------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest[:2]}" / f"{digest}.json"

    # -- entry API ----------------------------------------------------------

    def get(self, kind: str, *parts: Any) -> Any:
        """Payload for (kind, parts), or :data:`MISS`.

        A missing, corrupted, or version-stale entry is a miss; the caller
        recomputes (and re-puts) — corruption is never an error.
        """
        if not self.enabled:
            return MISS
        path = self._path(digest_key(kind, *parts))
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            STATS.incr(disk_misses=1)
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("version") != PIPELINE_VERSION
            or entry.get("kind") != kind
            or "payload" not in entry
        ):
            STATS.incr(disk_misses=1)
            return MISS
        STATS.incr(disk_hits=1, seconds_saved=float(entry.get("elapsed") or 0.0))
        return entry["payload"]

    def put(self, kind: str, *parts: Any, payload: Any, elapsed: float = 0.0) -> None:
        """Store a JSON payload atomically (temp file + rename)."""
        if not self.enabled:
            return
        path = self._path(digest_key(kind, *parts))
        entry = {
            "version": PIPELINE_VERSION,
            "kind": kind,
            "elapsed": round(elapsed, 6),
            "payload": payload,
        }
        try:
            atomic_write_text(path, json.dumps(entry))
        except OSError:
            return  # a read-only or full cache dir disables persistence only
        STATS.incr(disk_writes=1)

    # -- maintenance --------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from self.root.glob("*/*.json")

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


_DISK: Optional[DiskCache] = None


def disk_cache() -> DiskCache:
    """The process-wide disk cache (created lazily from the environment)."""
    global _DISK
    if _DISK is None:
        _DISK = DiskCache()
    return _DISK


def reset_disk_cache(
    root: Optional[os.PathLike] = None, enabled: bool = True
) -> DiskCache:
    """Point the process-wide disk cache somewhere else (tests, CLI)."""
    global _DISK
    _DISK = DiskCache(root, enabled=enabled)
    return _DISK


# ---------------------------------------------------------------------------
# Shared observability serializer


def stats_payload(include_disk: bool = True) -> Dict[str, Any]:
    """One JSON-serializable snapshot of every cache layer.

    The single serializer behind both ``repro cache stats --json`` and the
    service ``stats`` endpoint, so the two can never drift apart.  With
    ``include_disk=False`` the (filesystem-walking) disk entry census is
    skipped — the serving hot path asks for stats far more often than the
    CLI does.
    """
    from repro.dbt.trace import TRACE_STATS
    from repro.learning.hotindex import TIER0_STATS
    from repro.symir.expr import intern_table_size

    cache = disk_cache()
    payload: Dict[str, Any] = {
        "directory": str(cache.root),
        "enabled": cache.enabled,
        "process": STATS.as_dict(),
        "interned_exprs": intern_table_size(),
        "memos": [memo.stats() for memo in memo_registry()],
        "trace_tier": TRACE_STATS.snapshot(),
        "tier0": TIER0_STATS.snapshot(),
    }
    if include_disk:
        payload["disk_entries"] = cache.entry_count()
        payload["disk_bytes"] = cache.total_bytes()
    return payload
