"""Figure 11: performance normalized to QEMU 4.1.

Paper: parameterization reaches 1.29x over QEMU on average (geomean),
1.24x over the enhanced learning baseline.
"""

from __future__ import annotations

from repro.dbt.metrics import speedup
from repro.experiments.common import geomean, run_benchmark
from repro.experiments.report import ExperimentResult
from repro.workloads import BENCHMARK_NAMES


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="fig11",
        title="Fig. 11 — speedup over QEMU (cost model)",
        headers=("benchmark", "qemu", "w/o para.", "para."),
    )
    baseline_speedups, para_speedups = [], []
    for name in BENCHMARK_NAMES:
        qemu = run_benchmark(name, "qemu")
        wopara = speedup(qemu, run_benchmark(name, "wopara"))
        para = speedup(qemu, run_benchmark(name, "condition"))
        baseline_speedups.append(wopara)
        para_speedups.append(para)
        result.add(name, 1.0, wopara, para)
    result.add("geomean", 1.0, geomean(baseline_speedups), geomean(para_speedups))
    result.note("paper geomeans: w/o para ~1.04x, para ~1.29x over QEMU")
    return result
