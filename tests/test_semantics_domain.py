"""Tests for the value-domain layer: concrete/symbolic agreement."""

import pytest
from hypothesis import given, strategies as st

from repro.semantics.domain import CONCRETE, SYMBOLIC, WORD_MASK
from repro.symir import Const, evaluate

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
BIT = st.integers(min_value=0, max_value=1)

_BINARY = ("add", "sub", "mul", "and_", "or_", "xor", "shl", "lshr", "ashr", "eq", "ult")
_UNARY = ("not_", "neg", "clz")


class TestConcreteDomain:
    def test_addc_plain(self):
        result, carry, overflow = CONCRETE.addc(2, 3, 0)
        assert (result, carry, overflow) == (5, 0, 0)

    def test_addc_carry_out(self):
        result, carry, _ = CONCRETE.addc(WORD_MASK, 1, 0)
        assert (result, carry) == (0, 1)

    def test_addc_carry_in(self):
        result, _, _ = CONCRETE.addc(1, 1, 1)
        assert result == 3

    def test_addc_signed_overflow(self):
        _, _, overflow = CONCRETE.addc(0x7FFFFFFF, 1, 0)
        assert overflow == 1

    def test_sub_via_addc_no_borrow_convention(self):
        # a - b == a + ~b + 1; carry==1 means "no borrow".
        result, carry, _ = CONCRETE.addc(5, CONCRETE.not_(3), 1)
        assert (result, carry) == (2, 1)
        result, carry, _ = CONCRETE.addc(3, CONCRETE.not_(5), 1)
        assert (result, carry) == ((3 - 5) & WORD_MASK, 0)

    def test_bit(self):
        assert CONCRETE.bit(0x80000000, 31) == 1
        assert CONCRETE.bit(0x80000000, 0) == 0

    def test_truth(self):
        assert CONCRETE.truth(1) is True
        assert CONCRETE.truth(0) is False


class TestSymbolicMatchesConcrete:
    @pytest.mark.parametrize("op", _BINARY)
    @given(a=U32, b=U32)
    def test_binary_agreement(self, op, a, b):
        concrete = getattr(CONCRETE, op)(a, b)
        symbolic = getattr(SYMBOLIC, op)(Const(a), Const(b))
        assert evaluate(symbolic, {}) == concrete

    @pytest.mark.parametrize("op", _UNARY)
    @given(a=U32)
    def test_unary_agreement(self, op, a):
        concrete = getattr(CONCRETE, op)(a)
        symbolic = getattr(SYMBOLIC, op)(Const(a))
        assert evaluate(symbolic, {}) == concrete

    @given(a=U32, b=U32, cin=BIT)
    def test_addc_agreement(self, a, b, cin):
        c_res, c_carry, c_over = CONCRETE.addc(a, b, cin)
        s_res, s_carry, s_over = SYMBOLIC.addc(Const(a), Const(b), Const(cin, 1))
        assert evaluate(s_res, {}) == c_res
        assert evaluate(s_carry, {}) == c_carry
        assert evaluate(s_over, {}) == c_over

    @given(c=BIT, a=U32, b=U32)
    def test_ite_agreement(self, c, a, b):
        concrete = CONCRETE.ite(c, a, b)
        symbolic = SYMBOLIC.ite(Const(c, 1), Const(a), Const(b))
        assert evaluate(symbolic, {}) == concrete

    def test_symbolic_truth_raises_on_nonconstant(self):
        from repro.symir import Sym

        with pytest.raises(ValueError):
            SYMBOLIC.truth(Sym("x", 1))
