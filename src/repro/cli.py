"""Command-line interface.

Usage::

    repro list                      # available experiments
    repro run fig12                 # reproduce one table/figure
    repro run all --jobs 4          # reproduce everything, 4 worker processes
    repro suite                     # workload suite summary
    repro rules [--benchmark NAME] [--out FILE]   # learn + dump rules
    repro translate NAME [--stage condition] [--backend jit]  # one DBT run
    repro bench [--quick] [--check]               # backend benchmark harness
    repro cache stats [--json]      # on-disk pipeline cache overview
    repro cache clear               # drop disk + in-memory caches
    repro serve [--port 9477]       # translation-as-a-service TCP server
    repro loadgen [--duration 10]   # drive a server; oracle-verified report
    repro pipeline run              # corpus→learn→derive→verify→publish

Every experiment prints the same rows the paper reports, with a note giving
the paper's numbers for comparison.  ``--jobs N`` (0 = all CPUs) fans the
expensive phases — target derivation and the leave-one-out sweep — out over
worker processes; results are byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_list(_args) -> int:
    from repro.experiments import EXPERIMENTS

    print("available experiments:")
    for ident, runner in EXPERIMENTS.items():
        doc = (runner.__module__.split(".")[-1]).replace("_", " ")
        print(f"  {ident:8s} {doc}")
    return 0


def _cmd_run(args) -> int:
    from repro.cache import STATS
    from repro.experiments import EXPERIMENTS
    from repro.experiments.charts import render_chart

    idents = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in idents if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for ident in idents:
        started = time.time()
        before = STATS.snapshot()
        result = EXPERIMENTS[ident]()
        if args.chart and ident == "fig16":
            from repro.experiments.charts import render_series

            print(
                render_series(
                    result.title,
                    xs=[row[0] for row in result.rows],
                    series={
                        "w/o para.": [row[1] for row in result.rows],
                        "para.": [row[2] for row in result.rows],
                    },
                )
            )
        elif args.chart and ident.startswith("fig"):
            print(render_chart(result))
        else:
            print(result.format())
        print(f"[{ident} completed in {time.time() - started:.1f}s]")
        print(f"[cache: {STATS.delta(before).summary()}]")
        print()
    return 0


def _cmd_cache(args) -> int:
    from repro.cache import (
        STATS,
        clear_all_caches,
        disk_cache,
        memo_registry,
        stats_payload,
    )
    from repro.symir.expr import intern_table_size

    cache = disk_cache()
    if args.action == "clear":
        removed = cache.clear()
        clear_all_caches()
        print(f"cleared {removed} disk entries under {cache.root} "
              "(and all in-memory caches)")
        return 0
    if getattr(args, "json", False):
        import json

        print(json.dumps(stats_payload(), indent=2, sort_keys=True))
        return 0
    print(f"cache directory : {cache.root}")
    print(f"enabled         : {cache.enabled}")
    print(f"disk entries    : {cache.entry_count()}")
    print(f"disk bytes      : {cache.total_bytes()}")
    print(f"this process    : {STATS.summary()}")
    print(f"interned exprs  : {intern_table_size()}")
    print("in-memory memos (this process):")
    for memo in memo_registry():
        stats = memo.stats()
        print(
            f"  {stats['name']:24s} {stats['hits']:6d} hits "
            f"{stats['misses']:6d} misses  "
            f"size {stats['size']}/{stats['maxsize']}"
        )
    from repro.dbt.trace import TRACE_STATS

    trace = TRACE_STATS.snapshot()
    print("trace tier (this process):")
    print(f"  formed {trace['formed']}  failed {trace['form_failed']}  "
          f"retired {trace['retired']}")
    print(f"  entries {trace['entries']}  iterations {trace['iterations']}  "
          f"guard exits {trace['guard_exits']}")
    print(f"  source cache: {trace['source_cache_hits']} hits, "
          f"{trace['source_cache_stores']} stores")
    from repro.learning.hotindex import TIER0_STATS

    tier0 = TIER0_STATS.snapshot()
    print("tier-0 hot index (this process):")
    print(f"  loads {tier0['loads']}  rules {tier0['rules']}  "
          f"coverage {100 * tier0['coverage']:.1f}%")
    print(f"  resolved {tier0['resolved_rules']}  dropped {tier0['dropped_rules']}")
    print(f"  lookups: {tier0['tier0_hits']} tier-0, "
          f"{tier0['fallback_hits']} fallback, {tier0['misses']} miss")
    return 0


def _cmd_verify(args) -> int:
    """Verify a rule candidate given guest and host assembly."""
    from repro.isa.arm import assemble as arm_assemble
    from repro.isa.arm.opcodes import ARM
    from repro.isa.x86 import assemble as x86_assemble
    from repro.isa.x86.opcodes import X86
    from repro.verify import check_equivalence

    guest = arm_assemble(args.guest.replace(";", "\n"))
    host = x86_assemble(args.host.replace(";", "\n"))
    result = check_equivalence(ARM, X86, guest, host, allow_temps=args.temps)
    print(f"equivalent      : {result.equivalent}")
    print(f"dataflow ok     : {result.dataflow_ok}")
    if result.reg_mapping is not None:
        print(f"register mapping: {result.reg_mapping}")
        print(f"scratch regs    : {list(result.host_temps)}")
        print(f"flag status     : {result.flag_status}")
    else:
        print(f"rejected        : {result.reason}")
    return 0 if result.equivalent else 1


def _cmd_suite(_args) -> int:
    from repro.experiments.report import format_table
    from repro.workloads import suite_summary

    rows = [
        (name, info["statements"], info["guest_instructions"], info["host_instructions"])
        for name, info in suite_summary().items()
    ]
    print(
        format_table(
            "Synthetic SPEC CINT 2006 suite",
            ("benchmark", "statements", "guest insns", "host insns"),
            rows,
        )
    )
    return 0


def _cmd_rules(args) -> int:
    from repro.experiments.common import benchmark_learning, rules_full_suite
    from repro.learning import dump_rules

    if args.benchmark:
        rules = benchmark_learning(args.benchmark).rules
    else:
        rules = rules_full_suite()
    text = dump_rules(rules)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(rules)} rules to {args.out}")
    else:
        print(text)
    return 0


def _cmd_losses(_args) -> int:
    """Aggregate learning-funnel loss reasons across the suite (§II-B)."""
    from repro.experiments.common import suite_stats
    from repro.experiments.report import format_table

    extraction: dict = {}
    verification: dict = {}
    for stats in suite_stats():
        for reason, count in stats.extraction_losses.items():
            extraction[reason] = extraction.get(reason, 0) + count
        for reason, count in stats.verification_losses.items():
            verification[reason] = verification.get(reason, 0) + count
    rows = [("extraction", r, c) for r, c in sorted(extraction.items(), key=lambda kv: -kv[1])]
    rows += [("verification", r, c) for r, c in sorted(verification.items(), key=lambda kv: -kv[1])]
    print(
        format_table(
            "Learning-funnel losses (whole suite)",
            ("stage", "reason", "statements"),
            rows,
        )
    )
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import origin_attribution, ruleset_stats, top_rules
    from repro.experiments.common import run_benchmark, setup_excluding

    metrics = run_benchmark(args.benchmark, args.stage)
    print(origin_attribution(metrics).format())
    print()
    print(top_rules(metrics, count=args.top).format())
    if args.ruleset:
        print()
        setup = setup_excluding(args.benchmark)
        print(ruleset_stats(setup.configs[args.stage].rules).format())
    return 0


def _cmd_translate(args) -> int:
    tier0_stats = None
    if args.tier0 and not args.no_tier0:
        metrics, tier0_stats = _translate_tier0(args)
    else:
        from repro.experiments.common import run_benchmark

        metrics = run_benchmark(args.benchmark, args.stage, backend=args.backend)
    print(f"benchmark          : {args.benchmark}")
    print(f"configuration      : {args.stage}")
    print(f"backend            : {args.backend}")
    print(f"guest instructions : {metrics.guest_dynamic}")
    print(f"dynamic coverage   : {100 * metrics.coverage:.2f}%")
    print(f"host/guest ratio   : {metrics.total_ratio:.2f}")
    for category in ("rule", "tcg", "data", "control"):
        print(f"  {category:16s} : {metrics.ratio(category):.2f}")
    print(f"blocks translated  : {metrics.blocks_translated}")
    print(f"block executions   : {metrics.block_executions}")
    print(f"simulated cost     : {metrics.cost():.0f}")
    if tier0_stats is not None:
        print(f"tier-0 rules       : {tier0_stats['rules']} "
              f"(coverage {100 * tier0_stats['coverage']:.1f}%, "
              f"digest {tier0_stats['digest'][:12]})")
        print(f"tier-0 lookups     : {tier0_stats['tier0_hits']} hot, "
              f"{tier0_stats['fallback_hits']} fallback, "
              f"{tier0_stats['misses']} miss")
    return 0


def _translate_tier0(args):
    """One DBT run with the rule index fronted by a tier-0 artifact.

    Uses the artifact's own training corpus (not the leave-one-out rules),
    validates against the reference interpreter, and reports the front's
    hit counters alongside the usual metrics.
    """
    import dataclasses

    from repro.dbt import DBTEngine, check_against_reference
    from repro.errors import ExecutionError
    from repro.learning.distill import (
        hot_index_for,
        load_artifact,
        setup_for_training,
    )
    from repro.workloads import compiled_benchmark

    payload = load_artifact(args.tier0)
    setup = setup_for_training(payload.get("training", "quick"))
    config = setup.configs[args.stage]
    hot = hot_index_for(payload, config.rules)
    pair = compiled_benchmark(args.benchmark)
    engine = DBTEngine(
        pair.guest,
        dataclasses.replace(config, rules=hot),
        backend=args.backend,
    )
    result = engine.run()
    ok, message = check_against_reference(pair.guest, result)
    if not ok:
        raise ExecutionError(
            f"{args.benchmark}/{args.stage}: tier-0 execution diverged: {message}"
        )
    return result.metrics, hot.stats()


def _cmd_distill(args) -> int:
    """Distill a tier-0 hot-ruleset artifact from workload profiling."""
    from repro.learning.distill import distill, setup_for_training, write_artifact
    from repro.workloads import BENCHMARK_NAMES

    if args.benchmarks:
        names = [part.strip() for part in args.benchmarks.split(",") if part.strip()]
        unknown = [name for name in names if name not in BENCHMARK_NAMES]
        if unknown:
            print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    else:
        names = list(BENCHMARK_NAMES)
    log = None if args.quiet else (lambda message: print(f"# {message}"))
    if log:
        log(f"training rules: {args.training}; profiling {len(names)} benchmarks "
            f"under {args.backend}/{args.stage}")
    setup = setup_for_training(args.training)
    config = setup.configs[args.stage]
    payload = distill(
        config,
        stage=args.stage,
        benchmarks=names,
        training=args.training,
        backend=args.backend,
        coverage_target=args.coverage,
        max_rules=args.max_rules,
    )
    write_artifact(payload, args.out)
    print(f"stage              : {payload['stage']}")
    print(f"profiled           : {len(payload['profiled'])} benchmarks")
    print(f"source rules       : {payload['source_rules']}")
    print(f"tier-0 rules       : {len(payload['rules'])}")
    print(f"dynamic coverage   : {100 * payload['coverage']:.2f}% "
          f"(target {100 * payload['coverage_target']:.0f}%)")
    print(f"observed hits      : {payload['total_hits']}")
    print(f"digest             : {payload['digest']}")
    print(f"artifact           : {args.out}")
    return 0


def _cmd_bench(args) -> int:
    """Benchmark the execution backends and write ``BENCH_dbt.json``."""
    if args.offline:
        return _cmd_bench_offline(args)
    if args.service:
        return _cmd_bench_service(args)
    if args.distill:
        return _cmd_bench_distill(args)
    from repro.bench import check_report, render_report, run_bench, write_report

    configs = None
    if args.configs:
        configs = [part.strip() for part in args.configs.split(",") if part.strip()]
    log = None if args.quiet else (lambda message: print(f"# {message}"))
    baseline = _load_baseline(args.out) if args.check else None
    try:
        payload = run_bench(
            repeats=args.repeats, quick=args.quick, log=log, configs=configs
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(payload))
    write_report(payload, args.out)
    print(f"report: {args.out}")
    if args.check:
        ok, message = check_report(payload, baseline=baseline)
        print(f"check: {message}")
        return 0 if ok else 1
    return 0


def _load_baseline(path: str):
    """The previous on-disk bench report, for regression gating (or None)."""
    import json
    import os

    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _cmd_bench_distill(args) -> int:
    """Tier-0 A/B harness + byte-identical-translation parity gate."""
    from repro.bench_distill import (
        check_distill_report,
        render_distill_report,
        run_distill_bench,
        write_distill_report,
    )

    log = None if args.quiet else (lambda message: print(f"# {message}"))
    payload = run_distill_bench(
        repeats=args.repeats,
        quick=args.quick,
        tier0_path=args.tier0 or None,
        log=log,
    )
    print(render_distill_report(payload))
    offline_path, service_path = write_distill_report(payload)
    print(f"report: {offline_path} (distill section) + {service_path} "
          "(tier0_lookup section)")
    if args.check:
        ok, message = check_distill_report(payload)
        print(f"check: {message}")
        return 0 if ok else 1
    return 0


def _cmd_bench_offline(args) -> int:
    """Benchmark the offline pipeline and write ``BENCH_offline.json``."""
    from repro.bench_offline import (
        check_offline_report,
        render_offline_report,
        run_offline_bench,
        write_offline_report,
    )

    log = None if args.quiet else (lambda message: print(f"# {message}"))
    payload = run_offline_bench(repeats=args.repeats, quick=args.quick, log=log)
    print(render_offline_report(payload))
    out = args.out if args.out != "BENCH_dbt.json" else "BENCH_offline.json"
    write_offline_report(payload, out)
    print(f"report: {out}")
    if args.check:
        ok, message = check_offline_report(payload)
        print(f"check: {message}")
        return 0 if ok else 1
    return 0


def _cmd_bench_service(args) -> int:
    """Per-worker-count saturation curves; writes ``BENCH_service.json``."""
    from repro.bench import (
        check_service_report,
        render_service_report,
        run_service_bench,
        write_report,
    )

    log = None if args.quiet else (lambda message: print(f"# {message}"))
    if args.quick:
        workers, clients, duration = (1, 2), (1, 2, 4), 1.5
    else:
        workers, clients, duration = (1, 2, 4, 8), (1, 2, 4, 8, 16), 3.0
    payload = run_service_bench(
        workers=workers, clients=clients, duration=duration, log=log
    )
    print(render_service_report(payload))
    out = args.out if args.out != "BENCH_dbt.json" else "BENCH_service.json"
    write_report(payload, out)
    print(f"report: {out}")
    if args.check:
        ok, message = check_service_report(payload)
        print(f"check: {message}")
        return 0 if ok else 1
    return 0


def _cmd_difftest(args) -> int:
    """Coverage-guided differential fuzzing of the full DBT pipeline."""
    from repro.difftest import DifftestOptions, run_difftest

    options = DifftestOptions(
        seed=args.seed,
        programs=args.programs,
        stage=args.stage,
        fault=args.fault,
        backend=args.backend,
        corpus_dir=args.corpus_dir,
        max_shrinks=args.max_shrinks,
        time_budget=args.time_budget,
    )
    log = None if args.quiet else (lambda message: print(f"# {message}"))
    report = run_difftest(options, log=log)
    print(report.render(), end="")
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report: {args.json}")
    if args.fault:
        # Self-check mode: the planted fault *must* be found.
        return 0 if report.failures else 1
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """Run the translation service (newline-delimited JSON over TCP)."""
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        stage=args.stage,
        training=args.training,
        shards=args.shards,
        cache_blocks=args.cache_blocks,
        max_queue=args.max_queue,
        handlers=args.handlers,
        request_timeout=args.timeout,
        disk_code_dir=args.code_cache_dir,
        chaining=not args.no_chaining,
        backend=args.backend,
        tier0_path=None if args.no_tier0 else args.tier0,
        ruleset_store=args.ruleset_store,
        watch_interval=args.watch_interval,
    )
    if args.workers > 1 or args.pool_dir:
        from repro.service import PoolConfig, serve_pool

        return serve_pool(
            PoolConfig(
                workers=args.workers,
                service=config,
                directory=args.pool_dir,
            )
        )
    return serve(config)


def _cmd_pipeline(args) -> int:
    """Staged corpus→learn→derive→verify→publish with artifact skipping."""
    import json

    from repro.errors import ReproError
    from repro.pipeline import Pipeline, PipelineConfig

    benchmarks = None
    if args.benchmarks:
        benchmarks = tuple(
            part for part in args.benchmarks.split(",") if part
        )
    pipeline = Pipeline(
        PipelineConfig(
            workdir=args.workdir,
            store_dir=args.store,
            training=args.training,
            benchmarks=benchmarks,
            verify_programs=args.verify_programs,
            verify_seed=args.verify_seed,
            backend=args.backend,
        )
    )

    if args.action == "status":
        payload = pipeline.status()
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"workdir : {payload['workdir']}")
        print(f"latest  : {payload['latest'] or '(none published)'}")
        store = payload["store"]
        print(f"store   : {store['versions']} versions, {store['bodies']} bodies")
        print(f"artifacts: {payload['artifacts']['entries']} entries")
        last = payload["last_run"]
        if last:
            outcome = "all hits" if last["all_hits"] else "rebuilt"
            print(f"last run: ok={last['ok']} ({outcome})")
            for stage in last["stages"]:
                print(
                    f"  {stage['name']:<8} {stage['outcome']:<5}"
                    f" [{stage['digest'][:12]}] {stage['summary']}"
                )
        else:
            print("last run: (none)")
        return 0

    if args.action == "invalidate":
        removed = pipeline.invalidate(args.stage)
        scope = args.stage or "all stages"
        print(f"invalidated {removed} artifact(s) ({scope})")
        return 0

    # action == "run"
    log = None if args.quiet else (lambda message: print(f"# {message}"))
    try:
        report = pipeline.run(log=log)
    except ReproError as exc:
        print(f"pipeline failed: {exc}", file=sys.stderr)
        return 1
    if args.gc is not None:
        swept = pipeline.store.gc(keep=args.gc)
        if not args.quiet:
            print(
                f"# gc: kept {len(swept['kept'])},"
                f" removed {len(swept['removed_versions'])} version(s)"
            )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    ruleset = report["ruleset"]
    outcome = "all stages hit" if report["all_hits"] else "stages rebuilt"
    print(f"pipeline: ok ({outcome})")
    print(f"ruleset : {ruleset['version']} (body {ruleset['body_sha256'][:12]})")
    return 0


def _cmd_loadgen(args) -> int:
    """Drive a running service and write an oracle-checked BENCH report."""
    from repro.service import (
        LoadgenOptions,
        check_loadgen_report,
        render_loadgen_report,
        run_loadgen,
    )
    from repro.service.loadgen import (
        check_sweep_report,
        render_sweep_report,
        run_sweep,
        write_loadgen_report,
    )

    options = LoadgenOptions(
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        duration=args.duration,
        seed=args.seed,
        stage=args.stage,
        out=args.out,
    )
    log = None if args.quiet else (lambda message: print(f"# {message}"))
    if args.sweep:
        clients = sorted({int(part) for part in args.sweep.split(",") if part})
        payload = run_sweep(options, clients, log=log)
        print(render_sweep_report(payload))
        write_loadgen_report(payload, options.out)
        print(f"report: {options.out}")
        ok, message = check_sweep_report(payload)
        print(f"check: {message}")
        return 0 if ok else 1
    payload = run_loadgen(options, log=log)
    print(render_loadgen_report(payload))
    write_loadgen_report(payload, options.out)
    print(f"report: {options.out}")
    ok, message = check_loadgen_report(payload)
    print(f"check: {message}")
    return 0 if ok else 1


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for derivation/sweeps (0 = all CPUs; default 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'More with Less' (MICRO 2020): "
        "learning-based DBT with rule parameterization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="reproduce a paper table/figure")
    run.add_argument("experiment", help="experiment id (e.g. fig12) or 'all'")
    run.add_argument("--chart", action="store_true",
                     help="render figures as ASCII bar charts")
    _add_jobs(run)
    run.set_defaults(fn=_cmd_run)

    verify = sub.add_parser(
        "verify", help="verify a rule candidate (guest vs host assembly)"
    )
    verify.add_argument("guest", help="guest assembly; ';' separates lines")
    verify.add_argument("host", help="host assembly; ';' separates lines")
    verify.add_argument("--temps", type=int, default=0,
                        help="allowed host scratch registers")
    verify.set_defaults(fn=_cmd_verify)

    sub.add_parser("suite", help="workload suite summary").set_defaults(fn=_cmd_suite)

    rules = sub.add_parser("rules", help="learn and dump translation rules")
    rules.add_argument("--benchmark", help="learn from one benchmark only")
    rules.add_argument("--out", help="write JSON to a file")
    _add_jobs(rules)
    rules.set_defaults(fn=_cmd_rules)

    losses = sub.add_parser(
        "losses", help="learning-funnel loss reasons (paper §II-B)"
    )
    _add_jobs(losses)
    losses.set_defaults(fn=_cmd_losses)

    analyze = sub.add_parser(
        "analyze", help="rule-usage and coverage-attribution report"
    )
    analyze.add_argument("benchmark")
    analyze.add_argument("--stage", default="condition")
    analyze.add_argument("--top", type=int, default=15)
    analyze.add_argument("--ruleset", action="store_true",
                         help="also print rule-set composition")
    _add_jobs(analyze)
    analyze.set_defaults(fn=_cmd_analyze)

    translate = sub.add_parser("translate", help="run one benchmark under the DBT")
    translate.add_argument("benchmark")
    from repro.param import STAGES

    translate.add_argument("--stage", default="condition", choices=STAGES)
    from repro.dbt import BACKENDS

    translate.add_argument("--backend", default="interp", choices=BACKENDS,
                           help="execution backend (interp is the oracle)")
    translate.add_argument("--tier0", metavar="PATH",
                           help="front rule lookups with this distilled "
                                "tier-0 artifact (from `repro distill`)")
    translate.add_argument("--no-tier0", action="store_true",
                           help="ignore --tier0 (flat full-index lookup)")
    _add_jobs(translate)
    translate.set_defaults(fn=_cmd_translate)

    distill = sub.add_parser(
        "distill", help="distill a tier-0 hot ruleset from workload "
                        "profiling (versioned, content-addressed artifact)"
    )
    distill.add_argument("--training", default="quick", choices=("quick", "full"),
                         help="rule-training corpus to distill from (matches "
                              "`serve --training`)")
    distill.add_argument("--stage", default="condition", choices=STAGES,
                         help="parameterization stage the artifact fronts")
    distill.add_argument("--backend", default="jit", choices=BACKENDS,
                         help="execution backend used for profiling runs")
    distill.add_argument("--benchmarks", default=None, metavar="NAME,NAME,...",
                         help="profiling corpus (default: the whole suite)")
    distill.add_argument("--coverage", type=float, default=0.95,
                         help="fraction of observed dynamic rule hits tier-0 "
                              "must cover (default 0.95)")
    distill.add_argument("--max-rules", type=int, default=None,
                         help="hard cap on tier-0 size")
    distill.add_argument("--out", default="tier0.json",
                         help="artifact path (default tier0.json)")
    distill.add_argument("--quiet", action="store_true",
                         help="suppress progress lines")
    _add_jobs(distill)
    distill.set_defaults(fn=_cmd_distill)

    bench = sub.add_parser(
        "bench", help="benchmark the execution backends (writes BENCH_dbt.json)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="3-benchmark subset, cheap training rules (CI)")
    bench.add_argument("--service", action="store_true",
                       help="serving saturation bench: boot pools at each "
                            "worker count and sweep client concurrency "
                            "(writes BENCH_service.json)")
    bench.add_argument("--offline", action="store_true",
                       help="benchmark the offline learn/derive pipeline "
                            "instead (writes BENCH_offline.json)")
    bench.add_argument("--distill", action="store_true",
                       help="tier-0 A/B harness: legacy vs memoized vs "
                            "tier-0 translate times, lookup p50/p99, and a "
                            "byte-identical-translation parity gate (merges "
                            "into BENCH_offline.json + BENCH_service.json)")
    bench.add_argument("--tier0", default=None, metavar="PATH",
                       help="with --distill: reuse an existing artifact "
                            "instead of distilling in-process")
    bench.add_argument("--repeats", type=int, default=3,
                       help="warm repetitions per configuration (min is kept)")
    bench.add_argument("--configs", default=None, metavar="KEY,KEY,...",
                       help="run only these configurations (subset of "
                            "interp,interp+chain,jit,jit+chain,jit+trace; "
                            "default: the full grid)")
    bench.add_argument("--out", default="BENCH_dbt.json",
                       help="report path (default BENCH_dbt.json, or "
                            "BENCH_offline.json with --offline)")
    bench.add_argument("--check", action="store_true",
                       help="exit nonzero unless jit beats interp and "
                            "translate time has not regressed vs the prior "
                            "on-disk report (or, with --offline, unless "
                            "batched == direct; with --distill, unless "
                            "tier-0 translation is byte-identical)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    bench.set_defaults(fn=_cmd_bench)

    difftest = sub.add_parser(
        "difftest", help="coverage-guided differential fuzzing of the DBT"
    )
    difftest.add_argument("--seed", type=int, default=0)
    difftest.add_argument("--programs", type=int, default=200,
                          help="number of generated guest programs")
    difftest.add_argument("--stage", default="condition", choices=STAGES)
    difftest.add_argument("--backend", default="interp", choices=BACKENDS,
                          help="DBT execution backend under test (the "
                               "reference interpreter is always the oracle)")
    from repro.difftest.oracle import FAULTS

    difftest.add_argument("--fault", choices=FAULTS,
                          help="inject a translator fault (oracle self-check)")
    difftest.add_argument("--corpus-dir", metavar="DIR",
                          help="persist shrunk reproducers as JSON here")
    difftest.add_argument("--max-shrinks", type=int, default=4,
                          help="failures to shrink before giving up")
    difftest.add_argument("--time-budget", type=float, metavar="SECONDS",
                          help="wall-clock cap (CI smoke mode)")
    difftest.add_argument("--json", metavar="FILE",
                          help="also write the full report as JSON")
    difftest.add_argument("--quiet", action="store_true",
                          help="suppress progress lines")
    _add_jobs(difftest)
    difftest.set_defaults(fn=_cmd_difftest)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk pipeline cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--json", action="store_true",
                       help="machine-readable stats (same serializer as the "
                            "service stats endpoint)")
    cache.set_defaults(fn=_cmd_cache)

    serve = sub.add_parser(
        "serve", help="translation-as-a-service TCP server (JSON lines)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9477,
                       help="TCP port (0 = ephemeral; default 9477)")
    serve.add_argument("--stage", default="condition", choices=STAGES,
                       help="default parameterization stage for requests")
    serve.add_argument("--training", default="quick", choices=("quick", "full"),
                       help="rule-training corpus loaded at startup "
                            "(quick = 2 benchmarks, full = whole suite)")
    serve.add_argument("--shards", type=int, default=8,
                       help="rule-index shards (default 8)")
    serve.add_argument("--cache-blocks", type=int, default=4096,
                       help="shared code-cache capacity in blocks")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="request queue bound; beyond it clients get "
                            "retryable backpressure errors")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork worker processes sharing the listener "
                            "and an on-disk code cache (1 = single process)")
    serve.add_argument("--handlers", type=int, default=8,
                       help="concurrent asyncio request handlers per process")
    serve.add_argument("--pool-dir", default=None,
                       help="pool runtime directory (worker stats + shared "
                            "code cache); default: fresh temp dir")
    serve.add_argument("--code-cache-dir", default=None,
                       help="cross-process code cache directory for a "
                            "single-process server (pools set their own)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--backend", default="jit", choices=("jit", "trace"),
                       help="execution backend for run/coverage requests "
                            "(trace adds hot-cycle superblocks; their "
                            "generated source shares the disk code cache)")
    serve.add_argument("--tier0", default=None, metavar="PATH",
                       help="front the rule index with a distilled tier-0 "
                            "artifact (from `repro distill`; applies to the "
                            "stage it was distilled for)")
    serve.add_argument("--no-tier0", action="store_true",
                       help="ignore --tier0 (plain sharded index)")
    serve.add_argument("--no-chaining", action="store_true",
                       help="disable block chaining (chain links warm up "
                            "across requests, so run metrics become "
                            "cache-state-dependent; disable for strictly "
                            "deterministic responses)")
    serve.add_argument("--ruleset-store", default=None, metavar="DIR",
                       help="versioned ruleset store (from `repro pipeline "
                            "run`); serve its latest version and accept "
                            "`reload` requests to hot-swap without a restart")
    serve.add_argument("--watch-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="poll the ruleset store and auto-reload when a "
                            "new version is published (0 = reload only on "
                            "explicit `reload` requests)")
    serve.set_defaults(fn=_cmd_serve)

    pipeline = sub.add_parser(
        "pipeline",
        help="continuous-learning pipeline: corpus→learn→derive→verify→"
             "publish with content-addressed stage skipping",
    )
    pipeline.add_argument("action", choices=("run", "status", "invalidate"),
                          help="run the stage chain, show last-run/store "
                               "state, or drop stage artifacts")
    pipeline.add_argument("--workdir", default="pipeline-runtime",
                          help="pipeline state root (stage artifacts + "
                               "last-run report; default pipeline-runtime)")
    pipeline.add_argument("--store", default=None, metavar="DIR",
                          help="versioned ruleset store to publish into "
                               "(default <workdir>/rulesets)")
    pipeline.add_argument("--training", default="quick",
                          choices=("quick", "full"),
                          help="training corpus (quick = 2 benchmarks)")
    pipeline.add_argument("--benchmarks", default=None, metavar="A,B,...",
                          help="explicit corpus benchmark list (overrides "
                               "--training's default corpus)")
    pipeline.add_argument("--verify-programs", type=int, default=25,
                          help="fuzzed programs per verify run beyond the "
                               "corpus itself (default 25)")
    pipeline.add_argument("--verify-seed", type=int, default=0,
                          help="program-generator seed for the verify stage")
    pipeline.add_argument("--backend", default="jit",
                          choices=("jit", "trace"),
                          help="execution backend for the verify stage")
    pipeline.add_argument("--stage", default=None,
                          help="with `invalidate`: drop only this stage's "
                               "artifacts (corpus/learn/derive/verify/"
                               "publish); default drops all")
    pipeline.add_argument("--gc", type=int, default=None, metavar="KEEP",
                          help="after a successful run, garbage-collect the "
                               "store down to the latest KEEP-version chain")
    pipeline.add_argument("--json", action="store_true",
                          help="emit the full report/status as JSON")
    pipeline.add_argument("--quiet", action="store_true",
                          help="suppress per-stage progress lines")
    pipeline.set_defaults(fn=_cmd_pipeline)

    loadgen = sub.add_parser(
        "loadgen", help="drive a running service; oracle-verify every run "
                        "(writes BENCH_service.json)"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=9477)
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="concurrent client connections")
    loadgen.add_argument("--duration", type=float, default=10.0,
                         help="wall-clock seconds to drive load")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="request-mix RNG seed")
    loadgen.add_argument("--stage", default="condition", choices=STAGES)
    loadgen.add_argument("--sweep", default=None, metavar="N,N,...",
                         help="saturation sweep: drive each client count for "
                              "--duration seconds and report the clients-vs-"
                              "latency curve (e.g. --sweep 1,2,4,8)")
    loadgen.add_argument("--out", default="BENCH_service.json",
                         help="report path (default BENCH_service.json)")
    loadgen.add_argument("--quiet", action="store_true",
                         help="suppress progress lines")
    loadgen.set_defaults(fn=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "jobs", None) is not None:
        from repro.parallel import set_jobs

        set_jobs(args.jobs)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro run all | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
