"""Unit tests for the closure-compilation backend (repro.dbt.compiler).

End-to-end backend equivalence is covered by ``tests/test_backend_difftest``;
these tests pin the compiler's structural properties: run fusion, resolved
control flow, the forward-only (DAG) proof and its guarded fallback, the
batched count aggregation, operand fast paths, and error parity with the
interpreter backend.
"""

import pytest

from repro.dbt.compiler import (
    EXIT,
    CompiledBlock,
    GuardedCompiledBlock,
    compile_block,
)
from repro.dbt.executor import WEIGHTS, BlockKernel, HostExecutor
from repro.dbt.runtime import DISPATCH_LABEL
from repro.dbt.translator import TranslatedBlock
from repro.errors import ExecutionError
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.semantics.state import ConcreteState


def _block(host, categories=None, labels=None, covered=None):
    host = tuple(host)
    return TranslatedBlock(
        start=0,
        guest_count=1,
        host=host,
        categories=tuple(categories or ("tcg",) * len(host)),
        labels=dict(labels or {}),
        covered=tuple(covered if covered is not None else (False,)),
    )


def _dispatch_jmp():
    return Instruction("jmp", (Label(DISPATCH_LABEL),))


def _run_both(tb, seed_regs=None):
    """Execute *tb* under both backends; return (state, counts) of each."""
    results = []
    for backend in ("interp", "jit"):
        state = ConcreteState()
        state.reset_flags()
        for name, value in (seed_regs or {}).items():
            state.regs[name] = value
        counts = {}
        if backend == "interp":
            HostExecutor(state).run_block(tb, counts, BlockKernel(tb))
        else:
            compile_block(tb).execute(state, counts)
        results.append((state, counts))
    return results


class TestRunFusion:
    def test_straight_line_block_is_one_run(self):
        tb = _block(
            [
                Instruction("movl", (Imm(5), Reg("t0"))),
                Instruction("addl", (Imm(3), Reg("t0"))),
                _dispatch_jmp(),
            ]
        )
        cb = compile_block(tb)
        assert type(cb) is CompiledBlock  # forward-only: unguarded
        assert len(cb.runs) == 1

    def test_branches_split_runs(self):
        tb = _block(
            [
                Instruction("cmpl", (Imm(0), Reg("t0"))),
                Instruction("je", (Label("_skip"),)),
                Instruction("addl", (Imm(1), Reg("t1"))),
                _dispatch_jmp(),  # _skip points past this
                Instruction("movl", (Imm(9), Reg("t1"))),
                _dispatch_jmp(),
            ],
            labels={"_skip": 4},
        )
        cb = compile_block(tb)
        assert len(cb.runs) == 3

    def test_counts_pre_aggregated_with_weights(self):
        tb = _block(
            [
                Instruction("movl", (Imm(7), Reg("g_r0"))),
                Instruction(
                    "helper_clz", (Reg("g_r1"), Reg("g_r0"))
                ),
                _dispatch_jmp(),
            ],
            categories=("rule", "rule", "control"),
        )
        (_, interp_counts), (_, jit_counts) = _run_both(tb)
        assert jit_counts == interp_counts
        assert jit_counts["rule"] == 1 + WEIGHTS["helper_clz"]
        assert jit_counts["control"] == 1  # the dispatch jmp is counted


class TestControlFlow:
    def test_conditional_branch_resolved_to_run_indices(self):
        tb = _block(
            [
                Instruction("cmpl", (Imm(5), Reg("g_r0"))),
                Instruction("je", (Label("_taken"),)),
                Instruction("movl", (Imm(111), Reg("g_r1"))),
                _dispatch_jmp(),
                Instruction("movl", (Imm(222), Reg("g_r1"))),
                _dispatch_jmp(),
            ],
            labels={"_taken": 4},
        )
        for r0, expect in ((5, 222), (6, 111)):
            (istate, ic), (jstate, jc) = _run_both(tb, {"g_r0": r0})
            assert jstate.regs["g_r1"] == expect
            assert istate.regs == jstate.regs
            assert istate.flags == jstate.flags
            assert ic == jc

    def test_backward_edge_uses_guarded_block(self):
        # Translated blocks are DAGs in practice; a synthetic backward edge
        # must fall back to the guarded executor with the runaway guard.
        tb = _block(
            [
                Instruction("addl", (Imm(1), Reg("g_r0"))),  # _top
                Instruction("jmp", (Label("_top"),)),
            ],
            labels={"_top": 0},
        )
        cb = compile_block(tb)
        assert isinstance(cb, GuardedCompiledBlock)
        state = ConcreteState()
        state.reset_flags()
        state.regs["g_r0"] = 0
        with pytest.raises(ExecutionError, match="runaway translated block"):
            cb.execute(state, {})


class TestOperandPaths:
    def test_env_slot_constant_address_fast_path(self):
        # Constant aligned addresses (the CPU environment slots) compile to
        # direct word-indexed dict accesses.
        tb = _block(
            [
                Instruction("movl", (Imm(0xABCD), Reg("t0"))),
                Instruction("movl_s", (Reg("t0"), Mem(disp=0x00F0_0000))),
                Instruction("movl", (Mem(disp=0x00F0_0000), Reg("t1"))),
                _dispatch_jmp(),
            ]
        )
        (istate, _), (jstate, _) = _run_both(tb)
        assert jstate.regs["t1"] == 0xABCD
        assert istate.memory == jstate.memory

    def test_unaligned_dynamic_address_falls_back_to_state_load(self):
        tb = _block(
            [
                Instruction("movl", (Imm(0x4002), Reg("t0"))),  # unaligned
                Instruction("movl", (Imm(0x11223344), Reg("t1"))),
                Instruction("movl_s", (Reg("t1"), Mem(base=Reg("t0")))),
                Instruction("movl", (Mem(base=Reg("t0")), Reg("t2"))),
                _dispatch_jmp(),
            ]
        )
        (istate, _), (jstate, _) = _run_both(tb)
        assert jstate.regs["t2"] == 0x11223344
        assert istate.memory == jstate.memory

    def test_generic_fallback_for_untemplated_mnemonic(self):
        # pushl has no code template: the compiler must fall back to the
        # shared semantics function and still match the interpreter.
        tb = _block(
            [
                Instruction("movl", (Imm(0x8000), Reg("esp"))),
                Instruction("movl", (Imm(77), Reg("t0"))),
                Instruction("pushl", (Reg("t0"),)),
                _dispatch_jmp(),
            ]
        )
        (istate, _), (jstate, _) = _run_both(tb)
        assert jstate.regs["esp"] == 0x8000 - 4
        assert istate.memory == jstate.memory


class TestErrorParity:
    def test_uninitialized_register_read_matches_interp_message(self):
        tb = _block(
            [
                Instruction("addl", (Reg("t9"), Reg("g_r0"))),
                _dispatch_jmp(),
            ]
        )
        state = ConcreteState()
        state.reset_flags()
        state.regs["g_r0"] = 1
        with pytest.raises(ExecutionError) as interp_exc:
            HostExecutor(state).run_block(tb, {}, BlockKernel(tb))
        state = ConcreteState()
        state.reset_flags()
        state.regs["g_r0"] = 1
        with pytest.raises(ExecutionError) as jit_exc:
            compile_block(tb).execute(state, {})
        assert str(jit_exc.value) == str(interp_exc.value)
        assert "uninitialized register 't9'" in str(jit_exc.value)

    def test_empty_block_rejected(self):
        with pytest.raises(ExecutionError):
            compile_block(
                TranslatedBlock(
                    start=0,
                    guest_count=0,
                    host=(),
                    categories=(),
                    labels={},
                    covered=(),
                )
            )


class TestEngineIntegration:
    def test_unknown_backend_rejected(self):
        from repro.dbt import DBTEngine, unit_from_assembly
        from repro.dbt.translator import TranslationConfig

        unit = unit_from_assembly("fn_main:\n  mov r0, #1\n  bx lr\n")
        with pytest.raises(ValueError, match="unknown backend"):
            DBTEngine(unit, TranslationConfig("qemu"), backend="tracing")

    def test_jit_chaining_links_compiled_blocks(self):
        from repro.dbt import DBTEngine, unit_from_assembly
        from repro.dbt.translator import TranslationConfig

        unit = unit_from_assembly(
            "fn_main:\n"
            "  mov r0, #0\n"
            "loop:\n"
            "  add r0, r0, #1\n"
            "  cmp r0, #50\n"
            "  blt loop\n"
            "  bx lr\n"
        )
        engine = DBTEngine(
            unit, TranslationConfig("qemu"), chaining=True, backend="jit"
        )
        metrics = engine.run().metrics
        assert metrics.chain_rate > 0.8
        chained = [
            entry.compiled
            for entry in engine.code_cache.values()
            if entry.compiled is not None and entry.compiled.chain
        ]
        assert chained, "no compiled block got a chained successor"
        # Re-running reuses the chain map: every repeat edge is chained.
        again = engine.run().metrics
        assert again.chained_executions > metrics.chained_executions
