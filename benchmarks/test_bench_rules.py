"""Benchmarks for Table III (rule counts) and the ablation studies.

Ablations beyond the paper's tables:

* the manual-rules extension for the residual seven instructions
  (paper §V-B2's closing note: 100% coverage);
* the contribution of multi-instruction (sequence) rules, which the paper
  keeps for the baseline but deliberately does not parameterize (§V-D).
"""

from conftest import run_once

from repro.experiments import EXPERIMENTS
from repro.experiments.common import mean, run_benchmark
from repro.workloads import BENCHMARK_NAMES


def test_bench_table3_rule_counts(benchmark, warm_suite):
    """Table III: parameterized-rule merge + instantiation expansion."""
    result = run_once(benchmark, EXPERIMENTS["table3"])
    print("\n" + result.format())
    learned = result.row_for("learned rules")[1]
    opcode = result.row_for("after opcode parameterization")[1]
    addrmode = result.row_for("after addressing-mode parameterization")[1]
    instantiated = result.row_for("instantiated (applicable) rules")[1]
    assert learned > opcode > addrmode, "merging must shrink the rule count"
    assert instantiated > 10 * learned, "paper: 2,724 -> 86,423 (~32x)"


def test_bench_ablation_manual_rules(benchmark, warm_suite):
    """Extension: manual rules for push/pop/b/bl/mla/umlal/clz -> ~100%."""

    def run():
        return {
            name: run_benchmark(name, "manual").coverage
            for name in BENCHMARK_NAMES
        }

    coverages = run_once(benchmark, run)
    average = 100 * mean(list(coverages.values()))
    print(f"\nmanual-rules coverage average: {average:.2f}%")
    assert average > 99.5, "paper: 100% coverage with manual residual rules"


def test_bench_ablation_sequence_rules(benchmark, warm_suite):
    """Sequence rules (multi-insn learned rules) help the baseline.

    The paper parameterizes only single-instruction rules (§V-D) but the
    baseline rule set includes sequences; removing them must not increase
    baseline cost-model performance.
    """
    from repro.dbt import DBTEngine, check_against_reference
    from repro.dbt.translator import TranslationConfig
    from repro.experiments.common import rules_excluding
    from repro.learning import RuleSet
    from repro.workloads import compiled_benchmark

    names = ("mcf", "gobmk", "astar")

    def run():
        out = {}
        for name in names:
            full = rules_excluding(name)
            singles_only = RuleSet()
            singles_only.extend(r for r in full if r.guest_length == 1)
            costs = {}
            for label, rules in (("with-seq", full), ("singles", singles_only)):
                pair = compiled_benchmark(name)
                engine = DBTEngine(pair.guest, TranslationConfig(label, rules=rules))
                result = engine.run()
                ok, message = check_against_reference(pair.guest, result)
                assert ok, message
                costs[label] = result.metrics.cost()
            out[name] = costs
        return out

    costs = run_once(benchmark, run)
    for name, entry in costs.items():
        print(f"\n{name}: with sequences {entry['with-seq']:.0f}, "
              f"singles only {entry['singles']:.0f}")
        assert entry["with-seq"] <= entry["singles"] * 1.02


def test_bench_ablation_sequence_parameterization(benchmark, warm_suite):
    """Extension (§V-D future work): parameterizing instruction sequences.

    Derives verified sequence rules (condition-code and opcode variants of
    multi-instruction learned rules) and measures their marginal effect on
    top of the full system.  Finding on this suite: the single-instruction
    delegation machinery already covers the same windows at equal cost, so
    the marginal coverage/cost effect is ~0 — the value is the extra
    applicable rules, which we count.
    """
    from repro.experiments.common import rules_excluding
    from repro.param.seqderive import derive_sequence_rules

    names = ("gobmk", "libquantum", "mcf")

    def run():
        out = {}
        for name in names:
            learned = rules_excluding(name)
            seq = derive_sequence_rules(learned)
            condition = run_benchmark(name, "condition")
            seqparam = run_benchmark(name, "seqparam")
            out[name] = (len(seq), condition.coverage, seqparam.coverage,
                         condition.cost(), seqparam.cost())
        return out

    data = run_once(benchmark, run)
    for name, (count, cov_c, cov_s, cost_c, cost_s) in data.items():
        print(f"\n{name}: +{count} sequence rules, coverage "
              f"{100*cov_c:.2f}% -> {100*cov_s:.2f}%, cost {cost_c:.0f} -> {cost_s:.0f}")
        assert count > 20, "sequence derivation must produce rules"
        assert cov_s >= cov_c
        assert cost_s <= cost_c * 1.01


def test_bench_ablation_block_chaining(benchmark, warm_suite):
    """Extension: QEMU-style block chaining (the paper's "beyond scope"
    optimization, §V-B1).

    Chaining removes the dispatch overhead shared by all configurations, so
    it *amplifies* the parameterized system's advantage: once dispatch is
    gone, the host-instruction-count gap is the whole story.
    """
    from repro.dbt import DBTEngine, check_against_reference
    from repro.dbt.metrics import speedup
    from repro.experiments.common import geomean, setup_excluding
    from repro.workloads import compiled_benchmark

    names = ("mcf", "gobmk", "h264ref")

    def run():
        out = {}
        for chaining in (False, True):
            gains = []
            for name in names:
                pair = compiled_benchmark(name)
                setup = setup_excluding(name)
                qemu = DBTEngine(
                    pair.guest, setup.configs["qemu"], chaining=chaining
                ).run()
                para = DBTEngine(
                    pair.guest, setup.configs["condition"], chaining=chaining
                ).run()
                ok, message = check_against_reference(pair.guest, para)
                assert ok, message
                if chaining:
                    assert para.metrics.chain_rate > 0.9
                gains.append(speedup(qemu.metrics, para.metrics))
            out[chaining] = geomean(gains)
        return out

    gains = run_once(benchmark, run)
    print(f"\npara-over-QEMU geomean: unchained {gains[False]:.2f}x, "
          f"chained {gains[True]:.2f}x")
    assert gains[True] > gains[False]


def test_bench_attribution_derived_share(benchmark, warm_suite):
    """Runtime restatement of the paper's thesis: a large share of dynamic
    translation goes through rules that were never in any training set."""
    from repro.analysis import derived_share
    from repro.experiments.common import mean, run_benchmark
    from repro.workloads import BENCHMARK_NAMES

    def run():
        return {
            name: derived_share(run_benchmark(name, "condition"))
            for name in BENCHMARK_NAMES
        }

    shares = run_once(benchmark, run)
    average = 100 * mean(list(shares.values()))
    print(f"\naverage derived-rule share of dynamic instructions: {average:.1f}%")
    for name, share in sorted(shares.items(), key=lambda kv: -kv[1])[:3]:
        print(f"  {name}: {100 * share:.1f}%")
    assert average > 10, "derived rules must carry a substantial share"
