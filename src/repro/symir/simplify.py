"""Bottom-up re-normalization of expression trees.

Expressions built through :mod:`repro.symir.build` are already mostly
canonical; :func:`simplify` re-runs a whole tree through the smart
constructors so that trees assembled from raw node constructors (e.g. loaded
from a rule store) reach the same form.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.symir import build
from repro.symir.expr import BinOp, Const, Expr, Extract, Ite, Sym, UnOp, ZeroExt

#: The memo maps ``id(node) -> (node, simplified)``.  Keying by id alone
#: would be unsound: once a source node is garbage-collected its id can be
#: handed to a brand-new node, which would then receive the *stale*
#: simplification.  Storing the source node in the entry keeps it alive for
#: the cache's lifetime (ids of live objects are unique), and the lookup
#: additionally verifies identity before trusting a hit.
SimplifyCache = Dict[int, Tuple[Expr, Expr]]


def simplify(expr: Expr, _cache: SimplifyCache | None = None) -> Expr:
    """Return a canonically simplified version of *expr*."""
    if _cache is None:
        _cache = {}
    entry = _cache.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]

    if isinstance(expr, (Const, Sym)):
        result: Expr = expr
    elif isinstance(expr, BinOp):
        result = build.binop(expr.op, simplify(expr.lhs, _cache), simplify(expr.rhs, _cache))
    elif isinstance(expr, UnOp):
        result = build.unop(expr.op, simplify(expr.operand, _cache))
    elif isinstance(expr, Ite):
        result = build.ite(
            simplify(expr.cond, _cache),
            simplify(expr.then, _cache),
            simplify(expr.orelse, _cache),
        )
    elif isinstance(expr, Extract):
        result = build.extract(simplify(expr.operand, _cache), expr.lo, expr.width)
    elif isinstance(expr, ZeroExt):
        result = build.zero_ext(simplify(expr.operand, _cache), expr.width)
    else:
        raise TypeError(f"unknown expression node: {expr!r}")

    _cache[id(expr)] = (expr, result)
    return result
