"""Tier-0 distillation benchmark harness (``repro bench --distill``).

A/B-measures the translate-time fast path introduced with the distilled
tier-0 hot ruleset, under three lookup modes sharing one rule set:

* ``legacy`` — the pre-fast-path translator (two canonicalization passes
  per window, no memo) over the flat :class:`~repro.learning.ruleset.RuleSet`;
* ``flat`` — the fingerprint-once + window-memo fast path over the same
  flat set (isolates the memo/fingerprint gain);
* ``tier0`` — the fast path over a :class:`~repro.learning.hotindex.HotIndex`
  packed from the distilled artifact, flat set as fallback (the full win).

Timed work is pure translation: every basic block of every workload
benchmark through a **fresh** :class:`~repro.dbt.translator.BlockTranslator`
per round, minimum over ``repeats``.  A separate cold-run A/B times a fresh
:class:`~repro.dbt.engine.DBTEngine` end to end (translate + execute) with
and without the tier-0 front.  Service-side lookup latency is measured by
replaying the translators' sliding-window stream against the crc32-sharded
index and the :class:`~repro.service.shards.Tier0Front`, into the serving
histograms (p50/p99).

The hard gate is **byte-identical translation parity**: every difftest
corpus entry plus a seeded batch of fuzzed programs is translated under all
modes (including the service front) and the serialized blocks must match
exactly — zero divergences, or ``--check`` fails.  Speedups are reported
honestly; a shortfall against the 2x target is a note, not a failure.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: fuzzed parity programs (generator seed is fixed; programs are stable).
FUZZ_SEED = 11
FUZZ_PROGRAMS_QUICK = 120
FUZZ_PROGRAMS_FULL = 500

#: benchmarks profiled/timed under ``--quick`` (same subset as the backend
#: bench, so reports line up).
QUICK_NAMES = ("mcf", "libquantum", "astar")

#: translate speedup target (tier0 vs legacy) recorded in the report.
SPEEDUP_TARGET = 2.0


def _corpus_dir() -> str:
    """``tests/corpus`` of this checkout (empty string when not present)."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    path = os.path.join(os.path.dirname(src), "tests", "corpus")
    return path if os.path.isdir(path) else ""


def _parity_programs(quick: bool) -> Tuple[List[Tuple[str, object]], int]:
    """(name, CompiledUnit) parity inputs; also returns the invalid count.

    Difftest corpus entries first (their guest lines, assembled fresh),
    then the seeded fuzz batch.  Programs the assembler rejects are counted
    and skipped — both corpora are overwhelmingly valid, and an invalid
    program exercises no lookups.
    """
    from repro.difftest.gen import ProgramGenerator
    from repro.difftest.oracle import InvalidProgram, assemble_program

    programs: List[Tuple[str, object]] = []
    invalid = 0
    corpus = _corpus_dir()
    if corpus:
        from repro.difftest.corpus import load_corpus

        for entry in load_corpus(corpus):
            try:
                programs.append((f"corpus:{entry.name}", assemble_program(entry.lines)))
            except InvalidProgram:
                invalid += 1
    generator = ProgramGenerator(FUZZ_SEED)
    count = FUZZ_PROGRAMS_QUICK if quick else FUZZ_PROGRAMS_FULL
    for index in range(count):
        program = generator.generate(index)
        try:
            programs.append((f"fuzz:{index}", assemble_program(program.lines)))
        except InvalidProgram:
            invalid += 1
    return programs, invalid


def _translate_all(unit, config, legacy: bool = False) -> List:
    """All blocks of ``unit`` through one fresh translator, in block order."""
    from repro.dbt.block import BlockMap
    from repro.dbt.translator import BlockTranslator

    blockmap = BlockMap(unit)
    translator = BlockTranslator(unit, blockmap, config, legacy_lookup=legacy)
    return [translator.translate(block) for block in blockmap.blocks]


def _serialize_blocks(blocks: List, rule_order: Dict[int, int]) -> str:
    """Canonical text of a translation — the parity comparison unit.

    Applied rules are named by their position in the flat rule set (all
    modes resolve onto the same serving rule objects, so positions are
    shared); everything else is the literal translated payload.
    """
    parts: List[str] = []
    for tb in blocks:
        parts.append(
            "|".join(
                (
                    str(tb.start),
                    str(tb.guest_count),
                    ";".join(repr(insn) for insn in tb.host),
                    ";".join(tb.categories),
                    ";".join(f"{k}={v}" for k, v in sorted(tb.labels.items())),
                    "".join("1" if c else "0" for c in tb.covered),
                    ";".join(
                        f"{rule_order.get(id(rule), -1)}x{length}"
                        for rule, length in tb.applied
                    ),
                )
            )
        )
    return "\n".join(parts)


def _window_stream(units: Sequence) -> List[Tuple]:
    """The sliding-window stream translation planning would probe.

    Every window of length 1..4 at every block position — the same
    enumeration ``BlockTranslator._plan`` performs, without requiring a
    planner run, so both lookup paths see an identical probe sequence.
    """
    from repro.dbt.block import BlockMap

    windows: List[Tuple] = []
    for unit in units:
        blockmap = BlockMap(unit)
        for block in blockmap.blocks:
            insns = blockmap.instructions(block)
            for i in range(len(insns)):
                for length in range(1, min(4, len(insns) - i) + 1):
                    windows.append(tuple(insns[i : i + length]))
    return windows


def _histogram_summary(histogram) -> Dict[str, float]:
    return {
        "p50_us": round(histogram.percentile(0.50) * 1e6, 2),
        "p99_us": round(histogram.percentile(0.99) * 1e6, 2),
        "mean_us": round(
            (histogram.total / histogram.count) * 1e6 if histogram.count else 0.0, 2
        ),
    }


def run_distill_bench(
    repeats: int = 3,
    quick: bool = False,
    tier0_path: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the tier-0 A/B benchmark; returns the report payload."""
    from repro.dbt import DBTEngine
    from repro.learning.distill import (
        DEFAULT_COVERAGE,
        distill,
        load_artifact,
        resolve_artifact,
        setup_for_training,
    )
    from repro.learning.hotindex import HotIndex
    from repro.service.shards import ShardedRuleIndex, Tier0Front
    from repro.service.stats import LatencyHistogram
    from repro.workloads import BENCHMARK_NAMES, compiled_benchmark

    emit = log or (lambda message: None)
    training = "quick" if quick else "full"
    names = QUICK_NAMES if quick else tuple(BENCHMARK_NAMES)
    stage = "condition"
    config = setup_for_training(training).configs[stage]
    flat = config.rules

    # -- artifact: load, or distill in-process from the same setup ----------
    if tier0_path:
        emit(f"loading tier-0 artifact {tier0_path} ...")
        artifact = load_artifact(tier0_path)
        artifact_source = tier0_path
    else:
        emit(f"distilling tier-0 from {len(names)} benchmarks ...")
        artifact = distill(
            config, stage=stage, benchmarks=list(names), training=training
        )
        artifact_source = "distilled in-process"
    resolved = resolve_artifact(artifact, flat)
    hot = HotIndex(
        resolved.rules, flat, coverage=resolved.coverage, digest=resolved.digest
    )
    front = Tier0Front(
        resolved.rules,
        flat,
        coverage=resolved.coverage,
        digest=resolved.digest,
        dropped=resolved.dropped,
        stale=resolved.stale,
    )
    modes = {
        "legacy": (flat, True),
        "flat": (flat, False),
        "tier0": (hot, False),
        "service": (front, False),
    }
    configs = {
        key: dataclasses.replace(config, rules=rules)
        for key, (rules, _) in modes.items()
    }

    # -- parity gate: byte-identical translation across all modes -----------
    emit("checking translation parity over corpus + fuzzed programs ...")
    programs, invalid = _parity_programs(quick)
    rule_order = {id(rule): i for i, rule in enumerate(flat.rules)}
    divergences: List[str] = []
    blocks_compared = 0
    for name, unit in programs:
        rendered: Dict[str, str] = {}
        for key, (_, legacy) in modes.items():
            try:
                blocks = _translate_all(unit, configs[key], legacy=legacy)
                rendered[key] = _serialize_blocks(blocks, rule_order)
            except Exception as exc:  # must fail identically across modes
                rendered[key] = f"error:{type(exc).__name__}:{exc}"
        blocks_compared += rendered["legacy"].count("\n") + 1
        if len(set(rendered.values())) != 1:
            divergences.append(name)
    emit(
        f"parity: {len(programs)} programs, {len(divergences)} divergences, "
        f"{invalid} invalid skipped"
    )

    # -- translate-time A/B: fresh translator per round, min over repeats ---
    translate: Dict[str, Dict[str, float]] = {}
    timed_modes = ("legacy", "flat", "tier0")
    units = {name: compiled_benchmark(name).guest for name in names}
    for name in names:
        row = {}
        for key in timed_modes:
            _, legacy = modes[key]
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                _translate_all(units[name], configs[key], legacy=legacy)
                best = min(best, time.perf_counter() - started)
            row[f"{key}_seconds"] = round(best, 6)
        translate[name] = row
        emit(
            f"translate {name}: legacy {row['legacy_seconds'] * 1000:.2f}ms, "
            f"flat {row['flat_seconds'] * 1000:.2f}ms, "
            f"tier0 {row['tier0_seconds'] * 1000:.2f}ms"
        )
    totals = {
        f"{key}_seconds": round(
            sum(row[f"{key}_seconds"] for row in translate.values()), 6
        )
        for key in timed_modes
    }

    def _speedup(base: str, new: str) -> float:
        denominator = totals[f"{new}_seconds"]
        return round(totals[f"{base}_seconds"] / denominator, 3) if denominator else 0.0

    speedups = {
        "tier0_vs_legacy": _speedup("legacy", "tier0"),
        "flat_vs_legacy": _speedup("legacy", "flat"),
        "tier0_vs_flat": _speedup("flat", "tier0"),
    }

    # -- cold-run A/B: full engine (translate + execute), fresh each round --
    cold: Dict[str, Dict[str, float]] = {}
    for name in names:
        row = {}
        for key in ("flat", "tier0"):
            best = float("inf")
            for _ in range(repeats):
                engine = DBTEngine(units[name], configs[key], backend="jit")
                started = time.perf_counter()
                engine.run()
                best = min(best, time.perf_counter() - started)
            row[f"{key}_cold_seconds"] = round(best, 6)
        cold[name] = row
    cold_totals = {
        key: round(sum(row[key] for row in cold.values()), 6)
        for key in ("flat_cold_seconds", "tier0_cold_seconds")
    }

    # -- service lookup latency: sharded vs tier-0 front, same stream -------
    emit("replaying lookup stream against sharded index and tier-0 front ...")
    windows = _window_stream([unit for _, unit in programs] + list(units.values()))
    sharded = ShardedRuleIndex(flat)
    lookup_front = Tier0Front(
        resolved.rules, flat, coverage=resolved.coverage, digest=resolved.digest
    )
    histograms = {"sharded": LatencyHistogram(), "tier0": LatencyHistogram()}
    for window in windows:
        started = time.perf_counter()
        sharded.lookup(window)
        histograms["sharded"].observe(time.perf_counter() - started)
        started = time.perf_counter()
        lookup_front.lookup(window)
        histograms["tier0"].observe(time.perf_counter() - started)
    front_stats = lookup_front.hot.stats()

    return {
        "harness": "repro bench --distill",
        "quick": quick,
        "stage": stage,
        "training": training,
        "repeats": repeats,
        "benchmarks": list(names),
        "artifact": {
            "source": artifact_source,
            "digest": artifact["digest"],
            "rules": len(resolved.rules),
            "source_rules": artifact["source_rules"],
            "coverage": artifact["coverage"],
            "coverage_target": artifact.get("coverage_target", DEFAULT_COVERAGE),
            "dropped": resolved.dropped,
            "stale": resolved.stale,
        },
        "parity": {
            "programs": len(programs),
            "fuzz_programs": FUZZ_PROGRAMS_QUICK if quick else FUZZ_PROGRAMS_FULL,
            "invalid_skipped": invalid,
            "blocks_compared": blocks_compared,
            "divergences": len(divergences),
            "diverged": divergences[:20],
        },
        "translate": {
            "per_benchmark": translate,
            "total": totals,
            "speedup": speedups,
            "speedup_target": SPEEDUP_TARGET,
        },
        "cold": {
            "per_benchmark": cold,
            "total": cold_totals,
        },
        "lookup": {
            "windows": len(windows),
            "sharded": _histogram_summary(histograms["sharded"]),
            "tier0": _histogram_summary(histograms["tier0"]),
            "tier0_hit_rate": front_stats["tier0_hit_rate"],
        },
    }


def write_distill_report(payload: Dict[str, object]) -> Tuple[str, str]:
    """Merge the report into ``BENCH_offline.json`` + ``BENCH_service.json``.

    The offline report gains a ``distill`` section (translate/cold A/B +
    parity + artifact provenance); the service report gains a
    ``tier0_lookup`` section (lookup latency A/B).  Existing sections of
    both files are preserved; the file-level ``meta`` is restamped since
    the file content changed.
    """
    import json

    from repro.bench import bench_metadata, write_json_report

    def _merge(path: str, section: str, value: Dict[str, object]) -> str:
        existing: Dict[str, object] = {}
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                existing = {}
        existing[section] = value
        existing["meta"] = bench_metadata()
        write_json_report(existing, path)
        return path

    offline_section = {
        key: payload[key]
        for key in (
            "quick",
            "stage",
            "training",
            "repeats",
            "benchmarks",
            "artifact",
            "parity",
            "translate",
            "cold",
        )
    }
    service_section = {
        "quick": payload["quick"],
        "stage": payload["stage"],
        "artifact_digest": payload["artifact"]["digest"],
        **payload["lookup"],
    }
    offline_path = _merge("BENCH_offline.json", "distill", offline_section)
    service_path = _merge("BENCH_service.json", "tier0_lookup", service_section)
    return offline_path, service_path


def render_distill_report(payload: Dict[str, object]) -> str:
    artifact = payload["artifact"]
    parity = payload["parity"]
    translate = payload["translate"]
    lookup = payload["lookup"]
    lines = [
        "tier-0 distillation benchmark"
        + (" (quick subset)" if payload["quick"] else ""),
        f"artifact: {artifact['rules']}/{artifact['source_rules']} rules, "
        f"{100 * artifact['coverage']:.1f}% dynamic coverage "
        f"(target {100 * artifact['coverage_target']:.0f}%), "
        f"digest {artifact['digest'][:12]}",
        f"parity: {parity['programs']} programs / "
        f"{parity['blocks_compared']} blocks, "
        f"{parity['divergences']} divergences",
        f"{'benchmark':12s} {'legacy':>10s} {'flat+memo':>10s} {'tier0':>10s}",
    ]
    for name, row in translate["per_benchmark"].items():
        lines.append(
            f"{name:12s} {row['legacy_seconds'] * 1000:>8.2f}ms "
            f"{row['flat_seconds'] * 1000:>8.2f}ms "
            f"{row['tier0_seconds'] * 1000:>8.2f}ms"
        )
    totals = translate["total"]
    lines.append(
        f"{'total':12s} {totals['legacy_seconds'] * 1000:>8.2f}ms "
        f"{totals['flat_seconds'] * 1000:>8.2f}ms "
        f"{totals['tier0_seconds'] * 1000:>8.2f}ms"
    )
    speedup = translate["speedup"]
    lines.append(
        f"translate speedup: tier0 {speedup['tier0_vs_legacy']:.2f}x legacy "
        f"(memo alone {speedup['flat_vs_legacy']:.2f}x; "
        f"target {translate['speedup_target']:.1f}x)"
    )
    cold_totals = payload["cold"]["total"]
    lines.append(
        f"cold run total: flat {cold_totals['flat_cold_seconds'] * 1000:.1f}ms, "
        f"tier0 {cold_totals['tier0_cold_seconds'] * 1000:.1f}ms"
    )
    lines.append(
        f"lookup ({lookup['windows']} windows): "
        f"sharded p50 {lookup['sharded']['p50_us']:.1f}us "
        f"p99 {lookup['sharded']['p99_us']:.1f}us; "
        f"tier0 p50 {lookup['tier0']['p50_us']:.1f}us "
        f"p99 {lookup['tier0']['p99_us']:.1f}us "
        f"(hit rate {100 * lookup['tier0_hit_rate']:.1f}%)"
    )
    return "\n".join(lines)


def check_distill_report(payload: Dict[str, object]) -> Tuple[bool, str]:
    """CI gate: zero parity divergences, coverage at target.

    The speedup number is reported, not gated: a slow CI box missing the
    2x target is an honest shortfall to document, while a translation
    divergence or an under-covering artifact is a correctness bug.
    """
    parity = payload["parity"]
    if parity["divergences"]:
        return False, (
            f"{parity['divergences']} translation parity divergences "
            f"(first: {', '.join(parity['diverged'][:3])})"
        )
    artifact = payload["artifact"]
    if artifact["coverage"] < artifact["coverage_target"]:
        return False, (
            f"tier-0 coverage {100 * artifact['coverage']:.1f}% below target "
            f"{100 * artifact['coverage_target']:.0f}%"
        )
    if artifact["dropped"]:
        return False, f"{artifact['dropped']} artifact rules failed to resolve"
    speedup = payload["translate"]["speedup"]["tier0_vs_legacy"]
    note = (
        f"translate speedup {speedup:.2f}x"
        if speedup >= payload["translate"]["speedup_target"]
        else (
            f"translate speedup {speedup:.2f}x below "
            f"{payload['translate']['speedup_target']:.1f}x target "
            "(reported honestly, not gated)"
        )
    )
    return True, (
        f"parity clean over {parity['programs']} programs "
        f"({parity['blocks_compared']} blocks); "
        f"coverage {100 * artifact['coverage']:.1f}%; {note}"
    )
