"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure end to end and asserts the
reproduced *shape* (who wins, roughly by how much, where the crossovers are).
Benchmarks share the per-process caches in :mod:`repro.experiments.common`
(learning, derivation, DBT runs), exactly like the CLI does; the first
benchmark to run pays the warm-up.

Run:  pytest benchmarks/ --benchmark-only
Add ``-s`` to see the reproduced tables.
"""

import pytest


@pytest.fixture(scope="session")
def warm_suite():
    """Pre-learn the suite so per-figure timings are comparable."""
    from repro.experiments.common import rules_excluding, rules_full_suite
    from repro.workloads import BENCHMARK_NAMES

    rules_full_suite()
    for name in BENCHMARK_NAMES:
        rules_excluding(name)
    return True


def run_once(benchmark, func, *args, **kwargs):
    """Single-shot pedantic run (experiments are deterministic)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
