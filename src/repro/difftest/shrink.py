"""Delta-debugging shrinker for failing difftest programs.

Two phases, both driven by an ``is_interesting(lines)`` predicate supplied
by the caller (the campaign re-runs the differential oracle and reports
whether the divergence is still present):

1. **Line reduction** — classic ddmin over the program's instruction lines:
   remove chunks of geometrically decreasing size as long as the failure
   reproduces.  Splices that no longer assemble or that the reference
   interpreter itself rejects simply make the predicate return ``False``.
2. **Operand reduction** — per-instruction simplification: immediates are
   driven toward 0/1 (halving on the way down), registers toward ``r0``.

Every candidate evaluation is memoized (shrinking revisits the same splice
often) and the total predicate budget is capped so shrinking is time-boxed
even for stubborn failures.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.isa.arm import assemble
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Mem, Reg

#: Default cap on predicate evaluations per shrink.
DEFAULT_BUDGET = 400

_LOW_REGS = ("r0", "r1", "r2")


class _Budget:
    """Memoizing, budgeted wrapper around the interestingness predicate."""

    def __init__(self, predicate: Callable[[List[str]], bool], budget: int) -> None:
        self._predicate = predicate
        self.remaining = budget
        self._seen: Dict[Tuple[str, ...], bool] = {}

    def __call__(self, lines: Sequence[str]) -> bool:
        key = tuple(lines)
        if key in self._seen:
            return self._seen[key]
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        verdict = bool(self._predicate(list(lines)))
        self._seen[key] = verdict
        return verdict


def _ddmin_lines(lines: List[str], interesting: _Budget) -> List[str]:
    """Greedy ddmin: drop chunks of decreasing size while still failing."""
    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and interesting.remaining > 0:
        removed_any = False
        i = 0
        while i < len(lines):
            candidate = lines[:i] + lines[i + chunk :]
            if candidate and interesting(candidate):
                lines = candidate
                removed_any = True
                # same position now holds the next chunk: retry in place
            else:
                i += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk //= 2
    return lines


def _instruction_of(line: str) -> "Instruction | None":
    """Parse one instruction line (labels and malformed text give None)."""
    stripped = line.strip()
    if not stripped or stripped.endswith(":"):
        return None
    try:
        parsed = assemble(stripped)
    except ReproError:
        return None
    real = [insn for insn in parsed if insn.mnemonic != ".label"]
    return real[0] if len(real) == 1 else None


def _operand_variants(insn: Instruction) -> List[Instruction]:
    """Simpler single-operand rewrites of one instruction, best first."""
    variants: List[Instruction] = []
    for position, op in enumerate(insn.operands):
        replacements = []
        if isinstance(op, Imm) and op.value > 0:
            # Strictly decreasing candidates only: 0 <-> 1 oscillation (both
            # "simple") would otherwise loop forever on memoized verdicts.
            for value in (0, 1, op.value // 2, op.value - 1):
                if 0 <= value < op.value:
                    replacements.append(Imm(value))
        elif isinstance(op, Reg) and op.name not in _LOW_REGS:
            replacements.extend(Reg(name) for name in _LOW_REGS)
        elif isinstance(op, Mem) and op.disp not in (0, 4):
            for disp in (0, 4, op.disp // 8 * 4):
                if disp != op.disp and disp >= 0:
                    replacements.append(Mem(base=op.base, index=op.index, disp=disp, scale=op.scale))
        for replacement in replacements:
            operands = list(insn.operands)
            operands[position] = replacement
            variants.append(Instruction(insn.mnemonic, tuple(operands)))
    return variants


def _shrink_operands(lines: List[str], interesting: _Budget) -> List[str]:
    """Per-line operand simplification to a (budgeted) fixpoint."""
    changed = True
    sweeps = 0
    while changed and interesting.remaining > 0 and sweeps < 50:
        sweeps += 1
        changed = False
        for index, line in enumerate(lines):
            insn = _instruction_of(line)
            if insn is None:
                continue
            for variant in _operand_variants(insn):
                candidate = list(lines)
                candidate[index] = str(variant)
                if candidate[index] == line:
                    continue
                if interesting(candidate):
                    lines = candidate
                    changed = True
                    break
    return lines


def shrink_program(
    lines: Sequence[str],
    is_interesting: Callable[[List[str]], bool],
    budget: int = DEFAULT_BUDGET,
) -> List[str]:
    """Minimize a failing program while ``is_interesting`` stays true.

    ``lines`` are assembly source lines (labels included).  The original
    program is returned unchanged if the predicate unexpectedly rejects it
    (a flaky failure is not worth a misleading "minimal" reproducer).
    """
    lines = [line.strip() for line in lines if line.strip()]
    tracked = _Budget(is_interesting, budget)
    if not tracked(lines):
        return list(lines)
    lines = _ddmin_lines(list(lines), tracked)
    lines = _shrink_operands(lines, tracked)
    return lines
