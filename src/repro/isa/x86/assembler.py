"""Text assembler / disassembler for the x86-like host ISA (AT&T syntax).

Accepted syntax (one instruction per line, ``#`` starts a comment)::

    .L0:
        movl  $5, %eax
        addl  %ecx, %eax
        movl  8(%ebx), %eax
        movl  %eax, (%ebx,%ecx,4)
        cmpl  $0, %eax
        jne   .L0

``movl`` with a memory destination is internally the STORE-subgroup
definition ``movl_s``; the disassembler renders it back as ``movl``.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import AssemblyError, UnknownInstructionError
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Operand, OperandKind, Reg
from repro.isa.x86.opcodes import X86
from repro.isa.x86.registers import ALL_REGISTERS

_LABEL_DEF_RE = re.compile(r"^(\.?[A-Za-z_][\w.]*):$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\(([^)]*)\)$")


def parse_operand(text: str) -> Operand:
    text = text.strip()
    if text.startswith("%"):
        name = text[1:]
        if name not in ALL_REGISTERS:
            raise AssemblyError(f"unknown x86 register {text!r}")
        return Reg(name)
    if text.startswith("$"):
        try:
            return Imm(int(text[1:], 0))
        except ValueError:
            raise AssemblyError(f"bad immediate {text!r}") from None
    match = _MEM_RE.match(text)
    if match:
        return _parse_mem(match)
    if re.match(r"^\.?[A-Za-z_][\w.]*$", text):
        return Label(text)
    raise AssemblyError(f"cannot parse operand {text!r}")


def _parse_mem(match: re.Match) -> Mem:
    disp = int(match.group(1), 0) if match.group(1) else 0
    inner = match.group(2)
    parts = [part.strip() for part in inner.split(",")] if inner else []

    def parse_reg(text: str) -> Reg:
        if not text.startswith("%") or text[1:] not in ALL_REGISTERS:
            raise AssemblyError(f"bad register in memory operand: {text!r}")
        return Reg(text[1:])

    base = parse_reg(parts[0]) if parts and parts[0] else None
    index = parse_reg(parts[1]) if len(parts) > 1 and parts[1] else None
    scale = int(parts[2]) if len(parts) > 2 and parts[2] else 1
    if base is None and index is None:
        raise AssemblyError(f"memory operand needs a base or index: {match.group(0)!r}")
    return Mem(base=base, index=index, disp=disp, scale=scale)


def _canonical_mnemonic(mnemonic: str, operands: Tuple[Operand, ...]) -> str:
    """Map syntactic ``movl`` to the store definition when dst is memory."""
    if mnemonic == "movl" and len(operands) == 2 and operands[1].kind is OperandKind.MEM:
        return "movl_s"
    return mnemonic


def parse_line(line: str) -> Instruction | None:
    line = line.split("#", 1)[0].strip()
    if not line:
        return None
    match = _LABEL_DEF_RE.match(line)
    if match:
        return Instruction(".label", (Label(match.group(1)),))
    fields = line.split(None, 1)
    operand_text = fields[1] if len(fields) > 1 else ""
    operands = tuple(
        parse_operand(part) for part in operand_text.split(",") if part.strip()
    ) if _is_simple_split(operand_text) else tuple(
        parse_operand(part) for part in _split_operands(operand_text)
    )
    mnemonic = _canonical_mnemonic(fields[0], operands)
    insn = Instruction(mnemonic, operands)
    X86.validate(insn)
    return insn


def _is_simple_split(text: str) -> bool:
    return "(" not in text


def _split_operands(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def assemble(source: str) -> Tuple[Instruction, ...]:
    instructions: List[Instruction] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        try:
            insn = parse_line(line)
        except (AssemblyError, UnknownInstructionError) as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc
        if insn is not None:
            instructions.append(insn)
    return tuple(instructions)


def format_operand(operand: Operand) -> str:
    if isinstance(operand, Reg):
        return f"%{operand.name}"
    if isinstance(operand, Imm):
        return f"${operand.value}"
    if isinstance(operand, Mem):
        disp = str(operand.disp) if operand.disp else ""
        inner = f"%{operand.base.name}" if operand.base else ""
        if operand.index is not None:
            inner += f",%{operand.index.name}"
            if operand.scale != 1:
                inner += f",{operand.scale}"
        return f"{disp}({inner})"
    if isinstance(operand, Label):
        return operand.name
    raise AssemblyError(f"cannot format operand {operand!r}")


def format_instruction(insn: Instruction) -> str:
    mnemonic = "movl" if insn.mnemonic == "movl_s" else insn.mnemonic
    if not insn.operands:
        return mnemonic
    return f"{mnemonic} " + ", ".join(format_operand(op) for op in insn.operands)


def disassemble(instructions: Tuple[Instruction, ...]) -> str:
    lines = []
    for insn in instructions:
        if insn.mnemonic == ".label":
            lines.append(f"{insn.operands[0]}:")
        else:
            lines.append(f"    {format_instruction(insn)}")
    return "\n".join(lines)
