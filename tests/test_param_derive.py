"""Tests for the derivation engine (opcode + addressing-mode + constraints).

The load-bearing property: *every derived rule re-verifies symbolically* —
the paper's workflow is parameterize-then-verify, so nothing unverified may
reach the rule set.
"""

import pytest

from repro.isa.arm import assemble as arm
from repro.isa.arm.opcodes import ARM
from repro.isa.x86.opcodes import X86
from repro.param import build_setup, derive_rules, host_candidates
from repro.param.shapes import build_guest_instruction, enumerate_shapes
from repro.verify import check_equivalence


@pytest.fixture(scope="module")
def derived(demo_rules_module):
    return derive_rules(demo_rules_module)


@pytest.fixture(scope="module")
def demo_rules_module(request):
    # Re-use the session demo rules through the conftest fixtures.
    return request.getfixturevalue("demo_rules")


class TestHostCandidates:
    def test_direct_alu(self):
        guest = arm("eor r0, r1, r2")[0]
        candidates = host_candidates(guest)
        assert candidates, "eor should have host candidates"
        mnemonics = {tuple(i.mnemonic for i in host) for host, _ in candidates}
        assert ("movl", "xorl") in mnemonics

    def test_swap_transform_for_rsb(self):
        guest = arm("rsb r0, r1, r2")[0]
        candidates = host_candidates(guest)
        assert any("swap-sources" in tags for _, tags in candidates)

    def test_invert_src_for_bic(self):
        guest = arm("bic r0, r0, r1")[0]
        candidates = host_candidates(guest)
        assert any("aux:invert-src" in tags for _, tags in candidates)

    def test_bic_with_immediate_unavailable(self):
        guest = arm("bic r0, r0, #3")[0]
        assert host_candidates(guest) == []

    def test_not_dest_for_mvn(self):
        guest = arm("mvn r0, r1")[0]
        candidates = host_candidates(guest)
        assert any("aux:not-dest" in tags for _, tags in candidates)

    def test_cmn_via_scratch(self):
        guest = arm("cmn r0, r1")[0]
        candidates = host_candidates(guest)
        assert any("aux:flags-scratch" in tags for _, tags in candidates)


class TestDerivedRules:
    def test_expansion(self, derived):
        counts = derived.counts
        assert counts.derived_unique > counts.learned_rules
        assert counts.instantiated_rules > counts.derived_unique

    def test_every_derived_rule_reverifies(self, derived):
        for rule in derived.derived:
            result = check_equivalence(
                ARM, X86, rule.guest, rule.host, allow_temps=len(rule.host_temps) or 2
            )
            assert result.dataflow_ok, f"derived rule fails dataflow: {rule.guest}"
            # Mismatched flags are allowed (delegation-gated) but must be
            # recorded on the rule.
            recorded = dict(rule.flag_status)
            for flag in result.mismatched_flags:
                assert recorded.get(flag) == "mismatch"

    def test_stage_tagging(self, derived):
        origins = {rule.origin for rule in derived.derived}
        assert origins <= {"opcode-param", "addrmode-param"}
        assert "opcode-param" in origins
        assert "addrmode-param" in origins

    def test_rsc_derivable_despite_never_learned(self, derived):
        """The paper's rsc example: no learned rule, derived by opcode param."""
        rule = derived.derived.lookup(arm("rsc r0, r1, r2"))
        assert rule is not None
        assert rule.origin in ("opcode-param", "addrmode-param")

    def test_bic_derived_with_aux(self, derived):
        rule = derived.derived.lookup(arm("bic r0, r1, r2"))
        assert rule is not None
        assert rule.host_temps, "bic host realization needs a scratch register"

    def test_derived_never_covers_other_subgroup(self, derived):
        for rule in derived.derived:
            assert ARM.defn(rule.guest[0]).subgroup.value != "other"

    def test_dependency_patterns_enumerated(self, derived):
        # fig. 8: both the accumulating and the reversed-dependence shapes
        # of a derivable opcode exist as separate rules.
        acc = derived.derived.lookup(arm("eor r0, r0, r1"))
        rev = derived.derived.lookup(arm("eor r0, r1, r0"))
        three = derived.derived.lookup(arm("eor r0, r1, r2"))
        present = [r for r in (acc, rev, three) if r is not None]
        assert len(present) == 3
        assert len({id(r) for r in present}) == 3

    def test_flag_mismatch_rules_exist_for_movs(self, derived):
        rule = derived.derived.lookup(arm("movs r0, r1"))
        assert rule is not None
        assert "N" in [f for f, s in rule.flag_status if s == "mismatch"] or dict(
            rule.flag_status
        )["N"] == "mismatch"


class TestSetup:
    def test_stage_rule_sets_nest(self, demo_setup):
        wopara = demo_setup.configs["wopara"].rules
        opcode = demo_setup.configs["opcode"].rules
        full = demo_setup.configs["condition"].rules
        assert len(wopara) <= len(opcode) <= len(full)
        assert demo_setup.configs["qemu"].rules is None

    def test_condition_flags_capability(self, demo_setup):
        assert not demo_setup.configs["addrmode"].condition
        assert demo_setup.configs["condition"].condition
        assert demo_setup.configs["addrmode"].pc_constraint
        assert not demo_setup.configs["opcode"].pc_constraint
