"""Value domains: the one set of instruction semantics, two interpretations.

Every instruction's semantics is written against :class:`Domain`.  Running
the semantics with :class:`ConcreteDomain` executes the instruction on
integers (the reference interpreters and the DBT executor); running it with
:class:`SymbolicDomain` builds :mod:`repro.symir` expressions (the rule
verifier).  Because the two interpretations share one semantics function,
verification and execution cannot drift apart.
"""

from __future__ import annotations

from typing import Tuple

from repro.symir import build
from repro.symir.expr import Const, Expr

WORD_MASK = 0xFFFFFFFF
WORD_BITS = 32


class ConcreteDomain:
    """Semantics over unsigned 32-bit Python integers; flags are 0/1 ints."""

    name = "concrete"

    @staticmethod
    def const(value: int, width: int = WORD_BITS) -> int:
        return value & ((1 << width) - 1)

    @staticmethod
    def add(a: int, b: int) -> int:
        return (a + b) & WORD_MASK

    @staticmethod
    def sub(a: int, b: int) -> int:
        return (a - b) & WORD_MASK

    @staticmethod
    def mul(a: int, b: int) -> int:
        return (a * b) & WORD_MASK

    @staticmethod
    def and_(a: int, b: int) -> int:
        return a & b

    @staticmethod
    def or_(a: int, b: int) -> int:
        return a | b

    @staticmethod
    def xor(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def not_(a: int) -> int:
        return ~a & WORD_MASK

    @staticmethod
    def neg(a: int) -> int:
        return -a & WORD_MASK

    @staticmethod
    def shl(a: int, b: int) -> int:
        return (a << b) & WORD_MASK if b < WORD_BITS else 0

    @staticmethod
    def lshr(a: int, b: int) -> int:
        return a >> b if b < WORD_BITS else 0

    @staticmethod
    def ashr(a: int, b: int) -> int:
        shift = min(b, WORD_BITS - 1)
        signed = a - (1 << WORD_BITS) if a & 0x80000000 else a
        return (signed >> shift) & WORD_MASK

    @staticmethod
    def clz(a: int) -> int:
        for i in range(WORD_BITS - 1, -1, -1):
            if a & (1 << i):
                return WORD_BITS - 1 - i
        return WORD_BITS

    @staticmethod
    def eq(a: int, b: int) -> int:
        return int(a == b)

    @staticmethod
    def ult(a: int, b: int) -> int:
        return int(a < b)

    @staticmethod
    def ite(cond: int, then: int, orelse: int) -> int:
        return then if cond else orelse

    @staticmethod
    def bit(a: int, index: int) -> int:
        return (a >> index) & 1

    @staticmethod
    def is_zero(a: int) -> int:
        return int(a == 0)

    @staticmethod
    def addc(a: int, b: int, carry_in: int) -> Tuple[int, int, int]:
        """Add with carry-in; returns (result, carry_out, overflow)."""
        full = a + b + carry_in
        result = full & WORD_MASK
        carry = (full >> WORD_BITS) & 1
        overflow = ((~(a ^ b) & (a ^ result)) >> (WORD_BITS - 1)) & 1
        return result, carry, overflow

    @staticmethod
    def truth(value: int) -> bool:
        """Concrete truth of a 1-bit value (used by interpreters only)."""
        return bool(value)


class SymbolicDomain:
    """Semantics over :mod:`repro.symir` expressions."""

    name = "symbolic"

    @staticmethod
    def const(value: int, width: int = WORD_BITS) -> Expr:
        return Const(value, width)

    @staticmethod
    def add(a: Expr, b: Expr) -> Expr:
        return build.add(a, b)

    @staticmethod
    def sub(a: Expr, b: Expr) -> Expr:
        return build.sub(a, b)

    @staticmethod
    def mul(a: Expr, b: Expr) -> Expr:
        return build.mul(a, b)

    @staticmethod
    def and_(a: Expr, b: Expr) -> Expr:
        return build.and_(a, b)

    @staticmethod
    def or_(a: Expr, b: Expr) -> Expr:
        return build.or_(a, b)

    @staticmethod
    def xor(a: Expr, b: Expr) -> Expr:
        return build.xor(a, b)

    @staticmethod
    def not_(a: Expr) -> Expr:
        return build.not_(a)

    @staticmethod
    def neg(a: Expr) -> Expr:
        return build.neg(a)

    @staticmethod
    def shl(a: Expr, b: Expr) -> Expr:
        return build.binop("shl", a, b)

    @staticmethod
    def lshr(a: Expr, b: Expr) -> Expr:
        return build.binop("lshr", a, b)

    @staticmethod
    def ashr(a: Expr, b: Expr) -> Expr:
        return build.binop("ashr", a, b)

    @staticmethod
    def clz(a: Expr) -> Expr:
        return build.unop("clz", a)

    @staticmethod
    def eq(a: Expr, b: Expr) -> Expr:
        return build.eq(a, b)

    @staticmethod
    def ult(a: Expr, b: Expr) -> Expr:
        return build.binop("ult", a, b)

    @staticmethod
    def ite(cond: Expr, then: Expr, orelse: Expr) -> Expr:
        return build.ite(cond, then, orelse)

    @staticmethod
    def bit(a: Expr, index: int) -> Expr:
        return build.extract(a, index, 1)

    @staticmethod
    def is_zero(a: Expr) -> Expr:
        return build.is_zero(a)

    @staticmethod
    def addc(a: Expr, b: Expr, carry_in: Expr) -> Tuple[Expr, Expr, Expr]:
        wide_a = build.zero_ext(a, WORD_BITS + 1)
        wide_b = build.zero_ext(b, WORD_BITS + 1)
        wide_c = build.zero_ext(carry_in, WORD_BITS + 1)
        full = build.add(build.add(wide_a, wide_b), wide_c)
        result = build.extract(full, 0, WORD_BITS)
        carry = build.extract(full, WORD_BITS, 1)
        overflow = build.extract(
            build.and_(build.not_(build.xor(a, b)), build.xor(a, result)),
            WORD_BITS - 1,
            1,
        )
        return result, carry, overflow

    @staticmethod
    def truth(value: Expr) -> bool:
        """Symbolic values have no concrete truth; only constants do."""
        if isinstance(value, Const):
            return bool(value.value)
        raise ValueError(f"cannot take the concrete truth of {value!r}")


CONCRETE = ConcreteDomain()
SYMBOLIC = SymbolicDomain()
