"""Backend differential test: jit and trace backends against the interp oracle.

The closure-compiled backend (:mod:`repro.dbt.compiler`) re-implements the
host instruction semantics as generated Python code, so its correctness
contract is *bit-exact equivalence with the interpreter backend*: for any
guest program, both backends must produce byte-identical architectural
snapshots (registers, flags, memory) and identical ``RunMetrics`` counts —
including the weighted per-category host instruction counts and the
chained-execution accounting.  The trace backend stacks superblock
formation, guard side-exits, and retirement on top of the jit tier and is
held to the same contract; fuzzed programs run it with
``TraceConfig.aggressive()`` so tiny programs actually reach trace
formation, guard exits, and retirement instead of staying below the
production thresholds.

Coverage comes from two sources: every shrunk reproducer in
``tests/corpus/`` (each one is a regression distilled from a past fuzzing
campaign) and a fresh fuzz sweep of several hundred generated programs
(:mod:`repro.difftest.gen`), run under the cheap two-benchmark training
rule set from :mod:`repro.difftest.oracle`.
"""

import glob
import json
import os

import pytest

from repro.dbt.engine import DBTEngine
from repro.dbt.trace import TraceConfig
from repro.difftest.gen import ProgramGenerator
from repro.difftest.oracle import (
    MAX_DBT_BLOCKS,
    InvalidProgram,
    assemble_program,
    stage_config,
)

FUZZ_PROGRAMS = 500
FUZZ_SEED = 1234

_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_METRIC_FIELDS = (
    "host_counts",
    "guest_dynamic",
    "covered_dynamic",
    "block_executions",
    "blocks_translated",
    "chained_executions",
    "rule_hits",
)


@pytest.fixture(scope="module")
def config():
    return stage_config("condition")


def _outcome(unit, config, backend, chaining):
    """(snapshot, metrics dict) on success, ("error", type, message) on not."""
    kwargs = {}
    if backend == "trace":
        kwargs["trace_config"] = TraceConfig.aggressive()
    engine = DBTEngine(unit, config, chaining=chaining, backend=backend, **kwargs)
    try:
        result = engine.run(max_blocks=MAX_DBT_BLOCKS)
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc))
    metrics = {f: getattr(result.metrics, f) for f in _METRIC_FIELDS}
    return (result.architectural_snapshot(), metrics)


def _assert_backends_agree(lines, config, context, chaining=True):
    try:
        unit = assemble_program(lines)
    except InvalidProgram:
        return False
    interp = _outcome(unit, config, "interp", chaining)
    for backend in ("jit", "trace"):
        other = _outcome(unit, config, backend, chaining)
        assert interp == other, (
            f"{context}: backend divergence (chaining={chaining})\n"
            f"interp: {interp}\n{backend:6s}: {other}"
        )
    return True


def _corpus_entries():
    paths = sorted(glob.glob(os.path.join(_CORPUS_DIR, "*.json")))
    assert paths, "corpus directory is empty"
    for path in paths:
        with open(path) as handle:
            yield os.path.basename(path), json.load(handle)


class TestCorpusReplay:
    def test_corpus_byte_identical_under_all_backends(self, config):
        replayed = 0
        for name, entry in _corpus_entries():
            for chaining in (False, True):
                replayed += _assert_backends_agree(
                    entry["lines"], config, f"corpus:{name}", chaining
                )
        assert replayed > 0


class TestFuzzSweep:
    def test_fuzzed_programs_byte_identical_under_all_backends(self, config):
        generator = ProgramGenerator(seed=FUZZ_SEED)
        executed = 0
        for index in range(FUZZ_PROGRAMS):
            program = generator.generate(index)
            executed += _assert_backends_agree(
                program.lines, config, f"fuzz:{index}"
            )
        # The generator emits valid programs by construction; near-all must
        # actually replay (a mass of invalid programs would hollow the test).
        assert executed >= FUZZ_PROGRAMS * 9 // 10
