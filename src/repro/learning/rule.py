"""Translation-rule model: canonical templates, matching, instantiation.

A :class:`TranslationRule` maps a short guest instruction sequence to a host
sequence.  Rules are stored in *canonical* form:

* registers are renamed to indices in guest first-occurrence order, and the
  host side is renamed through the verified one-to-one mapping so host
  register ``k`` corresponds to guest register ``k`` (scratch registers used
  by parameterization auxiliaries get indices past the mapped ones);
* immediates (including memory displacements) become value *slots*: equal
  values share a slot, so the intra-rule equality pattern — the data
  dependences of paper fig. 8 — is part of the rule key and is enforced
  when the rule is matched against concrete guest code.

``guest_key`` computes the lookup key for a guest window; rules whose
immediates were successfully generalized drop the concrete values from
their key (they match any immediate), value-specific rules keep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Operand, Reg

Descriptor = Tuple
CanonicalKey = Tuple


def _canonicalize(
    instructions: Sequence[Instruction],
    reg_index: Dict[str, int],
    imm_slots: Dict[int, int],
    with_values: bool,
    collect: bool,
) -> CanonicalKey:
    """Canonical descriptor tuple for an instruction sequence.

    With ``collect=True``, new registers/immediates extend the maps; with
    ``collect=False`` unknown registers raise (host side must be fully
    covered by the mapping + declared temps).
    """

    def reg_idx(name: str) -> int:
        if name not in reg_index:
            if not collect:
                raise RuleError(f"register {name!r} outside the rule mapping")
            reg_index[name] = len(reg_index)
        return reg_index[name]

    def imm_slot(value: int) -> int:
        if value not in imm_slots:
            if not collect:
                raise RuleError(f"immediate {value} has no guest counterpart")
            imm_slots[value] = len(imm_slots)
        return imm_slots[value]

    items = []
    for insn in instructions:
        descriptors: List[Descriptor] = []
        for op in insn.operands:
            if isinstance(op, Reg):
                descriptors.append(("r", reg_idx(op.name)))
            elif isinstance(op, Imm):
                slot = imm_slot(op.value)
                descriptors.append(
                    ("iv", slot, op.value) if with_values else ("i", slot)
                )
            elif isinstance(op, Mem):
                base = reg_idx(op.base.name) if op.base is not None else None
                index = reg_idx(op.index.name) if op.index is not None else None
                slot = imm_slot(op.disp)
                descriptors.append(
                    ("mv", base, index, slot, op.disp, op.scale)
                    if with_values
                    else ("m", base, index, slot, op.scale)
                )
            elif isinstance(op, Label):
                descriptors.append(("l",))
            else:
                raise RuleError(f"operand {op!r} cannot appear in a rule")
        items.append((insn.mnemonic, tuple(descriptors)))
    return tuple(items)


def guest_key(
    instructions: Sequence[Instruction], with_values: bool
) -> CanonicalKey:
    """Lookup key for a guest window (canonical renaming applied)."""
    return _canonicalize(instructions, {}, {}, with_values, collect=True)


def window_keys(
    instructions: Sequence[Instruction],
) -> Tuple[CanonicalKey, CanonicalKey]:
    """(generalized key, value-specific key) in one canonicalization pass.

    Equivalent to ``(guest_key(w, False), guest_key(w, True))`` — register
    indices and immediate slots grow in first-occurrence order regardless of
    ``with_values``, so both key forms share one walk over the window.  For
    immediate-free windows the two forms are the same tuple and the same
    object is returned twice (callers may use ``is`` to skip the second
    probe).
    """
    reg_index: Dict[str, int] = {}
    imm_slots: Dict[int, int] = {}

    def reg_idx(name: str) -> int:
        if name not in reg_index:
            reg_index[name] = len(reg_index)
        return reg_index[name]

    def imm_slot(value: int) -> int:
        if value not in imm_slots:
            imm_slots[value] = len(imm_slots)
        return imm_slots[value]

    general_items = []
    specific_items = []
    has_values = False
    for insn in instructions:
        general: List[Descriptor] = []
        specific: List[Descriptor] = []
        for op in insn.operands:
            if isinstance(op, Reg):
                descriptor = ("r", reg_idx(op.name))
                general.append(descriptor)
                specific.append(descriptor)
            elif isinstance(op, Imm):
                slot = imm_slot(op.value)
                general.append(("i", slot))
                specific.append(("iv", slot, op.value))
                has_values = True
            elif isinstance(op, Mem):
                base = reg_idx(op.base.name) if op.base is not None else None
                index = reg_idx(op.index.name) if op.index is not None else None
                slot = imm_slot(op.disp)
                general.append(("m", base, index, slot, op.scale))
                specific.append(("mv", base, index, slot, op.disp, op.scale))
                has_values = True
            elif isinstance(op, Label):
                descriptor = ("l",)
                general.append(descriptor)
                specific.append(descriptor)
            else:
                raise RuleError(f"operand {op!r} cannot appear in a rule")
        general_items.append((insn.mnemonic, tuple(general)))
        specific_items.append((insn.mnemonic, tuple(specific)))
    general_key = tuple(general_items)
    if not has_values:
        return general_key, general_key
    return general_key, tuple(specific_items)


def window_key_prefixes(
    instructions: Sequence[Instruction],
) -> List[Tuple[CanonicalKey, CanonicalKey]]:
    """Key pairs for **every prefix** of the sequence, in one walk.

    ``result[k - 1]`` equals ``window_keys(instructions[:k])`` — canonical
    renaming assigns indices in first-occurrence order, so the maps built
    while walking a long window are, at each step, exactly the maps the
    prefix would have built on its own.  This is what lets the translator's
    longest-match probe fingerprint a position once instead of once per
    candidate length (cost ``n`` instruction visits instead of
    ``n + (n-1) + ... + 1``).

    Stops at the first instruction that cannot be canonicalized; the
    prefixes computed up to that point are still returned (shorter windows
    remain probeable, exactly as per-window :func:`window_keys` calls would
    behave).
    """
    reg_index: Dict[str, int] = {}
    imm_slots: Dict[int, int] = {}

    def reg_idx(name: str) -> int:
        if name not in reg_index:
            reg_index[name] = len(reg_index)
        return reg_index[name]

    def imm_slot(value: int) -> int:
        if value not in imm_slots:
            imm_slots[value] = len(imm_slots)
        return imm_slots[value]

    general_items: List[Tuple] = []
    specific_items: List[Tuple] = []
    has_values = False
    pairs: List[Tuple[CanonicalKey, CanonicalKey]] = []
    for insn in instructions:
        general: List[Descriptor] = []
        specific: List[Descriptor] = []
        try:
            for op in insn.operands:
                if isinstance(op, Reg):
                    descriptor = ("r", reg_idx(op.name))
                    general.append(descriptor)
                    specific.append(descriptor)
                elif isinstance(op, Imm):
                    slot = imm_slot(op.value)
                    general.append(("i", slot))
                    specific.append(("iv", slot, op.value))
                    has_values = True
                elif isinstance(op, Mem):
                    base = reg_idx(op.base.name) if op.base is not None else None
                    index = (
                        reg_idx(op.index.name) if op.index is not None else None
                    )
                    slot = imm_slot(op.disp)
                    general.append(("m", base, index, slot, op.scale))
                    specific.append(
                        ("mv", base, index, slot, op.disp, op.scale)
                    )
                    has_values = True
                elif isinstance(op, Label):
                    descriptor = ("l",)
                    general.append(descriptor)
                    specific.append(descriptor)
                else:
                    raise RuleError(f"operand {op!r} cannot appear in a rule")
        except RuleError:
            break
        general_items.append((insn.mnemonic, tuple(general)))
        specific_items.append((insn.mnemonic, tuple(specific)))
        general_key = tuple(general_items)
        pairs.append(
            (general_key, general_key)
            if not has_values
            else (general_key, tuple(specific_items))
        )
    return pairs


def window_bindings(
    instructions: Sequence[Instruction],
) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
    """(registers in first-occurrence order, immediate slot values)."""
    reg_index: Dict[str, int] = {}
    imm_slots: Dict[int, int] = {}
    _canonicalize(instructions, reg_index, imm_slots, False, collect=True)
    regs = tuple(reg_index)
    imms = tuple(sorted(imm_slots, key=imm_slots.get))
    return regs, imms


@dataclass(frozen=True)
class TranslationRule:
    """A verified guest -> host translation rule (canonical template)."""

    #: template instructions exactly as learned (concrete register names).
    guest: Tuple[Instruction, ...]
    host: Tuple[Instruction, ...]
    #: guest register name -> host register name (one-to-one), as pairs.
    reg_mapping: Tuple[Tuple[str, str], ...]
    #: host scratch registers (parameterization auxiliaries only).
    host_temps: Tuple[str, ...] = ()
    #: per-flag verdict: equiv / mismatch / preserved / clobbered.
    flag_status: Tuple[Tuple[str, str], ...] = ()
    #: immediates generalized (rule matches any immediate values)?
    imm_generalized: bool = False
    #: provenance: "learned", "opcode-param", "addrmode-param", "manual".
    origin: str = "learned"
    #: free-form constraint tags (e.g. "aux:bic", "pc-operand").
    constraints: Tuple[str, ...] = ()

    # -- derived views ---------------------------------------------------------

    @property
    def mapping_dict(self) -> Dict[str, str]:
        return dict(self.reg_mapping)

    @property
    def flags(self) -> Dict[str, str]:
        return dict(self.flag_status)

    @property
    def guest_length(self) -> int:
        return len(self.guest)

    def key(self) -> CanonicalKey:
        return guest_key(self.guest, with_values=not self.imm_generalized)

    def canonical_identity(self) -> Tuple:
        """Full dedup identity: guest key + canonical host template + flags."""
        reg_index: Dict[str, int] = {}
        imm_slots: Dict[int, int] = {}
        guest_canon = _canonicalize(
            self.guest, reg_index, imm_slots, not self.imm_generalized, collect=True
        )
        host_index = {
            self.mapping_dict[g]: i for g, i in sorted(reg_index.items(), key=lambda kv: kv[1])
            if g in self.mapping_dict
        }
        for temp in self.host_temps:
            host_index[temp] = len(host_index)
        host_canon = _canonicalize(
            self.host, host_index, dict(imm_slots), not self.imm_generalized, collect=False
        )
        return (guest_canon, host_canon, tuple(sorted(self.flag_status)), self.constraints)

    # -- instantiation -----------------------------------------------------------

    def _instantiation_template(self) -> Tuple:
        """Template-side instantiation context, computed once per rule.

        The template bindings, inverse register mapping and temp indices
        depend only on the (immutable) rule, yet were historically rebuilt
        on every application — a measurable slice of translate time.  The
        dataclass is frozen, so the lazy cache goes through
        ``object.__setattr__``.
        """
        cached = self.__dict__.get("_inst_template")
        if cached is None:
            tpl_regs, tpl_imms = window_bindings(self.guest)
            inverse = {h: g for g, h in self.reg_mapping}
            temp_index = {name: i for i, name in enumerate(self.host_temps)}
            cached = (tpl_regs, tpl_imms, inverse, temp_index)
            object.__setattr__(self, "_inst_template", cached)
        return cached

    def matches(self, window: Sequence[Instruction]) -> bool:
        try:
            return guest_key(window, with_values=not self.imm_generalized) == self.key()
        except RuleError:
            return False

    def instantiate(
        self,
        window: Sequence[Instruction],
        host_reg: Callable[[str], Operand],
        scratch: Callable[[int], Operand],
        label_map: Callable[[str], str],
    ) -> Tuple[Instruction, ...]:
        """Emit host instructions for a concrete guest *window*.

        ``host_reg`` maps a concrete guest register name to the host operand
        holding it; ``scratch`` supplies the i-th scratch operand for
        auxiliary instructions; ``label_map`` translates the guest branch
        target into the host-side label.
        """
        win_regs, win_imms = window_bindings(window)
        tpl_regs, tpl_imms, inverse, temp_index = self._instantiation_template()
        if len(win_regs) != len(tpl_regs) or len(win_imms) != len(tpl_imms):
            raise RuleError("window does not match rule shape")
        guest_of_template = dict(zip(tpl_regs, win_regs))
        imm_of_slot = dict(zip(tpl_imms, win_imms))
        window_labels = [
            op.name for insn in window for op in insn.operands if isinstance(op, Label)
        ]

        def host_operand(op: Operand) -> Operand:
            if isinstance(op, Reg):
                if op.name in inverse:
                    return host_reg(guest_of_template[inverse[op.name]])
                if op.name in temp_index:
                    return scratch(temp_index[op.name])
                raise RuleError(f"host register {op.name!r} outside rule mapping")
            if isinstance(op, Imm):
                return Imm(imm_of_slot[op.value]) if self.imm_generalized else op
            if isinstance(op, Mem):
                base = host_operand(op.base) if op.base is not None else None
                index = host_operand(op.index) if op.index is not None else None
                disp = imm_of_slot[op.disp] if self.imm_generalized else op.disp
                if base is not None and not isinstance(base, Reg):
                    raise RuleError("memory base must instantiate to a register")
                if index is not None and not isinstance(index, Reg):
                    raise RuleError("memory index must instantiate to a register")
                return Mem(base=base, index=index, disp=disp, scale=op.scale)
            if isinstance(op, Label):
                if not window_labels:
                    raise RuleError("rule has a label but the window does not")
                return Label(label_map(window_labels[0]))
            raise RuleError(f"cannot instantiate operand {op!r}")

        return tuple(
            Instruction(insn.mnemonic, tuple(host_operand(op) for op in insn.operands))
            for insn in self.host
        )

    def with_origin(self, origin: str, **changes) -> "TranslationRule":
        return replace(self, origin=origin, **changes)
