"""Sharded rule index: opcode-class-partitioned lookup with hit counters.

A frozen :class:`~repro.learning.ruleset.RuleSet` is one big dict pair.
That is fine for a batch run, but a serving process doing rule lookups from
many worker threads wants (a) per-shard hit/miss counters that don't
serialize every lookup through one hot counter, and (b) an index layout
that can later be distributed (each shard is a self-contained RuleSet).

Sharding key: the **first guest mnemonic** of the lookup window.  Every
rule that can match a window shares the window's first mnemonic (the guest
key embeds mnemonics in order), so a per-shard lookup — generalized rules
preferred, value-specific fallback, shorter-host tie-breaks — returns
exactly the rule the flat index would.  Mnemonics are mapped onto ``N``
shards by a stable hash; shard stats also report which opcode classes
(:class:`~repro.isa.instruction.Subgroup`) each shard holds.

The index duck-types the slice of the RuleSet API the translator uses
(``lookup``, ``max_guest_length``, truthiness), so a
:class:`~repro.dbt.translator.TranslationConfig` can carry one
transparently.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.arm.opcodes import ARM
from repro.isa.instruction import Instruction
from repro.learning.hotindex import HotIndex
from repro.learning.rule import CanonicalKey, TranslationRule
from repro.learning.ruleset import RuleSet

DEFAULT_SHARDS = 8


def shard_of(mnemonic: str, num_shards: int) -> int:
    """Stable shard id for a guest mnemonic (crc32, not PYTHONHASHSEED)."""
    return zlib.crc32(mnemonic.encode("utf-8")) % num_shards


class _Shard:
    """One shard: a self-contained RuleSet plus locked hit/miss counters."""

    __slots__ = ("index", "rules", "mnemonics", "hits", "misses", "_lock")

    def __init__(self, index: int) -> None:
        self.index = index
        self.rules = RuleSet()
        self.mnemonics: set = set()
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def stats(self) -> Dict[str, object]:
        classes = set()
        for name in self.mnemonics:
            try:
                classes.add(ARM.lookup(name).subgroup.value)
            except Exception:
                classes.add("unknown")
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return {
            "shard": self.index,
            "rules": len(self.rules),
            "mnemonics": sorted(self.mnemonics),
            "opcode_classes": sorted(classes),
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }


class ShardedRuleIndex:
    """N-way sharded view of a frozen RuleSet, safe for threaded lookup."""

    def __init__(self, rules: RuleSet, num_shards: int = DEFAULT_SHARDS) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._source = rules
        self._max_guest_length = rules.max_guest_length()
        self._total = len(rules)
        self._shards: List[_Shard] = [_Shard(i) for i in range(num_shards)]
        parts = rules.partition(
            lambda rule: shard_of(rule.guest[0].mnemonic, num_shards)
        )
        for index, part in parts.items():
            shard = self._shards[index]
            shard.rules = part.freeze()
            shard.mnemonics = {rule.guest[0].mnemonic for rule in part}

    # -- RuleSet surface the translator relies on ---------------------------

    def lookup(self, window: Sequence[Instruction]) -> Optional[TranslationRule]:
        if not window:
            return None
        shard = self._shards[shard_of(window[0].mnemonic, self.num_shards)]
        rule = shard.rules.lookup(window)
        shard.record(rule is not None)
        return rule

    def lookup_canonical(
        self, general: CanonicalKey, specific: CanonicalKey
    ) -> Optional[TranslationRule]:
        """Precomputed-key lookup: the general key carries the first guest
        mnemonic (``general[0][0]``), so routing needs no re-canonicalization."""
        if not general:
            return None
        shard = self._shards[shard_of(general[0][0], self.num_shards)]
        rule = shard.rules.lookup_canonical(general, specific)
        shard.record(rule is not None)
        return rule

    def max_guest_length(self) -> int:
        return self._max_guest_length

    def __len__(self) -> int:
        return self._total

    def __iter__(self) -> Iterator[TranslationRule]:
        return iter(self._source)

    @property
    def frozen(self) -> bool:
        return True

    # -- observability -------------------------------------------------------

    def lookups(self) -> int:
        return sum(s.hits + s.misses for s in self._shards)

    def stats(self) -> Dict[str, object]:
        shards = [shard.stats() for shard in self._shards]
        hits = sum(s["hits"] for s in shards)
        misses = sum(s["misses"] for s in shards)
        populated = sum(1 for s in shards if s["rules"])
        return {
            "num_shards": self.num_shards,
            "populated_shards": populated,
            "rules": self._total,
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
            "shards": shards,
        }


class Tier0Front:
    """Distilled tier-0 front over the sharded full index (serving layout).

    A :class:`~repro.learning.hotindex.HotIndex` answers the hot ~95% of
    lookups from one flat packed dict; every miss falls through to the
    crc32-sharded full index, so the front is translation-transparent (the
    hotindex module's parity argument).  ``stats()`` nests the tier-0
    counters (tier0_hits / fallback_hits / misses, size, coverage) above
    the usual shard breakdown — fallback lookups still bump the shard
    counters they land on.
    """

    def __init__(
        self,
        tier0_rules: Sequence[TranslationRule],
        full: RuleSet,
        num_shards: int = DEFAULT_SHARDS,
        *,
        coverage: float = 0.0,
        digest: str = "",
        dropped: int = 0,
        stale: bool = False,
    ) -> None:
        self.shards = ShardedRuleIndex(full, num_shards)
        self.hot = HotIndex(
            tier0_rules, self.shards, coverage=coverage, digest=digest
        )
        self.dropped = dropped
        self.stale = stale

    # -- RuleSet surface the translator relies on ---------------------------

    def lookup(self, window: Sequence[Instruction]) -> Optional[TranslationRule]:
        return self.hot.lookup(window)

    def lookup_canonical(
        self, general: CanonicalKey, specific: CanonicalKey
    ) -> Optional[TranslationRule]:
        return self.hot.lookup_canonical(general, specific)

    def max_guest_length(self) -> int:
        return self.shards.max_guest_length()

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[TranslationRule]:
        return iter(self.shards)

    @property
    def frozen(self) -> bool:
        return True

    # -- observability -------------------------------------------------------

    def lookups(self) -> int:
        stats = self.hot.stats()
        return stats["tier0_hits"] + stats["fallback_hits"] + stats["misses"]

    def stats(self) -> Dict[str, object]:
        tier0 = self.hot.stats()
        tier0["dropped"] = self.dropped
        tier0["stale"] = self.stale
        return {"tier0": tier0, **self.shards.stats()}
