"""Rule-candidate equivalence checking (the paper's verification step).

Given a guest instruction sequence and a host instruction sequence (a rule
candidate extracted from statement-aligned binaries), decide whether they are
semantically equivalent under a one-to-one, type-matched operand mapping —
the strictness rules of paper §II-B:

* guest registers map one-to-one onto host registers.  Extra host scratch
  registers are rejected in learning mode (``allow_temps=0``) — the
  parameterization framework re-enables them for its explicitly-declared
  auxiliary instructions (paper §IV-C1, fig. 7);
* immediates must agree pairwise by value;
* memory effects must match store-for-store;
* the program counter and the stack pointers cannot be mapped;
* condition flags are compared per flag with a four-way verdict:

  ========== =====================================================
  ``equiv``     guest sets the flag; host produces the same value
  ``mismatch``  guest sets the flag; host value differs
  ``preserved`` guest does not set it and host leaves it alone
  ``clobbered`` guest does not set it but host overwrites it
  ========== =====================================================

A rule is *equivalent* when dataflow matches and no guest-set flag is a
mismatch.  ``clobbered`` flags are legal (x86 ALU instructions always
clobber flags ARM preserves) but are recorded so translators can track
which host flags still mirror guest flags — the raw material for
condition-flag delegation (§IV-B, §IV-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.isa.flags import FLAG_NAMES
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.symir import Sym
from repro.verify.equivalence import exprs_equal
from repro.verify.symstate import SymbolicState, run_symbolic

_MAX_MAPPING_ATTEMPTS = 64

FLAG_EQUIV = "equiv"
FLAG_MISMATCH = "mismatch"
FLAG_PRESERVED = "preserved"
FLAG_CLOBBERED = "clobbered"


@dataclass
class CheckResult:
    """Outcome of verifying one rule candidate."""

    equivalent: bool
    reg_mapping: Optional[Dict[str, str]] = None
    host_temps: Tuple[str, ...] = ()
    flag_status: Dict[str, str] = field(default_factory=dict)
    reason: str = ""

    @property
    def dataflow_ok(self) -> bool:
        """Registers/memory/branch matched under some mapping."""
        return self.reg_mapping is not None

    @property
    def mismatched_flags(self) -> Tuple[str, ...]:
        return tuple(
            f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_MISMATCH
        )

    @property
    def clobbered_flags(self) -> Tuple[str, ...]:
        return tuple(
            f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_CLOBBERED
        )

    @property
    def equiv_flags(self) -> Tuple[str, ...]:
        return tuple(f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_EQUIV)


def collect_regs(instructions: Sequence[Instruction]) -> List[str]:
    """Distinct register names in first-occurrence order (incl. mem bases)."""
    seen: Dict[str, None] = {}
    for insn in instructions:
        for operand in insn.operands:
            if isinstance(operand, Reg):
                seen.setdefault(operand.name)
            elif isinstance(operand, Mem):
                if operand.base is not None:
                    seen.setdefault(operand.base.name)
                if operand.index is not None:
                    seen.setdefault(operand.index.name)
            elif isinstance(operand, RegList):
                for entry in operand.regs:
                    seen.setdefault(entry.name)
    return list(seen)


def collect_imms(instructions: Sequence[Instruction]) -> List[int]:
    return [
        op.value
        for insn in instructions
        for op in insn.operands
        if isinstance(op, Imm)
    ]


def collect_labels(instructions: Sequence[Instruction]) -> List[str]:
    return [
        op.name
        for insn in instructions
        for op in insn.operands
        if isinstance(op, Label)
    ]


def _strip(instructions: Sequence[Instruction]) -> Tuple[Instruction, ...]:
    return tuple(i for i in instructions if i.mnemonic != ".label")


def _candidate_mappings(
    guest_regs: List[str], host_regs: List[str]
) -> Iterator[Dict[str, str]]:
    """Yield injective guest->host register mappings, most plausible first."""
    n = len(guest_regs)
    emitted = set()
    count = 0

    def emit(subset):
        nonlocal count
        if subset in emitted:
            return None
        emitted.add(subset)
        count += 1
        return dict(zip(guest_regs, subset))

    if len(host_regs) >= n:
        mapping = emit(tuple(host_regs[:n]))
        if mapping is not None:
            yield mapping
    for subset in itertools.permutations(host_regs, n):
        if count >= _MAX_MAPPING_ATTEMPTS:
            return
        mapping = emit(subset)
        if mapping is not None:
            yield mapping


def guest_set_flags(guest_isa, instructions: Sequence[Instruction]) -> frozenset:
    """Union of flags written by a guest sequence."""
    flags = set()
    for insn in instructions:
        if insn.mnemonic != ".label":
            flags |= guest_isa.defn(insn).flags_set
    return frozenset(flags)


def check_equivalence(
    guest_isa,
    host_isa,
    guest_insns: Sequence[Instruction],
    host_insns: Sequence[Instruction],
    allow_temps: int = 0,
) -> CheckResult:
    """Verify a rule candidate; see module docstring for the contract."""
    guest_insns = _strip(guest_insns)
    host_insns = _strip(host_insns)
    if not guest_insns or not host_insns:
        return CheckResult(False, reason="empty sequence")

    for insn in guest_insns:
        defn = guest_isa.defn(insn)
        if defn.is_branch and defn.cond is None:
            # An individual unconditional transfer has no dataflow to prove
            # equivalent; its target correspondence is layout-dependent
            # (paper §V-B2: "an individual b instruction cannot be learned").
            return CheckResult(False, reason="unconditional control transfer")

    guest_regs = collect_regs(guest_insns)
    host_regs = collect_regs(host_insns)
    if guest_isa.pc_register in guest_regs:
        return CheckResult(False, reason="guest uses the PC register")
    if guest_isa.sp_register in guest_regs or host_isa.sp_register in host_regs:
        return CheckResult(False, reason="stack-pointer (ABI) dependence")

    if sorted(collect_imms(guest_insns)) != sorted(collect_imms(host_insns)):
        return CheckResult(False, reason="immediate operands do not correspond")

    guest_labels = collect_labels(guest_insns)
    host_labels = collect_labels(host_insns)
    if len(guest_labels) != len(host_labels) or len(guest_labels) > 1:
        return CheckResult(False, reason="branch targets do not correspond")

    if len(host_regs) < len(guest_regs):
        return CheckResult(False, reason="fewer host registers than guest registers")
    if len(host_regs) - len(guest_regs) > allow_temps:
        return CheckResult(
            False,
            reason="host uses scratch registers beyond the one-to-one mapping",
        )

    wanted = guest_set_flags(guest_isa, guest_insns)
    best: Optional[CheckResult] = None
    for mapping in _candidate_mappings(guest_regs, host_regs):
        result = _check_with_mapping(
            guest_isa, host_isa, guest_insns, host_insns, mapping, wanted
        )
        if result is None:
            continue
        if result.equivalent:
            return result
        if best is None or len(result.mismatched_flags) < len(best.mismatched_flags):
            best = result
    if best is not None:
        return best
    return CheckResult(False, reason="no operand mapping satisfies dataflow equivalence")


def _check_with_mapping(
    guest_isa,
    host_isa,
    guest_insns: Tuple[Instruction, ...],
    host_insns: Tuple[Instruction, ...],
    mapping: Dict[str, str],
    wanted_flags: frozenset,
) -> Optional[CheckResult]:
    """Check one register mapping; None means "this mapping does not work"."""
    load_oracle: Dict = {}
    guest_state = SymbolicState("g", load_oracle=load_oracle)
    host_state = SymbolicState("h", load_oracle=load_oracle)

    for i, (guest_reg, host_reg) in enumerate(mapping.items()):
        shared = Sym(f"v{i}", 32)
        guest_state.bind_reg(guest_reg, shared)
        host_state.bind_reg(host_reg, shared)
    flag_inputs = {}
    for flag in FLAG_NAMES:
        shared = Sym(f"F{flag}", 1)
        flag_inputs[flag] = shared
        guest_state.bind_flag(flag, shared)
        host_state.bind_flag(flag, shared)

    try:
        run_symbolic(guest_isa, guest_insns, guest_state)
        run_symbolic(host_isa, host_insns, host_state)
    except VerificationError:
        return None

    mapped_hosts = set(mapping.values())
    temps = tuple(r for r in collect_regs(host_insns) if r not in mapped_hosts)
    # True temporaries must be written before any read.
    if any(t in host_state.lazy_reads for t in temps):
        return None
    if guest_state.lazy_reads:
        return None  # guest read a register outside the collected operands

    # Register outputs.
    for guest_reg, host_reg in mapping.items():
        if not exprs_equal(guest_state.regs[guest_reg], host_state.regs[host_reg]):
            return None

    # Memory outputs: store-for-store, in order.
    if len(guest_state.stores) != len(host_state.stores):
        return None
    for g_store, h_store in zip(guest_state.stores, host_state.stores):
        if g_store.size != h_store.size:
            return None
        if not exprs_equal(g_store.addr, h_store.addr):
            return None
        if not exprs_equal(g_store.value, h_store.value):
            return None

    # Branch outcome.
    if (guest_state.branch_taken is None) != (host_state.branch_taken is None):
        return None
    if guest_state.branch_taken is not None:
        if not exprs_equal(guest_state.branch_taken, host_state.branch_taken):
            return None

    flag_status: Dict[str, str] = {}
    for flag in FLAG_NAMES:
        guest_flag = guest_state.flags[flag]
        host_flag = host_state.flags[flag]
        if flag in wanted_flags:
            equal = exprs_equal(guest_flag, host_flag)
            flag_status[flag] = FLAG_EQUIV if equal else FLAG_MISMATCH
        elif host_flag == flag_inputs[flag]:
            flag_status[flag] = FLAG_PRESERVED
        else:
            flag_status[flag] = FLAG_CLOBBERED

    return CheckResult(
        equivalent=all(s != FLAG_MISMATCH for s in flag_status.values()),
        reg_mapping=dict(mapping),
        host_temps=temps,
        flag_status=flag_status,
    )
