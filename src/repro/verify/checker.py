"""Rule-candidate equivalence checking (the paper's verification step).

Given a guest instruction sequence and a host instruction sequence (a rule
candidate extracted from statement-aligned binaries), decide whether they are
semantically equivalent under a one-to-one, type-matched operand mapping —
the strictness rules of paper §II-B:

* guest registers map one-to-one onto host registers.  Extra host scratch
  registers are rejected in learning mode (``allow_temps=0``) — the
  parameterization framework re-enables them for its explicitly-declared
  auxiliary instructions (paper §IV-C1, fig. 7);
* immediates must agree pairwise by value;
* memory effects must match store-for-store;
* the program counter and the stack pointers cannot be mapped;
* condition flags are compared per flag with a four-way verdict:

  ========== =====================================================
  ``equiv``     guest sets the flag; host produces the same value
  ``mismatch``  guest sets the flag; host value differs
  ``preserved`` guest does not set it and host leaves it alone
  ``clobbered`` guest does not set it but host overwrites it
  ========== =====================================================

A rule is *equivalent* when dataflow matches and no guest-set flag is a
mismatch.  ``clobbered`` flags are legal (x86 ALU instructions always
clobber flags ARM preserves) but are recorded so translators can track
which host flags still mirror guest flags — the raw material for
condition-flag delegation (§IV-B, §IV-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import perfopts
from repro.cache import MISS, BoundedMemo
from repro.errors import VerificationError
from repro.isa.flags import FLAG_NAMES
from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.symir import Expr, Sym
from repro.verify import shapeclass
from repro.verify.equivalence import exprs_equal
from repro.verify.symstate import SymbolicState, run_symbolic

_MAX_MAPPING_ATTEMPTS = 64

FLAG_EQUIV = "equiv"
FLAG_MISMATCH = "mismatch"
FLAG_PRESERVED = "preserved"
FLAG_CLOBBERED = "clobbered"


@dataclass
class CheckResult:
    """Outcome of verifying one rule candidate."""

    equivalent: bool
    reg_mapping: Optional[Dict[str, str]] = None
    host_temps: Tuple[str, ...] = ()
    flag_status: Dict[str, str] = field(default_factory=dict)
    reason: str = ""

    @property
    def dataflow_ok(self) -> bool:
        """Registers/memory/branch matched under some mapping."""
        return self.reg_mapping is not None

    @property
    def mismatched_flags(self) -> Tuple[str, ...]:
        return tuple(
            f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_MISMATCH
        )

    @property
    def clobbered_flags(self) -> Tuple[str, ...]:
        return tuple(
            f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_CLOBBERED
        )

    @property
    def equiv_flags(self) -> Tuple[str, ...]:
        return tuple(f for f in FLAG_NAMES if self.flag_status.get(f) == FLAG_EQUIV)


def collect_regs(instructions: Sequence[Instruction]) -> List[str]:
    """Distinct register names in first-occurrence order (incl. mem bases)."""
    seen: Dict[str, None] = {}
    for insn in instructions:
        for operand in insn.operands:
            if isinstance(operand, Reg):
                seen.setdefault(operand.name)
            elif isinstance(operand, Mem):
                if operand.base is not None:
                    seen.setdefault(operand.base.name)
                if operand.index is not None:
                    seen.setdefault(operand.index.name)
            elif isinstance(operand, RegList):
                for entry in operand.regs:
                    seen.setdefault(entry.name)
    return list(seen)


def collect_imms(instructions: Sequence[Instruction]) -> List[int]:
    return [
        op.value
        for insn in instructions
        for op in insn.operands
        if isinstance(op, Imm)
    ]


def collect_labels(instructions: Sequence[Instruction]) -> List[str]:
    return [
        op.name
        for insn in instructions
        for op in insn.operands
        if isinstance(op, Label)
    ]


def _strip(instructions: Sequence[Instruction]) -> Tuple[Instruction, ...]:
    return tuple(i for i in instructions if i.mnemonic != ".label")


def _candidate_mappings(
    guest_regs: List[str], host_regs: List[str]
) -> Iterator[Dict[str, str]]:
    """Yield injective guest->host register mappings, most plausible first."""
    n = len(guest_regs)
    emitted = set()
    count = 0

    def emit(subset):
        nonlocal count
        if subset in emitted:
            return None
        emitted.add(subset)
        count += 1
        return dict(zip(guest_regs, subset))

    if len(host_regs) >= n:
        mapping = emit(tuple(host_regs[:n]))
        if mapping is not None:
            yield mapping
    for subset in itertools.permutations(host_regs, n):
        if count >= _MAX_MAPPING_ATTEMPTS:
            return
        mapping = emit(subset)
        if mapping is not None:
            yield mapping


def guest_set_flags(guest_isa, instructions: Sequence[Instruction]) -> frozenset:
    """Union of flags written by a guest sequence."""
    flags = set()
    for insn in instructions:
        if insn.mnemonic != ".label":
            flags |= guest_isa.defn(insn).flags_set
    return frozenset(flags)


def check_equivalence(
    guest_isa,
    host_isa,
    guest_insns: Sequence[Instruction],
    host_insns: Sequence[Instruction],
    allow_temps: int = 0,
) -> CheckResult:
    """Verify a rule candidate; see module docstring for the contract."""
    guest_insns = _strip(guest_insns)
    host_insns = _strip(host_insns)
    if not guest_insns or not host_insns:
        return CheckResult(False, reason="empty sequence")

    for insn in guest_insns:
        defn = guest_isa.defn(insn)
        if defn.is_branch and defn.cond is None:
            # An individual unconditional transfer has no dataflow to prove
            # equivalent; its target correspondence is layout-dependent
            # (paper §V-B2: "an individual b instruction cannot be learned").
            return CheckResult(False, reason="unconditional control transfer")

    guest_regs = collect_regs(guest_insns)
    host_regs = collect_regs(host_insns)
    if guest_isa.pc_register in guest_regs:
        return CheckResult(False, reason="guest uses the PC register")
    if guest_isa.sp_register in guest_regs or host_isa.sp_register in host_regs:
        return CheckResult(False, reason="stack-pointer (ABI) dependence")

    if sorted(collect_imms(guest_insns)) != sorted(collect_imms(host_insns)):
        return CheckResult(False, reason="immediate operands do not correspond")

    guest_labels = collect_labels(guest_insns)
    host_labels = collect_labels(host_insns)
    if len(guest_labels) != len(host_labels) or len(guest_labels) > 1:
        return CheckResult(False, reason="branch targets do not correspond")

    if len(host_regs) < len(guest_regs):
        return CheckResult(False, reason="fewer host registers than guest registers")
    if len(host_regs) - len(guest_regs) > allow_temps:
        return CheckResult(
            False,
            reason="host uses scratch registers beyond the one-to-one mapping",
        )

    wanted = guest_set_flags(guest_isa, guest_insns)
    if perfopts.optimized():
        # Shape-class layer: canonicalize register names, run the mapping
        # search once per canonical shape, rebase the verdict per member
        # (with a seeded direct-verification cross-check on served hits).
        return shapeclass.check_shape_class(
            guest_isa,
            host_isa,
            guest_insns,
            host_insns,
            guest_regs,
            host_regs,
            wanted,
            search=_search_mappings_fast,
        )

    best: Optional[CheckResult] = None
    for mapping in _candidate_mappings(guest_regs, host_regs):
        result = _check_with_mapping(
            guest_isa, host_isa, guest_insns, host_insns, mapping, wanted
        )
        if result is None:
            continue
        if result.equivalent:
            return result
        if best is None or len(result.mismatched_flags) < len(best.mismatched_flags):
            best = result
    if best is not None:
        return best
    return CheckResult(False, reason="no operand mapping satisfies dataflow equivalence")


_NO_MAPPING = CheckResult(
    False, reason="no operand mapping satisfies dataflow equivalence"
)

#: Completed guest runs keyed ``(isa.name, guest_insns)``.  A finished
#: :class:`SymbolicState` is immutable from the checker's point of view —
#: the search only reads it and copies its load oracle — so the state object
#: itself is the memo value (or a :class:`VerificationError` marker).
_GUEST_RUN_MEMO = BoundedMemo(maxsize=4096, name="verify.guest_run")

#: Host probe signatures keyed ``(isa.name, host_insns)``: the probe's
#: lazy-read and written-register sets (or an error marker), which are
#: invariant under the symbol renaming any candidate mapping induces.
_PROBE_MEMO = BoundedMemo(maxsize=4096, name="verify.host_probe")

#: Completed mapped host runs, keyed by instructions, mapping, and the
#: guest-populated load-oracle snapshot the run starts from (all interned
#: expressions, so the key hashes in O(1) per node).
_HOST_RUN_MEMO = BoundedMemo(maxsize=4096, name="verify.host_run")

_RUN_FAILED = "verification-error"


def _run_guest(guest_isa, guest_insns, guest_regs):
    """Run (or recall) the hoisted guest execution; None means it failed."""
    key = (guest_isa.name, guest_insns)
    state = _GUEST_RUN_MEMO.get(key)
    if state is MISS:
        base_oracle: Dict = {}
        state = SymbolicState("g", load_oracle=base_oracle)
        for i, guest_reg in enumerate(guest_regs):
            state.bind_reg(guest_reg, Sym(f"v{i}", 32))
        for flag in FLAG_NAMES:
            state.bind_flag(flag, Sym(f"F{flag}", 1))
        try:
            run_symbolic(guest_isa, guest_insns, state)
        except VerificationError:
            state = _RUN_FAILED
        _GUEST_RUN_MEMO.put(key, state)
    return None if state is _RUN_FAILED else state


def _probe_host(host_isa, host_insns, flag_inputs):
    """Host run with unbound registers; returns (lazy_reads, written_regs).

    ``None`` means the run raised — and, because the raise depends only on
    store-buffer address resolution (invariant under the injective symbol
    renaming a mapping binding induces), every mapped run raises too.
    """
    key = (host_isa.name, host_insns)
    signature = _PROBE_MEMO.get(key)
    if signature is MISS:
        probe = SymbolicState("h")
        for flag in FLAG_NAMES:
            probe.bind_flag(flag, flag_inputs[flag])
        try:
            run_symbolic(host_isa, host_insns, probe)
        except VerificationError:
            signature = _RUN_FAILED
        else:
            signature = (frozenset(probe.lazy_reads), frozenset(probe.written_regs))
        _PROBE_MEMO.put(key, signature)
    return None if signature is _RUN_FAILED else signature


def _search_mappings_fast(
    guest_isa,
    host_isa,
    guest_insns: Tuple[Instruction, ...],
    host_insns: Tuple[Instruction, ...],
    guest_regs: List[str],
    host_regs: List[str],
    wanted_flags: frozenset,
) -> CheckResult:
    """Mapping search with the guest run hoisted and a host probe pruning.

    Result-identical to the legacy per-mapping loop, by construction:

    * The guest's symbolic run never depends on the candidate mapping —
      every mapping binds ``guest_regs[i]`` to ``Sym("v{i}")`` — so it is
      run **once** here; the shared load oracle it populates is snapshot-
      copied for each host attempt, exactly reproducing the fresh-oracle-
      per-mapping behaviour of the legacy loop.
    * The host is run once as an unbound *probe*.  Its raised-or-not
      status, lazy-read set, and written-register set are invariant under
      the injective symbol renaming that binding a mapping performs (the
      store-buffer address resolution the run depends on compares
      canonical forms, and injective renaming preserves both their
      equality and inequality), so the probe's register signature decides,
      per candidate mapping, checks the legacy loop could only make after
      a full host run: a temp register that is read before written, or a
      mapped-but-unwritten host register whose guest counterpart computes
      a different value.  Mappings failing those checks are skipped
      without a host run — but still consumed from the same capped
      candidate stream, so the set of mappings *considered* is unchanged.
    * Surviving mappings get the full legacy check body against the
      hoisted guest state.
    """
    guest_state = _run_guest(guest_isa, guest_insns, guest_regs)
    if guest_state is None:
        return _NO_MAPPING
    if guest_state.lazy_reads:
        return _NO_MAPPING  # guest read a register outside the collected operands
    base_oracle = guest_state.load_oracle

    # Flag inputs are mapping-independent, so the probe shares them; only
    # its registers stay unbound (they materialize as h_* symbols).
    flag_inputs: Dict[str, Sym] = {f: Sym(f"F{f}", 1) for f in FLAG_NAMES}
    probe = _probe_host(host_isa, host_insns, flag_inputs)
    if probe is None:
        return _NO_MAPPING
    probe_lazy, probe_written = probe

    guest_index = {name: i for i, name in enumerate(guest_regs)}
    has_spare_hosts = len(host_regs) > len(guest_regs)
    # Per-guest-register verdict of "does the guest leave this register at
    # its bound input v{i}?", resolved lazily — shared across mappings.
    guest_unchanged: Dict[str, bool] = {}
    best: Optional[CheckResult] = None
    for mapping in _candidate_mappings(guest_regs, host_regs):
        if has_spare_hosts and probe_lazy:
            mapped_hosts = set(mapping.values())
            if any(r in probe_lazy for r in host_regs if r not in mapped_hosts):
                continue
        viable = True
        for guest_reg, host_reg in mapping.items():
            if host_reg not in probe_written:
                # Host leaves this register at its bound input symbol.
                unchanged = guest_unchanged.get(guest_reg)
                if unchanged is None:
                    bound = Sym(f"v{guest_index[guest_reg]}", 32)
                    unchanged = exprs_equal(guest_state.regs[guest_reg], bound)
                    guest_unchanged[guest_reg] = unchanged
                if not unchanged:
                    viable = False
                    break
        if not viable:
            continue
        result = _check_host_against(
            host_isa,
            host_insns,
            mapping,
            guest_state,
            flag_inputs,
            base_oracle,
            wanted_flags,
        )
        if result is None:
            continue
        if result.equivalent:
            return result
        if best is None or len(result.mismatched_flags) < len(best.mismatched_flags):
            best = result
    if best is not None:
        return best
    return _NO_MAPPING


def _check_host_against(
    host_isa,
    host_insns: Tuple[Instruction, ...],
    mapping: Dict[str, str],
    guest_state: SymbolicState,
    flag_inputs: Dict[str, Sym],
    base_oracle: Dict,
    wanted_flags: frozenset,
) -> Optional[CheckResult]:
    """Run the host under *mapping* and compare against the hoisted guest."""
    key = (
        host_isa.name,
        host_insns,
        tuple(mapping.items()),
        tuple(base_oracle.items()),
    )
    host_state = _HOST_RUN_MEMO.get(key)
    if host_state is MISS:
        host_state = SymbolicState("h", load_oracle=dict(base_oracle))
        for i, (_, host_reg) in enumerate(mapping.items()):
            host_state.bind_reg(host_reg, Sym(f"v{i}", 32))
        for flag in FLAG_NAMES:
            host_state.bind_flag(flag, flag_inputs[flag])
        try:
            run_symbolic(host_isa, host_insns, host_state)
        except VerificationError:
            host_state = _RUN_FAILED
        _HOST_RUN_MEMO.put(key, host_state)
    if host_state is _RUN_FAILED:
        return None
    return _compare_states(
        guest_state, host_state, host_insns, mapping, flag_inputs, wanted_flags
    )


def _check_with_mapping(
    guest_isa,
    host_isa,
    guest_insns: Tuple[Instruction, ...],
    host_insns: Tuple[Instruction, ...],
    mapping: Dict[str, str],
    wanted_flags: frozenset,
) -> Optional[CheckResult]:
    """Check one register mapping; None means "this mapping does not work"."""
    load_oracle: Dict = {}
    guest_state = SymbolicState("g", load_oracle=load_oracle)
    host_state = SymbolicState("h", load_oracle=load_oracle)

    for i, (guest_reg, host_reg) in enumerate(mapping.items()):
        shared = Sym(f"v{i}", 32)
        guest_state.bind_reg(guest_reg, shared)
        host_state.bind_reg(host_reg, shared)
    flag_inputs = {}
    for flag in FLAG_NAMES:
        shared = Sym(f"F{flag}", 1)
        flag_inputs[flag] = shared
        guest_state.bind_flag(flag, shared)
        host_state.bind_flag(flag, shared)

    try:
        run_symbolic(guest_isa, guest_insns, guest_state)
        run_symbolic(host_isa, host_insns, host_state)
    except VerificationError:
        return None
    if guest_state.lazy_reads:
        return None  # guest read a register outside the collected operands
    return _compare_states(
        guest_state, host_state, host_insns, mapping, flag_inputs, wanted_flags
    )


def _compare_states(
    guest_state: SymbolicState,
    host_state: SymbolicState,
    host_insns: Tuple[Instruction, ...],
    mapping: Dict[str, str],
    flag_inputs: Dict[str, Sym],
    wanted_flags: frozenset,
) -> Optional[CheckResult]:
    """Compare two completed symbolic runs under one mapping."""
    mapped_hosts = set(mapping.values())
    temps = tuple(r for r in collect_regs(host_insns) if r not in mapped_hosts)
    # True temporaries must be written before any read.
    if any(t in host_state.lazy_reads for t in temps):
        return None

    # Register outputs.
    for guest_reg, host_reg in mapping.items():
        if not exprs_equal(guest_state.regs[guest_reg], host_state.regs[host_reg]):
            return None

    # Memory outputs: store-for-store, in order.
    if len(guest_state.stores) != len(host_state.stores):
        return None
    for g_store, h_store in zip(guest_state.stores, host_state.stores):
        if g_store.size != h_store.size:
            return None
        if not exprs_equal(g_store.addr, h_store.addr):
            return None
        if not exprs_equal(g_store.value, h_store.value):
            return None

    # Branch outcome.
    if (guest_state.branch_taken is None) != (host_state.branch_taken is None):
        return None
    if guest_state.branch_taken is not None:
        if not exprs_equal(guest_state.branch_taken, host_state.branch_taken):
            return None

    flag_status: Dict[str, str] = {}
    for flag in FLAG_NAMES:
        guest_flag = guest_state.flags[flag]
        host_flag = host_state.flags[flag]
        if flag in wanted_flags:
            equal = exprs_equal(guest_flag, host_flag)
            flag_status[flag] = FLAG_EQUIV if equal else FLAG_MISMATCH
        elif host_flag == flag_inputs[flag]:
            flag_status[flag] = FLAG_PRESERVED
        else:
            flag_status[flag] = FLAG_CLOBBERED

    return CheckResult(
        equivalent=all(s != FLAG_MISMATCH for s in flag_status.values()),
        reg_mapping=dict(mapping),
        host_temps=temps,
        flag_status=flag_status,
    )
