"""Expression equivalence checking.

No SMT solver is available offline, so equivalence is decided by:

1. canonical simplification to syntactic equality (sound accept);
2. evaluation over the cross product of boundary values when the combined
   free-symbol count is small (sound *reject*, near-exhaustive accept);
3. randomized evaluation over many full-width samples (sound reject,
   probabilistic accept).

This matches the trust model of testing-based translation validation; the
paper's own verifier (symbolic execution + solver) is stricter only in the
"accept" direction, and every rule this checker accepts is additionally
exercised end-to-end by the DBT integration tests.

Performance: expression nodes are interned (:mod:`repro.symir.expr`), so
verdicts are memoized process-wide keyed on the node pair itself — the
mapping search in :mod:`repro.verify.checker` re-compares the same
guest/host value expressions across many candidate mappings and shape-class
representatives.  Sampling lowers each compared pair to one compiled row
scanner (:func:`repro.symir.rowcompile.pair_evaluator`), so an assignment
costs straight-line bytecode rather than per-node interpretation.  Both
paths are bypassed in legacy mode (:mod:`repro.perfopts`) so the offline
benchmark can time the plain algorithm.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence, Tuple

from repro import perfopts
from repro.cache import MISS, BoundedMemo
from repro.symir import Expr, evaluate, free_symbols, simplify
from repro.symir.rowcompile import pair_evaluator

#: Boundary values every symbol is exercised with.
BOUNDARY_VALUES: Tuple[int, ...] = (
    0,
    1,
    2,
    3,
    5,
    0x7F,
    0x80,
    0xFF,
    0x100,
    0x7FFFFFFF,
    0x80000000,
    0xFFFFFFFF,
    0xFFFFFFFE,
)

RANDOM_SAMPLES = 160
_MAX_EXHAUSTIVE_ASSIGNMENTS = 4096

#: Verdict memo keyed ``(lhs, rhs, seed)`` on interned nodes; sound because
#: the verdict is a pure function of the pair (the sampling rng is seeded
#: from the pair's reprs) and interning makes structurally equal keys
#: identical.
_EQUAL_MEMO = BoundedMemo(maxsize=65536, name="verify.exprs_equal")


def _assignments(symbols: Sequence, seed: int) -> Iterable[dict]:
    """Yield test assignments: boundary cross product (capped) + random."""
    names = [s.name for s in symbols]
    widths = {s.name: s.width for s in symbols}

    def clip(env: dict) -> dict:
        return {
            name: value & ((1 << widths[name]) - 1) for name, value in env.items()
        }

    if names:
        total = len(BOUNDARY_VALUES) ** len(names)
        if total <= _MAX_EXHAUSTIVE_ASSIGNMENTS:
            for combo in itertools.product(BOUNDARY_VALUES, repeat=len(names)):
                yield clip(dict(zip(names, combo)))
        else:
            rng = random.Random(seed ^ 0x5EED)
            for _ in range(_MAX_EXHAUSTIVE_ASSIGNMENTS):
                yield clip({name: rng.choice(BOUNDARY_VALUES) for name in names})

    rng = random.Random(seed)
    for _ in range(RANDOM_SAMPLES):
        yield clip({name: rng.getrandbits(32) for name in names})
    if not names:
        yield {}


#: Materialized boundary-value cross products keyed by the masks tuple —
#: they are seed-independent, and most expression pairs share a handful of
#: width signatures, so the product is built once per signature.
_BOUNDARY_ROWS_MEMO = BoundedMemo(maxsize=64, name="verify.boundary_rows")


def _boundary_rows(masks: Tuple[int, ...]) -> list:
    rows = _BOUNDARY_ROWS_MEMO.get(masks)
    if rows is MISS:
        rows = [
            tuple(v & m for v, m in zip(combo, masks))
            for combo in itertools.product(BOUNDARY_VALUES, repeat=len(masks))
        ]
        _BOUNDARY_ROWS_MEMO.put(masks, rows)
    return rows


def _assignment_rows(
    names: Sequence[str], masks: Sequence[int], seed: int
) -> Iterable[tuple]:
    """The :func:`_assignments` stream as value tuples in *names* order.

    Yields exactly the same values in exactly the same order (including the
    order of rng draws within each assignment), so verdicts derived from
    either stream are interchangeable.
    """
    if names:
        total = len(BOUNDARY_VALUES) ** len(names)
        if total <= _MAX_EXHAUSTIVE_ASSIGNMENTS:
            yield from _boundary_rows(tuple(masks))
        else:
            rng = random.Random(seed ^ 0x5EED)
            for _ in range(_MAX_EXHAUSTIVE_ASSIGNMENTS):
                yield tuple(rng.choice(BOUNDARY_VALUES) & m for m in masks)

    rng = random.Random(seed)
    for _ in range(RANDOM_SAMPLES):
        yield tuple(rng.getrandbits(32) & m for m in masks)
    if not names:
        yield ()


def _first_difference(lhs: Expr, rhs: Expr, seed: int) -> dict | None:
    """First assignment (in :func:`_assignments` order) distinguishing the
    two expressions, or ``None``.  *lhs*/*rhs* must already be simplified."""
    symbols = list(dict.fromkeys(free_symbols(lhs) + free_symbols(rhs)))
    if not perfopts.optimized():
        for env in _assignments(symbols, seed):
            if evaluate(lhs, env) != evaluate(rhs, env):
                return env
        return None
    # Compiled row evaluation: the pair is lowered once to a generated
    # Python function over value rows (shared subterms computed once per
    # row), so an assignment costs a single pass of straight-line bytecode
    # instead of a per-node interpreter dispatch.  The scanner consumes the
    # assignment stream lazily and stops at the first differing row.
    names = tuple(s.name for s in symbols)
    widths = {s.name: s.width for s in symbols}
    masks = [(1 << widths[n]) - 1 for n in names]
    scan = pair_evaluator(lhs, rhs, names)
    index = scan(_assignment_rows(names, masks, seed))
    if index < 0:
        return None
    row = next(itertools.islice(_assignment_rows(names, masks, seed), index, None))
    return dict(zip(names, row))


def _plain_repr(expr: Expr) -> str:
    """Recompute an expression's repr without the per-node cache.

    Legacy mode exists to time the plain algorithm, and the plain algorithm
    re-walked the tree on every ``repr`` call; reading the repr cached by the
    interned node would understate its cost.  The string produced is
    identical to ``repr(expr)``.
    """
    from repro.symir.expr import BinOp, Const, Ite, Sym, UnOp, Extract, ZeroExt

    if isinstance(expr, Const):
        return f"0x{expr.value:x}:{expr.width}"
    if isinstance(expr, Sym):
        return f"{expr.name}:{expr.width}"
    if isinstance(expr, BinOp):
        return f"({expr.op} {_plain_repr(expr.lhs)} {_plain_repr(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"({expr.op} {_plain_repr(expr.operand)})"
    if isinstance(expr, Ite):
        return (
            f"(ite {_plain_repr(expr.cond)} {_plain_repr(expr.then)} "
            f"{_plain_repr(expr.orelse)})"
        )
    if isinstance(expr, Extract):
        return f"(extract {_plain_repr(expr.operand)} [{expr.lo}+:{expr.width}])"
    if isinstance(expr, ZeroExt):
        return f"(zext {_plain_repr(expr.operand)} -> {expr.width})"
    raise TypeError(f"unknown expression node: {expr!r}")


def exprs_equal(lhs: Expr, rhs: Expr, seed: int = 0) -> bool:
    """Decide whether two expressions are semantically equal.

    ``False`` is definitive (a distinguishing assignment exists); ``True`` is
    definitive when reached by syntactic equality and high-confidence
    otherwise.
    """
    if not perfopts.optimized():
        lhs = simplify(lhs, {})
        rhs = simplify(rhs, {})
        if lhs == rhs:
            return True
        if lhs.width != rhs.width:
            return False
        mix = seed ^ (hash((_plain_repr(lhs), _plain_repr(rhs))) & 0xFFFFFFFF)
        return _first_difference(lhs, rhs, mix) is None

    key = (lhs, rhs, seed)
    verdict = _EQUAL_MEMO.get(key)
    if verdict is not MISS:
        return verdict
    slhs = simplify(lhs)
    srhs = simplify(rhs)
    if slhs is srhs or slhs == srhs:
        verdict = True
    elif slhs.width != srhs.width:
        verdict = False
    else:
        mix = seed ^ (hash((repr(slhs), repr(srhs))) & 0xFFFFFFFF)
        verdict = _first_difference(slhs, srhs, mix) is None
    _EQUAL_MEMO.put(key, verdict)
    return verdict


def find_counterexample(lhs: Expr, rhs: Expr, seed: int = 0) -> dict | None:
    """Return a distinguishing assignment if one is found, else ``None``."""
    lhs = simplify(lhs)
    rhs = simplify(rhs)
    if lhs == rhs:
        return None
    return _first_difference(lhs, rhs, seed)
