"""Expression equivalence checking.

No SMT solver is available offline, so equivalence is decided by:

1. canonical simplification to syntactic equality (sound accept);
2. evaluation over the cross product of boundary values when the combined
   free-symbol count is small (sound *reject*, near-exhaustive accept);
3. randomized evaluation over many full-width samples (sound reject,
   probabilistic accept).

This matches the trust model of testing-based translation validation; the
paper's own verifier (symbolic execution + solver) is stricter only in the
"accept" direction, and every rule this checker accepts is additionally
exercised end-to-end by the DBT integration tests.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence, Tuple

from repro.symir import Expr, evaluate, free_symbols, simplify

#: Boundary values every symbol is exercised with.
BOUNDARY_VALUES: Tuple[int, ...] = (
    0,
    1,
    2,
    3,
    5,
    0x7F,
    0x80,
    0xFF,
    0x100,
    0x7FFFFFFF,
    0x80000000,
    0xFFFFFFFF,
    0xFFFFFFFE,
)

RANDOM_SAMPLES = 160
_MAX_EXHAUSTIVE_ASSIGNMENTS = 4096


def _assignments(symbols: Sequence, seed: int) -> Iterable[dict]:
    """Yield test assignments: boundary cross product (capped) + random."""
    names = [s.name for s in symbols]
    widths = {s.name: s.width for s in symbols}

    def clip(env: dict) -> dict:
        return {
            name: value & ((1 << widths[name]) - 1) for name, value in env.items()
        }

    if names:
        total = len(BOUNDARY_VALUES) ** len(names)
        if total <= _MAX_EXHAUSTIVE_ASSIGNMENTS:
            for combo in itertools.product(BOUNDARY_VALUES, repeat=len(names)):
                yield clip(dict(zip(names, combo)))
        else:
            rng = random.Random(seed ^ 0x5EED)
            for _ in range(_MAX_EXHAUSTIVE_ASSIGNMENTS):
                yield clip({name: rng.choice(BOUNDARY_VALUES) for name in names})

    rng = random.Random(seed)
    for _ in range(RANDOM_SAMPLES):
        yield clip({name: rng.getrandbits(32) for name in names})
    if not names:
        yield {}


def exprs_equal(lhs: Expr, rhs: Expr, seed: int = 0) -> bool:
    """Decide whether two expressions are semantically equal.

    ``False`` is definitive (a distinguishing assignment exists); ``True`` is
    definitive when reached by syntactic equality and high-confidence
    otherwise.
    """
    lhs = simplify(lhs)
    rhs = simplify(rhs)
    if lhs == rhs:
        return True
    if lhs.width != rhs.width:
        return False
    symbols = list(dict.fromkeys(free_symbols(lhs) + free_symbols(rhs)))
    mix = seed ^ (hash((repr(lhs), repr(rhs))) & 0xFFFFFFFF)
    for env in _assignments(symbols, mix):
        if evaluate(lhs, env) != evaluate(rhs, env):
            return False
    return True


def find_counterexample(lhs: Expr, rhs: Expr, seed: int = 0) -> dict | None:
    """Return a distinguishing assignment if one is found, else ``None``."""
    lhs = simplify(lhs)
    rhs = simplify(rhs)
    if lhs == rhs:
        return None
    symbols = list(dict.fromkeys(free_symbols(lhs) + free_symbols(rhs)))
    for env in _assignments(symbols, seed):
        if evaluate(lhs, env) != evaluate(rhs, env):
            return env
    return None
