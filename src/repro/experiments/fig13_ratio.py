"""Figure 13: host instructions per guest instruction.

Paper averages: QEMU 8.18, w/o para 7.51, para 5.66.
"""

from __future__ import annotations

from repro.experiments.common import mean, run_benchmark
from repro.experiments.report import ExperimentResult
from repro.workloads import BENCHMARK_NAMES


def run() -> ExperimentResult:
    result = ExperimentResult(
        ident="fig13",
        title="Fig. 13 — host instructions per guest instruction",
        headers=("benchmark", "qemu", "w/o para.", "para."),
    )
    columns = {"qemu": [], "wopara": [], "condition": []}
    for name in BENCHMARK_NAMES:
        ratios = {
            stage: run_benchmark(name, stage).total_ratio for stage in columns
        }
        for stage, value in ratios.items():
            columns[stage].append(value)
        result.add(name, ratios["qemu"], ratios["wopara"], ratios["condition"])
    result.add(
        "average",
        mean(columns["qemu"]),
        mean(columns["wopara"]),
        mean(columns["condition"]),
    )
    result.note("paper averages: QEMU 8.18, w/o para 7.51, para 5.66")
    return result
